// Copyright 2026 The claks Authors.
//
// Concurrent-service benchmark: drives SearchService over company_gen
// datasets at increasing scale with 1/2/4/8 worker threads, on the cold
// path (cache disabled: every query pays the full search) and the
// warm-cache path (cache enabled and pre-touched: repeats are hits), and
// emits machine-readable BENCH_service.json with QPS and p50/p99 latency
// per configuration. Before timing, every search method's service results
// are verified identical to serial KeywordSearchEngine::Search on the same
// instance. The JSON schema is documented in docs/BENCHMARKS.md; CI runs
// 1x/10x and uploads the file as an artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "datasets/company_gen.h"
#include "service/search_service.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// One timed workload item. The mix pairs the streaming top-k production
// path with the full-enumeration path so the pool sees both short and
// long tasks.
struct WorkItem {
  const char* query;
  claks::SearchOptions options;
};

std::vector<WorkItem> MakeWorkload(size_t max_edges, size_t top_k) {
  claks::SearchOptions stream;
  stream.method = claks::SearchMethod::kStream;
  stream.max_rdb_edges = max_edges;
  stream.top_k = top_k;
  claks::SearchOptions enumerate;
  enumerate.method = claks::SearchMethod::kEnumerate;
  enumerate.max_rdb_edges = max_edges;
  enumerate.top_k = top_k;
  return {
      {"smith xml", stream},
      {"retrieval databases", stream},
      {"smith xml", enumerate},
      {"retrieval databases", enumerate},
  };
}

// Byte-level fingerprint of a result: the rendered report plus every
// ranking-relevant field per hit, in order.
std::string Fingerprint(const claks::SearchResult& result,
                        const claks::Database& db) {
  std::string out = result.ToString(db, result.hits.size() + 1);
  for (const claks::SearchHit& hit : result.hits) {
    out += hit.rendered;
    out += claks::StrFormat(
        "|%zu,%zu,%d,%zu,%zu,%d,%d,%.9f,%.9f;", hit.rdb_length,
        hit.er_length, static_cast<int>(hit.kind), hit.hub_patterns,
        hit.nm_steps, hit.schema_close ? 1 : 0,
        hit.instance_close.has_value() ? (*hit.instance_close ? 1 : 0) : -1,
        hit.text_score, hit.ambiguity);
  }
  return out;
}

struct RunRecord {
  size_t threads = 0;
  bool warm = false;
  size_t total_queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

struct ScaleRecord {
  size_t scale = 0;
  size_t rows = 0;
  bool verified_identical = true;
  std::vector<RunRecord> runs;

  double QpsOf(size_t threads, bool warm) const {
    for (const RunRecord& run : runs) {
      if (run.threads == threads && run.warm == warm) return run.qps;
    }
    return 0.0;
  }
};

std::unique_ptr<claks::SearchService> MakeService(
    const claks::GeneratedDataset& master, size_t threads, bool warm) {
  claks::ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = threads * 8;
  options.cache_capacity = warm ? 4096 : 0;  // cold: every query searches
  auto service = claks::SearchService::Create(
      master.db->Clone(), master.er_schema, master.mapping, options);
  CLAKS_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

// Every search method's service results must be byte-identical to serial
// engine execution on the same instance.
bool VerifyAgainstSerial(const claks::GeneratedDataset& master) {
  auto created = claks::KeywordSearchEngine::Create(
      master.db.get(), master.er_schema, master.mapping);
  CLAKS_CHECK(created.ok());
  std::unique_ptr<claks::KeywordSearchEngine> serial =
      std::move(created).ValueOrDie();
  std::unique_ptr<claks::SearchService> service =
      MakeService(master, 4, /*warm=*/true);

  const claks::SearchMethod kMethods[] = {
      claks::SearchMethod::kEnumerate, claks::SearchMethod::kStream,
      claks::SearchMethod::kMtjnt, claks::SearchMethod::kDiscover,
      claks::SearchMethod::kBanks};
  bool identical = true;
  for (claks::SearchMethod method : kMethods) {
    claks::SearchOptions options;
    options.method = method;
    options.max_rdb_edges = 3;
    options.tmax = 4;
    options.top_k = 10;
    auto expected = serial->Search("smith xml", options);
    CLAKS_CHECK(expected.ok());
    // Twice: the second submission exercises the cache-hit path too.
    for (int rep = 0; rep < 2; ++rep) {
      auto got = service->SearchNow("smith xml", options);
      CLAKS_CHECK(got.ok());
      if (Fingerprint(*got, *master.db) !=
          Fingerprint(*expected, *master.db)) {
        std::fprintf(stderr, "MISMATCH: method %s rep %d\n",
                     claks::SearchMethodToString(method), rep);
        identical = false;
      }
    }
  }
  return identical;
}

RunRecord RunOne(const claks::GeneratedDataset& master, size_t threads,
                 bool warm, const std::vector<WorkItem>& workload,
                 size_t reps) {
  std::unique_ptr<claks::SearchService> service =
      MakeService(master, threads, warm);
  if (warm) {
    // Pre-touch: one pass fills the cache, so the timed phase measures
    // the steady-state hit path.
    for (const WorkItem& item : workload) {
      CLAKS_CHECK(service->SearchNow(item.query, item.options).ok());
    }
  }

  // Closed-loop producers, one per worker: each runs the workload `reps`
  // times through Submit(...).get() and records per-query latency.
  std::vector<std::vector<double>> latencies(threads);
  auto wall_start = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (size_t p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      latencies[p].reserve(reps * workload.size());
      for (size_t r = 0; r < reps; ++r) {
        for (const WorkItem& item : workload) {
          auto start = Clock::now();
          auto result = service->Submit(item.query, item.options).get();
          CLAKS_CHECK(result.ok());
          latencies[p].push_back(MillisSince(start));
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  double wall_ms = MillisSince(wall_start);

  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());

  RunRecord record;
  record.threads = threads;
  record.warm = warm;
  record.total_queries = all.size();
  record.wall_ms = wall_ms;
  record.qps = wall_ms > 0.0 ? 1000.0 * all.size() / wall_ms : 0.0;
  record.p50_ms = all.empty() ? 0.0 : all[all.size() / 2];
  record.p99_ms = all.empty() ? 0.0 : all[(all.size() * 99) / 100];
  claks::ServiceStats stats = service->stats();
  record.cache_hits = stats.cache_hits;
  record.cache_misses = stats.cache_misses;
  return record;
}

ScaleRecord RunScale(size_t scale, const std::vector<size_t>& thread_counts,
                     size_t reps, size_t max_edges, size_t top_k) {
  ScaleRecord record;
  record.scale = scale;
  auto generated =
      claks::GenerateCompanyDataset(claks::CompanyGenOptions::AtScale(scale));
  CLAKS_CHECK(generated.ok());
  claks::GeneratedDataset master = std::move(generated).ValueOrDie();
  record.rows = master.db->TotalRows();

  record.verified_identical = VerifyAgainstSerial(master);
  CLAKS_CHECK(record.verified_identical);

  const std::vector<WorkItem> workload = MakeWorkload(max_edges, top_k);
  for (size_t threads : thread_counts) {
    for (bool warm : {false, true}) {
      RunRecord run = RunOne(master, threads, warm, workload, reps);
      std::printf(
          "  scale %3zux  %zu thread(s)  %-4s  %6zu queries  %8.1f qps  "
          "p50 %7.3fms  p99 %7.3fms  (hits %llu / misses %llu)\n",
          scale, threads, warm ? "warm" : "cold", run.total_queries,
          run.qps, run.p50_ms, run.p99_ms,
          static_cast<unsigned long long>(run.cache_hits),
          static_cast<unsigned long long>(run.cache_misses));
      record.runs.push_back(run);
    }
  }
  return record;
}

void WriteJson(std::FILE* f, const std::vector<ScaleRecord>& records,
               const std::vector<size_t>& thread_counts, size_t reps,
               size_t max_edges, size_t top_k) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_service\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"dataset\": \"company_gen\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"thread_counts\": [");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::fprintf(f, "%zu%s", thread_counts[i],
                 i + 1 < thread_counts.size() ? ", " : "");
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"reps\": %zu,\n", reps);
  std::fprintf(f, "  \"max_rdb_edges\": %zu,\n", max_edges);
  std::fprintf(f, "  \"top_k\": %zu,\n", top_k);
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ScaleRecord& r = records[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale\": %zu,\n", r.scale);
    std::fprintf(f, "      \"rows\": %zu,\n", r.rows);
    std::fprintf(f, "      \"verified_identical_to_serial\": %s,\n",
                 r.verified_identical ? "true" : "false");
    std::fprintf(f, "      \"runs\": [\n");
    for (size_t j = 0; j < r.runs.size(); ++j) {
      const RunRecord& run = r.runs[j];
      std::fprintf(
          f,
          "        {\"threads\": %zu, \"mode\": \"%s\", "
          "\"total_queries\": %zu, \"wall_ms\": %.3f, \"qps\": %.1f, "
          "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hits\": %llu, "
          "\"cache_misses\": %llu}%s\n",
          run.threads, run.warm ? "warm" : "cold", run.total_queries,
          run.wall_ms, run.qps, run.p50_ms, run.p99_ms,
          static_cast<unsigned long long>(run.cache_hits),
          static_cast<unsigned long long>(run.cache_misses),
          j + 1 < r.runs.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    const size_t kRef = 4;
    std::fprintf(f, "      \"cold_qps_speedup_%zu_vs_1\": %.2f,\n", kRef,
                 r.QpsOf(1, false) > 0.0
                     ? r.QpsOf(kRef, false) / r.QpsOf(1, false)
                     : 0.0);
    std::fprintf(f, "      \"warm_vs_cold_qps_at_%zu\": %.2f\n", kRef,
                 r.QpsOf(kRef, false) > 0.0
                     ? r.QpsOf(kRef, true) / r.QpsOf(kRef, false)
                     : 0.0);
    std::fprintf(f, "    }%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

std::vector<size_t> ParseSizeList(const std::string& spec) {
  std::vector<size_t> values;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    long value = std::atol(spec.substr(pos, comma - pos).c_str());
    values.push_back(value > 0 ? static_cast<size_t>(value) : 0);
    pos = comma + 1;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales{1, 10};
  std::vector<size_t> thread_counts{1, 2, 4, 8};
  std::string out_path = "BENCH_service.json";
  size_t reps = 8;
  size_t max_edges = 3;
  size_t top_k = 10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scales=", 0) == 0) {
      scales = ParseSizeList(arg.substr(9));
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts = ParseSizeList(arg.substr(10));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(std::atol(arg.c_str() + 7));
    } else if (arg.rfind("--max_edges=", 0) == 0) {
      max_edges = static_cast<size_t>(std::atol(arg.c_str() + 12));
    } else if (arg.rfind("--top_k=", 0) == 0) {
      top_k = static_cast<size_t>(std::atol(arg.c_str() + 8));
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --scales=1,10 "
                   "--threads=1,2,4,8 --out=FILE --reps=N --max_edges=N "
                   "--top_k=N)\n",
                   arg.c_str());
      return 2;
    }
  }
  auto invalid = [](const std::vector<size_t>& v) {
    return v.empty() ||
           std::find(v.begin(), v.end(), 0u) != v.end();
  };
  if (invalid(scales) || invalid(thread_counts) || reps == 0 ||
      max_edges == 0 || top_k == 0) {
    std::fprintf(stderr,
                 "invalid flags: need scales/threads/reps/max_edges/top_k "
                 ">= 1\n");
    return 2;
  }

  std::vector<ScaleRecord> records;
  for (size_t scale : scales) {
    std::printf("scale %zux ...\n", scale);
    records.push_back(
        RunScale(scale, thread_counts, reps, max_edges, top_k));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 1;
  }
  WriteJson(f, records, thread_counts, reps, max_edges, top_k);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
