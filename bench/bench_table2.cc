// Copyright 2026 The claks Authors.
//
// Regenerates Table 2: the connections of the query "Smith XML" (plus the
// "Alice" rows 8-9) with their lengths in the RDB and in the ER model —
// and verifies that full enumeration finds exactly rows 1-7.

#include "bench_util.h"
#include "core/length.h"

int main() {
  using claks::bench::ConnectionByNames;
  using claks::bench::MakePaperSetup;
  using claks::bench::PaperConnections;
  using claks::bench::PaperKeywordMarks;
  using claks::bench::PaperRowOf;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();
  const claks::Database& db = *setup.dataset.db;
  auto marks = PaperKeywordMarks(db);

  // The paper's printed lengths, row 1..9: {rdb, er}.
  const size_t kExpected[9][2] = {{1, 1}, {2, 1}, {2, 2}, {3, 2}, {1, 1},
                                  {2, 2}, {3, 2}, {2, 2}, {4, 3}};

  PrintHeader("Table 2: connections and lengths (RDB vs ER)");
  std::printf("%-3s %-55s %-12s %-11s %s\n", "#", "connection",
              "len in RDB", "len in ER", "check");
  bool all_ok = true;
  for (size_t i = 0; i < PaperConnections().size(); ++i) {
    claks::Connection conn =
        ConnectionByNames(*setup.engine, db, PaperConnections()[i]);
    auto er_length = claks::ErLength(conn, db, setup.dataset.er_schema,
                                     setup.dataset.mapping);
    if (!er_length.ok()) {
      std::fprintf(stderr, "projection failed: %s\n",
                   er_length.status().ToString().c_str());
      return 1;
    }
    bool ok = conn.RdbLength() == kExpected[i][0] &&
              *er_length == kExpected[i][1];
    all_ok = all_ok && ok;
    std::printf("%-3zu %-55s %-12zu %-11zu %s (paper: %zu / %zu)\n", i + 1,
                conn.ToString(db, marks).c_str(), conn.RdbLength(),
                *er_length, ok ? "OK" : "MISMATCH", kExpected[i][0],
                kExpected[i][1]);
  }

  PrintHeader("Completeness: enumerating 'Smith XML' at depth 3");
  claks::SearchOptions options;
  options.max_rdb_edges = 3;
  auto result = setup.engine->Search("Smith XML", options);
  if (!result.ok()) return 1;
  std::printf("connections found: %zu (paper rows 1-7)\n",
              result->hits.size());
  bool complete = result->hits.size() == 7;
  for (const claks::SearchHit& hit : result->hits) {
    int row = PaperRowOf(*setup.engine, db, hit);
    std::printf("  row %d: %s\n", row, hit.rendered.c_str());
    complete = complete && row >= 1 && row <= 7;
  }
  all_ok = all_ok && complete;

  std::printf("\nTable 2 reproduction: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
