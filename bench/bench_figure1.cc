// Copyright 2026 The claks Authors.
//
// Regenerates Figure 1: the ER schema of the paper's running example, both
// as declared and as reverse-engineered from the relational catalog.

#include "bench_util.h"
#include "er/relational_to_er.h"

int main() {
  using claks::bench::MakePaperSetup;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();

  PrintHeader("Figure 1: ER schema (as declared)");
  std::printf("%s", setup.dataset.er_schema.ToString().c_str());
  auto validation = setup.dataset.er_schema.Validate();
  std::printf("validation: %s\n", validation.ToString().c_str());

  PrintHeader("Figure 1: ER schema (reverse-engineered from the catalog)");
  auto recovered = claks::ReverseEngineerEr(*setup.dataset.db);
  if (!recovered.ok()) {
    std::fprintf(stderr, "reverse engineering failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", recovered->schema.ToString().c_str());
  std::printf(
      "\nmiddle relations detected: WORKS_FOR -> %s\n",
      recovered->mapping.IsMiddleRelation("WORKS_FOR") ? "yes" : "NO");

  PrintHeader("Cardinality check against the paper");
  struct Expected {
    const char* rel;
    const char* left;
    const char* card;
    const char* right;
  };
  const Expected kExpected[] = {
      {"WORKS_FOR", "DEPARTMENT", "1:N", "EMPLOYEE"},
      {"WORKS_ON", "PROJECT", "N:M", "EMPLOYEE"},
      {"CONTROLS", "DEPARTMENT", "1:N", "PROJECT"},
      {"DEPENDENTS_OF", "EMPLOYEE", "1:N", "DEPENDENT"},
  };
  bool all_ok = true;
  for (const Expected& expected : kExpected) {
    const claks::RelationshipType* rel =
        setup.dataset.er_schema.FindRelationship(expected.rel);
    bool ok = rel != nullptr && rel->left_entity == expected.left &&
              rel->right_entity == expected.right &&
              std::string(claks::CardinalityToString(rel->cardinality)) ==
                  expected.card;
    std::printf("  %-14s %-11s %s %-9s : %s\n", expected.rel, expected.left,
                expected.card, expected.right, ok ? "OK" : "MISMATCH");
    all_ok = all_ok && ok;
  }
  std::printf("\nFigure 1 reproduction: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
