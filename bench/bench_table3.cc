// Copyright 2026 The claks Authors.
//
// Regenerates Table 3: the same connections annotated with per-edge
// cardinalities at the RDB level, plus our conceptual-level analysis
// (classification, loose points, instance verdicts).

#include "bench_util.h"

int main() {
  using claks::bench::ConnectionByNames;
  using claks::bench::MakePaperSetup;
  using claks::bench::PaperConnections;
  using claks::bench::PaperKeywordMarks;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();
  const claks::Database& db = *setup.dataset.db;
  auto marks = PaperKeywordMarks(db);
  const claks::AssociationAnalyzer& analyzer = setup.engine->analyzer();

  // Expected RDB cardinality strings, paper Table 3 rows 1..9.
  const char* kExpected[9] = {
      "1:N",
      "1:N N:1",
      "N:1 1:N",
      "1:N 1:N N:1",
      "1:N",
      "N:1 1:N",
      "1:N 1:N N:1",
      "1:N 1:N",
      "1:N 1:N N:1 1:N",
  };

  PrintHeader("Table 3: connections with relationship cardinalities");
  bool all_ok = true;
  for (size_t i = 0; i < PaperConnections().size(); ++i) {
    claks::Connection conn =
        ConnectionByNames(*setup.engine, db, PaperConnections()[i]);
    std::string cards = claks::StepsToString(conn.RdbCardinalitySequence());
    bool ok = cards == kExpected[i];
    all_ok = all_ok && ok;
    std::printf("%zu) %s\n", i + 1,
                conn.ToAnnotatedString(db, marks).c_str());
    std::printf("   rdb steps: %-20s (paper: %-20s) %s\n", cards.c_str(),
                kExpected[i], ok ? "OK" : "MISMATCH");
    auto analysis = analyzer.AnalyzeWithInstanceCheck(conn);
    if (analysis.ok()) {
      std::printf("   er view:   %s | %s%s%s\n",
                  analysis->projection.ToString().c_str(),
                  claks::AssociationKindToString(analysis->kind),
                  analysis->schema_close ? " (close)" : " (loose)",
                  analysis->instance_close.has_value()
                      ? (*analysis->instance_close ? " [instance-close]"
                                                   : " [instance-loose]")
                      : "");
    }
  }

  std::printf("\nTable 3 reproduction: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
