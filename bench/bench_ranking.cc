// Copyright 2026 The claks Authors.
//
// Regenerates the paper's §3 claim B (ranking): under RDB length the best
// connections are {1, 5} and the worst {4, 7}; under the conceptual view
// with close associations emphasised, the best are {1, 2, 5}, the worst
// {3, 6}, and 4 & 7 are promoted. Prints the full ranking under every
// policy plus the pairwise Kendall-tau distance matrix.

#include <set>

#include "bench_util.h"
#include "core/ranking.h"

int main() {
  using claks::RankerKind;
  using claks::bench::MakePaperSetup;
  using claks::bench::PaperRowOf;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();
  const claks::Database& db = *setup.dataset.db;
  claks::KeywordSearchEngine& engine = *setup.engine;

  const RankerKind kAll[] = {RankerKind::kRdbLength,
                             RankerKind::kErLength,
                             RankerKind::kCloseFirst,
                             RankerKind::kLoosePenalty,
                             RankerKind::kInstanceClose,
                             RankerKind::kCombined,
                             RankerKind::kAmbiguity,
                             RankerKind::kMoreContext};

  // Rank row ids per policy.
  std::vector<std::vector<size_t>> orders;
  for (RankerKind kind : kAll) {
    claks::SearchOptions options;
    options.max_rdb_edges = 3;
    options.ranker = kind;
    auto result = engine.Search("Smith XML", options);
    CLAKS_CHECK(result.ok());
    PrintHeader(std::string("Ranking under ") +
                claks::RankerKindToString(kind));
    std::vector<size_t> order;
    size_t rank = 1;
    for (const claks::SearchHit& hit : result->hits) {
      int row = PaperRowOf(engine, db, hit);
      order.push_back(static_cast<size_t>(row));
      std::printf(
          "  %zu. row %d  %s  (rdb %zu, er %zu, hubs %zu, nm %zu%s)\n",
          rank++, row, hit.rendered.c_str(), hit.rdb_length, hit.er_length,
          hit.hub_patterns, hit.nm_steps,
          hit.instance_close.has_value()
              ? (*hit.instance_close ? ", instance-close"
                                     : ", instance-loose")
              : "");
    }
    orders.push_back(std::move(order));
  }

  // Verify the paper's two statements.
  PrintHeader("Paper claims");
  bool ok = true;
  {
    const auto& rdb = orders[0];  // kRdbLength
    std::set<size_t> best{rdb[0], rdb[1]};
    std::set<size_t> worst{rdb[5], rdb[6]};
    bool claim = best == std::set<size_t>{1, 5} &&
                 worst == std::set<size_t>{4, 7};
    std::printf("RDB ranking: best {1,5}, worst {4,7} ............ %s\n",
                claim ? "PASS" : "FAIL");
    ok = ok && claim;
  }
  {
    const auto& cf = orders[2];  // kCloseFirst
    std::set<size_t> best{cf[0], cf[1], cf[2]};
    std::set<size_t> mid{cf[3], cf[4]};
    std::set<size_t> worst{cf[5], cf[6]};
    bool claim = best == std::set<size_t>{1, 2, 5} &&
                 mid == std::set<size_t>{4, 7} &&
                 worst == std::set<size_t>{3, 6};
    std::printf("ER ranking: best {1,2,5}, then {4,7}, worst {3,6} %s\n",
                claim ? "PASS" : "FAIL");
    ok = ok && claim;
  }

  // Kendall tau matrix. Convert row sequences to permutations of 0..6.
  PrintHeader("Kendall-tau distance between policies");
  auto as_perm = [](const std::vector<size_t>& rows) {
    std::vector<size_t> perm;
    for (size_t row : rows) perm.push_back(row - 1);
    return perm;
  };
  std::printf("%-16s", "");
  for (RankerKind kind : kAll) {
    std::printf("%-15s", claks::RankerKindToString(kind));
  }
  std::printf("\n");
  for (size_t i = 0; i < orders.size(); ++i) {
    std::printf("%-16s", claks::RankerKindToString(kAll[i]));
    for (size_t j = 0; j < orders.size(); ++j) {
      std::printf("%-15.3f", claks::KendallTauDistance(
                                 as_perm(orders[i]), as_perm(orders[j])));
    }
    std::printf("\n");
  }

  std::printf("\nRanking claims: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
