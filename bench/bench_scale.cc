// Copyright 2026 The claks Authors.
//
// Scale-out benchmark: runs representative keyword queries against
// company_gen datasets at increasing scale factors and emits a
// machine-readable BENCH_scale.json tracking build times (dataset
// generation, FK join-index build, CSR data-graph construction, engine
// creation), per-method query latency and result counts, and the speedup
// of the indexed execution paths over the seed scan paths (FK edge
// resolution and DISCOVER candidate-network evaluation). Since
// schema_version 2 each scale also sweeps intra-query sharding
// (--shards=1,2,4): the hash partition's node/edge balance
// (MakeShardPartition skew, max/mean), and a streaming top-k query run
// per shard count with per-shard expansion counters and the latency
// speedup over shards=1 — interpret speedups against the recorded
// hardware_threads (a single-core runner cannot show wall-clock wins).
// Since schema_version 3 each scale also exercises the storage subsystem
// (src/storage/): the warmed engine is serialized to a snapshot file and
// mmap-loaded back, recording save/load wall times, the file size, and
// the headline cold-start comparison — load-snapshot-to-first-query vs
// generate-build-to-first-query.
// The JSON schema is documented in docs/BENCHMARKS.md; CI uploads the
// 1x/10x run as an artifact so the perf trajectory is recorded per
// commit.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/mtjnt.h"
#include "core/shard.h"
#include "datasets/company_gen.h"
#include "storage/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Minimum wall time of `reps` runs of `fn` (best-of to damp scheduler
// noise; builds are one-shot and pass reps = 1).
template <typename Fn>
double TimeMs(size_t reps, Fn&& fn) {
  double best = -1.0;
  for (size_t i = 0; i < reps; ++i) {
    auto start = Clock::now();
    fn();
    double ms = MillisSince(start);
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

struct QueryRecord {
  std::string query;
  std::string method;
  double latency_ms = 0.0;
  size_t results = 0;
};

/// max/mean over per-shard counters: 1.0 = perfectly balanced. Thin
/// shim over the shared skew math in observability/metrics.h.
double Skew(const std::vector<size_t>& per_shard) {
  return claks::ComputeSkew(per_shard).ratio;
}

struct ShardScaleRecord {
  size_t shards = 1;
  double node_skew = 1.0;  // MakeShardPartition node balance
  double edge_skew = 1.0;  // owned-edge balance
  double stream_ms = 0.0;
  size_t expansions = 0;
  std::vector<size_t> per_shard;  // expansion counters (empty at 1)
  bool identical = true;          // hits vs the shards=1 run
};

struct SnapshotRecord {
  double save_ms = 0.0;    // Warmup + serialize to disk (one-shot)
  size_t file_bytes = 0;   // page-aligned snapshot size
  double load_ms = 0.0;    // mmap + install, best of reps
  double first_query_ms = 0.0;  // first query on the loaded engine
  /// One-shot LoadSnapshot + first Search: the headline cold-start path.
  double cold_start_first_query_ms = 0.0;
  /// generate + join indexes + engine build + the same first query: the
  /// from-scratch path the snapshot replaces.
  double build_first_query_ms = 0.0;
  bool identical = true;  // loaded results render == in-memory results
};

struct ScaleRecord {
  size_t scale = 0;
  size_t tables = 0;
  size_t rows = 0;
  size_t fk_edges = 0;
  double generate_ms = 0.0;
  double fk_scan_seed_ms = 0.0;
  double join_index_ms = 0.0;
  double data_graph_csr_ms = 0.0;
  double engine_ms = 0.0;
  std::vector<QueryRecord> queries;
  double discover_eval_indexed_ms = 0.0;
  double discover_eval_scan_ms = 0.0;
  bool discover_eval_equal = true;
  std::string shard_query;
  std::vector<ShardScaleRecord> shard_sweep;
  SnapshotRecord snapshot;
};

// The indexed-vs-scan comparison queries. Chosen so keyword selectivity
// grows with the instance: surnames and topic words match a constant
// fraction of the rows at every scale.
const char* kQueries[] = {"smith xml", "smith xml alice",
                          "retrieval databases"};

ScaleRecord RunScale(size_t scale, size_t tmax, size_t reps,
                     const std::vector<size_t>& shard_counts) {
  ScaleRecord record;
  record.scale = scale;

  auto start = Clock::now();
  auto generated =
      claks::GenerateCompanyDataset(claks::CompanyGenOptions::AtScale(scale));
  CLAKS_CHECK(generated.ok());
  record.generate_ms = MillisSince(start);
  claks::GeneratedDataset dataset = std::move(generated).ValueOrDie();
  const claks::Database& db = *dataset.db;

  record.tables = db.num_tables();
  record.rows = db.TotalRows();

  // Seed baseline: per-row hash probes over every (row, FK) pair.
  std::vector<claks::FkEdge> scanned;
  record.fk_scan_seed_ms =
      TimeMs(1, [&] { scanned = db.ScanAllFkEdges(); });

  record.join_index_ms = TimeMs(1, [&] { db.BuildJoinIndexes(); });
  record.fk_edges = db.ResolveAllFkEdges().size();
  CLAKS_CHECK_EQ(record.fk_edges, scanned.size());

  record.data_graph_csr_ms =
      TimeMs(1, [&] { claks::DataGraph graph(&db); });

  std::unique_ptr<claks::KeywordSearchEngine> engine;
  record.engine_ms = TimeMs(1, [&] {
    auto created = claks::KeywordSearchEngine::Create(
        dataset.db.get(), dataset.er_schema, dataset.mapping);
    CLAKS_CHECK(created.ok());
    engine = std::move(created).ValueOrDie();
  });

  for (const char* query : kQueries) {
    auto parsed =
        claks::ParseKeywordQuery(query, engine->index().tokenizer());
    auto matches = claks::MatchKeywords(engine->index(), parsed);
    if (!claks::AllKeywordsMatched(matches)) continue;  // tiny-scale miss

    std::vector<std::pair<std::string, claks::SearchMethod>> methods;
    if (parsed.keywords.size() <= 2) {
      methods.emplace_back("enumerate", claks::SearchMethod::kEnumerate);
    }
    methods.emplace_back("discover", claks::SearchMethod::kDiscover);
    methods.emplace_back("banks", claks::SearchMethod::kBanks);
    // Exact tree growth is exponential in the match count; only feasible
    // at the base scale.
    if (scale <= 1) {
      methods.emplace_back("mtjnt", claks::SearchMethod::kMtjnt);
    }

    for (const auto& [name, method] : methods) {
      claks::SearchOptions options;
      options.method = method;
      options.tmax = tmax;
      options.max_rdb_edges = tmax - 1;
      QueryRecord qr;
      qr.query = query;
      qr.method = name;
      qr.latency_ms = TimeMs(reps, [&] {
        auto result = engine->Search(query, options);
        CLAKS_CHECK(result.ok());
        qr.results = result->hits.size();
      });
      record.queries.push_back(std::move(qr));
    }
  }

  // Isolated evaluator comparison on the first query: candidate networks
  // generated once (schema-level, shared by both strategies), then each
  // strategy evaluates the same CN list over the same masks, results
  // checked equal. This is the headline indexed-vs-seed speedup.
  {
    auto parsed =
        claks::ParseKeywordQuery(kQueries[0], engine->index().tokenizer());
    auto matches = claks::MatchKeywords(engine->index(), parsed);
    CLAKS_CHECK(claks::AllKeywordsMatched(matches));
    auto masks = claks::ComputeKeywordMasks(matches);
    auto num_keywords = static_cast<uint32_t>(matches.size());
    const claks::SchemaGraph& schema_graph = engine->schema_graph();
    std::vector<std::vector<uint32_t>> masks_per_table(
        schema_graph.num_tables());
    for (const auto& [tuple, mask] : masks) {
      auto& table_masks = masks_per_table[tuple.table];
      if (std::find(table_masks.begin(), table_masks.end(), mask) ==
          table_masks.end()) {
        table_masks.push_back(mask);
      }
    }
    auto cns = claks::GenerateCandidateNetworks(schema_graph, masks_per_table,
                                                num_keywords, tmax);

    auto evaluate_all = [&](claks::CnEvalStrategy strategy) {
      std::set<claks::TupleTree> all;
      for (const claks::CandidateNetwork& cn : cns) {
        for (claks::TupleTree& tree : claks::EvaluateCandidateNetwork(
                 engine->data_graph(), cn, masks, num_keywords, strategy)) {
          all.insert(std::move(tree));
        }
      }
      return all;
    };

    std::set<claks::TupleTree> indexed_trees;
    std::set<claks::TupleTree> scan_trees;
    record.discover_eval_indexed_ms = TimeMs(reps, [&] {
      indexed_trees = evaluate_all(claks::CnEvalStrategy::kIndexed);
    });
    record.discover_eval_scan_ms = TimeMs(reps, [&] {
      scan_trees = evaluate_all(claks::CnEvalStrategy::kScan);
    });
    record.discover_eval_equal = indexed_trees == scan_trees;
    CLAKS_CHECK(record.discover_eval_equal);
  }

  // Intra-query sharding sweep: partition balance of the hash partition
  // at each shard count, plus a streaming top-k run per count. Result
  // order must stay identical at every shard count (the differential
  // suite's guarantee, re-checked here on the benchmark instance).
  {
    record.shard_query = kQueries[2];
    claks::SearchOptions options;
    options.method = claks::SearchMethod::kStream;
    options.ranker = claks::RankerKind::kRdbLength;
    options.top_k = 10;
    options.max_rdb_edges = tmax - 1;

    std::vector<claks::TupleTree> unsharded;
    bool have_baseline = false;
    for (size_t shards : shard_counts) {
      ShardScaleRecord sr;
      sr.shards = shards;
      claks::ShardPartition partition =
          claks::MakeShardPartition(engine->data_graph(), shards);
      sr.node_skew = Skew(partition.node_counts);
      sr.edge_skew = Skew(partition.edge_counts);

      options.shards = shards;
      claks::SearchResult sharded;
      sr.stream_ms = TimeMs(reps, [&] {
        auto result = engine->Search(record.shard_query, options);
        CLAKS_CHECK(result.ok());
        sharded = std::move(result).ValueOrDie();
      });
      sr.expansions = sharded.expansions;
      sr.per_shard = sharded.shard_expansions;

      std::vector<claks::TupleTree> trees;
      for (const claks::SearchHit& hit : sharded.hits) {
        trees.push_back(hit.tree);
      }
      if (shards == 1) {
        unsharded = std::move(trees);
        have_baseline = true;
      } else if (have_baseline) {
        sr.identical = trees == unsharded;
        CLAKS_CHECK(sr.identical);
      }
      record.shard_sweep.push_back(std::move(sr));
    }
  }

  // Storage subsystem: serialize the warmed generation, mmap it back,
  // and time the cold-start-to-first-query path against the
  // generate-and-build path it replaces.
  {
    std::string path =
        (std::filesystem::temp_directory_path() /
         ("bench_scale_" + std::to_string(scale) + "x.claks"))
            .string();
    claks::SearchOptions q0;
    q0.method = claks::SearchMethod::kStream;
    q0.ranker = claks::RankerKind::kRdbLength;
    q0.top_k = 10;
    q0.max_rdb_edges = tmax - 1;

    record.snapshot.save_ms = TimeMs(1, [&] {
      engine->Warmup();
      CLAKS_CHECK(engine->SaveSnapshot(path).ok());
    });
    std::error_code ec;
    record.snapshot.file_bytes =
        static_cast<size_t>(std::filesystem::file_size(path, ec));

    record.snapshot.load_ms = TimeMs(reps, [&] {
      auto loaded = claks::KeywordSearchEngine::LoadSnapshot(path);
      CLAKS_CHECK(loaded.ok());
    });

    std::string from_snapshot;
    record.snapshot.cold_start_first_query_ms = TimeMs(1, [&] {
      auto loaded = claks::KeywordSearchEngine::LoadSnapshot(path);
      CLAKS_CHECK(loaded.ok());
      auto result = loaded->engine->Search(kQueries[0], q0);
      CLAKS_CHECK(result.ok());
      from_snapshot = result->ToString(*loaded->db, q0.top_k);
    });
    record.snapshot.first_query_ms = TimeMs(reps, [&] {
      auto result = engine->Search(kQueries[0], q0);
      CLAKS_CHECK(result.ok());
    });

    // The path the snapshot replaces: dataset generation, join-index
    // build and engine construction were each timed above; the first
    // query costs the same on either engine (checked identical below).
    record.snapshot.build_first_query_ms =
        record.generate_ms + record.join_index_ms + record.engine_ms +
        record.snapshot.first_query_ms;

    auto in_memory = engine->Search(kQueries[0], q0);
    CLAKS_CHECK(in_memory.ok());
    record.snapshot.identical =
        from_snapshot == in_memory->ToString(db, q0.top_k);
    CLAKS_CHECK(record.snapshot.identical);
    std::filesystem::remove(path, ec);
  }
  return record;
}

double Ratio(double baseline_ms, double indexed_ms) {
  return indexed_ms > 0.0 ? baseline_ms / indexed_ms : 0.0;
}

void WriteJson(std::FILE* f, const std::vector<ScaleRecord>& records,
               size_t tmax, size_t reps) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_scale\",\n");
  std::fprintf(f, "  \"schema_version\": 3,\n");
  std::fprintf(f, "  \"dataset\": \"company_gen\",\n");
  std::fprintf(f, "  \"tmax\": %zu,\n", tmax);
  std::fprintf(f, "  \"reps\": %zu,\n", reps);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ScaleRecord& r = records[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale\": %zu,\n", r.scale);
    std::fprintf(f, "      \"tables\": %zu,\n", r.tables);
    std::fprintf(f, "      \"rows\": %zu,\n", r.rows);
    std::fprintf(f, "      \"fk_edges\": %zu,\n", r.fk_edges);
    std::fprintf(f, "      \"build_ms\": {\n");
    std::fprintf(f, "        \"generate\": %.3f,\n", r.generate_ms);
    std::fprintf(f, "        \"fk_scan_seed\": %.3f,\n", r.fk_scan_seed_ms);
    std::fprintf(f, "        \"join_index\": %.3f,\n", r.join_index_ms);
    std::fprintf(f, "        \"data_graph_csr\": %.3f,\n",
                 r.data_graph_csr_ms);
    std::fprintf(f, "        \"engine\": %.3f\n", r.engine_ms);
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"queries\": [\n");
    for (size_t q = 0; q < r.queries.size(); ++q) {
      const QueryRecord& qr = r.queries[q];
      std::fprintf(f,
                   "        {\"query\": \"%s\", \"method\": \"%s\", "
                   "\"latency_ms\": %.3f, \"results\": %zu}%s\n",
                   qr.query.c_str(), qr.method.c_str(), qr.latency_ms,
                   qr.results, q + 1 < r.queries.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f, "      \"discover_eval\": {\n");
    std::fprintf(f, "        \"query\": \"%s\",\n", kQueries[0]);
    std::fprintf(f, "        \"indexed_ms\": %.3f,\n",
                 r.discover_eval_indexed_ms);
    std::fprintf(f, "        \"scan_ms\": %.3f,\n", r.discover_eval_scan_ms);
    std::fprintf(f, "        \"identical_results\": %s\n",
                 r.discover_eval_equal ? "true" : "false");
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"snapshot\": {\n");
    std::fprintf(f, "        \"save_ms\": %.3f,\n", r.snapshot.save_ms);
    std::fprintf(f, "        \"file_bytes\": %zu,\n", r.snapshot.file_bytes);
    std::fprintf(f, "        \"load_ms\": %.3f,\n", r.snapshot.load_ms);
    std::fprintf(f, "        \"first_query_ms\": %.3f,\n",
                 r.snapshot.first_query_ms);
    std::fprintf(f, "        \"cold_start_first_query_ms\": %.3f,\n",
                 r.snapshot.cold_start_first_query_ms);
    std::fprintf(f, "        \"build_first_query_ms\": %.3f,\n",
                 r.snapshot.build_first_query_ms);
    std::fprintf(f, "        \"identical_results\": %s\n",
                 r.snapshot.identical ? "true" : "false");
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"speedup\": {\n");
    std::fprintf(f, "        \"fk_resolution\": %.2f,\n",
                 Ratio(r.fk_scan_seed_ms, r.join_index_ms));
    std::fprintf(f, "        \"discover_eval\": %.2f,\n",
                 Ratio(r.discover_eval_scan_ms, r.discover_eval_indexed_ms));
    std::fprintf(f, "        \"cold_start\": %.2f\n",
                 Ratio(r.snapshot.build_first_query_ms,
                       r.snapshot.cold_start_first_query_ms));
    std::fprintf(f, "      },\n");
    // Shard sweep: speedup vs the shards=1 rung, skews are max/mean.
    double unsharded_ms = 0.0;
    for (const ShardScaleRecord& sr : r.shard_sweep) {
      if (sr.shards == 1) unsharded_ms = sr.stream_ms;
    }
    std::fprintf(f, "      \"shard_query\": \"%s\",\n",
                 r.shard_query.c_str());
    std::fprintf(f, "      \"shards\": [\n");
    for (size_t s = 0; s < r.shard_sweep.size(); ++s) {
      const ShardScaleRecord& sr = r.shard_sweep[s];
      std::fprintf(f,
                   "        {\"shards\": %zu, \"node_skew\": %.2f, "
                   "\"edge_skew\": %.2f, \"stream_ms\": %.3f, "
                   "\"expansions\": %zu, \"per_shard_expansions\": [",
                   sr.shards, sr.node_skew, sr.edge_skew, sr.stream_ms,
                   sr.expansions);
      for (size_t p = 0; p < sr.per_shard.size(); ++p) {
        std::fprintf(f, "%s%zu", p == 0 ? "" : ", ", sr.per_shard[p]);
      }
      std::fprintf(f,
                   "], \"work_skew\": %.2f, \"identical_results\": %s, "
                   "\"speedup_vs_unsharded\": %.2f}%s\n",
                   Skew(sr.per_shard), sr.identical ? "true" : "false",
                   Ratio(unsharded_ms, sr.stream_ms),
                   s + 1 < r.shard_sweep.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

std::vector<size_t> ParseScales(const std::string& spec) {
  std::vector<size_t> scales;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    // Non-numeric or non-positive entries become 0, which the flag
    // validation rejects.
    long value = std::atol(spec.substr(pos, comma - pos).c_str());
    scales.push_back(value > 0 ? static_cast<size_t>(value) : 0);
    pos = comma + 1;
  }
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales{1, 10, 100};
  std::vector<size_t> shard_counts{1, 2, 4};
  std::string out_path = "BENCH_scale.json";
  size_t tmax = 4;
  size_t reps = 3;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scales=", 0) == 0) {
      scales = ParseScales(arg.substr(9));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shard_counts = ParseScales(arg.substr(9));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--tmax=", 0) == 0) {
      tmax = static_cast<size_t>(std::atol(arg.c_str() + 7));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(std::atol(arg.c_str() + 7));
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --scales=1,10,100 "
                   "--shards=1,2,4 --out=FILE --tmax=N --reps=N)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (scales.empty() || shard_counts.empty() || tmax < 2 || reps == 0 ||
      std::find(scales.begin(), scales.end(), 0u) != scales.end() ||
      std::find(shard_counts.begin(), shard_counts.end(), 0u) !=
          shard_counts.end()) {
    std::fprintf(stderr,
                 "invalid flags: need scales >= 1, shards >= 1, tmax >= 2, "
                 "reps >= 1\n");
    return 2;
  }

  std::vector<ScaleRecord> records;
  for (size_t scale : scales) {
    std::printf("scale %zux ...\n", scale);
    ScaleRecord record = RunScale(scale, tmax, reps, shard_counts);
    std::printf(
        "  rows %zu, fk edges %zu | gen %.1fms, fk scan %.1fms, "
        "join index %.1fms, csr %.1fms, engine %.1fms\n",
        record.rows, record.fk_edges, record.generate_ms,
        record.fk_scan_seed_ms, record.join_index_ms,
        record.data_graph_csr_ms, record.engine_ms);
    for (const QueryRecord& qr : record.queries) {
      std::printf("  %-22s %-10s %8.2fms  %6zu results\n", qr.query.c_str(),
                  qr.method.c_str(), qr.latency_ms, qr.results);
    }
    std::printf("  discover eval: indexed %.2fms vs scan %.2fms (%.1fx)\n",
                record.discover_eval_indexed_ms, record.discover_eval_scan_ms,
                Ratio(record.discover_eval_scan_ms,
                      record.discover_eval_indexed_ms));
    double unsharded_ms = 0.0;
    for (const ShardScaleRecord& sr : record.shard_sweep) {
      if (sr.shards == 1) unsharded_ms = sr.stream_ms;
    }
    for (const ShardScaleRecord& sr : record.shard_sweep) {
      std::printf(
          "  shards=%zu: stream %-22s %8.2fms  %6zu expansions "
          "(node skew %.2f, work skew %.2f, %.2fx vs unsharded)\n",
          sr.shards, record.shard_query.c_str(), sr.stream_ms,
          sr.expansions, sr.node_skew, Skew(sr.per_shard),
          Ratio(unsharded_ms, sr.stream_ms));
    }
    std::printf(
        "  snapshot: save %.1fms (%zu bytes), load %.2fms | cold start "
        "%.2fms vs build %.1fms (%.0fx)\n",
        record.snapshot.save_ms, record.snapshot.file_bytes,
        record.snapshot.load_ms, record.snapshot.cold_start_first_query_ms,
        record.snapshot.build_first_query_ms,
        Ratio(record.snapshot.build_first_query_ms,
              record.snapshot.cold_start_first_query_ms));
    records.push_back(std::move(record));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 1;
  }
  WriteJson(f, records, tmax, reps);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
