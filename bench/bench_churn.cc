// Copyright 2026 The claks Authors.
//
// Churn benchmark for the incremental-mutation path: a 95/5 read/write
// workload over SearchService at increasing scale. Reader threads run a
// closed-loop streaming query mix against the live snapshot while one
// writer applies single-row delta batches through Mutate. Records
//   - mutation apply latency (the row edits inside the batch),
//   - publish lag (clone + O(delta) derive + atomic publish — the time
//     between the writer's edits and readers seeing the generation),
//   - read p50/p99 under churn, and
//   - a dedicated single-row-insert probe whose p50 must stay flat-ish
//     across scales (the O(delta) claim: 10x within ~2x of 1x).
// Emits machine-readable BENCH_churn.json (schema in docs/BENCHMARKS.md);
// CI runs 1x/10x and uploads the file as an artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/company_gen.h"
#include "relational/database.h"
#include "service/search_service.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(fraction * (values.size() - 1));
  return values[index];
}

claks::SearchOptions ReadOptions() {
  claks::SearchOptions options;
  options.method = claks::SearchMethod::kStream;
  options.ranker = claks::RankerKind::kRdbLength;
  options.max_rdb_edges = 3;
  options.top_k = 5;
  return options;
}

struct ChurnRecord {
  size_t scale = 0;
  size_t rows = 0;
  size_t readers = 0;
  size_t total_reads = 0;
  size_t total_writes = 0;
  double wall_ms = 0.0;
  double read_qps = 0.0;
  double read_p50_ms = 0.0;
  double read_p99_ms = 0.0;
  double apply_p50_ms = 0.0;
  double apply_p99_ms = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  double single_insert_p50_ms = 0.0;
  uint64_t delta_mutations = 0;
  uint64_t rebuild_mutations = 0;
  uint64_t noop_mutations = 0;
  uint64_t compactions = 0;
};

std::unique_ptr<claks::SearchService> MakeService(
    const claks::GeneratedDataset& master) {
  claks::ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;  // every read pays the search under churn
  options.delta_policy.mode = claks::DeltaPolicy::Mode::kAuto;
  options.delta_policy.min_ops = 64;
  options.delta_policy.fraction = 0.01;
  auto service = claks::SearchService::Create(
      master.db->Clone(), master.er_schema, master.mapping, options);
  CLAKS_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

/// One write: a single-row dependent insert (every third write also
/// retires the oldest churn row, so tombstones flow through the deltas).
claks::Status ApplyWrite(claks::Database* db, size_t write_index,
                         size_t* inserted, size_t* deleted) {
  claks::Table* dependent = db->FindMutableTable("DEPENDENT");
  CLAKS_CHECK(dependent != nullptr);
  std::string id = "churn" + std::to_string((*inserted)++);
  CLAKS_RETURN_NOT_OK(
      dependent
          ->InsertValues({claks::Value::String(id),
                          claks::Value::String("Smith"),
                          claks::Value::String("e1")})
          .status());
  if (write_index % 3 == 2) {
    std::string victim = "churn" + std::to_string((*deleted)++);
    CLAKS_RETURN_NOT_OK(
        dependent->DeleteByPrimaryKey({claks::Value::String(victim)}));
  }
  return claks::Status::OK();
}

ChurnRecord RunScale(size_t scale, size_t readers, size_t reads_per_reader) {
  ChurnRecord record;
  record.scale = scale;
  record.readers = readers;
  auto generated =
      claks::GenerateCompanyDataset(claks::CompanyGenOptions::AtScale(scale));
  CLAKS_CHECK(generated.ok());
  claks::GeneratedDataset master = std::move(generated).ValueOrDie();
  record.rows = master.db->TotalRows();

  std::unique_ptr<claks::SearchService> service = MakeService(master);
  const claks::SearchOptions read_options = ReadOptions();
  const char* kQueries[] = {"smith xml", "retrieval databases"};

  // 95/5 mix: the writer applies total_reads * 5/95 single-row batches
  // spread across the read phase.
  size_t total_reads = readers * reads_per_reader;
  size_t writes = std::max<size_t>(1, total_reads * 5 / 95);

  std::vector<std::vector<double>> read_latencies(readers);
  std::vector<double> apply_latencies;
  std::vector<double> publish_latencies;

  auto wall_start = Clock::now();
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (size_t p = 0; p < readers; ++p) {
    reader_threads.emplace_back([&, p] {
      read_latencies[p].reserve(reads_per_reader);
      for (size_t r = 0; r < reads_per_reader; ++r) {
        auto start = Clock::now();
        auto result = service->SearchNow(kQueries[r % 2], read_options);
        CLAKS_CHECK(result.ok());
        read_latencies[p].push_back(MillisSince(start));
      }
    });
  }

  size_t inserted = 0;
  size_t deleted = 0;
  apply_latencies.reserve(writes);
  publish_latencies.reserve(writes);
  for (size_t w = 0; w < writes; ++w) {
    double apply_ms = 0.0;
    auto mutate_start = Clock::now();
    claks::Status status = service->Mutate([&](claks::Database* db) {
      auto apply_start = Clock::now();
      CLAKS_RETURN_NOT_OK(ApplyWrite(db, w, &inserted, &deleted));
      apply_ms = MillisSince(apply_start);
      return claks::Status::OK();
    });
    CLAKS_CHECK(status.ok());
    double total_ms = MillisSince(mutate_start);
    apply_latencies.push_back(apply_ms);
    // Everything around the row edits: clone, watermark diff, O(delta)
    // derive, snapshot publish — the lag before readers see the batch.
    publish_latencies.push_back(total_ms - apply_ms);
  }
  for (std::thread& reader : reader_threads) reader.join();
  record.wall_ms = MillisSince(wall_start);

  std::vector<double> reads;
  for (const auto& per_thread : read_latencies) {
    reads.insert(reads.end(), per_thread.begin(), per_thread.end());
  }
  record.total_reads = reads.size();
  record.total_writes = writes;
  record.read_qps =
      record.wall_ms > 0.0 ? 1000.0 * reads.size() / record.wall_ms : 0.0;
  record.read_p50_ms = Percentile(reads, 0.50);
  record.read_p99_ms = Percentile(reads, 0.99);
  record.apply_p50_ms = Percentile(apply_latencies, 0.50);
  record.apply_p99_ms = Percentile(apply_latencies, 0.99);
  record.publish_p50_ms = Percentile(publish_latencies, 0.50);
  record.publish_p99_ms = Percentile(publish_latencies, 0.99);

  claks::ServiceStats stats = service->stats();
  record.delta_mutations = stats.delta_mutations;
  record.rebuild_mutations = stats.rebuild_mutations;
  record.noop_mutations = stats.noop_mutations;
  record.compactions = stats.compactions;

  // Quiescent single-row-insert probe on a fresh service: the O(delta)
  // derive cost without reader interference.
  std::unique_ptr<claks::SearchService> quiet = MakeService(master);
  std::vector<double> probe;
  for (size_t i = 0; i < 32; ++i) {
    auto start = Clock::now();
    claks::Status status = quiet->Mutate([&](claks::Database* db) {
      claks::Table* dependent = db->FindMutableTable("DEPENDENT");
      CLAKS_CHECK(dependent != nullptr);
      return dependent
          ->InsertValues({claks::Value::String("probe" + std::to_string(i)),
                          claks::Value::String("Quiet"),
                          claks::Value::String("e1")})
          .status();
    });
    CLAKS_CHECK(status.ok());
    probe.push_back(MillisSince(start));
  }
  record.single_insert_p50_ms = Percentile(probe, 0.50);
  return record;
}

void WriteJson(std::FILE* f, const std::vector<ChurnRecord>& records,
               size_t reads_per_reader) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_churn\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"dataset\": \"company_gen\",\n");
  std::fprintf(f, "  \"read_write_mix\": \"95/5\",\n");
  std::fprintf(f, "  \"reads_per_reader\": %zu,\n", reads_per_reader);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ChurnRecord& r = records[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale\": %zu,\n", r.scale);
    std::fprintf(f, "      \"rows\": %zu,\n", r.rows);
    std::fprintf(f, "      \"readers\": %zu,\n", r.readers);
    std::fprintf(f, "      \"total_reads\": %zu,\n", r.total_reads);
    std::fprintf(f, "      \"total_writes\": %zu,\n", r.total_writes);
    std::fprintf(f, "      \"wall_ms\": %.3f,\n", r.wall_ms);
    std::fprintf(f, "      \"read_qps\": %.1f,\n", r.read_qps);
    std::fprintf(f, "      \"read_p50_ms\": %.3f,\n", r.read_p50_ms);
    std::fprintf(f, "      \"read_p99_ms\": %.3f,\n", r.read_p99_ms);
    std::fprintf(f, "      \"mutation_apply_p50_ms\": %.4f,\n",
                 r.apply_p50_ms);
    std::fprintf(f, "      \"mutation_apply_p99_ms\": %.4f,\n",
                 r.apply_p99_ms);
    std::fprintf(f, "      \"publish_lag_p50_ms\": %.4f,\n",
                 r.publish_p50_ms);
    std::fprintf(f, "      \"publish_lag_p99_ms\": %.4f,\n",
                 r.publish_p99_ms);
    std::fprintf(f, "      \"single_row_insert_p50_ms\": %.4f,\n",
                 r.single_insert_p50_ms);
    std::fprintf(f, "      \"delta_mutations\": %llu,\n",
                 static_cast<unsigned long long>(r.delta_mutations));
    std::fprintf(f, "      \"rebuild_mutations\": %llu,\n",
                 static_cast<unsigned long long>(r.rebuild_mutations));
    std::fprintf(f, "      \"noop_mutations\": %llu,\n",
                 static_cast<unsigned long long>(r.noop_mutations));
    std::fprintf(f, "      \"compactions\": %llu\n",
                 static_cast<unsigned long long>(r.compactions));
    std::fprintf(f, "    }%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // The O(delta) claim in one number: how much the quiescent single-row
  // derive grows from the first to the last scale (1.0 = perfectly flat;
  // a full-rebuild path would track the dataset-size ratio instead).
  double ratio = 0.0;
  if (records.size() >= 2 && records.front().single_insert_p50_ms > 0.0) {
    ratio = records.back().single_insert_p50_ms /
            records.front().single_insert_p50_ms;
  }
  std::fprintf(f, "  \"single_row_insert_growth_last_vs_first\": %.2f\n",
               ratio);
  std::fprintf(f, "}\n");
}

std::vector<size_t> ParseSizeList(const std::string& spec) {
  std::vector<size_t> values;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    long value = std::atol(spec.substr(pos, comma - pos).c_str());
    values.push_back(value > 0 ? static_cast<size_t>(value) : 0);
    pos = comma + 1;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales{1, 10};
  size_t readers = 4;
  size_t reads_per_reader = 200;
  std::string out_path = "BENCH_churn.json";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scales=", 0) == 0) {
      scales = ParseSizeList(arg.substr(9));
    } else if (arg.rfind("--readers=", 0) == 0) {
      readers = static_cast<size_t>(std::atol(arg.c_str() + 10));
    } else if (arg.rfind("--reads=", 0) == 0) {
      reads_per_reader = static_cast<size_t>(std::atol(arg.c_str() + 8));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --scales=1,10 "
                   "--readers=N --reads=N --out=FILE)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (scales.empty() || readers == 0 || reads_per_reader == 0) {
    std::fprintf(stderr, "invalid flags: need scales/readers/reads >= 1\n");
    return 2;
  }

  std::vector<ChurnRecord> records;
  for (size_t scale : scales) {
    std::printf("scale %zux ...\n", scale);
    ChurnRecord record = RunScale(scale, readers, reads_per_reader);
    std::printf(
        "  scale %3zux  %zu readers  %zu reads / %zu writes  "
        "read p50 %.3fms p99 %.3fms  apply p50 %.4fms  publish p50 %.4fms  "
        "single-insert p50 %.4fms  (delta %llu, rebuild %llu, "
        "compactions %llu)\n",
        record.scale, record.readers, record.total_reads,
        record.total_writes, record.read_p50_ms, record.read_p99_ms,
        record.apply_p50_ms, record.publish_p50_ms,
        record.single_insert_p50_ms,
        static_cast<unsigned long long>(record.delta_mutations),
        static_cast<unsigned long long>(record.rebuild_mutations),
        static_cast<unsigned long long>(record.compactions));
    records.push_back(record);
  }
  if (records.size() >= 2 && records.front().single_insert_p50_ms > 0.0) {
    std::printf("single-row insert growth %zux -> %zux: %.2fx\n",
                records.front().scale, records.back().scale,
                records.back().single_insert_p50_ms /
                    records.front().single_insert_p50_ms);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 1;
  }
  WriteJson(f, records, reads_per_reader);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
