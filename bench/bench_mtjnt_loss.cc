// Copyright 2026 The claks Authors.
//
// Regenerates the paper's §3 claim A: "In the previous example connections
// 3, 4, 6 and 7 are lost, if the MTJNT approach were followed." Runs full
// enumeration against MTJNT at several Tmax values and reports, per Table 2
// row, whether it survives and why it is lost.

#include <set>

#include "bench_util.h"
#include "core/mtjnt.h"

int main() {
  using claks::bench::ConnectionByNames;
  using claks::bench::MakePaperSetup;
  using claks::bench::PaperConnections;
  using claks::bench::PaperRowOf;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();
  const claks::Database& db = *setup.dataset.db;
  claks::KeywordSearchEngine& engine = *setup.engine;

  // Full enumeration: rows 1-7.
  claks::SearchOptions full_opts;
  full_opts.max_rdb_edges = 3;
  auto full = engine.Search("Smith XML", full_opts);
  if (!full.ok()) return 1;

  PrintHeader("Full enumeration of 'Smith XML' (depth 3): the result space");
  for (const claks::SearchHit& hit : full->hits) {
    std::printf("  row %d: %s\n", PaperRowOf(engine, db, hit),
                hit.rendered.c_str());
  }

  auto survivors = [&](size_t tmax) {
    claks::SearchOptions options;
    options.method = claks::SearchMethod::kMtjnt;
    options.tmax = tmax;
    auto result = engine.Search("Smith XML", options);
    CLAKS_CHECK(result.ok());
    std::set<int> rows;
    for (const claks::SearchHit& hit : result->hits) {
      rows.insert(PaperRowOf(engine, db, hit));
    }
    return rows;
  };

  // Reasons, per row: minimality and size.
  auto matches = claks::MatchKeywords(
      engine.index(), claks::ParseKeywordQuery(
                          "Smith XML", engine.index().tokenizer()));
  auto masks = claks::ComputeKeywordMasks(matches);

  PrintHeader("MTJNT survival per Table 2 row");
  std::printf("%-4s %-10s %-10s %-10s %-28s\n", "row", "tuples",
              "minimal?", "Tmax=3?", "verdict");
  bool claim_holds = true;
  std::set<int> at3 = survivors(3);
  for (int row = 1; row <= 7; ++row) {
    claks::Connection conn =
        ConnectionByNames(engine, db, PaperConnections()[row - 1]);
    claks::TupleTree tree;
    for (claks::TupleId id : conn.tuples()) {
      tree.nodes.push_back(engine.data_graph().NodeOf(id));
    }
    std::sort(tree.nodes.begin(), tree.nodes.end());
    // Reconstruct the edges.
    for (size_t i = 0; i + 1 < conn.tuples().size(); ++i) {
      uint32_t a = engine.data_graph().NodeOf(conn.tuples()[i]);
      for (const claks::DataAdjacency& adj :
           engine.data_graph().Neighbors(a)) {
        if (adj.neighbor ==
            engine.data_graph().NodeOf(conn.tuples()[i + 1])) {
          tree.edge_indices.push_back(adj.edge_index);
          break;
        }
      }
    }
    std::sort(tree.edge_indices.begin(), tree.edge_indices.end());

    bool minimal = claks::IsMinimalTotal(engine.data_graph(), tree, masks,
                                         2);
    bool fits = tree.size() <= 3;
    bool survives = at3.count(row) > 0;
    const char* verdict =
        survives ? "kept"
                 : (!minimal ? "lost: not minimal" : "lost: exceeds Tmax");
    std::printf("%-4d %-10zu %-10s %-10s %-28s\n", row, tree.size(),
                minimal ? "yes" : "no", fits ? "yes" : "no", verdict);
    // Paper: rows 1, 2, 5 kept; 3, 4, 6, 7 lost.
    bool expected_kept = row == 1 || row == 2 || row == 5;
    claim_holds = claim_holds && (survives == expected_kept);
  }

  PrintHeader("Sensitivity to Tmax");
  for (size_t tmax : {2, 3, 4, 5}) {
    std::set<int> rows = survivors(tmax);
    std::printf("  Tmax=%zu -> kept rows:", tmax);
    for (int row : rows) std::printf(" %d", row);
    std::printf("\n");
  }
  std::printf(
      "\nAt Tmax=3 (a typical DISCOVER bound) rows 3 and 6 fail minimality\n"
      "and rows 4 and 7 exceed the size bound: exactly the paper's claim.\n"
      "At Tmax=4, row 7 is recovered (it is minimal) but 3, 4, 6 are lost\n"
      "at ANY Tmax: minimality discards them permanently.\n");

  std::printf("\nMTJNT-loss claim: %s\n", claim_holds ? "PASS" : "FAIL");
  return claim_holds ? 0 : 1;
}
