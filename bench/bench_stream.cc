// Copyright 2026 The claks Authors.
//
// Streaming-search benchmark: compares SearchMethod::kStream against the
// materialise-everything kEnumerate baseline on company_gen datasets at
// increasing scale factors and emits a machine-readable BENCH_stream.json.
// Per scale and query it records the full-enumeration latency, the
// streaming full-drain latency and expansion count (the work metric of
// core/topk.h), and the streaming top-k latency/expansions for each
// length-monotone ranker exercised — verifying along the way that equal
// settings produce identical results (full drains: identical hit-tree
// sets; top-k runs: identical ranking-key sequences, since key ties may
// order differently). Since schema_version 2 each query also records a
// paged consumption trace: a prepared-query cursor (core/cursor.h) over
// the streaming method, fetched page by page, with per-page latency and
// the cumulative expansion count after each page — the work metric of
// incremental consumption. Since schema_version 3 each query also sweeps
// intra-query sharding (--shards=1,2,4): the streaming top-k run repeated
// per shard count, with per-shard expansion counters (work skew), the
// identical-keys check against the unsharded run, and the latency speedup
// over shards=1 — interpret speedups against the recorded
// hardware_threads (a single-core runner cannot show wall-clock wins).
// The JSON schema is documented in docs/BENCHMARKS.md; CI uploads the
// 1x/10x run as an artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cursor.h"
#include "core/engine.h"
#include "datasets/company_gen.h"
#include "observability/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Minimum wall time of `reps` runs of `fn` (best-of to damp scheduler
// noise).
template <typename Fn>
double TimeMs(size_t reps, Fn&& fn) {
  double best = -1.0;
  for (size_t i = 0; i < reps; ++i) {
    auto start = Clock::now();
    fn();
    double ms = MillisSince(start);
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

std::set<claks::TupleTree> TreeSet(const claks::SearchResult& result) {
  std::set<claks::TupleTree> trees;
  for (const claks::SearchHit& hit : result.hits) trees.insert(hit.tree);
  return trees;
}

std::vector<std::vector<double>> KeySequence(
    const claks::SearchResult& result, claks::RankerKind kind) {
  auto ranker = claks::MakeRanker(kind);
  std::vector<std::vector<double>> keys;
  for (const claks::SearchHit& hit : result.hits) {
    keys.push_back(ranker->SortKey(hit.ToRankInput()));
  }
  return keys;
}

struct TopkRecord {
  std::string ranker;
  double stream_topk_ms = 0.0;
  size_t expansions_topk = 0;
  size_t results = 0;
  bool keys_identical = true;
};

struct PageRecord {
  double latency_ms = 0.0;
  size_t hits = 0;
  size_t expansions = 0;  // cumulative after this page
};

struct ShardRecord {
  size_t shards = 1;
  double stream_topk_ms = 0.0;
  size_t expansions = 0;
  /// Per-shard expansion counters (empty at shards=1): the work-skew
  /// axis of the sweep.
  std::vector<size_t> per_shard;
  bool keys_identical = true;  // vs the shards=1 run
};

struct QueryRecord {
  std::string query;
  size_t results_full = 0;
  double enumerate_ms = 0.0;
  double stream_full_ms = 0.0;
  size_t expansions_full = 0;
  bool full_identical = true;
  std::vector<TopkRecord> topk;
  // Paged cursor consumption of the top-k streaming query.
  std::string paged_ranker;
  size_t page_size = 0;
  bool paged_identical = true;
  std::vector<PageRecord> pages;
  // Intra-query sharding sweep over the streaming top-k run.
  std::string shard_ranker;
  std::vector<ShardRecord> shard_sweep;
};

struct ScaleRecord {
  size_t scale = 0;
  size_t rows = 0;
  std::vector<QueryRecord> queries;
};

const char* kQueries[] = {"smith xml", "retrieval databases"};

const claks::RankerKind kTopkRankers[] = {claks::RankerKind::kRdbLength,
                                          claks::RankerKind::kCloseFirst};

ScaleRecord RunScale(size_t scale, size_t top_k, size_t max_edges,
                     size_t reps, const std::vector<size_t>& shard_counts) {
  ScaleRecord record;
  record.scale = scale;

  auto generated =
      claks::GenerateCompanyDataset(claks::CompanyGenOptions::AtScale(scale));
  CLAKS_CHECK(generated.ok());
  claks::GeneratedDataset dataset = std::move(generated).ValueOrDie();
  record.rows = dataset.db->TotalRows();

  auto created = claks::KeywordSearchEngine::Create(
      dataset.db.get(), dataset.er_schema, dataset.mapping);
  CLAKS_CHECK(created.ok());
  std::unique_ptr<claks::KeywordSearchEngine> engine =
      std::move(created).ValueOrDie();

  for (const char* query : kQueries) {
    claks::SearchOptions base;
    base.max_rdb_edges = max_edges;

    QueryRecord qr;
    qr.query = query;

    // Full enumeration baseline.
    claks::SearchResult enumerated;
    base.method = claks::SearchMethod::kEnumerate;
    qr.enumerate_ms = TimeMs(reps, [&] {
      auto result = engine->Search(query, base);
      CLAKS_CHECK(result.ok());
      enumerated = std::move(result).ValueOrDie();
    });
    qr.results_full = enumerated.hits.size();

    // Streaming full drain: same result space, lazily produced.
    claks::SearchResult stream_full;
    base.method = claks::SearchMethod::kStream;
    qr.stream_full_ms = TimeMs(reps, [&] {
      auto result = engine->Search(query, base);
      CLAKS_CHECK(result.ok());
      stream_full = std::move(result).ValueOrDie();
    });
    qr.expansions_full = stream_full.expansions;
    qr.full_identical = TreeSet(enumerated) == TreeSet(stream_full);
    CLAKS_CHECK(qr.full_identical);

    // Streaming top-k with early termination, per monotone ranker, checked
    // against the enumerate-then-truncate reference.
    for (claks::RankerKind ranker : kTopkRankers) {
      claks::SearchOptions options = base;
      options.ranker = ranker;
      options.top_k = top_k;

      TopkRecord tr;
      tr.ranker = claks::RankerKindToString(ranker);
      claks::SearchResult streamed;
      options.method = claks::SearchMethod::kStream;
      tr.stream_topk_ms = TimeMs(reps, [&] {
        auto result = engine->Search(query, options);
        CLAKS_CHECK(result.ok());
        streamed = std::move(result).ValueOrDie();
      });
      tr.expansions_topk = streamed.expansions;
      tr.results = streamed.hits.size();

      options.method = claks::SearchMethod::kEnumerate;
      auto reference = engine->Search(query, options);
      CLAKS_CHECK(reference.ok());
      tr.keys_identical = KeySequence(*reference, ranker) ==
                          KeySequence(streamed, ranker);
      CLAKS_CHECK(tr.keys_identical);
      qr.topk.push_back(std::move(tr));
    }

    // Paged consumption: prepared-query cursor over the streaming top-k,
    // fetched in pages, per-page latency + cumulative expansions. The
    // concatenated pages must carry the one-shot ranking-key sequence.
    {
      claks::SearchOptions options = base;
      options.method = claks::SearchMethod::kStream;
      options.ranker = claks::RankerKind::kCloseFirst;
      options.top_k = top_k;
      qr.paged_ranker = claks::RankerKindToString(options.ranker);
      qr.page_size = 2;

      auto prepared = engine->Prepare(query, options);
      CLAKS_CHECK(prepared.ok());
      auto cursor = prepared->Open();
      CLAKS_CHECK(cursor.ok());
      claks::SearchResult paged;
      while (!(*cursor)->Drained()) {
        auto start = Clock::now();
        auto page = (*cursor)->Next(qr.page_size);
        double ms = MillisSince(start);
        CLAKS_CHECK(page.ok());
        if (page->empty()) break;
        for (claks::SearchHit& hit : *page) {
          paged.hits.push_back(std::move(hit));
        }
        claks::CursorStats stats = (*cursor)->Stats();
        qr.pages.push_back(
            PageRecord{ms, page->size(), stats.expansions});
      }
      auto reference = engine->Search(query, options);
      CLAKS_CHECK(reference.ok());
      qr.paged_identical = KeySequence(*reference, options.ranker) ==
                           KeySequence(paged, options.ranker);
      CLAKS_CHECK(qr.paged_identical);
    }

    // Intra-query sharding sweep: the same streaming top-k query fanned
    // out over N seed shards (core/shard.h). Results must stay
    // byte-identical at every shard count; the per-shard expansion
    // counters record the work skew of the partition.
    {
      claks::SearchOptions options = base;
      options.method = claks::SearchMethod::kStream;
      options.ranker = claks::RankerKind::kRdbLength;
      options.top_k = top_k;
      qr.shard_ranker = claks::RankerKindToString(options.ranker);

      claks::SearchResult unsharded;
      bool have_baseline = false;
      for (size_t shards : shard_counts) {
        options.shards = shards;
        ShardRecord sr;
        sr.shards = shards;
        claks::SearchResult sharded;
        sr.stream_topk_ms = TimeMs(reps, [&] {
          auto result = engine->Search(query, options);
          CLAKS_CHECK(result.ok());
          sharded = std::move(result).ValueOrDie();
        });
        sr.expansions = sharded.expansions;
        sr.per_shard = sharded.shard_expansions;
        if (shards == 1) {
          unsharded = sharded;
          have_baseline = true;
        } else if (have_baseline) {
          sr.keys_identical = KeySequence(unsharded, options.ranker) ==
                              KeySequence(sharded, options.ranker);
          CLAKS_CHECK(sr.keys_identical);
        }
        qr.shard_sweep.push_back(std::move(sr));
      }
    }
    record.queries.push_back(std::move(qr));
  }
  return record;
}

double Ratio(double baseline, double value) {
  return value > 0.0 ? baseline / value : 0.0;
}

/// max/mean over the per-shard counters: 1.0 = perfectly balanced work.
/// Thin shim over the shared skew math in observability/metrics.h.
double WorkSkew(const std::vector<size_t>& per_shard) {
  return claks::ComputeSkew(per_shard).ratio;
}

void WriteJson(std::FILE* f, const std::vector<ScaleRecord>& records,
               size_t top_k, size_t max_edges, size_t reps) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_stream\",\n");
  std::fprintf(f, "  \"schema_version\": 3,\n");
  std::fprintf(f, "  \"dataset\": \"company_gen\",\n");
  std::fprintf(f, "  \"top_k\": %zu,\n", top_k);
  std::fprintf(f, "  \"max_rdb_edges\": %zu,\n", max_edges);
  std::fprintf(f, "  \"reps\": %zu,\n", reps);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ScaleRecord& r = records[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale\": %zu,\n", r.scale);
    std::fprintf(f, "      \"rows\": %zu,\n", r.rows);
    std::fprintf(f, "      \"queries\": [\n");
    for (size_t q = 0; q < r.queries.size(); ++q) {
      const QueryRecord& qr = r.queries[q];
      std::fprintf(f, "        {\n");
      std::fprintf(f, "          \"query\": \"%s\",\n", qr.query.c_str());
      std::fprintf(f, "          \"results_full\": %zu,\n", qr.results_full);
      std::fprintf(f, "          \"enumerate_ms\": %.3f,\n",
                   qr.enumerate_ms);
      std::fprintf(f, "          \"stream_full_ms\": %.3f,\n",
                   qr.stream_full_ms);
      std::fprintf(f, "          \"expansions_full\": %zu,\n",
                   qr.expansions_full);
      std::fprintf(f, "          \"full_identical\": %s,\n",
                   qr.full_identical ? "true" : "false");
      std::fprintf(f, "          \"topk\": [\n");
      for (size_t t = 0; t < qr.topk.size(); ++t) {
        const TopkRecord& tr = qr.topk[t];
        std::fprintf(
            f,
            "            {\"ranker\": \"%s\", \"stream_topk_ms\": %.3f, "
            "\"expansions_topk\": %zu, \"results\": %zu, "
            "\"keys_identical\": %s, \"expansion_savings\": %.2f, "
            "\"latency_speedup_vs_enumerate\": %.2f}%s\n",
            tr.ranker.c_str(), tr.stream_topk_ms, tr.expansions_topk,
            tr.results, tr.keys_identical ? "true" : "false",
            Ratio(static_cast<double>(qr.expansions_full),
                  static_cast<double>(tr.expansions_topk)),
            Ratio(qr.enumerate_ms, tr.stream_topk_ms),
            t + 1 < qr.topk.size() ? "," : "");
      }
      std::fprintf(f, "          ],\n");
      std::fprintf(f,
                   "          \"paged\": {\"ranker\": \"%s\", "
                   "\"page_size\": %zu, \"identical\": %s, \"pages\": [",
                   qr.paged_ranker.c_str(), qr.page_size,
                   qr.paged_identical ? "true" : "false");
      for (size_t p = 0; p < qr.pages.size(); ++p) {
        const PageRecord& pr = qr.pages[p];
        std::fprintf(f,
                     "%s{\"page\": %zu, \"latency_ms\": %.3f, "
                     "\"hits\": %zu, \"expansions\": %zu}",
                     p == 0 ? "" : ", ", p + 1, pr.latency_ms, pr.hits,
                     pr.expansions);
      }
      std::fprintf(f, "]},\n");
      // Shard sweep: latency speedup vs the shards=1 rung of the same
      // sweep, work skew = max/mean of the per-shard counters.
      double unsharded_ms = 0.0;
      for (const ShardRecord& sr : qr.shard_sweep) {
        if (sr.shards == 1) unsharded_ms = sr.stream_topk_ms;
      }
      std::fprintf(f, "          \"shard_ranker\": \"%s\",\n",
                   qr.shard_ranker.c_str());
      std::fprintf(f, "          \"shards\": [\n");
      for (size_t s = 0; s < qr.shard_sweep.size(); ++s) {
        const ShardRecord& sr = qr.shard_sweep[s];
        std::fprintf(f,
                     "            {\"shards\": %zu, \"stream_topk_ms\": "
                     "%.3f, \"expansions\": %zu, \"per_shard_expansions\": [",
                     sr.shards, sr.stream_topk_ms, sr.expansions);
        for (size_t p = 0; p < sr.per_shard.size(); ++p) {
          std::fprintf(f, "%s%zu", p == 0 ? "" : ", ", sr.per_shard[p]);
        }
        std::fprintf(f,
                     "], \"work_skew\": %.2f, \"keys_identical\": %s, "
                     "\"speedup_vs_unsharded\": %.2f}%s\n",
                     WorkSkew(sr.per_shard),
                     sr.keys_identical ? "true" : "false",
                     Ratio(unsharded_ms, sr.stream_topk_ms),
                     s + 1 < qr.shard_sweep.size() ? "," : "");
      }
      std::fprintf(f, "          ]\n");
      std::fprintf(f, "        }%s\n",
                   q + 1 < r.queries.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

std::vector<size_t> ParseScales(const std::string& spec) {
  std::vector<size_t> scales;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    long value = std::atol(spec.substr(pos, comma - pos).c_str());
    scales.push_back(value > 0 ? static_cast<size_t>(value) : 0);
    pos = comma + 1;
  }
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales{1, 10, 100};
  std::vector<size_t> shard_counts{1, 2, 4};
  std::string out_path = "BENCH_stream.json";
  size_t top_k = 10;
  size_t max_edges = 3;
  size_t reps = 3;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scales=", 0) == 0) {
      scales = ParseScales(arg.substr(9));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shard_counts = ParseScales(arg.substr(9));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--top_k=", 0) == 0) {
      top_k = static_cast<size_t>(std::atol(arg.c_str() + 8));
    } else if (arg.rfind("--max_edges=", 0) == 0) {
      max_edges = static_cast<size_t>(std::atol(arg.c_str() + 12));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(std::atol(arg.c_str() + 7));
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --scales=1,10,100 "
                   "--shards=1,2,4 --out=FILE --top_k=N --max_edges=N "
                   "--reps=N)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (scales.empty() || shard_counts.empty() || top_k == 0 ||
      max_edges == 0 || reps == 0 ||
      std::find(scales.begin(), scales.end(), 0u) != scales.end() ||
      std::find(shard_counts.begin(), shard_counts.end(), 0u) !=
          shard_counts.end()) {
    std::fprintf(
        stderr,
        "invalid flags: need scales >= 1, shards >= 1, top_k >= 1, "
        "max_edges >= 1, reps >= 1\n");
    return 2;
  }

  std::vector<ScaleRecord> records;
  for (size_t scale : scales) {
    std::printf("scale %zux ...\n", scale);
    ScaleRecord record = RunScale(scale, top_k, max_edges, reps,
                                  shard_counts);
    for (const QueryRecord& qr : record.queries) {
      std::printf(
          "  %-22s enumerate %8.2fms (%zu results) | stream drain "
          "%8.2fms (%zu expansions)\n",
          qr.query.c_str(), qr.enumerate_ms, qr.results_full,
          qr.stream_full_ms, qr.expansions_full);
      for (const TopkRecord& tr : qr.topk) {
        std::printf(
            "    top-%zu %-12s %8.2fms  %8zu expansions  (%.1fx fewer, "
            "%.1fx faster than enumerate)\n",
            top_k, tr.ranker.c_str(), tr.stream_topk_ms, tr.expansions_topk,
            Ratio(static_cast<double>(qr.expansions_full),
                  static_cast<double>(tr.expansions_topk)),
            Ratio(qr.enumerate_ms, tr.stream_topk_ms));
      }
      double unsharded_ms = 0.0;
      for (const ShardRecord& sr : qr.shard_sweep) {
        if (sr.shards == 1) unsharded_ms = sr.stream_topk_ms;
      }
      for (const ShardRecord& sr : qr.shard_sweep) {
        std::printf(
            "    shards=%zu %-11s %8.2fms  %8zu expansions  (skew %.2f, "
            "%.2fx vs unsharded)\n",
            sr.shards, qr.shard_ranker.c_str(), sr.stream_topk_ms,
            sr.expansions, WorkSkew(sr.per_shard),
            Ratio(unsharded_ms, sr.stream_topk_ms));
      }
    }
    records.push_back(std::move(record));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 1;
  }
  WriteJson(f, records, top_k, max_edges, reps);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
