// Copyright 2026 The claks Authors.
//
// Performance benchmarks (google-benchmark): index construction, graph
// construction, connection enumeration, MTJNT (data-level and DISCOVER),
// BANKS, ER projection and classification — across synthetic database
// scales. The paper reports no performance numbers (its evaluation is a
// worked example); these benchmarks demonstrate the system at realistic
// sizes and let the two MTJNT implementations be compared.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/engine.h"
#include "core/topk.h"
#include "datasets/bibliography.h"
#include "datasets/company_full.h"
#include "datasets/company_gen.h"
#include "graph/steiner.h"

namespace claks {
namespace {

CompanyGenOptions ScaledOptions(int64_t scale) {
  CompanyGenOptions options;
  options.num_departments = static_cast<size_t>(2 * scale);
  options.employees_per_department = 10;
  options.projects_per_department = 4;
  options.avg_assignments_per_employee = 1.5;
  options.seed = 42;
  return options;
}

const GeneratedDataset& CachedCompany(int64_t scale) {
  static std::map<int64_t, GeneratedDataset>* cache =
      new std::map<int64_t, GeneratedDataset>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    auto dataset = GenerateCompanyDataset(ScaledOptions(scale));
    CLAKS_CHECK(dataset.ok());
    it = cache->emplace(scale, std::move(dataset).ValueOrDie()).first;
  }
  return it->second;
}

const KeywordSearchEngine& CachedEngine(int64_t scale) {
  static std::map<int64_t, std::unique_ptr<KeywordSearchEngine>>* cache =
      new std::map<int64_t, std::unique_ptr<KeywordSearchEngine>>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    const GeneratedDataset& dataset = CachedCompany(scale);
    auto engine = KeywordSearchEngine::Create(
        dataset.db.get(), dataset.er_schema, dataset.mapping);
    CLAKS_CHECK(engine.ok());
    it = cache->emplace(scale, std::move(engine).ValueOrDie()).first;
  }
  return *it->second;
}

void BM_GenerateDataset(benchmark::State& state) {
  for (auto _ : state) {
    auto dataset = GenerateCompanyDataset(ScaledOptions(state.range(0)));
    CLAKS_CHECK(dataset.ok());
    benchmark::DoNotOptimize(dataset->db->TotalRows());
  }
  state.SetLabel(std::to_string(
                     CachedCompany(state.range(0)).db->TotalRows()) +
                 " tuples");
}
BENCHMARK(BM_GenerateDataset)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BuildInvertedIndex(benchmark::State& state) {
  const GeneratedDataset& dataset = CachedCompany(state.range(0));
  for (auto _ : state) {
    InvertedIndex index(dataset.db.get());
    benchmark::DoNotOptimize(index.vocabulary_size());
  }
}
BENCHMARK(BM_BuildInvertedIndex)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BuildDataGraph(benchmark::State& state) {
  const GeneratedDataset& dataset = CachedCompany(state.range(0));
  for (auto _ : state) {
    DataGraph graph(dataset.db.get());
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_BuildDataGraph)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ReverseEngineerEr(benchmark::State& state) {
  const GeneratedDataset& dataset = CachedCompany(state.range(0));
  for (auto _ : state) {
    auto recovered = ReverseEngineerEr(*dataset.db);
    CLAKS_CHECK(recovered.ok());
    benchmark::DoNotOptimize(recovered->schema.relationships().size());
  }
}
BENCHMARK(BM_ReverseEngineerEr)->Arg(1)->Arg(16);

void BM_SearchEnumerate(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  SearchOptions options;
  options.max_rdb_edges = static_cast<size_t>(state.range(1));
  options.instance_check = false;
  size_t hits = 0;
  for (auto _ : state) {
    auto result = engine.Search("research xml", options);
    CLAKS_CHECK(result.ok());
    hits = result->hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(hits) + " hits");
}
BENCHMARK(BM_SearchEnumerate)
    ->Args({1, 3})
    ->Args({4, 3})
    ->Args({16, 3})
    ->Args({1, 4})
    ->Args({4, 4});

void BM_SearchEnumerateWithInstanceCheck(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.instance_check = true;
  for (auto _ : state) {
    auto result = engine.Search("research xml", options);
    CLAKS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->hits.size());
  }
}
BENCHMARK(BM_SearchEnumerateWithInstanceCheck)->Arg(1)->Arg(4);

void BM_SearchMtjnt(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  SearchOptions options;
  options.method = SearchMethod::kMtjnt;
  options.tmax = static_cast<size_t>(state.range(1));
  options.instance_check = false;
  size_t hits = 0;
  for (auto _ : state) {
    auto result = engine.Search("research xml", options);
    CLAKS_CHECK(result.ok());
    hits = result->hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(hits) + " mtjnts");
}
BENCHMARK(BM_SearchMtjnt)->Args({1, 3})->Args({4, 3})->Args({1, 4});

void BM_SearchDiscover(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  SearchOptions options;
  options.method = SearchMethod::kDiscover;
  options.tmax = static_cast<size_t>(state.range(1));
  options.instance_check = false;
  for (auto _ : state) {
    auto result = engine.Search("research xml", options);
    CLAKS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->hits.size());
  }
}
BENCHMARK(BM_SearchDiscover)->Args({1, 3})->Args({4, 3})->Args({1, 4});

void BM_SearchBanks(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  SearchOptions options;
  options.method = SearchMethod::kBanks;
  options.top_k = 10;
  options.instance_check = false;
  for (auto _ : state) {
    auto result = engine.Search("research xml", options);
    CLAKS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->hits.size());
  }
}
BENCHMARK(BM_SearchBanks)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ClassifySequences(benchmark::State& state) {
  // Pure classification cost on synthetic step sequences.
  std::vector<std::vector<Cardinality>> sequences;
  Rng rng(7);
  const Cardinality kAll[] = {Cardinality::kOneOne, Cardinality::kOneN,
                              Cardinality::kNOne, Cardinality::kNM};
  for (int i = 0; i < 1024; ++i) {
    std::vector<Cardinality> seq;
    size_t len = 1 + rng.Index(6);
    for (size_t j = 0; j < len; ++j) seq.push_back(kAll[rng.Index(4)]);
    sequences.push_back(std::move(seq));
  }
  for (auto _ : state) {
    size_t loose = 0;
    for (const auto& seq : sequences) {
      if (AdmitsLooseAssociation(ClassifyCardinalitySequence(seq))) {
        ++loose;
      }
    }
    benchmark::DoNotOptimize(loose);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sequences.size()));
}
BENCHMARK(BM_ClassifySequences);

void BM_ProjectToEr(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(4);
  SearchOptions options;
  options.max_rdb_edges = 4;
  options.instance_check = false;
  auto result = engine.Search("research xml", options);
  CLAKS_CHECK(result.ok());
  std::vector<Connection> connections;
  for (const SearchHit& hit : result->hits) {
    if (hit.connection.has_value()) connections.push_back(*hit.connection);
  }
  if (connections.empty()) {
    state.SkipWithError("no connections");
    return;
  }
  for (auto _ : state) {
    for (const Connection& conn : connections) {
      auto projection = ProjectToEr(conn, engine.database(),
                                    engine.er_schema(), engine.mapping());
      CLAKS_CHECK(projection.ok());
      benchmark::DoNotOptimize(projection->ErLength());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(connections.size()));
}
BENCHMARK(BM_ProjectToEr);

void BM_BibliographySearch(benchmark::State& state) {
  static GeneratedDataset* dataset = [] {
    BibliographyGenOptions options;
    options.num_papers = 200;
    options.num_authors = 80;
    auto d = GenerateBibliographyDataset(options);
    CLAKS_CHECK(d.ok());
    return new GeneratedDataset(std::move(d).ValueOrDie());
  }();
  static KeywordSearchEngine* engine = [] {
    auto e = KeywordSearchEngine::Create(dataset->db.get(),
                                         dataset->er_schema,
                                         dataset->mapping);
    CLAKS_CHECK(e.ok());
    return std::move(e).ValueOrDie().release();
  }();
  SearchOptions options;
  options.max_rdb_edges = static_cast<size_t>(state.range(0));
  options.instance_check = false;
  for (auto _ : state) {
    auto result = engine->Search("keyword retrieval", options);
    CLAKS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->hits.size());
  }
}
BENCHMARK(BM_BibliographySearch)->Arg(2)->Arg(3);

// Lazy streaming vs. full enumeration: top-3 should expand far fewer
// partial paths.
void BM_StreamTop3(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  const DataGraph& graph = engine.data_graph();
  auto matches = MatchKeywords(
      engine.index(),
      ParseKeywordQuery("research xml", engine.index().tokenizer()));
  if (!AllKeywordsMatched(matches)) {
    state.SkipWithError("keywords unmatched at this scale");
    return;
  }
  std::vector<uint32_t> sources, targets;
  for (const TupleMatch& m : matches[0].matches) {
    sources.push_back(graph.NodeOf(m.tuple));
  }
  for (const TupleMatch& m : matches[1].matches) {
    targets.push_back(graph.NodeOf(m.tuple));
  }
  size_t expansions = 0;
  for (auto _ : state) {
    ConnectionStream stream(&graph, sources, targets, 3);
    auto top = StreamTopK(&stream, 3);
    expansions = stream.expansions();
    benchmark::DoNotOptimize(top.size());
  }
  state.SetLabel(std::to_string(expansions) + " expansions");
}
BENCHMARK(BM_StreamTop3)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SteinerTree(benchmark::State& state) {
  const KeywordSearchEngine& engine = CachedEngine(state.range(0));
  const DataGraph& graph = engine.data_graph();
  // Three spread-out terminals: first, middle and last node.
  std::vector<uint32_t> terminals{
      0, static_cast<uint32_t>(graph.num_nodes() / 2),
      static_cast<uint32_t>(graph.num_nodes() - 1)};
  for (auto _ : state) {
    auto tree = ApproximateSteinerTree(graph, terminals);
    benchmark::DoNotOptimize(tree.has_value());
  }
}
BENCHMARK(BM_SteinerTree)->Arg(1)->Arg(4)->Arg(16);

void BM_InstanceStatistics(benchmark::State& state) {
  const GeneratedDataset& dataset = CachedCompany(state.range(0));
  for (auto _ : state) {
    InstanceStatistics stats(dataset.db.get(), &dataset.er_schema,
                             &dataset.mapping);
    benchmark::DoNotOptimize(stats.all().size());
  }
}
BENCHMARK(BM_InstanceStatistics)->Arg(1)->Arg(16)->Arg(64);

void BM_CompanyFullSearch(benchmark::State& state) {
  static GeneratedDataset* dataset = [] {
    CompanyFullOptions options;
    options.num_departments = 8;
    options.employees_per_department = 12;
    auto d = GenerateCompanyFullDataset(options);
    CLAKS_CHECK(d.ok());
    return new GeneratedDataset(std::move(d).ValueOrDie());
  }();
  static KeywordSearchEngine* engine = [] {
    auto e = KeywordSearchEngine::Create(dataset->db.get(),
                                         dataset->er_schema,
                                         dataset->mapping);
    CLAKS_CHECK(e.ok());
    return std::move(e).ValueOrDie().release();
  }();
  SearchOptions options;
  options.max_rdb_edges = 3;
  options.instance_check = false;
  for (auto _ : state) {
    auto result = engine->Search("research houston", options);
    CLAKS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->hits.size());
  }
}
BENCHMARK(BM_CompanyFullSearch);

}  // namespace
}  // namespace claks

BENCHMARK_MAIN();
