// Copyright 2026 The claks Authors.
//
// Regenerates Figure 2: the relational schema and instance of the running
// example, with referential-integrity verification and the derived data
// graph.

#include "bench_util.h"
#include "graph/data_graph.h"

int main() {
  using claks::bench::MakePaperSetup;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();
  const claks::Database& db = *setup.dataset.db;

  PrintHeader("Figure 2: database schema");
  for (size_t t = 0; t < db.num_tables(); ++t) {
    std::printf("%s\n", db.table(t).schema().ToString().c_str());
  }

  PrintHeader("Figure 2: instance");
  for (size_t t = 0; t < db.num_tables(); ++t) {
    std::printf("%s\n", db.table(t).ToString().c_str());
  }

  PrintHeader("Integrity and shape checks");
  auto integrity = db.CheckReferentialIntegrity();
  std::printf("referential integrity: %s\n", integrity.ToString().c_str());
  struct ExpectedCount {
    const char* table;
    size_t rows;
  };
  const ExpectedCount kCounts[] = {{"DEPARTMENT", 3}, {"PROJECT", 3},
                                   {"WORKS_FOR", 4},  {"EMPLOYEE", 4},
                                   {"DEPENDENT", 2}};
  bool all_ok = integrity.ok();
  for (const ExpectedCount& expected : kCounts) {
    size_t rows = db.FindTable(expected.table)->num_rows();
    bool ok = rows == expected.rows;
    std::printf("  %-10s %zu rows (paper: %zu) : %s\n", expected.table,
                rows, expected.rows, ok ? "OK" : "MISMATCH");
    all_ok = all_ok && ok;
  }

  const claks::DataGraph& graph = setup.engine->data_graph();
  std::printf("\n%s", graph.ToString(20).c_str());
  std::printf("connected components: %zu (d3 is isolated)\n",
              graph.CountConnectedComponents());

  std::printf("\nFigure 2 reproduction: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
