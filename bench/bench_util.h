// Copyright 2026 The claks Authors.
//
// Shared helpers for the per-table/figure bench binaries.

#ifndef CLAKS_BENCH_BENCH_UTIL_H_
#define CLAKS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/company_paper.h"

namespace claks {
namespace bench {

/// Paper dataset + engine bundle.
struct PaperSetup {
  CompanyPaperDataset dataset;
  std::unique_ptr<KeywordSearchEngine> engine;
};

inline PaperSetup MakePaperSetup() {
  auto dataset = BuildCompanyPaperDataset();
  CLAKS_CHECK(dataset.ok());
  PaperSetup setup;
  setup.dataset = std::move(dataset).ValueOrDie();
  auto engine = KeywordSearchEngine::Create(setup.dataset.db.get(),
                                            setup.dataset.er_schema,
                                            setup.dataset.mapping);
  CLAKS_CHECK(engine.ok());
  setup.engine = std::move(engine).ValueOrDie();
  return setup;
}

/// The paper's Table 2 connections as tuple-name sequences (index 0 -> row
/// 1).
inline const std::vector<std::vector<std::string>>& PaperConnections() {
  static const auto* kConnections =
      new std::vector<std::vector<std::string>>{
          {"d1", "e1"},
          {"p1", "w_f1", "e1"},
          {"p1", "d1", "e1"},
          {"d1", "p1", "w_f1", "e1"},
          {"d2", "e2"},
          {"p2", "d2", "e2"},
          {"d2", "p3", "w_f2", "e2"},
          {"d1", "e3", "t1"},
          {"d2", "p2", "w_f3", "e3", "t1"},
      };
  return *kConnections;
}

/// Builds the connection along named paper tuples.
inline Connection ConnectionByNames(const KeywordSearchEngine& engine,
                                    const Database& db,
                                    const std::vector<std::string>& names) {
  const DataGraph& graph = engine.data_graph();
  std::vector<TupleId> tuples;
  std::vector<ConnectionEdge> edges;
  for (const auto& name : names) tuples.push_back(PaperTuple(db, name));
  for (size_t i = 0; i + 1 < tuples.size(); ++i) {
    bool found = false;
    for (const DataAdjacency& adj :
         graph.Neighbors(graph.NodeOf(tuples[i]))) {
      if (adj.neighbor == graph.NodeOf(tuples[i + 1])) {
        const DataEdge& edge = graph.edge(adj.edge_index);
        edges.push_back(ConnectionEdge{edge.fk_index, adj.along_fk != 0});
        found = true;
        break;
      }
    }
    CLAKS_CHECK(found);
  }
  return Connection(std::move(tuples), std::move(edges));
}

/// Paper-style keyword annotations for the "Smith XML" + "Alice" example.
inline std::map<TupleId, std::string> PaperKeywordMarks(const Database& db) {
  return {
      {PaperTuple(db, "d1"), "XML"},   {PaperTuple(db, "d2"), "XML"},
      {PaperTuple(db, "p1"), "XML"},   {PaperTuple(db, "p2"), "XML"},
      {PaperTuple(db, "e1"), "Smith"}, {PaperTuple(db, "e2"), "Smith"},
      {PaperTuple(db, "t1"), "Alice"},
  };
}

/// Row number (1-based) of a hit among the paper connections, 0 if none.
inline int PaperRowOf(const KeywordSearchEngine& engine, const Database& db,
                      const SearchHit& hit) {
  if (!hit.connection.has_value()) return 0;
  const auto& all = PaperConnections();
  for (size_t i = 0; i < all.size(); ++i) {
    if (hit.connection->SamePathUndirected(
            ConnectionByNames(engine, db, all[i]))) {
      return static_cast<int>(i) + 1;
    }
  }
  return 0;
}

inline void PrintHeader(const std::string& title) {
  static const char kRule[] =
      "============================================================";
  std::printf("\n%s\n%s\n%s\n", kRule, title.c_str(), kRule);
}

}  // namespace bench
}  // namespace claks

#endif  // CLAKS_BENCH_BENCH_UTIL_H_
