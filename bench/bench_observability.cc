// Copyright 2026 The claks Authors.
//
// Observability-overhead benchmark: prices the instrumentation layer
// itself. The same streaming top-k query (the hot serving path) runs in
// four configurations of one binary — metrics recording off (baseline),
// metrics recording on, per-query profiling on, and tracing on (an
// installed TraceRecorder) — and the per-configuration best-of latency
// plus its overhead percentage against the baseline is recorded to a
// machine-readable BENCH_observability.json. The numbers are recorded,
// never asserted: CI uploads the artifact so the overhead trajectory is
// tracked per commit, and docs/OBSERVABILITY.md quotes the targets
// (<2% with tracing off, <8% with it on, on the 100x stream top-10
// path). The profiled configuration also records the stage-sum /
// total-wall ratio of its QueryProfile — the contract that the stage
// model accounts for (nearly) all of the measured wall time.
//
// Flags: --scales=1,10,100  --top=10  --depth=4  --reps=5
// The JSON schema is documented in docs/BENCHMARKS.md; CI runs 1x/10x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/company_gen.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Minimum wall time of `reps` runs of `fn` (best-of damps scheduler
// noise — essential here, where the effect measured is percent-level).
template <typename Fn>
double TimeMs(size_t reps, Fn&& fn) {
  double best = -1.0;
  for (size_t i = 0; i < reps; ++i) {
    auto start = Clock::now();
    fn();
    double ms = MillisSince(start);
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

struct ConfigRecord {
  std::string config;
  double latency_ms = 0.0;
  double overhead_pct = 0.0;  // vs the recording-off baseline
};

struct QueryRecord {
  std::string query;
  size_t results = 0;
  size_t expansions = 0;
  std::vector<ConfigRecord> configs;
  // From the profiled configuration: StageSum() / total_ns of the last
  // run's QueryProfile (the <=1.0, close-to-1.0 accounting contract).
  double profile_stage_sum_ratio = 0.0;
};

struct ScaleRecord {
  size_t scale = 0;
  size_t rows = 0;
  std::vector<QueryRecord> queries;
};

const char* kQueries[] = {"smith xml", "retrieval databases"};

ScaleRecord RunScale(size_t scale, size_t top_k, size_t max_edges,
                     size_t reps) {
  ScaleRecord record;
  record.scale = scale;

  auto generated = claks::GenerateCompanyDataset(
      claks::CompanyGenOptions::AtScale(scale));
  CLAKS_CHECK(generated.ok());
  claks::GeneratedDataset dataset = std::move(generated).ValueOrDie();
  record.rows = dataset.db->TotalRows();

  auto created = claks::KeywordSearchEngine::Create(
      dataset.db.get(), dataset.er_schema, dataset.mapping);
  CLAKS_CHECK(created.ok());
  std::unique_ptr<claks::KeywordSearchEngine> engine =
      std::move(created).ValueOrDie();

  for (const char* query : kQueries) {
    claks::SearchOptions options;
    options.method = claks::SearchMethod::kStream;
    options.ranker = claks::RankerKind::kCloseFirst;
    options.top_k = top_k;
    options.max_rdb_edges = max_edges;

    QueryRecord qr;
    qr.query = query;

    claks::SearchResult result;
    auto run = [&] {
      auto searched = engine->Search(query, options);
      CLAKS_CHECK(searched.ok());
      result = std::move(searched).ValueOrDie();
    };

    // Baseline: every metric write is a relaxed load + branch, tracing
    // uninstalled, no profiler. This is the cost floor the other
    // configurations are priced against.
    claks::MetricsRegistry::SetRecording(false);
    double baseline_ms = TimeMs(reps, run);
    qr.results = result.hits.size();
    qr.expansions = result.expansions;
    qr.configs.push_back({"recording_off", baseline_ms, 0.0});

    auto overhead = [baseline_ms](double ms) {
      return baseline_ms > 0.0 ? 100.0 * (ms - baseline_ms) / baseline_ms
                               : 0.0;
    };

    // Metrics on: the production default.
    claks::MetricsRegistry::SetRecording(true);
    double metrics_ms = TimeMs(reps, run);
    qr.configs.push_back({"metrics_on", metrics_ms, overhead(metrics_ms)});

    // Profiling on: per-stage timers along the query (opt-in per query).
    options.profile = true;
    double profile_ms = TimeMs(reps, run);
    qr.configs.push_back({"profile_on", profile_ms, overhead(profile_ms)});
    if (result.profile.has_value() && result.profile->total_ns > 0) {
      qr.profile_stage_sum_ratio =
          static_cast<double>(result.profile->StageSum()) /
          static_cast<double>(result.profile->total_ns);
    }
    options.profile = false;

    // Tracing on: an installed recorder, every span records. (With
    // CLAKS_TRACING=OFF builds this measures the no-op twins — i.e. 0.)
    claks::TraceRecorder recorder;
    recorder.Install();
    double tracing_ms = TimeMs(reps, run);
    claks::TraceRecorder::Uninstall();
    qr.configs.push_back({"tracing_on", tracing_ms, overhead(tracing_ms)});

    claks::MetricsRegistry::SetRecording(true);
    record.queries.push_back(std::move(qr));
  }
  return record;
}

void WriteJson(std::FILE* f, const std::vector<ScaleRecord>& records,
               size_t top_k, size_t max_edges, size_t reps) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_observability\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"dataset\": \"company_gen\",\n");
  std::fprintf(f, "  \"top_k\": %zu,\n", top_k);
  std::fprintf(f, "  \"max_rdb_edges\": %zu,\n", max_edges);
  std::fprintf(f, "  \"reps\": %zu,\n", reps);
  std::fprintf(f, "  \"tracing_compiled\": %s,\n",
#ifdef CLAKS_TRACING_DISABLED
               "false"
#else
               "true"
#endif
  );
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t s = 0; s < records.size(); ++s) {
    const ScaleRecord& record = records[s];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale\": %zu,\n", record.scale);
    std::fprintf(f, "      \"rows\": %zu,\n", record.rows);
    std::fprintf(f, "      \"queries\": [\n");
    for (size_t q = 0; q < record.queries.size(); ++q) {
      const QueryRecord& qr = record.queries[q];
      std::fprintf(f, "        {\n");
      std::fprintf(f, "          \"query\": \"%s\",\n", qr.query.c_str());
      std::fprintf(f, "          \"results\": %zu,\n", qr.results);
      std::fprintf(f, "          \"expansions\": %zu,\n", qr.expansions);
      std::fprintf(f, "          \"profile_stage_sum_ratio\": %.4f,\n",
                   qr.profile_stage_sum_ratio);
      std::fprintf(f, "          \"configs\": [\n");
      for (size_t c = 0; c < qr.configs.size(); ++c) {
        const ConfigRecord& cr = qr.configs[c];
        std::fprintf(f,
                     "            {\"config\": \"%s\", \"latency_ms\": "
                     "%.3f, \"overhead_pct\": %.2f}%s\n",
                     cr.config.c_str(), cr.latency_ms, cr.overhead_pct,
                     c + 1 < qr.configs.size() ? "," : "");
      }
      std::fprintf(f, "          ]\n");
      std::fprintf(f, "        }%s\n",
                   q + 1 < record.queries.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", s + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

std::vector<size_t> ParseScales(const std::string& spec) {
  std::vector<size_t> scales;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    long value = std::atol(spec.substr(pos, comma - pos).c_str());
    scales.push_back(value > 0 ? static_cast<size_t>(value) : 0);
    pos = comma + 1;
  }
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales{1, 10, 100};
  size_t top_k = 10;
  size_t max_edges = 4;
  size_t reps = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scales=", 0) == 0) {
      scales = ParseScales(arg.substr(9));
    } else if (arg.rfind("--top=", 0) == 0) {
      top_k = static_cast<size_t>(std::atol(arg.substr(6).c_str()));
    } else if (arg.rfind("--depth=", 0) == 0) {
      max_edges = static_cast<size_t>(std::atol(arg.substr(8).c_str()));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(std::atol(arg.substr(7).c_str()));
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --scales=1,10,100 "
                   "--top=10 --depth=4 --reps=5)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (scales.empty() || top_k == 0 || reps == 0 ||
      std::find(scales.begin(), scales.end(), 0u) != scales.end()) {
    std::fprintf(stderr,
                 "invalid flags: need scales >= 1, top >= 1, reps >= 1\n");
    return 2;
  }

  std::vector<ScaleRecord> records;
  for (size_t scale : scales) {
    std::printf("scale %zux...\n", scale);
    records.push_back(RunScale(scale, top_k, max_edges, reps));
    const ScaleRecord& record = records.back();
    for (const QueryRecord& qr : record.queries) {
      std::printf("  '%s' (%zu hits, %zu expansions, stage-sum %.3f)\n",
                  qr.query.c_str(), qr.results, qr.expansions,
                  qr.profile_stage_sum_ratio);
      for (const ConfigRecord& cr : qr.configs) {
        std::printf("    %-13s %8.3fms  %+6.2f%%\n", cr.config.c_str(),
                    cr.latency_ms, cr.overhead_pct);
      }
    }
  }

  const char* out_path = "BENCH_observability.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, records, top_k, max_edges, reps);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
