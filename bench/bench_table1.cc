// Copyright 2026 The claks Authors.
//
// Regenerates Table 1: relationships of the ER schema and the cardinality
// classification of §2 (immediate / transitive functional / transitive N:M
// / mixed loose).

#include "bench_util.h"
#include "common/string_util.h"
#include "er/transitive.h"

int main() {
  using claks::AnalyzePath;
  using claks::AssociationKind;
  using claks::bench::MakePaperSetup;
  using claks::bench::PrintHeader;

  auto setup = MakePaperSetup();
  const claks::ERSchema& er = setup.dataset.er_schema;

  struct Table1Row {
    int row;
    std::vector<std::string> entities;
    AssociationKind expected_kind;
  };
  const std::vector<Table1Row> kRows = {
      {1, {"DEPARTMENT", "EMPLOYEE"}, AssociationKind::kImmediate},
      {2, {"PROJECT", "EMPLOYEE"}, AssociationKind::kImmediate},
      {3,
       {"DEPARTMENT", "EMPLOYEE", "DEPENDENT"},
       AssociationKind::kTransitiveFunctional},
      {4,
       {"DEPARTMENT", "PROJECT", "EMPLOYEE"},
       AssociationKind::kMixedLoose},
      {5,
       {"PROJECT", "DEPARTMENT", "EMPLOYEE"},
       AssociationKind::kTransitiveNM},
      {6,
       {"DEPARTMENT", "PROJECT", "EMPLOYEE", "DEPENDENT"},
       AssociationKind::kMixedLoose},
  };

  PrintHeader("Table 1: relationships and their cardinalities");
  std::printf("%-3s %-45s %-40s %-22s %s\n", "#", "relationship",
              "cardinality", "classification (ours)", "check");
  bool all_ok = true;
  for (const Table1Row& row : kRows) {
    auto paths = er.EnumeratePaths(row.entities.front(),
                                   row.entities.back(),
                                   row.entities.size() - 1);
    bool found = false;
    for (const claks::ErPath& path : paths) {
      if (path.EntitySequence() != row.entities) continue;
      found = true;
      auto analysis = AnalyzePath(path);
      bool ok = analysis.kind == row.expected_kind;
      all_ok = all_ok && ok;
      std::string entities;
      for (size_t i = 0; i < row.entities.size(); ++i) {
        if (i > 0) entities += " - ";
        entities += claks::ToLower(row.entities[i]);
      }
      std::printf("%-3d %-45s %-40s %-22s %s\n", row.row, entities.c_str(),
                  path.ToString().c_str(),
                  claks::AssociationKindToString(analysis.kind),
                  ok ? "OK" : "MISMATCH");
    }
    if (!found) {
      all_ok = false;
      std::printf("%-3d PATH NOT FOUND\n", row.row);
    }
  }

  PrintHeader("All transitive relationships up to 3 steps (exhaustive)");
  for (const auto& from : {"DEPARTMENT", "PROJECT", "EMPLOYEE"}) {
    for (const auto& to : {"EMPLOYEE", "DEPENDENT"}) {
      if (std::string(from) == to) continue;
      for (const auto& analysis :
           claks::AnalyzePathsBetween(er, from, to, 3)) {
        std::printf("  %s\n", analysis.Describe().c_str());
      }
    }
  }

  std::printf("\nTable 1 reproduction: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
