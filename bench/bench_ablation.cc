// Copyright 2026 The claks Authors.
//
// Ablation study over the ranking policies (DESIGN.md design choices):
// using *instance-level closeness* as ground truth for relevance (the
// verdict the paper argues users actually care about), measure how well
// each policy front-loads instance-close connections on synthetic company
// databases of several seeds and sizes. Also prints the per-relationship
// instance statistics behind the kAmbiguity policy (paper §4).

#include <map>
#include <vector>

#include "bench_util.h"
#include "datasets/company_gen.h"

namespace {

using claks::KeywordSearchEngine;
using claks::RankerKind;
using claks::SearchHit;
using claks::SearchOptions;

// Precision at k: fraction of the top-k hits that are instance-close.
double PrecisionAtK(const std::vector<SearchHit>& hits, size_t k) {
  if (hits.empty()) return 0.0;
  size_t n = std::min(k, hits.size());
  size_t close = 0;
  for (size_t i = 0; i < n; ++i) {
    if (hits[i].instance_close.value_or(hits[i].schema_close)) ++close;
  }
  return static_cast<double>(close) / static_cast<double>(n);
}

// Mean reciprocal rank of the first instance-LOOSE hit (higher = loose
// results pushed further down = better).
double FirstLooseRank(const std::vector<SearchHit>& hits) {
  for (size_t i = 0; i < hits.size(); ++i) {
    if (!hits[i].instance_close.value_or(hits[i].schema_close)) {
      return static_cast<double>(i + 1);
    }
  }
  return static_cast<double>(hits.size() + 1);
}

}  // namespace

int main() {
  using claks::bench::PrintHeader;

  const RankerKind kPolicies[] = {
      RankerKind::kRdbLength,   RankerKind::kErLength,
      RankerKind::kCloseFirst,  RankerKind::kLoosePenalty,
      RankerKind::kInstanceClose, RankerKind::kAmbiguity,
      RankerKind::kCombined,    RankerKind::kMoreContext,
  };
  const uint64_t kSeeds[] = {1, 2, 3, 5, 7, 11, 13, 42};

  PrintHeader("Instance statistics on the paper's example (paper §4)");
  {
    auto setup = claks::bench::MakePaperSetup();
    std::printf("%s", setup.engine->statistics().ToString().c_str());
    std::printf(
        "\nThe hub of connection 3 (via d1) admits %.1f employees on\n"
        "average: ambiguity > 1 flags exactly the loose interpretations.\n",
        setup.engine->statistics()
            .StatsFor("WORKS_FOR")
            .AvgFanoutLeftToRight());
  }

  PrintHeader(
      "Ablation: ranking quality with instance-closeness as ground truth");
  std::printf(
      "Synthetic company databases, query 'research xml', depth 3; mean\n"
      "over %zu seeds. P@3 / P@5: fraction of top-k instance-close;\n"
      "1stLoose: average rank of the first instance-loose hit (higher is\n"
      "better).\n\n",
      std::size(kSeeds));

  std::printf("%-16s %-8s %-8s %-10s\n", "policy", "P@3", "P@5",
              "1stLoose");

  std::map<RankerKind, std::vector<double>> p3, p5, first_loose;
  for (uint64_t seed : kSeeds) {
    claks::CompanyGenOptions options;
    options.seed = seed;
    options.num_departments = 5;
    options.employees_per_department = 8;
    options.projects_per_department = 3;
    auto dataset = claks::GenerateCompanyDataset(options);
    CLAKS_CHECK(dataset.ok());
    auto engine = KeywordSearchEngine::Create(
        dataset->db.get(), dataset->er_schema, dataset->mapping);
    CLAKS_CHECK(engine.ok());

    for (RankerKind policy : kPolicies) {
      SearchOptions search;
      search.max_rdb_edges = 3;
      search.ranker = policy;
      search.instance_check = true;
      auto result = (*engine)->Search("research xml", search);
      CLAKS_CHECK(result.ok());
      if (result->hits.empty()) continue;
      p3[policy].push_back(PrecisionAtK(result->hits, 3));
      p5[policy].push_back(PrecisionAtK(result->hits, 5));
      first_loose[policy].push_back(FirstLooseRank(result->hits));
    }
  }

  auto mean = [](const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  };

  double rdb_p3 = 0.0;
  double close_first_p3 = 0.0;
  for (RankerKind policy : kPolicies) {
    double m3 = mean(p3[policy]);
    double m5 = mean(p5[policy]);
    double ml = mean(first_loose[policy]);
    std::printf("%-16s %-8.3f %-8.3f %-10.2f\n",
                claks::RankerKindToString(policy), m3, m5, ml);
    if (policy == RankerKind::kRdbLength) rdb_p3 = m3;
    if (policy == RankerKind::kCloseFirst) close_first_p3 = m3;
  }

  std::printf(
      "\nExpected shape (paper): association-aware policies front-load\n"
      "instance-close connections at least as well as raw RDB length.\n");
  bool pass = close_first_p3 >= rdb_p3 - 1e-9;
  std::printf("\nAblation sanity (close-first P@3 >= rdb-length P@3): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
