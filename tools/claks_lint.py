#!/usr/bin/env python3
# Copyright 2026 The claks Authors.
"""claks_lint: project-specific static checks for the claks tree.

Enforces the invariants no off-the-shelf tool knows about:

  mutex-annotation    every claks::Mutex member must be referenced by at
                      least one CLAKS_* thread-safety annotation in the
                      same file (a mutex nothing is annotated against
                      protects nothing the analysis can prove).
  raw-std-mutex       no std::mutex / std::shared_mutex / raw lock guards
                      outside common/mutex.h — use claks::Mutex +
                      MutexLock so clang's -Wthread-safety sees the lock.
  thread-outside-pool no std::thread construction outside
                      common/thread_pool — every worker belongs to a
                      pool with a bounded queue and a joining destructor.
  no-assert           no assert() / <cassert>; use CLAKS_CHECK, which is
                      active in release builds and logs before aborting.
  snapshot-const-ptr  published-snapshot types (EngineSnapshot, the
                      frozen FkJoinIndex::Base and Table BaseSegment)
                      are only held through shared_ptr<const T>; the one
                      mutable phase is construction via make_shared
                      before publication.
  no-const-cast       no const_cast in src/ — it is exactly the operator
                      that would let a reader mutate a published
                      snapshot behind the type system's back.
  mutable-member      mutable members must be a claks::Mutex, a
                      std::atomic, a std::once_flag, or carry
                      CLAKS_GUARDED_BY — "mutable" without a
                      synchronization story is how logically-const
                      snapshot reads turn into data races.
  derive-base-const   Derive* entry points take their base generation by
                      const reference: derivation reads the previous
                      snapshot, it never writes it.
  storage-format      on-disk structs (struct Stored*) are defined only
                      in src/storage/format.h, and every one pins its
                      exact size, alignment, and trivial copyability
                      with static_asserts — the file format must break
                      the build, never silently shift.
  metric-naming       metric names follow claks_<subsystem>_<name>_<unit>
                      with the unit drawn from a fixed vocabulary, and
                      process-wide registrations (CLAKS_METRIC_* /
                      MetricsRegistry::Default()) happen once at
                      namespace scope — instance registries (per-service)
                      reuse the names but may register anywhere.
  waiver-reason       every waiver comment must state a reason.

Waivers: a finding is suppressed by a comment on the same line or in
the comment block directly above it:

    // claks-lint: allow(rule-id) -- reason the rule does not apply here

The reason text is mandatory (enforced by the waiver-reason rule).

Usage:
    claks_lint.py --root <repo-root>              lint the tree
    claks_lint.py --root <repo-root> --self-test  prove every rule fires
                                                  on its violation
                                                  fixture and stays
                                                  quiet on its clean one
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

# Rule id -> one-line message attached to each finding.
RULES = {
    "mutex-annotation": (
        "Mutex member is not referenced by any CLAKS_* annotation in this "
        "file; annotate the data it guards (CLAKS_GUARDED_BY) or the "
        "functions that take it (CLAKS_REQUIRES/CLAKS_EXCLUDES)"
    ),
    "raw-std-mutex": (
        "raw std mutex/lock primitive outside common/mutex.h; use "
        "claks::Mutex + MutexLock so the thread-safety analysis sees it"
    ),
    "thread-outside-pool": (
        "std::thread constructed outside common/thread_pool; submit work "
        "to a ThreadPool instead"
    ),
    "no-assert": (
        "assert()/<cassert> is compiled out in release builds; use "
        "CLAKS_CHECK (common/logging.h)"
    ),
    "snapshot-const-ptr": (
        "published-snapshot type held through a non-const shared_ptr; "
        "snapshots are immutable after publication — use "
        "shared_ptr<const T> (construction goes through make_shared "
        "before publishing)"
    ),
    "no-const-cast": (
        "const_cast can mutate a published snapshot behind the type "
        "system; restructure instead"
    ),
    "mutable-member": (
        "mutable member without a synchronization story; make it a "
        "claks::Mutex, std::atomic, std::once_flag, or annotate it "
        "CLAKS_GUARDED_BY(<mutex>)"
    ),
    "derive-base-const": (
        "Derive* must take its base generation as a const reference; "
        "derivation reads the previous snapshot, never writes it"
    ),
    "storage-format": (
        "on-disk struct outside src/storage/format.h, or missing its "
        "layout pins; every struct Stored* lives in format.h with "
        "static_asserts on sizeof, alignof, and trivial copyability"
    ),
    "metric-naming": (
        "metric registration breaks the naming discipline: names are "
        "claks_<subsystem>_<name>_<unit> (unit in total/us/bytes/depth/"
        "count/ratio) and process-wide CLAKS_METRIC_*/Default() "
        "registrations sit at namespace scope, once per process"
    ),
    "waiver-reason": (
        "claks-lint waiver without a reason; write "
        "'claks-lint: allow(rule) -- why'"
    ),
}

SOURCE_EXTENSIONS = {".h", ".cc", ".cpp"}

# Directories scanned relative to --root, per rule scope below.
SCAN_DIRS = ("src", "bench", "examples", "tests")

WAIVER_RE = re.compile(
    r"claks-lint:\s*allow\(([a-z-]+)\)(?:\s*(?:--|:)\s*(\S.*))?")

# Metric names: claks_<subsystem>_<name>_<unit>, unit from the closed
# vocabulary (counters end _total, latencies _us, sizes _bytes, levels
# _depth, distributions of cardinalities _count, ratios _ratio).
METRIC_NAME_RE = re.compile(
    r"claks_[a-z0-9]+(?:_[a-z0-9]+)*"
    r"_(?:total|us|bytes|depth|count|ratio)\Z")


class Finding:
    def __init__(self, path, line, rule):
        self.path = path      # repo-relative, POSIX separators
        self.line = line      # 1-based
        self.rule = rule

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {RULES[self.rule]}"


def strip_code(text):
    """Blanks comments and string/char literal contents, preserving the
    line structure, so rules never fire on prose. Returns the code-only
    text; waivers are read from the raw text instead."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail out
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def waivers_for(raw_lines, lineno):
    """Waivers covering 1-based line `lineno`: on the line itself or
    anywhere in the contiguous //-comment block directly above it.
    Unreasoned or unknown-rule waivers suppress nothing (and are flagged
    by the waiver-reason rule)."""
    waived = set()

    def collect(line):
        for m in WAIVER_RE.finditer(line):
            if m.group(1) in RULES and m.group(2):
                waived.add(m.group(1))

    if 1 <= lineno <= len(raw_lines):
        collect(raw_lines[lineno - 1])
    ln = lineno - 1
    while ln >= 1 and raw_lines[ln - 1].lstrip().startswith("//"):
        collect(raw_lines[ln - 1])
        ln -= 1
    return waived


def scan_file(relpath, text):
    """All findings for one file. `relpath` (POSIX, repo-relative)
    decides which rules apply; fixture texts are scanned under synthetic
    src/ paths so they see the same scoping as real sources."""
    findings = []
    raw_lines = text.splitlines()
    code = strip_code(text)
    code_lines = code.splitlines()

    in_src = relpath.startswith("src/")
    is_header = relpath.endswith(".h")

    def line_of(match_start):
        return code.count("\n", 0, match_start) + 1

    def report(rule, lineno):
        if rule not in waivers_for(raw_lines, lineno):
            findings.append(Finding(relpath, lineno, rule))

    # waiver-reason: every waiver, wherever it sits, needs a reason.
    for idx, raw in enumerate(raw_lines, start=1):
        for m in WAIVER_RE.finditer(raw):
            if m.group(1) not in RULES:
                findings.append(Finding(relpath, idx, "waiver-reason"))
            elif not m.group(2):
                findings.append(Finding(relpath, idx, "waiver-reason"))

    # no-assert applies to every scanned tier.
    for m in re.finditer(r"(?<![\w.])assert\s*\(", code):
        report("no-assert", line_of(m.start()))
    for m in re.finditer(r'#\s*include\s*[<"](?:cassert|assert\.h)[>"]',
                         code):
        report("no-assert", line_of(m.start()))

    if not in_src:
        return findings

    # --- src/-only rules below ---

    exempt_mutex_impl = relpath == "src/common/mutex.h"

    # raw-std-mutex: the annotated wrapper is the only place allowed to
    # touch the underlying primitive.
    if not exempt_mutex_impl:
        for m in re.finditer(
                r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
                r"recursive_timed_mutex|lock_guard|unique_lock|"
                r"scoped_lock|shared_lock)\b", code):
            report("raw-std-mutex", line_of(m.start()))

    # thread-outside-pool: std::thread the type is banned outside the
    # pool; std::thread:: (hardware_concurrency etc.) stays available.
    if relpath not in ("src/common/thread_pool.h",
                       "src/common/thread_pool.cc"):
        for m in re.finditer(r"std::thread\b(?!\s*::)", code):
            report("thread-outside-pool", line_of(m.start()))

    # mutex-annotation: each Mutex member must appear inside some
    # CLAKS_* annotation argument list in this file.
    if not exempt_mutex_impl:
        annotated = set()
        for m in re.finditer(r"CLAKS_[A-Z_]+\(([^()]*)\)", code):
            annotated.update(re.findall(r"[A-Za-z_]\w*", m.group(1)))
        for m in re.finditer(
                r"^[ \t]*(?:mutable[ \t]+)?(?:claks::)?Mutex[ \t]+"
                r"(\w+)[ \t]*;", code, re.MULTILINE):
            if m.group(1) not in annotated:
                report("mutex-annotation", line_of(m.start(1)))

    # snapshot-const-ptr: curated list of frozen, generation-shared
    # types. make_shared<T> (no "_ptr") is the construction phase and
    # does not match.
    # (shared_ptr<const T> never matches: "const" sits where the regex
    # expects the type name.)
    for m in re.finditer(
            r"shared_ptr<\s*(?:claks::)?(?:FkJoinIndex::)?"
            r"(?:EngineSnapshot|Base|BaseSegment)\b(?!\s*::)", code):
        report("snapshot-const-ptr", line_of(m.start()))

    for m in re.finditer(r"\bconst_cast\s*<", code):
        report("no-const-cast", line_of(m.start()))

    # mutable-member: join the declaration through its ';' and check the
    # whole text for an allowed synchronization story.
    for m in re.finditer(r"^[ \t]*mutable[ \t]", code, re.MULTILINE):
        end = code.find(";", m.start())
        decl = code[m.start():end if end != -1 else len(code)]
        if not re.search(
                r"std::atomic|std::once_flag|(?:claks::)?\bMutex\b|"
                r"CLAKS_(?:PT_)?GUARDED_BY", decl):
            report("mutable-member", line_of(m.start()))

    # storage-format: `struct Stored*` is the naming convention for
    # on-disk records. Definitions (not forward declarations or usages)
    # belong in src/storage/format.h; there, each must pin sizeof,
    # alignof, and trivial copyability so any layout drift is a compile
    # error instead of a silent format change.
    is_format_home = relpath == "src/storage/format.h"
    for m in re.finditer(r"^[ \t]*struct[ \t]+(Stored\w+)[^;{(]*\{",
                         code, re.MULTILINE):
        name = m.group(1)
        if not is_format_home:
            report("storage-format", line_of(m.start(1)))
            continue
        pins = (
            rf"static_assert\(\s*sizeof\({name}\)",
            rf"alignof\({name}\)",
            rf"is_trivially_copyable<{name}>",
        )
        if not all(re.search(p, code) for p in pins):
            report("storage-format", line_of(m.start(1)))

    # metric-naming: two halves, both skipped for the registry
    # implementation itself (its macro definitions and Get* declarations
    # are the machinery, not registrations).
    if not relpath.startswith("src/observability/metrics"):
        # (a) any claks_-prefixed string literal is a metric name and
        # must carry a unit suffix. Literals are read from the raw text
        # (strip_code blanks their contents but preserves positions);
        # quotes inside comments are blanked, so `code` quotes are real.
        for m in re.finditer(r'"[^"\n]*"', code):
            literal = text[m.start() + 1:m.end() - 1]
            if literal.startswith("claks_") and not METRIC_NAME_RE.match(
                    literal):
                report("metric-naming", line_of(m.start()))
        # (b) process-wide registrations must sit at namespace scope:
        # the statement containing the CLAKS_METRIC_* invocation or the
        # direct Default() registration must start at column 0 (claks
        # style does not indent namespace bodies, so an indented
        # statement start means function/class scope).
        for m in re.finditer(
                r"CLAKS_METRIC_[A-Z_]+\s*\(|"
                r"MetricsRegistry::Default\(\)\s*\.\s*Get\w+\s*\(", code):
            stmt_end = max(code.rfind(";", 0, m.start()),
                           code.rfind("{", 0, m.start()),
                           code.rfind("}", 0, m.start()))
            j = stmt_end + 1
            while j < len(code) and code[j] in " \t\n":
                j += 1
            if j > code.rfind("\n", 0, j) + 1:
                report("metric-naming", line_of(m.start()))

    # derive-base-const: header declarations only (call sites live in
    # .cc files and pass *deref arguments the rule cannot judge).
    if is_header:
        for m in re.finditer(r"(?<![.\w>:])(Derive\w*)\s*\(", code):
            end = m.end()
            depth = 1
            j = end
            while j < len(code) and depth > 0:
                if code[j] == "(":
                    depth += 1
                elif code[j] == ")":
                    depth -= 1
                elif code[j] == "," and depth == 1:
                    break
                j += 1
            first_arg = code[end:j]
            if not first_arg.strip():
                continue  # Derive() taking no base
            if not ("const" in first_arg and "&" in first_arg):
                report("derive-base-const", line_of(m.start()))

    return findings


def lint_tree(root):
    findings = []
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_EXTENSIONS:
                continue
            rel = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8", errors="replace")
            findings.extend(scan_file(rel, text))
    return findings


def self_test(root):
    """Every rule must fire on its *_violation.* fixture and stay quiet
    on its *_clean.* fixture (clean fixtures must produce zero findings
    of any rule, proving waivers and exemptions suppress correctly)."""
    fixture_dir = root / "tools" / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"self-test: fixture directory missing: {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = []
    seen_rules = set()
    for path in sorted(fixture_dir.iterdir()):
        if path.suffix not in SOURCE_EXTENSIONS:
            continue
        m = re.match(r"([a-z_]+)_(violation|clean)$", path.stem)
        if not m:
            failures.append(f"{path.name}: unrecognized fixture name")
            continue
        rule = m.group(1).replace("_", "-")
        kind = m.group(2)
        if rule not in RULES:
            failures.append(f"{path.name}: unknown rule '{rule}'")
            continue
        seen_rules.add(rule)
        # Scan under a synthetic src/ path so src-scoped rules apply.
        synthetic = f"src/lint_fixture/{path.name}"
        found = scan_file(synthetic,
                          path.read_text(encoding="utf-8"))
        fired = {f.rule for f in found}
        if kind == "violation" and rule not in fired:
            failures.append(
                f"{path.name}: expected [{rule}] to fire, got "
                f"{sorted(fired) or 'nothing'}")
        if kind == "clean" and fired:
            failures.append(
                f"{path.name}: expected no findings, got {sorted(fired)}")
    untested = set(RULES) - seen_rules
    if untested:
        failures.append(
            f"rules without fixtures: {sorted(untested)}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(seen_rules)} rules, each fires on its "
          f"violation fixture and stays quiet on its clean fixture")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True,
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-test instead of "
                             "linting the tree")
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"claks_lint: no such directory: {root}", file=sys.stderr)
        return 2
    if args.self_test:
        return self_test(root)
    findings = lint_tree(root)
    for f in findings:
        print(f.render())
    if findings:
        print(f"claks_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("claks_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
