// Fixture: assert() vanishes under NDEBUG; the invariant it states
// stops being checked exactly in the builds users run.
#include <cassert>

namespace claks {

void Check(int x) {
  assert(x > 0);
}

}  // namespace claks
