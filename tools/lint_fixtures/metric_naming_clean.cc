// Fixture: conforming observability. A process-wide metric registered
// once at namespace scope under a claks_<subsystem>_<name>_<unit> name;
// an instance-registry registration inside a constructor (instance
// registries are exempt from the namespace-scope requirement); a
// mention of claks_engine_queries_total in prose, which must not fire;
// and a legacy name kept alive under a reasoned waiver.
namespace claks {

CLAKS_METRIC_COUNTER(g_fixture_queries, "claks_fixture_queries_total",
                     "Queries served by the fixture");

class InstanceOwner {
 public:
  InstanceOwner() {
    submitted_ = &metrics_.GetCounter("claks_fixture_submitted_total",
                                      "Queries submitted to this owner");
  }

 private:
  MetricsRegistry metrics_;
  Counter* submitted_ = nullptr;
};

// claks-lint: allow(metric-naming) -- fixture: legacy dashboard series
// name kept until the dashboards migrate to the _total suffix.
CLAKS_METRIC_COUNTER(g_fixture_legacy, "claks_fixture_legacy",
                     "Legacy-named counter");

}  // namespace claks
