// Fixture: both halves of the metric-naming rule broken — the name
// lacks a unit suffix, and the process-wide registration happens at
// function scope (re-registering on every call) instead of once at
// namespace scope.
namespace claks {

void RecordQuery() {
  CLAKS_METRIC_COUNTER(queries, "claks_engine_queries",
                       "Queries served");
  queries.Inc();
}

int LookupDepth() {
  return static_cast<int>(
      MetricsRegistry::Default()
          .GetGauge("claks_pool_queue_depth", "Tasks queued")
          .Value());
}

}  // namespace claks
