// Fixture: using on-disk records (and naming them in comments, like
// StoredHeader here) is fine anywhere; only *defining* a struct
// Stored* outside format.h fires. A reasoned waiver also suppresses,
// e.g. for a test double that never touches a real file.
#include <cstddef>
#include <cstdint>

namespace claks {

struct StoredHeader;  // forward declaration, not a definition

size_t HeaderBytes(const StoredHeader* header) {
  return header == nullptr ? 0 : 48;
}

// claks-lint: allow(storage-format) -- test double, never serialized
struct StoredFakeForTests {
  uint32_t payload;
};

}  // namespace claks
