// Fixture: Derive takes the base generation by const reference, in both
// plain and Result-wrapped multi-line declaration forms. A qualified
// call mention (Index::Derive(...)) in a .h must not be judged as a
// declaration.
namespace claks {

class Index {
 public:
  static Index Derive(const Index& base, int delta);
  static Result<Index> DeriveCompacted(
      const Index& base,
      const Delta& delta);
};

}  // namespace claks
