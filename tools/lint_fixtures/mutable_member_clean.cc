// Fixture: every mutable member carries its synchronization story — a
// Mutex, an atomic, a once_flag, a GUARDED_BY annotation (including on a
// continuation line), or a reasoned waiver.
namespace claks {

class Cache {
 private:
  mutable Mutex mutex_;
  mutable std::atomic<int> lookups_{0};
  mutable std::once_flag init_once_;
  mutable std::vector<int> cached_values_
      CLAKS_GUARDED_BY(mutex_);
  // claks-lint: allow(mutable-member) -- fixture: written exactly once
  // under init_once_ (call_once publication), read-only afterwards.
  mutable std::unique_ptr<int> lazy_;
};

}  // namespace claks
