// Fixture: snapshots are shared as shared_ptr<const T>; the mutable
// phase is construction through make_shared before publication, which
// the rule deliberately does not match.
namespace claks {

struct Holder {
  std::shared_ptr<const EngineSnapshot> snapshot;
  std::shared_ptr<const FkJoinIndex::Base> join_base;
  std::shared_ptr<const BaseSegment> segment;
};

std::shared_ptr<const EngineSnapshot> Build() {
  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->version = 1;
  return snapshot;  // converts to const on publication
}

}  // namespace claks
