// Fixture: work goes through the pool; std::thread:: static queries
// (hardware_concurrency) are explicitly allowed.
namespace claks {

void Spawn(ThreadPool* pool) {
  size_t hw = std::thread::hardware_concurrency();
  pool->Submit([hw] { (void)hw; });
  pool->Drain();
}

}  // namespace claks
