// Fixture: a std::thread constructed outside common/thread_pool — an
// unpooled worker with no bounded queue and ad-hoc join discipline.
namespace claks {

void Spawn() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace claks
