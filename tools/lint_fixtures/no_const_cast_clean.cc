// Fixture: mutation happens on a copy the caller owns; const stays
// const. A const_cast mention in a comment must not fire.
namespace claks {

int Mutated(const int& frozen) {
  int copy = frozen;
  copy = 7;
  return copy;
}

}  // namespace claks
