// Fixture: the annotated wrapper is used instead of the raw primitive;
// a std::mutex mention in a comment must not fire, and a real use under
// a reasoned waiver must stay suppressed.
namespace claks {

class WrappedLocks {
 public:
  void Touch() CLAKS_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    ++counter_;
  }

 private:
  Mutex mutex_;
  int counter_ CLAKS_GUARDED_BY(mutex_) = 0;
  // claks-lint: allow(raw-std-mutex) -- fixture: interop with an
  // external API that hands us a std::unique_lock by reference.
  std::unique_lock<std::mutex>* borrowed_ = nullptr;
};

}  // namespace claks
