// Fixture: raw standard-library lock primitives outside common/mutex.h.
namespace claks {

class RawLocks {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
  }

 private:
  std::mutex mu_;
};

}  // namespace claks
