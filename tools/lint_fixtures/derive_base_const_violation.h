// Fixture: a Derive entry point taking its base generation by non-const
// reference — derivation must read the previous snapshot, never write
// it.
namespace claks {

class Index {
 public:
  static Index Derive(Index& base, int delta);
};

}  // namespace claks
