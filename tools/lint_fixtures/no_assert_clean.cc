// Fixture: CLAKS_CHECK stays active in release builds; static_assert is
// a compile-time check and must not trip the rule, nor may an assert()
// mention in a comment.
namespace claks {

static_assert(sizeof(int) >= 4, "ILP32 or wider");

void Check(int x) {
  CLAKS_CHECK(x > 0);  // unlike assert(), this survives NDEBUG
}

}  // namespace claks
