// Fixture: every Mutex member is referenced by an annotation — the
// member declaration, a REQUIRES contract, or an EXCLUDES contract all
// count as the mutex participating in the proof.
namespace claks {

class Guarded {
 public:
  void Bump() CLAKS_EXCLUDES(mutex_);
  void BumpLocked() CLAKS_REQUIRES(other_mutex_);

 private:
  Mutex mutex_;
  mutable claks::Mutex other_mutex_;
  int counter_ CLAKS_GUARDED_BY(mutex_) = 0;
};

}  // namespace claks
