// Fixture: a waiver with a written reason suppresses the rule and is
// itself clean.
namespace claks {

void Mutate(const int& frozen) {
  // claks-lint: allow(no-const-cast) -- fixture: adapting a legacy C
  // API that takes a non-const pointer but never writes through it.
  const_cast<int&>(frozen) = 7;
}

}  // namespace claks
