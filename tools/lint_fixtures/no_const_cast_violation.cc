// Fixture: const_cast is the one operator that lets a reader mutate a
// published snapshot behind the type system's back.
namespace claks {

void Mutate(const int& frozen) {
  const_cast<int&>(frozen) = 7;
}

}  // namespace claks
