// Fixture: a Mutex member no annotation ever references — the analysis
// cannot prove anything about it, so the lint must flag it.
namespace claks {

class Unprotected {
 private:
  Mutex mutex_;
  int counter_ = 0;  // supposedly guarded, but nothing says so
};

}  // namespace claks
