// Fixture: an on-disk record defined outside src/storage/format.h.
// Whatever this struct serializes can now drift out of sync with the
// format header's layout pins — the rule forces it back into format.h.
#include <cstdint>

namespace claks {

struct StoredWidget {
  uint32_t kind;
  uint64_t offset;
};

}  // namespace claks
