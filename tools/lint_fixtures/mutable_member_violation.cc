// Fixture: a mutable member with no synchronization story — the classic
// way a logically-const cache read from two threads becomes a data race.
namespace claks {

class Cache {
 private:
  mutable int lookups_ = 0;
};

}  // namespace claks
