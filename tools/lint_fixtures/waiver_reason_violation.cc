// Fixture: a waiver with no reason — the suppression itself is the
// finding (and the unreasoned waiver does not stop the underlying rule
// from firing either).
namespace claks {

void Mutate(const int& frozen) {
  const_cast<int&>(frozen) = 7;  // claks-lint: allow(no-const-cast)
}

}  // namespace claks
