// Fixture: a published-snapshot type held through a non-const
// shared_ptr — any holder could mutate a generation other threads are
// reading.
namespace claks {

struct Holder {
  std::shared_ptr<EngineSnapshot> snapshot;
  std::shared_ptr<FkJoinIndex::Base> join_base;
};

}  // namespace claks
