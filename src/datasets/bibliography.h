// Copyright 2026 The claks Authors.
//
// DBLP-style bibliography dataset: authors, papers, venues, an N:M
// authorship relation and an N:M *self* citation relation (PAPER cites
// PAPER). The self-relationship exercises code paths the company schema
// cannot (a middle relation whose two foreign keys reference the same
// table).

#ifndef CLAKS_DATASETS_BIBLIOGRAPHY_H_
#define CLAKS_DATASETS_BIBLIOGRAPHY_H_

#include "datasets/company_gen.h"

namespace claks {

struct BibliographyGenOptions {
  size_t num_authors = 30;
  size_t num_papers = 60;
  size_t num_venues = 5;
  /// Average authors per paper (1..2*avg).
  double avg_authors_per_paper = 2.0;
  /// Average citations per paper, Zipf-distributed over targets.
  double avg_citations_per_paper = 3.0;
  uint64_t seed = 7;
};

/// The conceptual schema: AUTHOR, PAPER, VENUE; WRITES (AUTHOR N:M PAPER),
/// PUBLISHED_IN (VENUE 1:N PAPER), CITES (PAPER N:M PAPER).
ERSchema BibliographyErSchema();

Result<GeneratedDataset> GenerateBibliographyDataset(
    const BibliographyGenOptions& options = {});

}  // namespace claks

#endif  // CLAKS_DATASETS_BIBLIOGRAPHY_H_
