// Copyright 2026 The claks Authors.

#include "datasets/company_paper.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

ERSchema CompanyPaperErSchema() {
  ERSchema er;

  EntityType department;
  department.name = "DEPARTMENT";
  department.attributes = {
      {"ID", ValueType::kString, /*is_key=*/true, /*searchable=*/false},
      {"D_NAME", ValueType::kString, false, true},
      {"D_DESCRIPTION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(department).ok());

  EntityType employee;
  employee.name = "EMPLOYEE";
  employee.attributes = {
      {"SSN", ValueType::kString, true, false},
      {"L_NAME", ValueType::kString, false, true},
      {"S_NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(employee).ok());

  EntityType dependent;
  dependent.name = "DEPENDENT";
  dependent.attributes = {
      {"ID", ValueType::kString, true, false},
      {"DEPENDENT_NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(dependent).ok());

  EntityType project;
  project.name = "PROJECT";
  project.attributes = {
      {"ID", ValueType::kString, true, false},
      {"P_NAME", ValueType::kString, false, true},
      {"P_DESCRIPTION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(project).ok());

  // Figure 1's four relationships.
  CLAKS_CHECK(
      er.AddRelationship("WORKS_FOR", "DEPARTMENT", "1:N", "EMPLOYEE").ok());
  ErAttribute hours;
  hours.name = "HOURS";
  hours.type = ValueType::kInt64;
  hours.searchable = false;
  CLAKS_CHECK(
      er.AddRelationship("WORKS_ON", "PROJECT", "N:M", "EMPLOYEE", {hours})
          .ok());
  CLAKS_CHECK(
      er.AddRelationship("CONTROLS", "DEPARTMENT", "1:N", "PROJECT").ok());
  CLAKS_CHECK(
      er.AddRelationship("DEPENDENTS_OF", "EMPLOYEE", "1:N", "DEPENDENT")
          .ok());
  return er;
}

namespace {

Result<std::unique_ptr<Database>> BuildInstance() {
  auto db = std::make_unique<Database>();

  TableSchema department(
      "DEPARTMENT",
      {{"ID", ValueType::kString, false, false},
       {"D_NAME", ValueType::kString, false, true},
       {"D_DESCRIPTION", ValueType::kString, false, true}},
      {"ID"});
  CLAKS_ASSIGN_OR_RETURN(Table * dept, db->AddTable(department));

  TableSchema project(
      "PROJECT",
      {{"ID", ValueType::kString, false, false},
       {"D_ID", ValueType::kString, false, false},
       {"P_NAME", ValueType::kString, false, true},
       {"P_DESCRIPTION", ValueType::kString, false, true}},
      {"ID"},
      {{"CONTROLS", {"D_ID"}, "DEPARTMENT", {"ID"}}});
  CLAKS_ASSIGN_OR_RETURN(Table * proj, db->AddTable(project));

  TableSchema works_for(
      "WORKS_FOR",
      {{"ESSN", ValueType::kString, false, false},
       {"P_ID", ValueType::kString, false, false},
       {"HOURS", ValueType::kInt64, false, false}},
      {"ESSN", "P_ID"},
      {{"WORKS_ON_EMPLOYEE", {"ESSN"}, "EMPLOYEE", {"SSN"}},
       {"WORKS_ON_PROJECT", {"P_ID"}, "PROJECT", {"ID"}}});
  CLAKS_ASSIGN_OR_RETURN(Table * wf, db->AddTable(works_for));

  TableSchema employee(
      "EMPLOYEE",
      {{"SSN", ValueType::kString, false, false},
       {"L_NAME", ValueType::kString, false, true},
       {"S_NAME", ValueType::kString, false, true},
       {"D_ID", ValueType::kString, false, false}},
      {"SSN"},
      {{"WORKS_FOR", {"D_ID"}, "DEPARTMENT", {"ID"}}});
  CLAKS_ASSIGN_OR_RETURN(Table * emp, db->AddTable(employee));

  TableSchema dependent(
      "DEPENDENT",
      {{"ID", ValueType::kString, false, false},
       {"ESSN", ValueType::kString, false, false},
       {"DEPENDENT_NAME", ValueType::kString, false, true}},
      {"ID"},
      {{"DEPENDENTS_OF", {"ESSN"}, "EMPLOYEE", {"SSN"}}});
  CLAKS_ASSIGN_OR_RETURN(Table * dep, db->AddTable(dependent));

  auto s = [](const char* text) { return Value::String(text); };
  auto n = [](int64_t v) { return Value::Int64(v); };

  // Figure 2 instance, verbatim.
  CLAKS_RETURN_NOT_OK(
      dept->InsertValues({s("d1"), s("Cs"),
                          s("The main topics of teaching are programming, "
                            "databases and XML.")})
          .status());
  CLAKS_RETURN_NOT_OK(
      dept->InsertValues({s("d2"), s("inf"),
                          s("The main topics of teaching are information "
                            "retrieval and XML.")})
          .status());
  CLAKS_RETURN_NOT_OK(
      dept->InsertValues({s("d3"), s("history"),
                          s("The main topics of teaching are history of "
                            "Scandinavian.")})
          .status());

  CLAKS_RETURN_NOT_OK(
      proj->InsertValues({s("p1"), s("d1"), s("DB-project"),
                          s("Different data models are integrated, such as "
                            "relational, object and XML")})
          .status());
  CLAKS_RETURN_NOT_OK(
      proj->InsertValues({s("p2"), s("d2"), s("XML and IR"),
                          s("XML offers a notation for structured "
                            "documents.")})
          .status());
  CLAKS_RETURN_NOT_OK(
      proj->InsertValues(
              {s("p3"), s("d2"), s("IR task"),
               s("Task based information retrieval")})
          .status());

  CLAKS_RETURN_NOT_OK(
      wf->InsertValues({s("e1"), s("p1"), n(40)}).status());
  CLAKS_RETURN_NOT_OK(
      wf->InsertValues({s("e2"), s("p3"), n(56)}).status());
  CLAKS_RETURN_NOT_OK(
      wf->InsertValues({s("e3"), s("p2"), n(70)}).status());
  CLAKS_RETURN_NOT_OK(
      wf->InsertValues({s("e4"), s("p3"), n(60)}).status());

  CLAKS_RETURN_NOT_OK(
      emp->InsertValues({s("e1"), s("Smith"), s("John"), s("d1")}).status());
  CLAKS_RETURN_NOT_OK(
      emp->InsertValues({s("e2"), s("Smith"), s("Barbara"), s("d2")})
          .status());
  CLAKS_RETURN_NOT_OK(
      emp->InsertValues({s("e3"), s("Miller"), s("Melina"), s("d1")})
          .status());
  CLAKS_RETURN_NOT_OK(
      emp->InsertValues({s("e4"), s("Walker"), s("John"), s("d2")})
          .status());

  CLAKS_RETURN_NOT_OK(
      dep->InsertValues({s("t1"), s("e3"), s("Alice")}).status());
  CLAKS_RETURN_NOT_OK(
      dep->InsertValues({s("t2"), s("e3"), s("Theodore")}).status());

  CLAKS_RETURN_NOT_OK(db->CheckReferentialIntegrity());
  return db;
}

ErRelationalMapping BuildMapping() {
  ErRelationalMapping mapping;
  mapping.tables["DEPARTMENT"] = TableErInfo{false, "DEPARTMENT"};
  mapping.tables["EMPLOYEE"] = TableErInfo{false, "EMPLOYEE"};
  mapping.tables["DEPENDENT"] = TableErInfo{false, "DEPENDENT"};
  mapping.tables["PROJECT"] = TableErInfo{false, "PROJECT"};
  mapping.tables["WORKS_FOR"] = TableErInfo{true, "WORKS_ON"};

  // EMPLOYEE.D_ID implements WORKS_FOR; the FK points at DEPARTMENT, the
  // relationship's left entity.
  mapping.foreign_keys[{"EMPLOYEE", 0}] = FkErInfo{"WORKS_FOR", true};
  // PROJECT.D_ID implements CONTROLS (DEPARTMENT is left).
  mapping.foreign_keys[{"PROJECT", 0}] = FkErInfo{"CONTROLS", true};
  // DEPENDENT.ESSN implements DEPENDENTS_OF (EMPLOYEE is left).
  mapping.foreign_keys[{"DEPENDENT", 0}] = FkErInfo{"DEPENDENTS_OF", true};
  // WORKS_FOR (the middle relation) implements WORKS_ON: PROJECT (left)
  // N:M EMPLOYEE (right). FK 0 is ESSN -> EMPLOYEE (right), FK 1 is
  // P_ID -> PROJECT (left).
  mapping.foreign_keys[{"WORKS_FOR", 0}] = FkErInfo{"WORKS_ON", false};
  mapping.foreign_keys[{"WORKS_FOR", 1}] = FkErInfo{"WORKS_ON", true};
  return mapping;
}

}  // namespace

Result<CompanyPaperDataset> BuildCompanyPaperDataset() {
  CompanyPaperDataset dataset;
  CLAKS_ASSIGN_OR_RETURN(dataset.db, BuildInstance());
  dataset.er_schema = CompanyPaperErSchema();
  dataset.mapping = BuildMapping();
  return dataset;
}

TupleId PaperTuple(const Database& db, const std::string& name) {
  auto find = [&](const char* table, const Row& key) {
    auto index = db.TableIndex(table);
    CLAKS_CHECK(index.has_value());
    auto row = db.table(*index).FindByPrimaryKey(key);
    CLAKS_CHECK(row.has_value());
    return TupleId{*index, static_cast<uint32_t>(*row)};
  };
  CLAKS_CHECK(!name.empty());
  if (StartsWith(name, "w_f")) {
    // w_fN names the N-th row of WORKS_FOR (1-based), matching the paper.
    size_t row = static_cast<size_t>(std::stoul(name.substr(3))) - 1;
    auto index = db.TableIndex("WORKS_FOR");
    CLAKS_CHECK(index.has_value());
    CLAKS_CHECK_LT(row, db.table(*index).num_rows());
    return TupleId{*index, static_cast<uint32_t>(row)};
  }
  switch (name[0]) {
    case 'd':
      return find("DEPARTMENT", {Value::String(name)});
    case 'p':
      return find("PROJECT", {Value::String(name)});
    case 'e':
      return find("EMPLOYEE", {Value::String(name)});
    case 't':
      return find("DEPENDENT", {Value::String(name)});
    default:
      CLAKS_CHECK(false);
  }
  return TupleId{};
}

}  // namespace claks
