// Copyright 2026 The claks Authors.

#include "datasets/movies.h"

#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace claks {

namespace {

const char* kAdjectives[] = {"silent", "dark",  "endless", "golden",
                             "broken", "hidden", "final",  "northern"};
const char* kNouns[] = {"river",  "city",   "winter", "promise",
                        "garden", "signal", "harbor", "empire"};
const char* kPeople[] = {"Aino",  "Eero",  "Grace", "Marlon", "Ingrid",
                         "Akira", "Sofia", "Viktor", "Greta",  "Omar"};
const char* kGenres[] = {"drama",    "comedy", "thriller", "noir",
                         "western",  "scifi",  "romance",  "documentary"};
const char* kRoles[] = {"lead", "support", "cameo", "villain", "narrator"};

}  // namespace

ERSchema MoviesErSchema() {
  ERSchema er;

  EntityType movie;
  movie.name = "MOVIE";
  movie.attributes = {
      {"ID", ValueType::kString, true, false},
      {"TITLE", ValueType::kString, false, true},
      {"YEAR", ValueType::kInt64, false, false},
      {"SYNOPSIS", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(movie).ok());

  EntityType person;
  person.name = "PERSON";
  person.attributes = {
      {"ID", ValueType::kString, true, false},
      {"NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(person).ok());

  EntityType studio;
  studio.name = "STUDIO";
  studio.attributes = {
      {"ID", ValueType::kString, true, false},
      {"NAME", ValueType::kString, false, true},
      {"COUNTRY", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(studio).ok());

  EntityType genre;
  genre.name = "GENRE";
  genre.attributes = {
      {"ID", ValueType::kString, true, false},
      {"NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(genre).ok());

  ErAttribute role;
  role.name = "ROLE";
  role.type = ValueType::kString;
  role.searchable = true;
  CLAKS_CHECK(
      er.AddRelationship("ACTS_IN", "PERSON", "N:M", "MOVIE", {role}).ok());
  CLAKS_CHECK(er.AddRelationship("DIRECTS", "PERSON", "1:N", "MOVIE").ok());
  CLAKS_CHECK(
      er.AddRelationship("PRODUCED_BY", "STUDIO", "1:N", "MOVIE").ok());
  CLAKS_CHECK(er.AddRelationship("HAS_GENRE", "GENRE", "N:M", "MOVIE").ok());
  return er;
}

Result<GeneratedDataset> GenerateMoviesDataset(
    const MoviesGenOptions& options) {
  GeneratedDataset out;
  out.er_schema = MoviesErSchema();
  CLAKS_ASSIGN_OR_RETURN(GeneratedRelationalSchema generated,
                         GenerateRelationalSchema(out.er_schema));
  out.mapping = std::move(generated.mapping);
  out.db = std::make_unique<Database>();
  for (TableSchema& schema : generated.tables) {
    CLAKS_RETURN_NOT_OK(out.db->AddTable(std::move(schema)).status());
  }

  Table* movie = out.db->FindMutableTable("MOVIE");
  Table* person = out.db->FindMutableTable("PERSON");
  Table* studio = out.db->FindMutableTable("STUDIO");
  Table* genre = out.db->FindMutableTable("GENRE");
  Table* acts_in = out.db->FindMutableTable("ACTS_IN");
  Table* has_genre = out.db->FindMutableTable("HAS_GENRE");
  CLAKS_CHECK(movie != nullptr && person != nullptr && studio != nullptr &&
              genre != nullptr && acts_in != nullptr &&
              has_genre != nullptr);

  Rng rng(options.seed);
  auto s = [](std::string text) { return Value::String(std::move(text)); };

  for (size_t g = 0; g < options.num_genres; ++g) {
    CLAKS_RETURN_NOT_OK(
        genre
            ->InsertValues({s(StrFormat("g%zu", g + 1)),
                            s(kGenres[g % std::size(kGenres)])})
            .status());
  }
  for (size_t st = 0; st < options.num_studios; ++st) {
    CLAKS_RETURN_NOT_OK(
        studio
            ->InsertValues({s(StrFormat("s%zu", st + 1)),
                            s(StrFormat("studio-%zu", st + 1)),
                            s(st % 2 == 0 ? "finland" : "usa")})
            .status());
  }
  for (size_t p = 0; p < options.num_people; ++p) {
    CLAKS_RETURN_NOT_OK(
        person
            ->InsertValues(
                {s(StrFormat("per%zu", p + 1)),
                 s(StrFormat("%s %zu", kPeople[p % std::size(kPeople)],
                             p + 1))})
            .status());
  }

  // MOVIE columns: ID, TITLE, YEAR, SYNOPSIS, then FKs in relationship
  // declaration order: DIRECTS (PERSON), PRODUCED_BY (STUDIO).
  for (size_t m = 0; m < options.num_movies; ++m) {
    std::string title =
        StrFormat("the %s %s", kAdjectives[rng.Index(std::size(kAdjectives))],
                  kNouns[rng.Index(std::size(kNouns))]);
    std::string synopsis =
        StrFormat("a story of the %s %s",
                  kAdjectives[rng.Index(std::size(kAdjectives))],
                  kNouns[rng.Index(std::size(kNouns))]);
    CLAKS_RETURN_NOT_OK(
        movie
            ->InsertValues(
                {s(StrFormat("m%zu", m + 1)), s(title),
                 Value::Int64(static_cast<int64_t>(
                     1960 + rng.Index(65))),
                 s(synopsis),
                 s(StrFormat("per%zu", 1 + rng.Index(options.num_people))),
                 s(StrFormat("s%zu", 1 + rng.Index(options.num_studios)))})
            .status());
  }

  size_t max_cast =
      static_cast<size_t>(2.0 * options.avg_cast_per_movie + 0.5);
  for (size_t m = 0; m < options.num_movies; ++m) {
    size_t count = 1 + rng.Index(std::max<size_t>(1, max_cast));
    std::set<std::string> cast;
    for (size_t k = 0; k < count; ++k) {
      std::string pid =
          StrFormat("per%zu", 1 + rng.Index(options.num_people));
      if (!cast.insert(pid).second) continue;
      CLAKS_RETURN_NOT_OK(
          acts_in
              ->InsertValues({s(pid), s(StrFormat("m%zu", m + 1)),
                              s(kRoles[rng.Index(std::size(kRoles))])})
              .status());
    }
    size_t genres = 1 + rng.Index(2);
    std::set<std::string> chosen;
    for (size_t k = 0; k < genres; ++k) {
      std::string gid = StrFormat("g%zu", 1 + rng.Index(options.num_genres));
      if (!chosen.insert(gid).second) continue;
      CLAKS_RETURN_NOT_OK(
          has_genre->InsertValues({s(gid), s(StrFormat("m%zu", m + 1))})
              .status());
    }
  }

  CLAKS_RETURN_NOT_OK(out.db->CheckReferentialIntegrity());
  return out;
}

}  // namespace claks
