// Copyright 2026 The claks Authors.
//
// Deterministic, scalable synthetic company database with the paper's
// conceptual schema. The paper evaluates only on its 9-tuple example;
// this generator exercises the same code paths at realistic sizes for
// tests and benchmarks (see DESIGN.md "Substitutions").

#ifndef CLAKS_DATASETS_COMPANY_GEN_H_
#define CLAKS_DATASETS_COMPANY_GEN_H_

#include <memory>

#include "common/result.h"
#include "er/er_to_relational.h"
#include "relational/database.h"

namespace claks {

struct CompanyGenOptions {
  size_t num_departments = 5;
  size_t employees_per_department = 10;
  size_t projects_per_department = 3;
  /// Expected number of projects each employee works on (Poisson-ish,
  /// sampled uniformly in [0, 2*avg]).
  double avg_assignments_per_employee = 1.5;
  /// Probability an employee has 1..3 dependents.
  double dependent_probability = 0.3;
  uint64_t seed = 42;

  /// Options scaled `factor`x from the defaults: the department count
  /// grows linearly while per-department sizes stay fixed, so total rows
  /// and FK edges scale linearly with `factor`. The scale benchmark
  /// (bench/bench_scale.cc) and the join-index regression tests use these
  /// rungs; factor 0 is treated as 1.
  static CompanyGenOptions AtScale(size_t factor);
};

struct GeneratedDataset {
  std::unique_ptr<Database> db;
  ERSchema er_schema;
  ErRelationalMapping mapping;
};

/// Builds the dataset. Same options + seed always produce the same
/// database. Department/project descriptions are drawn from a topic
/// vocabulary so multi-table keyword matches (the paper's "XML" case)
/// occur naturally.
Result<GeneratedDataset> GenerateCompanyDataset(
    const CompanyGenOptions& options = {});

}  // namespace claks

#endif  // CLAKS_DATASETS_COMPANY_GEN_H_
