// Copyright 2026 The claks Authors.
//
// IMDB-style movie dataset: a wider schema (four entity types, two N:M and
// two 1:N relationships) with a relationship attribute (ROLE on ACTS_IN),
// used by examples and benchmarks.

#ifndef CLAKS_DATASETS_MOVIES_H_
#define CLAKS_DATASETS_MOVIES_H_

#include "datasets/company_gen.h"

namespace claks {

struct MoviesGenOptions {
  size_t num_movies = 40;
  size_t num_people = 50;
  size_t num_studios = 6;
  size_t num_genres = 8;
  double avg_cast_per_movie = 4.0;
  uint64_t seed = 11;
};

/// MOVIE, PERSON, STUDIO, GENRE; ACTS_IN (PERSON N:M MOVIE, ROLE),
/// DIRECTS (PERSON 1:N MOVIE), PRODUCED_BY (STUDIO 1:N MOVIE),
/// HAS_GENRE (GENRE N:M MOVIE).
ERSchema MoviesErSchema();

Result<GeneratedDataset> GenerateMoviesDataset(
    const MoviesGenOptions& options = {});

}  // namespace claks

#endif  // CLAKS_DATASETS_MOVIES_H_
