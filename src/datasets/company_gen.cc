// Copyright 2026 The claks Authors.

#include "datasets/company_gen.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace claks {

namespace {

const char* kTopics[] = {"xml",       "databases",   "retrieval",
                         "networks",  "compilers",   "graphics",
                         "security",  "statistics",  "robotics",
                         "semantics", "indexing",    "ranking"};
const char* kSurnames[] = {"Smith",  "Miller", "Walker", "Johnson",
                           "Virtanen", "Korhonen", "Nieminen", "Laine",
                           "Garcia", "Kim",    "Chen",   "Novak"};
const char* kGivenNames[] = {"John",  "Barbara", "Melina", "Alice",
                             "Theodore", "Maria",  "Juha",   "Anna",
                             "Pekka", "Liisa",   "Igor",   "Wei"};

std::string TopicSentence(Rng* rng, size_t words) {
  std::string out = "research on";
  for (size_t i = 0; i < words; ++i) {
    out += " ";
    out += kTopics[rng->Index(std::size(kTopics))];
  }
  return out;
}

ERSchema CompanyGenErSchema() {
  ERSchema er;
  EntityType department;
  department.name = "DEPARTMENT";
  department.attributes = {
      {"ID", ValueType::kString, true, false},
      {"D_NAME", ValueType::kString, false, true},
      {"D_DESCRIPTION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(department).ok());

  EntityType employee;
  employee.name = "EMPLOYEE";
  employee.attributes = {
      {"SSN", ValueType::kString, true, false},
      {"L_NAME", ValueType::kString, false, true},
      {"S_NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(employee).ok());

  EntityType dependent;
  dependent.name = "DEPENDENT";
  dependent.attributes = {
      {"ID", ValueType::kString, true, false},
      {"DEPENDENT_NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(dependent).ok());

  EntityType project;
  project.name = "PROJECT";
  project.attributes = {
      {"ID", ValueType::kString, true, false},
      {"P_NAME", ValueType::kString, false, true},
      {"P_DESCRIPTION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(project).ok());

  ErAttribute hours;
  hours.name = "HOURS";
  hours.type = ValueType::kInt64;
  hours.searchable = false;
  CLAKS_CHECK(
      er.AddRelationship("WORKS_FOR", "DEPARTMENT", "1:N", "EMPLOYEE").ok());
  CLAKS_CHECK(
      er.AddRelationship("WORKS_ON", "PROJECT", "N:M", "EMPLOYEE", {hours})
          .ok());
  CLAKS_CHECK(
      er.AddRelationship("CONTROLS", "DEPARTMENT", "1:N", "PROJECT").ok());
  CLAKS_CHECK(
      er.AddRelationship("DEPENDENTS_OF", "EMPLOYEE", "1:N", "DEPENDENT")
          .ok());
  return er;
}

}  // namespace

CompanyGenOptions CompanyGenOptions::AtScale(size_t factor) {
  CompanyGenOptions options;
  options.num_departments *= std::max<size_t>(factor, 1);
  return options;
}

Result<GeneratedDataset> GenerateCompanyDataset(
    const CompanyGenOptions& options) {
  GeneratedDataset out;
  out.er_schema = CompanyGenErSchema();
  CLAKS_ASSIGN_OR_RETURN(GeneratedRelationalSchema generated,
                         GenerateRelationalSchema(out.er_schema));
  out.mapping = std::move(generated.mapping);
  out.db = std::make_unique<Database>();
  for (TableSchema& schema : generated.tables) {
    CLAKS_RETURN_NOT_OK(out.db->AddTable(std::move(schema)).status());
  }

  Table* dept = out.db->FindMutableTable("DEPARTMENT");
  Table* emp = out.db->FindMutableTable("EMPLOYEE");
  Table* dependent = out.db->FindMutableTable("DEPENDENT");
  Table* proj = out.db->FindMutableTable("PROJECT");
  Table* works_on = out.db->FindMutableTable("WORKS_ON");
  CLAKS_CHECK(dept != nullptr && emp != nullptr && dependent != nullptr &&
              proj != nullptr && works_on != nullptr);

  Rng rng(options.seed);
  auto s = [](std::string text) { return Value::String(std::move(text)); };

  std::vector<std::string> dept_ids;
  std::vector<std::string> project_ids;
  std::vector<std::string> employee_ids;

  for (size_t d = 0; d < options.num_departments; ++d) {
    std::string id = StrFormat("d%zu", d + 1);
    CLAKS_RETURN_NOT_OK(
        dept->InsertValues({s(id), s(StrFormat("dept%zu", d + 1)),
                            s(TopicSentence(&rng, 3))})
            .status());
    dept_ids.push_back(id);
  }

  size_t project_counter = 0;
  std::vector<std::string> project_dept;
  for (const std::string& dept_id : dept_ids) {
    for (size_t p = 0; p < options.projects_per_department; ++p) {
      std::string id = StrFormat("p%zu", ++project_counter);
      CLAKS_RETURN_NOT_OK(
          proj->InsertValues({s(id),
                              s(StrFormat("project-%zu", project_counter)),
                              s(TopicSentence(&rng, 4)), s(dept_id)})
              .status());
      project_ids.push_back(id);
      project_dept.push_back(dept_id);
    }
  }

  size_t employee_counter = 0;
  size_t dependent_counter = 0;
  for (const std::string& dept_id : dept_ids) {
    for (size_t e = 0; e < options.employees_per_department; ++e) {
      std::string ssn = StrFormat("e%zu", ++employee_counter);
      CLAKS_RETURN_NOT_OK(
          emp->InsertValues(
                 {s(ssn), s(kSurnames[rng.Index(std::size(kSurnames))]),
                  s(kGivenNames[rng.Index(std::size(kGivenNames))]),
                  s(dept_id)})
              .status());
      employee_ids.push_back(ssn);

      if (rng.Bernoulli(options.dependent_probability)) {
        size_t count = 1 + rng.Index(3);
        for (size_t k = 0; k < count; ++k) {
          CLAKS_RETURN_NOT_OK(
              dependent
                  ->InsertValues(
                      {s(StrFormat("t%zu", ++dependent_counter)),
                       s(kGivenNames[rng.Index(std::size(kGivenNames))]),
                       s(ssn)})
                  .status());
        }
      }
    }
  }

  // Works-on assignments: each employee joins up to 2*avg projects,
  // preferring projects of a random department (clustered collaboration).
  if (!project_ids.empty()) {
    size_t max_assignments = static_cast<size_t>(
        2.0 * options.avg_assignments_per_employee + 0.5);
    for (const std::string& ssn : employee_ids) {
      size_t count = max_assignments == 0
                         ? 0
                         : static_cast<size_t>(
                               rng.Uniform(0, static_cast<int64_t>(
                                                  max_assignments)));
      std::set<std::string> joined;
      for (size_t k = 0; k < count; ++k) {
        const std::string& pid = project_ids[rng.Index(project_ids.size())];
        if (!joined.insert(pid).second) continue;
        CLAKS_RETURN_NOT_OK(
            works_on
                ->InsertValues({s(pid), s(ssn),
                                Value::Int64(rng.Uniform(5, 60))})
                .status());
      }
    }
  }

  CLAKS_RETURN_NOT_OK(out.db->CheckReferentialIntegrity());
  return out;
}

}  // namespace claks
