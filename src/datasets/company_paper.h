// Copyright 2026 The claks Authors.
//
// The paper's running example, reproduced exactly: the ER schema of
// Figure 1 and the database schema + instance of Figure 2.
//
// Naming quirk preserved from the paper: the ER relationship between
// PROJECT and EMPLOYEE is called WORKS_ON in Figure 1 but its middle
// relation in Figure 2 is named WORKS_FOR (with attributes ESSN, P_ID,
// HOURS); the DEPARTMENT-EMPLOYEE relationship WORKS_FOR is implemented by
// the D_ID foreign key of EMPLOYEE.

#ifndef CLAKS_DATASETS_COMPANY_PAPER_H_
#define CLAKS_DATASETS_COMPANY_PAPER_H_

#include <memory>

#include "common/result.h"
#include "er/er_to_relational.h"
#include "relational/database.h"

namespace claks {

/// The paper's full example: database, conceptual schema and mapping.
struct CompanyPaperDataset {
  std::unique_ptr<Database> db;
  ERSchema er_schema;
  ErRelationalMapping mapping;
};

/// The ER schema of Figure 1 (with the attributes Figure 2 reveals).
ERSchema CompanyPaperErSchema();

/// Figure 2: schema and instance (3 departments, 3 projects, 4 works_for
/// rows, 4 employees, 2 dependents).
Result<CompanyPaperDataset> BuildCompanyPaperDataset();

/// Convenience lookups into the instance by the paper's tuple names
/// ("d1".."d3", "p1".."p3", "e1".."e4", "t1".."t2", "w_f1".."w_f4").
/// CLAKS_CHECKs that the name exists.
TupleId PaperTuple(const Database& db, const std::string& name);

}  // namespace claks

#endif  // CLAKS_DATASETS_COMPANY_PAPER_H_
