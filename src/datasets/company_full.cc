// Copyright 2026 The claks Authors.

#include "datasets/company_full.h"

#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace claks {

namespace {

const char* kTopics[] = {"xml",      "databases", "retrieval", "networks",
                         "security", "graphics",  "robotics",  "semantics"};
const char* kSurnames[] = {"Smith", "Wong",  "Zelaya", "Wallace",
                           "Narayan", "English", "Jabbar", "Borg"};
const char* kGivenNames[] = {"John",  "Franklin", "Alicia", "Jennifer",
                             "Ramesh", "Joyce",   "Ahmad",  "James"};
const char* kCities[] = {"houston", "stafford", "bellaire", "sugarland",
                         "tampere", "helsinki"};

}  // namespace

ERSchema CompanyFullErSchema() {
  ERSchema er;

  EntityType department;
  department.name = "DEPARTMENT";
  department.attributes = {
      {"DNUMBER", ValueType::kString, true, false},
      {"DNAME", ValueType::kString, false, true},
      {"D_DESCRIPTION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(department).ok());

  EntityType employee;
  employee.name = "EMPLOYEE";
  employee.attributes = {
      {"SSN", ValueType::kString, true, false},
      {"FNAME", ValueType::kString, false, true},
      {"LNAME", ValueType::kString, false, true},
      {"SALARY", ValueType::kInt64, false, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(employee).ok());

  EntityType project;
  project.name = "PROJECT";
  project.attributes = {
      {"PNUMBER", ValueType::kString, true, false},
      {"PNAME", ValueType::kString, false, true},
      {"P_DESCRIPTION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(project).ok());

  EntityType dependent;
  dependent.name = "DEPENDENT";
  dependent.attributes = {
      {"ID", ValueType::kString, true, false},
      {"DEPENDENT_NAME", ValueType::kString, false, true},
      {"RELATIONSHIP", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(dependent).ok());

  EntityType location;
  location.name = "LOCATION";
  location.attributes = {
      {"ID", ValueType::kString, true, false},
      {"CITY", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(location).ok());

  ErAttribute hours;
  hours.name = "HOURS";
  hours.type = ValueType::kInt64;
  hours.searchable = false;

  CLAKS_CHECK(
      er.AddRelationship("WORKS_FOR", "DEPARTMENT", "1:N", "EMPLOYEE").ok());
  CLAKS_CHECK(
      er.AddRelationship("WORKS_ON", "PROJECT", "N:M", "EMPLOYEE", {hours})
          .ok());
  CLAKS_CHECK(
      er.AddRelationship("CONTROLS", "DEPARTMENT", "1:N", "PROJECT").ok());
  CLAKS_CHECK(
      er.AddRelationship("DEPENDENTS_OF", "EMPLOYEE", "1:N", "DEPENDENT")
          .ok());
  CLAKS_CHECK(
      er.AddRelationship("MANAGES", "EMPLOYEE", "1:1", "DEPARTMENT").ok());
  CLAKS_CHECK(
      er.AddRelationship("SUPERVISES", "EMPLOYEE", "1:N", "EMPLOYEE").ok());
  CLAKS_CHECK(
      er.AddRelationship("LOCATED_AT", "DEPARTMENT", "N:M", "LOCATION")
          .ok());
  return er;
}

Result<GeneratedDataset> GenerateCompanyFullDataset(
    const CompanyFullOptions& options) {
  GeneratedDataset out;
  out.er_schema = CompanyFullErSchema();

  // Hand-built relational schema: the generic generator cannot emit the
  // self 1:N (SUPERVISES), so every table is declared explicitly, with the
  // mapping alongside.
  auto db = std::make_unique<Database>();

  CLAKS_RETURN_NOT_OK(
      db->AddTable(TableSchema(
                       "DEPARTMENT",
                       {{"DNUMBER", ValueType::kString, false, false},
                        {"DNAME", ValueType::kString, false, true},
                        {"D_DESCRIPTION", ValueType::kString, false, true},
                        {"MGR_SSN", ValueType::kString, true, false}},
                       {"DNUMBER"},
                       {{"MANAGES", {"MGR_SSN"}, "EMPLOYEE", {"SSN"}}}))
          .status());
  CLAKS_RETURN_NOT_OK(
      db->AddTable(TableSchema(
                       "EMPLOYEE",
                       {{"SSN", ValueType::kString, false, false},
                        {"FNAME", ValueType::kString, false, true},
                        {"LNAME", ValueType::kString, false, true},
                        {"SALARY", ValueType::kInt64, true, false},
                        {"DNO", ValueType::kString, false, false},
                        {"SUPER_SSN", ValueType::kString, true, false}},
                       {"SSN"},
                       {{"WORKS_FOR", {"DNO"}, "DEPARTMENT", {"DNUMBER"}},
                        {"SUPERVISES", {"SUPER_SSN"}, "EMPLOYEE", {"SSN"}}}))
          .status());
  CLAKS_RETURN_NOT_OK(
      db->AddTable(TableSchema(
                       "PROJECT",
                       {{"PNUMBER", ValueType::kString, false, false},
                        {"PNAME", ValueType::kString, false, true},
                        {"P_DESCRIPTION", ValueType::kString, false, true},
                        {"DNUM", ValueType::kString, false, false}},
                       {"PNUMBER"},
                       {{"CONTROLS", {"DNUM"}, "DEPARTMENT", {"DNUMBER"}}}))
          .status());
  CLAKS_RETURN_NOT_OK(
      db->AddTable(TableSchema(
                       "WORKS_ON",
                       {{"ESSN", ValueType::kString, false, false},
                        {"PNO", ValueType::kString, false, false},
                        {"HOURS", ValueType::kInt64, false, false}},
                       {"ESSN", "PNO"},
                       {{"WORKS_ON_E", {"ESSN"}, "EMPLOYEE", {"SSN"}},
                        {"WORKS_ON_P", {"PNO"}, "PROJECT", {"PNUMBER"}}}))
          .status());
  CLAKS_RETURN_NOT_OK(
      db->AddTable(
            TableSchema(
                "DEPENDENT",
                {{"ID", ValueType::kString, false, false},
                 {"ESSN", ValueType::kString, false, false},
                 {"DEPENDENT_NAME", ValueType::kString, false, true},
                 {"RELATIONSHIP", ValueType::kString, false, true}},
                {"ID"},
                {{"DEPENDENTS_OF", {"ESSN"}, "EMPLOYEE", {"SSN"}}}))
          .status());
  CLAKS_RETURN_NOT_OK(
      db->AddTable(TableSchema(
                       "LOCATION",
                       {{"ID", ValueType::kString, false, false},
                        {"CITY", ValueType::kString, false, true}},
                       {"ID"}))
          .status());
  CLAKS_RETURN_NOT_OK(
      db->AddTable(TableSchema(
                       "DEPT_LOCATIONS",
                       {{"DNUMBER", ValueType::kString, false, false},
                        {"LID", ValueType::kString, false, false}},
                       {"DNUMBER", "LID"},
                       {{"LOC_D", {"DNUMBER"}, "DEPARTMENT", {"DNUMBER"}},
                        {"LOC_L", {"LID"}, "LOCATION", {"ID"}}}))
          .status());

  // Mapping.
  out.mapping.tables["DEPARTMENT"] = TableErInfo{false, "DEPARTMENT"};
  out.mapping.tables["EMPLOYEE"] = TableErInfo{false, "EMPLOYEE"};
  out.mapping.tables["PROJECT"] = TableErInfo{false, "PROJECT"};
  out.mapping.tables["DEPENDENT"] = TableErInfo{false, "DEPENDENT"};
  out.mapping.tables["LOCATION"] = TableErInfo{false, "LOCATION"};
  out.mapping.tables["WORKS_ON"] = TableErInfo{true, "WORKS_ON"};
  out.mapping.tables["DEPT_LOCATIONS"] = TableErInfo{true, "LOCATED_AT"};
  // DEPARTMENT.MGR_SSN -> EMPLOYEE: MANAGES, EMPLOYEE is left.
  out.mapping.foreign_keys[{"DEPARTMENT", 0}] = FkErInfo{"MANAGES", true};
  // EMPLOYEE.DNO -> DEPARTMENT: WORKS_FOR, DEPARTMENT is left.
  out.mapping.foreign_keys[{"EMPLOYEE", 0}] = FkErInfo{"WORKS_FOR", true};
  // EMPLOYEE.SUPER_SSN -> EMPLOYEE: SUPERVISES, supervisor is left.
  out.mapping.foreign_keys[{"EMPLOYEE", 1}] = FkErInfo{"SUPERVISES", true};
  // PROJECT.DNUM -> DEPARTMENT: CONTROLS, DEPARTMENT is left.
  out.mapping.foreign_keys[{"PROJECT", 0}] = FkErInfo{"CONTROLS", true};
  // WORKS_ON middle: fk0 -> EMPLOYEE (right), fk1 -> PROJECT (left).
  out.mapping.foreign_keys[{"WORKS_ON", 0}] = FkErInfo{"WORKS_ON", false};
  out.mapping.foreign_keys[{"WORKS_ON", 1}] = FkErInfo{"WORKS_ON", true};
  out.mapping.foreign_keys[{"DEPENDENT", 0}] =
      FkErInfo{"DEPENDENTS_OF", true};
  // DEPT_LOCATIONS middle: fk0 -> DEPARTMENT (left), fk1 -> LOCATION
  // (right).
  out.mapping.foreign_keys[{"DEPT_LOCATIONS", 0}] =
      FkErInfo{"LOCATED_AT", true};
  out.mapping.foreign_keys[{"DEPT_LOCATIONS", 1}] =
      FkErInfo{"LOCATED_AT", false};

  // --- Instance ------------------------------------------------------------
  Rng rng(options.seed);
  auto s = [](std::string text) { return Value::String(std::move(text)); };

  Table* dept = db->FindMutableTable("DEPARTMENT");
  Table* emp = db->FindMutableTable("EMPLOYEE");
  Table* proj = db->FindMutableTable("PROJECT");
  Table* works_on = db->FindMutableTable("WORKS_ON");
  Table* dependent = db->FindMutableTable("DEPENDENT");
  Table* location = db->FindMutableTable("LOCATION");
  Table* dept_loc = db->FindMutableTable("DEPT_LOCATIONS");

  // Departments (managers patched in after employees exist: MGR_SSN is
  // nullable, so insert NULL first and rebuild later is unnecessary — we
  // insert departments after employees instead; but employees need DNO.
  // Standard bootstrap: departments first with NULL manager, employees
  // second, then a second pass is impossible (tables are append-only), so
  // managers are chosen deterministically as the first employee id of the
  // department, which is known in advance from the id scheme.)
  size_t employee_counter = 0;
  for (size_t d = 0; d < options.num_departments; ++d) {
    std::string topic1 = kTopics[rng.Index(std::size(kTopics))];
    std::string topic2 = kTopics[rng.Index(std::size(kTopics))];
    // First employee of department d gets SSN "e<counter+1>".
    std::string mgr =
        StrFormat("e%zu", d * options.employees_per_department + 1);
    CLAKS_RETURN_NOT_OK(
        dept->InsertValues({s(StrFormat("d%zu", d + 1)),
                            s(StrFormat("dept%zu", d + 1)),
                            s("research on " + topic1 + " and " + topic2),
                            options.employees_per_department > 0
                                ? s(mgr)
                                : Value::Null()})
            .status());
  }

  size_t dependent_counter = 0;
  for (size_t d = 0; d < options.num_departments; ++d) {
    std::string dno = StrFormat("d%zu", d + 1);
    std::string first_in_dept;
    for (size_t e = 0; e < options.employees_per_department; ++e) {
      std::string ssn = StrFormat("e%zu", ++employee_counter);
      if (e == 0) first_in_dept = ssn;
      // The department's first employee (its manager) has no supervisor;
      // everyone else is supervised by the manager.
      Value supervisor = e == 0 ? Value::Null() : Value::String(first_in_dept);
      CLAKS_RETURN_NOT_OK(
          emp->InsertValues(
                 {s(ssn), s(kGivenNames[rng.Index(std::size(kGivenNames))]),
                  s(kSurnames[rng.Index(std::size(kSurnames))]),
                  Value::Int64(30000 + 1000 * rng.Uniform(0, 40)), s(dno),
                  std::move(supervisor)})
              .status());
      if (rng.Bernoulli(options.dependent_probability)) {
        CLAKS_RETURN_NOT_OK(
            dependent
                ->InsertValues(
                    {s(StrFormat("t%zu", ++dependent_counter)), s(ssn),
                     s(kGivenNames[rng.Index(std::size(kGivenNames))]),
                     s(rng.Bernoulli(0.5) ? "spouse" : "child")})
                .status());
      }
    }
  }

  size_t project_counter = 0;
  std::vector<std::string> project_ids;
  for (size_t d = 0; d < options.num_departments; ++d) {
    for (size_t p = 0; p < options.projects_per_department; ++p) {
      std::string id = StrFormat("p%zu", ++project_counter);
      CLAKS_RETURN_NOT_OK(
          proj->InsertValues(
                  {s(id), s(StrFormat("project-%zu", project_counter)),
                   s(std::string("builds ") +
                     kTopics[rng.Index(std::size(kTopics))]),
                   s(StrFormat("d%zu", d + 1))})
              .status());
      project_ids.push_back(id);
    }
  }

  size_t max_assignments = static_cast<size_t>(
      2.0 * options.avg_assignments_per_employee + 0.5);
  for (size_t e = 1; e <= employee_counter && !project_ids.empty(); ++e) {
    size_t count =
        max_assignments == 0 ? 0 : rng.Index(max_assignments + 1);
    std::set<std::string> joined;
    for (size_t k = 0; k < count; ++k) {
      const std::string& pid = project_ids[rng.Index(project_ids.size())];
      if (!joined.insert(pid).second) continue;
      CLAKS_RETURN_NOT_OK(
          works_on
              ->InsertValues({s(StrFormat("e%zu", e)), s(pid),
                              Value::Int64(rng.Uniform(5, 40))})
              .status());
    }
  }

  size_t location_counter = 0;
  for (size_t c = 0; c < std::size(kCities); ++c) {
    CLAKS_RETURN_NOT_OK(
        location
            ->InsertValues(
                {s(StrFormat("l%zu", ++location_counter)), s(kCities[c])})
            .status());
  }
  for (size_t d = 0; d < options.num_departments; ++d) {
    std::set<std::string> chosen;
    for (size_t k = 0; k < options.locations_per_department; ++k) {
      std::string lid = StrFormat("l%zu", 1 + rng.Index(location_counter));
      if (!chosen.insert(lid).second) continue;
      CLAKS_RETURN_NOT_OK(
          dept_loc->InsertValues({s(StrFormat("d%zu", d + 1)), s(lid)})
              .status());
    }
  }

  CLAKS_RETURN_NOT_OK(db->CheckReferentialIntegrity());
  out.db = std::move(db);
  return out;
}

}  // namespace claks
