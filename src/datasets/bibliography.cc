// Copyright 2026 The claks Authors.

#include "datasets/bibliography.h"

#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace claks {

namespace {

const char* kAreas[] = {"keyword",  "search",    "relational", "databases",
                        "xml",      "retrieval", "ranking",    "graphs",
                        "steiner",  "trees",     "indexing",   "semantics"};
const char* kAuthorNames[] = {"Vainio",   "Junkkari", "Kekalainen",
                              "Hristidis", "Aditya",   "Bhalotia",
                              "Kargar",   "Zeng",     "Li",
                              "Bergamaschi", "Guerra",  "Simonini"};
const char* kVenueNames[] = {"VLDB", "SIGMOD", "EDBT", "ICDE", "WWW"};

}  // namespace

ERSchema BibliographyErSchema() {
  ERSchema er;

  EntityType author;
  author.name = "AUTHOR";
  author.attributes = {
      {"ID", ValueType::kString, true, false},
      {"NAME", ValueType::kString, false, true},
      {"AFFILIATION", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(author).ok());

  EntityType paper;
  paper.name = "PAPER";
  paper.attributes = {
      {"ID", ValueType::kString, true, false},
      {"TITLE", ValueType::kString, false, true},
      {"ABSTRACT", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(paper).ok());

  EntityType venue;
  venue.name = "VENUE";
  venue.attributes = {
      {"ID", ValueType::kString, true, false},
      {"NAME", ValueType::kString, false, true},
  };
  CLAKS_CHECK(er.AddEntityType(venue).ok());

  CLAKS_CHECK(er.AddRelationship("WRITES", "AUTHOR", "N:M", "PAPER").ok());
  CLAKS_CHECK(
      er.AddRelationship("PUBLISHED_IN", "VENUE", "1:N", "PAPER").ok());
  CLAKS_CHECK(er.AddRelationship("CITES", "PAPER", "N:M", "PAPER").ok());
  return er;
}

Result<GeneratedDataset> GenerateBibliographyDataset(
    const BibliographyGenOptions& options) {
  GeneratedDataset out;
  out.er_schema = BibliographyErSchema();
  CLAKS_ASSIGN_OR_RETURN(GeneratedRelationalSchema generated,
                         GenerateRelationalSchema(out.er_schema));
  out.mapping = std::move(generated.mapping);
  out.db = std::make_unique<Database>();
  for (TableSchema& schema : generated.tables) {
    CLAKS_RETURN_NOT_OK(out.db->AddTable(std::move(schema)).status());
  }

  Table* author = out.db->FindMutableTable("AUTHOR");
  Table* paper = out.db->FindMutableTable("PAPER");
  Table* venue = out.db->FindMutableTable("VENUE");
  Table* writes = out.db->FindMutableTable("WRITES");
  Table* cites = out.db->FindMutableTable("CITES");
  CLAKS_CHECK(author != nullptr && paper != nullptr && venue != nullptr &&
              writes != nullptr && cites != nullptr);

  Rng rng(options.seed);
  auto s = [](std::string text) { return Value::String(std::move(text)); };

  for (size_t v = 0; v < options.num_venues; ++v) {
    CLAKS_RETURN_NOT_OK(
        venue
            ->InsertValues({s(StrFormat("v%zu", v + 1)),
                            s(kVenueNames[v % std::size(kVenueNames)])})
            .status());
  }
  for (size_t a = 0; a < options.num_authors; ++a) {
    CLAKS_RETURN_NOT_OK(
        author
            ->InsertValues(
                {s(StrFormat("a%zu", a + 1)),
                 s(StrFormat("%s %zu",
                             kAuthorNames[a % std::size(kAuthorNames)],
                             a + 1)),
                 s(StrFormat("univ-%zu", 1 + a % 7))})
            .status());
  }
  for (size_t p = 0; p < options.num_papers; ++p) {
    std::string title = kAreas[rng.Index(std::size(kAreas))];
    title += " ";
    title += kAreas[rng.Index(std::size(kAreas))];
    std::string abstract = "we study";
    for (int w = 0; w < 5; ++w) {
      abstract += " ";
      abstract += kAreas[rng.Index(std::size(kAreas))];
    }
    std::string vid =
        StrFormat("v%zu", 1 + rng.Index(options.num_venues));
    CLAKS_RETURN_NOT_OK(
        paper
            ->InsertValues(
                {s(StrFormat("p%zu", p + 1)), s(title), s(abstract), s(vid)})
            .status());
  }

  size_t max_authors = static_cast<size_t>(
      2.0 * options.avg_authors_per_paper + 0.5);
  for (size_t p = 0; p < options.num_papers; ++p) {
    size_t count =
        1 + rng.Index(std::max<size_t>(1, max_authors));
    std::set<std::string> chosen;
    for (size_t k = 0; k < count; ++k) {
      std::string aid =
          StrFormat("a%zu", 1 + rng.Index(options.num_authors));
      if (!chosen.insert(aid).second) continue;
      CLAKS_RETURN_NOT_OK(
          writes->InsertValues({s(aid), s(StrFormat("p%zu", p + 1))})
              .status());
    }
  }

  size_t max_citations = static_cast<size_t>(
      2.0 * options.avg_citations_per_paper + 0.5);
  for (size_t p = 0; p < options.num_papers; ++p) {
    size_t count = max_citations == 0 ? 0 : rng.Index(max_citations + 1);
    std::set<std::string> cited;
    for (size_t k = 0; k < count; ++k) {
      // Zipf-biased targets: early papers are cited more.
      size_t target = rng.Zipf(options.num_papers, 1.3);
      if (target == p) continue;  // no self-citations
      std::string tid = StrFormat("p%zu", target + 1);
      if (!cited.insert(tid).second) continue;
      CLAKS_RETURN_NOT_OK(
          cites->InsertValues({s(StrFormat("p%zu", p + 1)), s(tid)})
              .status());
    }
  }

  CLAKS_RETURN_NOT_OK(out.db->CheckReferentialIntegrity());
  return out;
}

}  // namespace claks
