// Copyright 2026 The claks Authors.
//
// The *full* COMPANY schema of Elmasri & Navathe (the paper's Figure 1 is
// "a fragment from [3]"): adds the MANAGES 1:1 relationship
// (EMPLOYEE-DEPARTMENT), the SUPERVISES self 1:N relationship
// (EMPLOYEE-EMPLOYEE) and department locations. These exercise cardinality
// cases the fragment cannot: 1:1 steps (which count toward either side of
// the functionality test) and self-relationships.

#ifndef CLAKS_DATASETS_COMPANY_FULL_H_
#define CLAKS_DATASETS_COMPANY_FULL_H_

#include "datasets/company_gen.h"

namespace claks {

struct CompanyFullOptions {
  size_t num_departments = 4;
  size_t employees_per_department = 8;
  size_t projects_per_department = 3;
  size_t locations_per_department = 2;
  double avg_assignments_per_employee = 1.5;
  double dependent_probability = 0.25;
  uint64_t seed = 5;
};

/// ER schema: DEPARTMENT, EMPLOYEE, PROJECT, DEPENDENT, LOCATION;
/// WORKS_FOR (1:N), WORKS_ON (N:M, HOURS), CONTROLS (1:N), DEPENDENTS_OF
/// (1:N), MANAGES (EMPLOYEE 1:1 DEPARTMENT), SUPERVISES (EMPLOYEE 1:N
/// EMPLOYEE), LOCATED_AT (DEPARTMENT N:M LOCATION).
ERSchema CompanyFullErSchema();

/// Builds schema + deterministic instance + mapping. The SUPERVISES
/// relationship is materialised as a nullable self-FK (SUPER_SSN) and
/// MANAGES as a unique FK on DEPARTMENT, both entered into the mapping by
/// hand (the generic ER->relational generator does not emit self 1:N).
Result<GeneratedDataset> GenerateCompanyFullDataset(
    const CompanyFullOptions& options = {});

}  // namespace claks

#endif  // CLAKS_DATASETS_COMPANY_FULL_H_
