// Copyright 2026 The claks Authors.

#include "observability/trace.h"

#include <algorithm>

#include "common/string_util.h"

#ifndef CLAKS_TRACING_DISABLED

namespace claks {

namespace {

/// Current span of this thread (0: none). Written only by TraceSpan
/// construction/destruction on the owning thread.
thread_local uint64_t t_current_span = 0;

/// Small stable per-thread id for the Chrome JSON tid field (OS thread
/// ids are large and non-contiguous; Perfetto tracks are nicer dense).
std::atomic<uint32_t> g_next_trace_tid{1};

uint32_t ThisThreadTraceId() {
  thread_local const uint32_t tid =
      g_next_trace_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

std::atomic<TraceRecorder*>& TraceRecorder::ActiveSlot() {
  static std::atomic<TraceRecorder*> active{nullptr};
  return active;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Safety net: a recorder destroyed while still active would leave
  // spans writing into freed memory.
  TraceRecorder* self = this;
  ActiveSlot().compare_exchange_strong(self, nullptr,
                                       std::memory_order_acq_rel);
}

void TraceRecorder::Install() {
  epoch_ = std::chrono::steady_clock::now();
  ActiveSlot().store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  ActiveSlot().store(nullptr, std::memory_order_release);
}

void TraceRecorder::Record(const TraceEvent& event) {
  MutexLock lock(&mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    // Ring full: overwrite the oldest surviving event.
    ring_[next_] = event;
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  MutexLock lock(&mutex_);
  if (ring_.size() < capacity_) return ring_;
  // Unroll the ring: next_ points at the oldest surviving event.
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % capacity_]);
  }
  return events;
}

size_t TraceRecorder::dropped() const {
  MutexLock lock(&mutex_);
  return dropped_;
}

std::string TraceRecorder::ToChromeJson() const {
  std::vector<TraceEvent> events = Events();
  // "X" (complete) events with microsecond ts/dur; span/parent ids ride
  // in args so Perfetto can reconstruct the nesting across threads.
  // Names are compile-time literals chosen by this codebase, so no JSON
  // escaping is needed.
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"claks\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
        "\"args\":{\"span\":%llu,\"parent\":%llu",
        e.name, static_cast<double>(e.start_ns) / 1000.0,
        static_cast<double>(e.duration_ns) / 1000.0, e.tid,
        static_cast<unsigned long long>(e.span_id),
        static_cast<unsigned long long>(e.parent_id));
    if (e.arg_name != nullptr) {
      out += StrFormat(",\"%s\":%llu", e.arg_name,
                       static_cast<unsigned long long>(e.arg_value));
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

TraceSpan::TraceSpan(const char* name, TraceRecorder* recorder,
                     bool use_current, uint64_t parent)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  name_ = name;
  span_id_ = recorder_->NewSpanId();
  parent_id_ = use_current ? t_current_span : parent;
  prev_current_ = t_current_span;
  t_current_span = span_id_;
  start_ns_ = recorder_->NowNs();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  uint64_t end_ns = recorder_->NowNs();
  event.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.tid = ThisThreadTraceId();
  event.arg_name = arg_name_;
  event.arg_value = arg_value_;
  recorder_->Record(event);
  t_current_span = prev_current_;
}

TraceContext TraceSpan::Capture() {
  TraceContext context;
  context.recorder = TraceRecorder::Active();
  context.parent_id = t_current_span;
  return context;
}

}  // namespace claks

#endif  // CLAKS_TRACING_DISABLED
