// Copyright 2026 The claks Authors.
//
// Per-query trace spans: RAII TraceSpan nesting on the current thread,
// cross-thread parent propagation into shard fill tasks (TraceContext),
// and a bounded ring buffer of completed spans exportable as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
//
// Recording model: tracing is off until a TraceRecorder is Install()ed.
// With no recorder installed a TraceSpan constructor is one relaxed
// atomic load and a branch — no clock read, no allocation
// (tests/trace_test.cc counts operator new calls to prove it). Span
// names must be string literals (static storage): events store the
// pointer, never a copy.
//
// Build-time kill switch: configuring with -DCLAKS_TRACING=OFF defines
// CLAKS_TRACING_DISABLED, under which TraceSpan and TraceContext compile
// to empty no-op types (and TraceRecorder to an always-empty recorder),
// so call sites stay unconditional while the instrumentation costs
// literally nothing.
//
// Thread model: Install/Uninstall publish the active recorder through an
// atomic pointer; span completion appends to the ring under the
// recorder's mutex (spans are stage-granular, so the lock is cold). The
// per-thread current-span id is thread_local. An installed recorder must
// outlive every span recorded into it — in practice recorders are
// created in main() (claks_cli --trace-out) or on the test stack with
// Uninstall before destruction.

#ifndef CLAKS_OBSERVABILITY_TRACE_H_
#define CLAKS_OBSERVABILITY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace claks {

/// One completed span. Timestamps are nanoseconds since the recorder's
/// installation epoch; `tid` is a small per-thread sequence number (the
/// Chrome JSON tid). `parent_id` is 0 for roots.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (span label)
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint32_t tid = 0;
  /// Optional numeric argument (e.g. the shard index); rendered into the
  /// Chrome event's args when `arg_name` is set.
  const char* arg_name = nullptr;
  uint64_t arg_value = 0;
};

#ifndef CLAKS_TRACING_DISABLED

class TraceRecorder;

/// Capture of a thread's current span identity, for parenting spans on
/// other threads (the shard pool): capture on the consumer thread, hand
/// the context into the task, open the task's spans with it.
struct TraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t parent_id = 0;
};

/// Bounded ring of completed spans for one traced run. Install() makes
/// this the process's active recorder; completed spans append in finish
/// order and the oldest are overwritten once `capacity` is exceeded
/// (dropped() counts overwrites).
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this recorder the destination of every subsequently opened
  /// span (process-wide). Resets the timestamp epoch.
  void Install();

  /// Deactivates tracing (spans already open keep recording into the
  /// recorder they captured at open time).
  static void Uninstall();

  /// The active recorder, or nullptr when tracing is off.
  static TraceRecorder* Active() {
    return ActiveSlot().load(std::memory_order_acquire);
  }

  /// Completed events in finish order (oldest surviving first).
  std::vector<TraceEvent> Events() const CLAKS_EXCLUDES(mutex_);

  /// Spans overwritten because the ring was full.
  size_t dropped() const CLAKS_EXCLUDES(mutex_);

  /// Chrome trace_event JSON ("X" complete events; ts/dur in
  /// microseconds): load the string (or the --trace-out file) directly
  /// in chrome://tracing or Perfetto.
  std::string ToChromeJson() const CLAKS_EXCLUDES(mutex_);

 private:
  friend class TraceSpan;

  static std::atomic<TraceRecorder*>& ActiveSlot();

  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Record(const TraceEvent& event) CLAKS_EXCLUDES(mutex_);

  const size_t capacity_;
  std::atomic<uint64_t> next_span_id_{1};
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mutex_;
  std::vector<TraceEvent> ring_ CLAKS_GUARDED_BY(mutex_);
  size_t next_ CLAKS_GUARDED_BY(mutex_) = 0;  ///< ring write position
  size_t dropped_ CLAKS_GUARDED_BY(mutex_) = 0;
};

/// RAII span: opens on construction (when a recorder is active),
/// completes into the recorder on destruction. Nested spans on one
/// thread parent automatically; cross-thread spans parent through an
/// explicitly captured TraceContext. `name` (and `arg_name`) must be
/// string literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : TraceSpan(name, TraceRecorder::Active(), /*use_current=*/true,
                  /*parent=*/0) {}

  /// Cross-thread span: parented under `context` (captured on another
  /// thread) instead of this thread's current span. A null context
  /// recorder makes the span inactive.
  TraceSpan(const TraceContext& context, const char* name)
      : TraceSpan(name, context.recorder, /*use_current=*/false,
                  context.parent_id) {}

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches one numeric argument rendered into the Chrome event.
  void SetArg(const char* arg_name, uint64_t value) {
    arg_name_ = arg_name;
    arg_value_ = value;
  }

  /// This thread's current span identity, for parenting work shipped to
  /// other threads. Null recorder (tracing off) propagates as inactive.
  static TraceContext Capture();

  /// True when a recorder is installed (spans will record).
  static bool Enabled() { return TraceRecorder::Active() != nullptr; }

  bool active() const { return recorder_ != nullptr; }

 private:
  TraceSpan(const char* name, TraceRecorder* recorder, bool use_current,
            uint64_t parent);

  TraceRecorder* recorder_;  ///< null: inactive span, destructor no-ops
  const char* name_ = nullptr;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t prev_current_ = 0;  ///< restored on close (nesting)
  uint64_t start_ns_ = 0;
  const char* arg_name_ = nullptr;
  uint64_t arg_value_ = 0;
};

#else  // CLAKS_TRACING_DISABLED

/// No-op twins: same API surface, empty inline bodies, no members that
/// cost anything — call sites compile unchanged and the optimizer erases
/// them entirely.
class TraceRecorder;

struct TraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t parent_id = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t = 0) {}
  void Install() {}
  static void Uninstall() {}
  static TraceRecorder* Active() { return nullptr; }
  std::vector<TraceEvent> Events() const { return {}; }
  size_t dropped() const { return 0; }
  std::string ToChromeJson() const {
    return "{\"traceEvents\":[]}\n";
  }
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceContext&, const char*) {}
  void SetArg(const char*, uint64_t) {}
  static TraceContext Capture() { return TraceContext(); }
  static bool Enabled() { return false; }
  bool active() const { return false; }
};

#endif  // CLAKS_TRACING_DISABLED

}  // namespace claks

#endif  // CLAKS_OBSERVABILITY_TRACE_H_
