// Copyright 2026 The claks Authors.

#include "observability/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

SkewSummary ComputeSkew(const std::vector<size_t>& counts) {
  SkewSummary skew;
  if (counts.empty()) return skew;
  size_t total = 0;
  for (size_t count : counts) {
    skew.max = std::max(skew.max, count);
    total += count;
  }
  skew.mean = static_cast<double>(total) / counts.size();
  skew.ratio = skew.mean > 0.0 ? skew.max / skew.mean : 1.0;
  return skew;
}

namespace internal {

std::atomic<bool> g_metrics_recording{true};
std::atomic<size_t> g_metrics_next_slot{0};

}  // namespace internal

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the requested quantile, 1-based; ceil so p100 == the last
  // observation and p0 the first.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // Upper bound of bucket i (2^i - 1), clamped to the observed max
      // so estimates never exceed a value that actually occurred.
      uint64_t upper =
          i >= 64 ? ~uint64_t{0} : ((uint64_t{1} << i) - 1);
      return std::min(upper, max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Count derives from the bucket sweep itself so the percentile walk is
  // internally consistent even while writers race the read.
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = snap.Percentile(0.50);
  snap.p90 = snap.Percentile(0.90);
  snap.p99 = snap.Percentile(0.99);
  return snap;
}

Counter& CounterFamily::With(std::vector<std::string> label_values) {
  CLAKS_CHECK_EQ(label_values.size(), label_names_.size());
  MutexLock lock(&mutex_);
  std::unique_ptr<Counter>& slot = series_[std::move(label_values)];
  if (slot == nullptr) slot.reset(new Counter());
  return *slot;
}

Histogram& HistogramFamily::With(std::vector<std::string> label_values) {
  CLAKS_CHECK_EQ(label_values.size(), label_names_.size());
  MutexLock lock(&mutex_);
  std::unique_ptr<Histogram>& slot = series_[std::move(label_values)];
  if (slot == nullptr) slot.reset(new Histogram());
  return *slot;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaky singleton (the log-registry pattern): metrics registered from
  // namespace-scope initializers and read from static destructors stay
  // valid for the whole process lifetime.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::SetRecording(bool recording) {
  internal::g_metrics_recording.store(recording,
                                      std::memory_order_relaxed);
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(
    const std::string& name, const std::string& help,
    MetricSeries::Kind kind, bool is_family) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    // Re-registration must agree on the metric's shape; a clash means
    // two subsystems claimed one name for different things.
    CLAKS_CHECK(it->second.kind == kind);
    CLAKS_CHECK(it->second.is_family == is_family);
    return it->second;
  }
  Entry& entry = metrics_[name];
  entry.kind = kind;
  entry.help = help;
  entry.is_family = is_family;
  return entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(&mutex_);
  Entry& entry =
      GetEntry(name, help, MetricSeries::Kind::kCounter, false);
  if (entry.counter == nullptr) entry.counter.reset(new Counter());
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(&mutex_);
  Entry& entry = GetEntry(name, help, MetricSeries::Kind::kGauge, false);
  if (entry.gauge == nullptr) entry.gauge.reset(new Gauge());
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  MutexLock lock(&mutex_);
  Entry& entry =
      GetEntry(name, help, MetricSeries::Kind::kHistogram, false);
  if (entry.histogram == nullptr) entry.histogram.reset(new Histogram());
  return *entry.histogram;
}

CounterFamily& MetricsRegistry::GetCounterFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_names) {
  MutexLock lock(&mutex_);
  Entry& entry = GetEntry(name, help, MetricSeries::Kind::kCounter, true);
  if (entry.counter_family == nullptr) {
    entry.counter_family.reset(new CounterFamily(std::move(label_names)));
  }
  return *entry.counter_family;
}

HistogramFamily& MetricsRegistry::GetHistogramFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_names) {
  MutexLock lock(&mutex_);
  Entry& entry =
      GetEntry(name, help, MetricSeries::Kind::kHistogram, true);
  if (entry.histogram_family == nullptr) {
    entry.histogram_family.reset(
        new HistogramFamily(std::move(label_names)));
  }
  return *entry.histogram_family;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mutex_);
  for (const auto& [name, entry] : metrics_) {
    auto base = [&](const Entry& e) {
      MetricSeries series;
      series.name = name;
      series.help = e.help;
      series.kind = e.kind;
      return series;
    };
    if (!entry.is_family) {
      MetricSeries series = base(entry);
      switch (entry.kind) {
        case MetricSeries::Kind::kCounter:
          series.counter = entry.counter->Value();
          break;
        case MetricSeries::Kind::kGauge:
          series.gauge = entry.gauge->Value();
          break;
        case MetricSeries::Kind::kHistogram:
          series.histogram = entry.histogram->Snapshot();
          break;
      }
      snapshot.series.push_back(std::move(series));
      continue;
    }
    if (entry.kind == MetricSeries::Kind::kCounter) {
      CounterFamily& family = *entry.counter_family;
      MutexLock family_lock(&family.mutex_);
      for (const auto& [values, counter] : family.series_) {
        MetricSeries series = base(entry);
        for (size_t i = 0; i < values.size(); ++i) {
          series.labels.emplace_back(family.label_names_[i], values[i]);
        }
        series.counter = counter->Value();
        snapshot.series.push_back(std::move(series));
      }
    } else {
      HistogramFamily& family = *entry.histogram_family;
      MutexLock family_lock(&family.mutex_);
      for (const auto& [values, histogram] : family.series_) {
        MetricSeries series = base(entry);
        for (size_t i = 0; i < values.size(); ++i) {
          series.labels.emplace_back(family.label_names_[i], values[i]);
        }
        series.histogram = histogram->Snapshot();
        snapshot.series.push_back(std::move(series));
      }
    }
  }
  return snapshot;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  uint64_t total = 0;
  for (const MetricSeries& s : series) {
    if (s.name == name && s.kind == MetricSeries::Kind::kCounter) {
      total += s.counter;
    }
  }
  return total;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const MetricSeries& s : series) {
    if (s.name == name && s.kind == MetricSeries::Kind::kGauge) {
      return s.gauge;
    }
  }
  return 0;
}

HistogramSnapshot MetricsSnapshot::HistogramValue(
    const std::string& name) const {
  for (const MetricSeries& s : series) {
    if (s.name == name && s.kind == MetricSeries::Kind::kHistogram &&
        s.labels.empty()) {
      return s.histogram;
    }
  }
  return HistogramSnapshot();
}

namespace {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string LabelBlock(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = "", const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out;
  std::string last_name;
  for (const MetricSeries& s : snapshot.series) {
    if (s.name != last_name) {
      last_name = s.name;
      out += "# HELP " + s.name + " " + s.help + "\n";
      switch (s.kind) {
        case MetricSeries::Kind::kCounter:
          out += "# TYPE " + s.name + " counter\n";
          break;
        case MetricSeries::Kind::kGauge:
          out += "# TYPE " + s.name + " gauge\n";
          break;
        case MetricSeries::Kind::kHistogram:
          out += "# TYPE " + s.name + " summary\n";
          break;
      }
    }
    switch (s.kind) {
      case MetricSeries::Kind::kCounter:
        out += s.name + LabelBlock(s.labels) +
               StrFormat(" %llu\n",
                         static_cast<unsigned long long>(s.counter));
        break;
      case MetricSeries::Kind::kGauge:
        out += s.name + LabelBlock(s.labels) +
               StrFormat(" %lld\n", static_cast<long long>(s.gauge));
        break;
      case MetricSeries::Kind::kHistogram: {
        const HistogramSnapshot& h = s.histogram;
        auto quantile = [&](const char* q, uint64_t value) {
          out += s.name + LabelBlock(s.labels, "quantile", q) +
                 StrFormat(" %llu\n",
                           static_cast<unsigned long long>(value));
        };
        quantile("0.5", h.p50);
        quantile("0.9", h.p90);
        quantile("0.99", h.p99);
        quantile("1", h.max);
        out += s.name + "_sum" + LabelBlock(s.labels) +
               StrFormat(" %llu\n", static_cast<unsigned long long>(h.sum));
        out += s.name + "_count" + LabelBlock(s.labels) +
               StrFormat(" %llu\n",
                         static_cast<unsigned long long>(h.count));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSeries& s : snapshot.series) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : s.labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "},";
    switch (s.kind) {
      case MetricSeries::Kind::kCounter:
        out += StrFormat("\"kind\":\"counter\",\"value\":%llu",
                         static_cast<unsigned long long>(s.counter));
        break;
      case MetricSeries::Kind::kGauge:
        out += StrFormat("\"kind\":\"gauge\",\"value\":%lld",
                         static_cast<long long>(s.gauge));
        break;
      case MetricSeries::Kind::kHistogram:
        out += StrFormat(
            "\"kind\":\"histogram\",\"count\":%llu,\"sum\":%llu,"
            "\"max\":%llu,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu",
            static_cast<unsigned long long>(s.histogram.count),
            static_cast<unsigned long long>(s.histogram.sum),
            static_cast<unsigned long long>(s.histogram.max),
            static_cast<unsigned long long>(s.histogram.p50),
            static_cast<unsigned long long>(s.histogram.p90),
            static_cast<unsigned long long>(s.histogram.p99));
        break;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace claks
