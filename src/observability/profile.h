// Copyright 2026 The claks Authors.
//
// Per-query stage profiling: QueryProfile is the result (attached to
// SearchResult / CursorStats behind SearchOptions::profile), and
// QueryProfiler is the accumulator the engine and cursors feed while the
// query runs.
//
// Stage model. The consumer-thread stages are non-overlapping scopes of
// the query lifecycle —
//   validate  option validation (QuerySpec::Create)
//   match     tokenize + keyword match + AND/OR resolution (Prepare)
//   plan      cursor open / seed partition (streaming) — the work
//             between Prepare and the first possible pull
//   stream    candidate generation: pulling the connection stream (or
//             waiting on the sharded scatter-gather merge) + settle
//             bookkeeping, and the materialized methods' enumeration
//   analyze   per-candidate analysis on the consumer thread (inline,
//             unsharded paths)
//   rank      survivor ordering / rank-group-truncate
//   fetch     page assembly and hit copy-out
// — so StageSum() approximates total_ns, the wall time actually spent
// inside API calls (Prepare + Open + every Next). That is the contract
// the acceptance check exercises: stages sum to within 10% of measured
// wall time. Cross-thread work (shard-task analysis) is reported
// separately in analyze_tasks_ns/analyze_tasks and excluded from the
// sum: it overlaps the consumer's `stream` wait.
//
// Thread model: one QueryProfiler belongs to one cursor (single
// consumer). Consumer-stage accumulators are plain integers; the
// analyze-task accumulators are atomic because shard fill tasks add to
// them concurrently.

#ifndef CLAKS_OBSERVABILITY_PROFILE_H_
#define CLAKS_OBSERVABILITY_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "observability/metrics.h"

namespace claks {

/// The per-query profile surfaced to callers. All times nanoseconds.
struct QueryProfile {
  uint64_t validate_ns = 0;
  uint64_t match_ns = 0;
  uint64_t plan_ns = 0;
  uint64_t stream_ns = 0;
  uint64_t analyze_ns = 0;
  uint64_t rank_ns = 0;
  uint64_t fetch_ns = 0;
  /// Wall time spent inside API calls (Prepare + Open + every Next) —
  /// the denominator of the stage-sum contract.
  uint64_t total_ns = 0;

  /// Cross-thread analysis on shard-pool tasks: summed task time and
  /// call count. Overlaps the consumer's `stream` wait; excluded from
  /// StageSum().
  uint64_t analyze_tasks_ns = 0;
  uint64_t analyze_tasks = 0;

  /// Work counters at snapshot time.
  size_t expansions = 0;
  size_t hits = 0;
  std::vector<size_t> shard_expansions;  ///< empty when unsharded
  SkewSummary shard_skew;                ///< over shard_expansions

  /// Sum of the non-overlapping consumer-thread stages; ~= total_ns.
  uint64_t StageSum() const {
    return validate_ns + match_ns + plan_ns + stream_ns + analyze_ns +
           rank_ns + fetch_ns;
  }

  /// One-line machine-parseable key=value summary (slow-query log
  /// lines; values in fractional milliseconds).
  std::string Summary() const;

  /// Multi-line human-readable rendering (claks_cli --profile).
  std::string ToString() const;
};

/// Accumulator feeding a QueryProfile. Owned by one cursor; null
/// pointers short-circuit everywhere (profiling off costs one branch).
class QueryProfiler {
 public:
  enum class Stage {
    kValidate,
    kMatch,
    kPlan,
    kStream,
    kAnalyze,
    kRank,
    kFetch,
    kTotal,
  };

  using Clock = std::chrono::steady_clock;

  QueryProfiler() = default;
  QueryProfiler(const QueryProfiler&) = delete;
  QueryProfiler& operator=(const QueryProfiler&) = delete;

  /// Adds `ns` to a stage. Consumer thread only (not synchronized).
  void Add(Stage stage, uint64_t ns) {
    switch (stage) {
      case Stage::kValidate:
        validate_ns_ += ns;
        break;
      case Stage::kMatch:
        match_ns_ += ns;
        break;
      case Stage::kPlan:
        plan_ns_ += ns;
        break;
      case Stage::kStream:
        stream_ns_ += ns;
        break;
      case Stage::kAnalyze:
        analyze_ns_ += ns;
        break;
      case Stage::kRank:
        rank_ns_ += ns;
        break;
      case Stage::kFetch:
        fetch_ns_ += ns;
        break;
      case Stage::kTotal:
        total_ns_ += ns;
        break;
    }
  }

  /// Records one analysis call executed on a shard-pool task. Safe from
  /// any thread.
  void AddAnalyzeTask(uint64_t ns) {
    analyze_tasks_ns_.fetch_add(ns, std::memory_order_relaxed);
    analyze_tasks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// RAII stage timer; a null profiler makes it free.
  class ScopedTimer {
   public:
    ScopedTimer(QueryProfiler* profiler, Stage stage)
        : profiler_(profiler),
          stage_(stage),
          start_(profiler != nullptr ? Clock::now()
                                     : Clock::time_point()) {}
    ~ScopedTimer() {
      if (profiler_ == nullptr) return;
      profiler_->Add(stage_,
                     static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - start_)
                             .count()));
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    QueryProfiler* profiler_;
    Stage stage_;
    Clock::time_point start_;
  };

  /// Point-in-time profile. `expansions`/`hits`/`shard_expansions` are
  /// passed by the cursor (it owns those counters).
  QueryProfile Snapshot(size_t expansions, size_t hits,
                        std::vector<size_t> shard_expansions) const {
    QueryProfile profile;
    profile.validate_ns = validate_ns_;
    profile.match_ns = match_ns_;
    profile.plan_ns = plan_ns_;
    profile.stream_ns = stream_ns_;
    profile.analyze_ns = analyze_ns_;
    profile.rank_ns = rank_ns_;
    profile.fetch_ns = fetch_ns_;
    profile.total_ns = total_ns_;
    profile.analyze_tasks_ns =
        analyze_tasks_ns_.load(std::memory_order_relaxed);
    profile.analyze_tasks =
        analyze_tasks_.load(std::memory_order_relaxed);
    profile.expansions = expansions;
    profile.hits = hits;
    profile.shard_skew = ComputeSkew(shard_expansions);
    profile.shard_expansions = std::move(shard_expansions);
    return profile;
  }

 private:
  uint64_t validate_ns_ = 0;
  uint64_t match_ns_ = 0;
  uint64_t plan_ns_ = 0;
  uint64_t stream_ns_ = 0;
  uint64_t analyze_ns_ = 0;
  uint64_t rank_ns_ = 0;
  uint64_t fetch_ns_ = 0;
  uint64_t total_ns_ = 0;
  std::atomic<uint64_t> analyze_tasks_ns_{0};
  std::atomic<uint64_t> analyze_tasks_{0};
};

}  // namespace claks

#endif  // CLAKS_OBSERVABILITY_PROFILE_H_
