// Copyright 2026 The claks Authors.
//
// Process-wide metrics: named counters, gauges and log-bucketed latency
// histograms behind a registry with Prometheus-style text exposition
// (RenderText), a JSON snapshot (RenderJson) and a structured point-in-
// time Snapshot() the service layer re-derives ServiceStats from.
//
// Hot-path cost model: Counter::Inc is one relaxed fetch_add on a
// per-thread-sharded, cache-line-padded slot (no false sharing between
// worker threads); Histogram::Observe is two relaxed adds plus a relaxed
// max loop. Neither takes a lock. The registry's mutex guards only
// registration and read-side rendering. SetRecording(false) turns every
// write into a single relaxed load + branch — the A/B switch
// bench_observability uses to price the instrumentation itself.
//
// Naming discipline (enforced by tools/claks_lint.py, rule
// metric-naming): process-wide metrics are registered once at namespace
// scope through the CLAKS_METRIC_* macros and named
// claks_<subsystem>_<name>_<unit>. Instance registries (e.g. the
// per-service registry behind ServiceStats) use the same names and are
// exempt from the namespace-scope requirement only.

#ifndef CLAKS_OBSERVABILITY_METRICS_H_
#define CLAKS_OBSERVABILITY_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace claks {

/// Work-balance summary over per-shard counters: the max/mean skew the
/// --shards bench sweeps report and ShardedStreamSource::WorkSkew
/// computes. ratio == 1.0 means perfectly balanced (and is also the
/// defined value for empty or all-zero inputs).
struct SkewSummary {
  size_t max = 0;
  double mean = 0.0;
  double ratio = 1.0;
};

SkewSummary ComputeSkew(const std::vector<size_t>& counts);

namespace internal {

/// Global recording switch + round-robin thread slot assignment. The
/// externs live in metrics.cc; the accessors stay inline so Counter::Inc
/// compiles to a load, a branch and a fetch_add.
extern std::atomic<bool> g_metrics_recording;
extern std::atomic<size_t> g_metrics_next_slot;

inline bool MetricsRecording() {
  return g_metrics_recording.load(std::memory_order_relaxed);
}

inline size_t ThisThreadSlot() {
  thread_local const size_t slot =
      g_metrics_next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

/// Monotonic counter, sharded across cache-line-padded atomic slots
/// indexed by a per-thread round-robin id: concurrent Inc calls from the
/// pool's workers land on distinct lines. Value() sums the slots (exact:
/// every Inc is a relaxed add to exactly one slot).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!internal::MetricsRecording()) return;
    slots_[internal::ThisThreadSlot() % kSlots].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  friend class CounterFamily;
  Counter() = default;

  static constexpr size_t kSlots = 16;
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  std::array<Slot, kSlots> slots_;
};

/// Instantaneous signed value (queue depths, open entries). Add/Sub keep
/// a running level; Set overwrites it.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!internal::MetricsRecording()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!internal::MetricsRecording()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(int64_t delta) { Add(-delta); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one Histogram. Percentiles are bucket upper
/// bounds: for a true value v the estimate e satisfies v <= e < 2v (the
/// log-2 bucket's bounds), and e never exceeds the observed max.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;

  /// Upper-bound estimate for quantile q in [0, 1] from the buckets.
  uint64_t Percentile(double q) const;

  /// bucket[i] counts observations v with bit-width i, i.e. v == 0 in
  /// bucket 0 and v in [2^(i-1), 2^i) in bucket i.
  std::array<uint64_t, 65> buckets{};
};

/// Log-2-bucketed histogram of non-negative integer observations
/// (latencies in microseconds, expansion counts). Lock-free: per-bucket
/// relaxed adds, relaxed CAS max.
class Histogram {
 public:
  void Observe(uint64_t value) {
    if (!internal::MetricsRecording()) return;
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index of a value: its bit width (0 for 0).
  static size_t BucketOf(uint64_t value) {
    size_t bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits;
  }

 private:
  friend class MetricsRegistry;
  friend class HistogramFamily;
  Histogram() = default;

  std::array<std::atomic<uint64_t>, 65> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// A labeled set of counters sharing one metric name (e.g. queries by
/// method). With() materializes the series for a label-value tuple on
/// first use and returns the same Counter thereafter; the lookup takes
/// the family mutex, so call it once per query, not per candidate.
class CounterFamily {
 public:
  Counter& With(std::vector<std::string> label_values)
      CLAKS_EXCLUDES(mutex_);

  const std::vector<std::string>& label_names() const {
    return label_names_;
  }

 private:
  friend class MetricsRegistry;
  explicit CounterFamily(std::vector<std::string> label_names)
      : label_names_(std::move(label_names)) {}

  const std::vector<std::string> label_names_;
  mutable Mutex mutex_;
  std::map<std::vector<std::string>, std::unique_ptr<Counter>> series_
      CLAKS_GUARDED_BY(mutex_);
};

/// A labeled set of histograms sharing one metric name (e.g. query
/// latency by method and ranker). Same materialization contract as
/// CounterFamily.
class HistogramFamily {
 public:
  Histogram& With(std::vector<std::string> label_values)
      CLAKS_EXCLUDES(mutex_);

  const std::vector<std::string>& label_names() const {
    return label_names_;
  }

 private:
  friend class MetricsRegistry;
  explicit HistogramFamily(std::vector<std::string> label_names)
      : label_names_(std::move(label_names)) {}

  const std::vector<std::string> label_names_;
  mutable Mutex mutex_;
  std::map<std::vector<std::string>, std::unique_ptr<Histogram>> series_
      CLAKS_GUARDED_BY(mutex_);
};

/// One rendered series in a MetricsSnapshot: the metric name, its label
/// key/value pairs (empty for unlabeled metrics) and the value of the
/// matching kind.
struct MetricSeries {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::vector<std::pair<std::string, std::string>> labels;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot histogram;
};

/// One-pass snapshot of a whole registry: the single source of truth
/// ServiceStats is re-derived from. Values are read in one sweep under
/// the registry mutex (individual atomics are still updated lock-free,
/// so the cut is per-metric-consistent, not a global barrier — but every
/// counter is read at one point of the same pass, unlike the scattered
/// per-field atomic loads the old hand-maintained ServiceStats did).
struct MetricsSnapshot {
  std::vector<MetricSeries> series;  ///< sorted by (name, labels)

  /// Value of the unlabeled counter `name`; 0 when absent. For labeled
  /// families, sums every series of the family.
  uint64_t CounterValue(const std::string& name) const;
  /// Value of the gauge `name`; 0 when absent.
  int64_t GaugeValue(const std::string& name) const;
  /// The histogram series `name` (unlabeled); empty snapshot if absent.
  HistogramSnapshot HistogramValue(const std::string& name) const;
};

/// Registry of named metrics. Get* registers on first call and returns
/// the same object on every later call with the same name (the kind must
/// match; a kind clash is a programming error and aborts). Metric
/// objects live as long as the registry; references returned by Get*
/// never dangle while it exists.
///
/// Two instantiation shapes: Default() is the process-wide registry the
/// CLI's metrics page renders (leaky singleton, safe from static
/// destructors, mirroring the log registry); instances (e.g. one per
/// SearchService) keep exact per-owner counts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Default();

  /// Global kill switch for every Counter/Gauge/Histogram write in the
  /// process (all registries): the bench's A/B lever for pricing the
  /// instrumentation. Reads (Value, Snapshot, Render*) are unaffected.
  static void SetRecording(bool recording);
  static bool recording() { return internal::MetricsRecording(); }

  Counter& GetCounter(const std::string& name, const std::string& help)
      CLAKS_EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name, const std::string& help)
      CLAKS_EXCLUDES(mutex_);
  Histogram& GetHistogram(const std::string& name, const std::string& help)
      CLAKS_EXCLUDES(mutex_);
  CounterFamily& GetCounterFamily(const std::string& name,
                                  const std::string& help,
                                  std::vector<std::string> label_names)
      CLAKS_EXCLUDES(mutex_);
  HistogramFamily& GetHistogramFamily(const std::string& name,
                                      const std::string& help,
                                      std::vector<std::string> label_names)
      CLAKS_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const CLAKS_EXCLUDES(mutex_);

  /// Prometheus-style text exposition: # HELP / # TYPE headers, one line
  /// per series, histograms as summaries (quantile 0.5/0.9/0.99/1 plus
  /// _sum and _count).
  std::string RenderText() const CLAKS_EXCLUDES(mutex_);

  /// The same snapshot as a JSON document (machine-readable twin of
  /// RenderText).
  std::string RenderJson() const CLAKS_EXCLUDES(mutex_);

 private:
  struct Entry {
    MetricSeries::Kind kind = MetricSeries::Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<CounterFamily> counter_family;
    std::unique_ptr<HistogramFamily> histogram_family;
    bool is_family = false;
  };

  Entry& GetEntry(const std::string& name, const std::string& help,
                  MetricSeries::Kind kind, bool is_family)
      CLAKS_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Entry> metrics_ CLAKS_GUARDED_BY(mutex_);
};

}  // namespace claks

/// Namespace-scope registration of process-wide metrics (the shape the
/// metric-naming lint rule expects): expands to a reference binding
/// against the Default() registry, e.g.
///   CLAKS_METRIC_COUNTER(g_fills, "claks_shard_fill_tasks_total",
///                        "Shard fill tasks scheduled");
#define CLAKS_METRIC_COUNTER(var, name, help)      \
  ::claks::Counter& var =                          \
      ::claks::MetricsRegistry::Default().GetCounter(name, help)

#define CLAKS_METRIC_GAUGE(var, name, help)        \
  ::claks::Gauge& var =                            \
      ::claks::MetricsRegistry::Default().GetGauge(name, help)

#define CLAKS_METRIC_HISTOGRAM(var, name, help)    \
  ::claks::Histogram& var =                        \
      ::claks::MetricsRegistry::Default().GetHistogram(name, help)

#define CLAKS_METRIC_COUNTER_FAMILY(var, name, help, ...)         \
  ::claks::CounterFamily& var =                                   \
      ::claks::MetricsRegistry::Default().GetCounterFamily(       \
          name, help, {__VA_ARGS__})

#define CLAKS_METRIC_HISTOGRAM_FAMILY(var, name, help, ...)       \
  ::claks::HistogramFamily& var =                                 \
      ::claks::MetricsRegistry::Default().GetHistogramFamily(     \
          name, help, {__VA_ARGS__})

#endif  // CLAKS_OBSERVABILITY_METRICS_H_
