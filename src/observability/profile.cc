// Copyright 2026 The claks Authors.

#include "observability/profile.h"

#include "common/string_util.h"

namespace claks {

namespace {

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::string QueryProfile::Summary() const {
  // key=value pairs, no spaces inside a pair: one grep/cut-friendly
  // token per field (the slow-query log line format).
  std::string out = StrFormat(
      "total_ms=%.3f validate_ms=%.3f match_ms=%.3f plan_ms=%.3f "
      "stream_ms=%.3f analyze_ms=%.3f rank_ms=%.3f fetch_ms=%.3f "
      "analyze_tasks=%llu analyze_tasks_ms=%.3f expansions=%zu hits=%zu",
      Ms(total_ns), Ms(validate_ns), Ms(match_ns), Ms(plan_ns),
      Ms(stream_ns), Ms(analyze_ns), Ms(rank_ns), Ms(fetch_ns),
      static_cast<unsigned long long>(analyze_tasks), Ms(analyze_tasks_ns),
      expansions, hits);
  if (!shard_expansions.empty()) {
    out += StrFormat(" shards=%zu shard_skew=%.2f", shard_expansions.size(),
                     shard_skew.ratio);
  }
  return out;
}

std::string QueryProfile::ToString() const {
  const uint64_t sum = StageSum();
  auto line = [&](const char* stage, uint64_t ns) {
    double share = sum > 0 ? 100.0 * static_cast<double>(ns) /
                                 static_cast<double>(sum)
                           : 0.0;
    return StrFormat("  %-9s %10.3f ms  %5.1f%%\n", stage, Ms(ns), share);
  };
  std::string out = "query profile\n";
  out += line("validate", validate_ns);
  out += line("match", match_ns);
  out += line("plan", plan_ns);
  out += line("stream", stream_ns);
  out += line("analyze", analyze_ns);
  out += line("rank", rank_ns);
  out += line("fetch", fetch_ns);
  out += StrFormat("  %-9s %10.3f ms  (wall %0.3f ms)\n", "stages",
                   Ms(sum), Ms(total_ns));
  if (analyze_tasks > 0) {
    out += StrFormat(
        "  analyze tasks: %llu calls, %.3f ms on shard threads "
        "(overlaps stream)\n",
        static_cast<unsigned long long>(analyze_tasks), Ms(analyze_tasks_ns));
  }
  out += StrFormat("  expansions: %zu   hits: %zu\n", expansions, hits);
  if (!shard_expansions.empty()) {
    out += StrFormat(
        "  shards: %zu   skew: max=%zu mean=%.1f ratio=%.2f\n",
        shard_expansions.size(), shard_skew.max, shard_skew.mean,
        shard_skew.ratio);
  }
  return out;
}

}  // namespace claks
