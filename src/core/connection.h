// Copyright 2026 The claks Authors.
//
// The connection model: a connection is a simple path of tuples linked by
// foreign-key instance edges (paper §3, Tables 2 and 3). Trees (for queries
// of three or more keywords) are handled by core/mtjnt.h; every path in a
// tree is a Connection.

#ifndef CLAKS_CORE_CONNECTION_H_
#define CLAKS_CORE_CONNECTION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "er/cardinality.h"
#include "graph/data_graph.h"
#include "graph/traversal.h"
#include "relational/database.h"

namespace claks {

/// One edge of a connection, linking tuples()[i] to tuples()[i+1].
struct ConnectionEdge {
  /// FK index within the referencing tuple's table.
  uint32_t fk_index = 0;
  /// True when the traversal goes from the referencing tuple to the
  /// referenced tuple (tuples()[i] owns the FK).
  bool along_fk = true;
};

/// A simple path of tuples. A zero-edge connection (single tuple matching
/// several keywords) is allowed.
class Connection {
 public:
  Connection() = default;
  Connection(std::vector<TupleId> tuples, std::vector<ConnectionEdge> edges);

  /// Builds a connection from a data-graph path.
  static Connection FromNodePath(const DataGraph& graph,
                                 const NodePath& path);

  const std::vector<TupleId>& tuples() const { return tuples_; }
  const std::vector<ConnectionEdge>& edges() const { return edges_; }

  /// The paper's "length in RDB": number of foreign-key edges.
  size_t RdbLength() const { return edges_.size(); }

  TupleId front() const;
  TupleId back() const;
  bool ContainsTuple(TupleId id) const;

  /// The connection read in the opposite direction.
  Connection Reversed() const;

  /// Cardinality of each edge at the RDB level, oriented in travel
  /// direction: following a foreign key is N:1, going against it is 1:N.
  std::vector<Cardinality> RdbCardinalitySequence() const;

  /// "d1 - e1 - t1" using database labels; `keyword_of` optionally marks
  /// tuples with their matched keywords as the paper does:
  /// "d1(XML) - e1(Smith)".
  std::string ToString(
      const Database& db,
      const std::map<TupleId, std::string>& keyword_of = {}) const;

  /// Like ToString but interleaves the RDB cardinalities (paper Table 3):
  /// "d1(XML) 1:N e1(Smith)".
  std::string ToAnnotatedString(
      const Database& db,
      const std::map<TupleId, std::string>& keyword_of = {}) const;

  /// Structural equality (same tuples and edges in the same direction).
  bool operator==(const Connection& other) const;

  /// True if this connection and `other` are the same path up to reversal.
  bool SamePathUndirected(const Connection& other) const;

 private:
  std::vector<TupleId> tuples_;
  std::vector<ConnectionEdge> edges_;
};

}  // namespace claks

#endif  // CLAKS_CORE_CONNECTION_H_
