// Copyright 2026 The claks Authors.
//
// Instance-level cardinality statistics — the paper's §4 proposal: "A more
// precise approach could be achieved by analyzing the actual number of
// participating entities (tuples) in a database instance." For every ER
// relationship we measure, from the instance, how many entities actually
// participate and with what fan-out; a connection's *ambiguity* is then the
// expected number of alternative interpretations its steps admit, and the
// kAmbiguity ranking policy orders by it.

#ifndef CLAKS_CORE_STATISTICS_H_
#define CLAKS_CORE_STATISTICS_H_

#include <map>
#include <memory>
#include <string>

#include "core/length.h"
#include "graph/data_graph.h"
#include "relational/delta.h"

namespace claks {

/// Measured facts about one relationship in one database instance.
struct RelationshipStats {
  std::string relationship;
  /// Number of instance links (FK rows for 1:N, middle-relation rows for
  /// N:M).
  size_t link_count = 0;
  /// Distinct participating entities on each side.
  size_t left_participants = 0;
  size_t right_participants = 0;
  /// Total entities on each side (participating or not).
  size_t left_total = 0;
  size_t right_total = 0;

  /// Average number of right entities per *participating* left entity
  /// (>= 1 when any links exist), and vice versa.
  double AvgFanoutLeftToRight() const;
  double AvgFanoutRightToLeft() const;

  /// Fraction of entities that participate at all.
  double LeftParticipation() const;
  double RightParticipation() const;

  std::string ToString() const;
};

/// Computes and caches statistics for every relationship of the schema.
/// All referenced objects must outlive the statistics.
///
/// Thread-safety: the full statistics map is computed eagerly in the
/// constructor and never mutated afterwards, so every const member is safe
/// to call concurrently from any number of threads (the contract
/// KeywordSearchEngine::Warmup relies on for the ranking path).
class InstanceStatistics {
 public:
  InstanceStatistics(const Database* db, const ERSchema* er_schema,
                     const ErRelationalMapping* mapping);

  /// Derives the next generation's statistics from `prev` plus the row
  /// delta in O(delta · fanout): every counter is an integer transition
  /// computed against the two generations' join indexes (prev resolves
  /// deleted rows' parents, next resolves inserted rows'), so the result
  /// equals a from-scratch recompute over `next_db`. Both databases must
  /// be warm and `delta.schema_changed` false. Falls back to a full
  /// recompute when a mapped FK has no valid join index.
  static std::unique_ptr<InstanceStatistics> Derive(
      const InstanceStatistics& prev, const Database* prev_db,
      const Database* next_db, const DatabaseDelta& delta,
      const ERSchema* er_schema, const ErRelationalMapping* mapping);

  /// Stats for one relationship; CLAKS_CHECKs the name exists.
  const RelationshipStats& StatsFor(const std::string& relationship) const;

  const std::map<std::string, RelationshipStats>& all() const {
    return stats_;
  }

  /// Expected number of alternative end entities when traversing one ER
  /// step in the given direction: the instance fan-out (1.0 for a
  /// functional direction with full participation; > 1 where many
  /// alternatives exist).
  double StepFanout(const ErProjectedStep& step) const;

  /// Ambiguity of a projected connection: the product of step fan-outs.
  /// A close (functional) connection has ambiguity <= ~1; hub patterns and
  /// N:M steps multiply it up. This is the §4 "actual number of
  /// participating entities" criterion.
  double ConnectionAmbiguity(const ErProjection& projection) const;

  std::string ToString() const;

 private:
  /// Snapshot load (storage/snapshot.cc) installs the measured map
  /// directly instead of recomputing it over the instance.
  friend class StorageCodec;
  InstanceStatistics() = default;

  std::map<std::string, RelationshipStats> stats_;
};

}  // namespace claks

#endif  // CLAKS_CORE_STATISTICS_H_
