// Copyright 2026 The claks Authors.

#include "core/connection.h"

#include <algorithm>

#include "common/macros.h"

namespace claks {

Connection::Connection(std::vector<TupleId> tuples,
                       std::vector<ConnectionEdge> edges)
    : tuples_(std::move(tuples)), edges_(std::move(edges)) {
  CLAKS_CHECK(!tuples_.empty());
  CLAKS_CHECK_EQ(edges_.size() + 1, tuples_.size());
}

Connection Connection::FromNodePath(const DataGraph& graph,
                                    const NodePath& path) {
  std::vector<TupleId> tuples;
  std::vector<ConnectionEdge> edges;
  tuples.push_back(graph.TupleOf(path.start));
  for (const DataAdjacency& step : path.steps) {
    const DataEdge& edge = graph.edge(step.edge_index);
    edges.push_back(ConnectionEdge{edge.fk_index, step.along_fk != 0});
    tuples.push_back(graph.TupleOf(step.neighbor));
  }
  return Connection(std::move(tuples), std::move(edges));
}

TupleId Connection::front() const {
  CLAKS_CHECK(!tuples_.empty());
  return tuples_.front();
}

TupleId Connection::back() const {
  CLAKS_CHECK(!tuples_.empty());
  return tuples_.back();
}

bool Connection::ContainsTuple(TupleId id) const {
  return std::find(tuples_.begin(), tuples_.end(), id) != tuples_.end();
}

Connection Connection::Reversed() const {
  std::vector<TupleId> tuples(tuples_.rbegin(), tuples_.rend());
  std::vector<ConnectionEdge> edges;
  edges.reserve(edges_.size());
  for (auto it = edges_.rbegin(); it != edges_.rend(); ++it) {
    edges.push_back(ConnectionEdge{it->fk_index, !it->along_fk});
  }
  return Connection(std::move(tuples), std::move(edges));
}

std::vector<Cardinality> Connection::RdbCardinalitySequence() const {
  std::vector<Cardinality> out;
  out.reserve(edges_.size());
  for (const ConnectionEdge& edge : edges_) {
    // Following the FK means many referencing tuples share one referenced
    // tuple: N:1 in travel direction.
    out.push_back(edge.along_fk ? Cardinality::kNOne : Cardinality::kOneN);
  }
  return out;
}

namespace {

std::string LabelOf(const Database& db, TupleId id,
                    const std::map<TupleId, std::string>& keyword_of) {
  std::string out = db.TupleLabel(id);
  auto it = keyword_of.find(id);
  if (it != keyword_of.end()) out += "(" + it->second + ")";
  return out;
}

}  // namespace

std::string Connection::ToString(
    const Database& db,
    const std::map<TupleId, std::string>& keyword_of) const {
  std::string out;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += " - ";
    out += LabelOf(db, tuples_[i], keyword_of);
  }
  return out;
}

std::string Connection::ToAnnotatedString(
    const Database& db,
    const std::map<TupleId, std::string>& keyword_of) const {
  std::vector<Cardinality> cards = RdbCardinalitySequence();
  std::string out;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) {
      out += " ";
      out += CardinalityToString(cards[i - 1]);
      out += " ";
    }
    out += LabelOf(db, tuples_[i], keyword_of);
  }
  return out;
}

bool Connection::operator==(const Connection& other) const {
  if (tuples_ != other.tuples_) return false;
  if (edges_.size() != other.edges_.size()) return false;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].fk_index != other.edges_[i].fk_index ||
        edges_[i].along_fk != other.edges_[i].along_fk) {
      return false;
    }
  }
  return true;
}

bool Connection::SamePathUndirected(const Connection& other) const {
  return *this == other || *this == other.Reversed();
}

}  // namespace claks
