// Copyright 2026 The claks Authors.

#include "core/enumerator.h"

#include "common/macros.h"
#include "graph/traversal.h"

namespace claks {

std::vector<Connection> EnumerateConnections(
    const DataGraph& graph, const std::set<TupleId>& from,
    const std::set<TupleId>& to, const EnumerateOptions& options) {
  std::vector<uint32_t> sources;
  sources.reserve(from.size());
  for (TupleId id : from) sources.push_back(graph.NodeOf(id));
  std::vector<uint32_t> targets;
  targets.reserve(to.size());
  for (TupleId id : to) targets.push_back(graph.NodeOf(id));

  std::vector<Connection> out;
  for (const NodePath& path :
       EnumerateSimplePathsBetweenSets(graph, sources, targets,
                                       options.max_rdb_edges,
                                       options.max_results)) {
    out.push_back(Connection::FromNodePath(graph, path));
  }
  return out;
}

std::vector<Connection> EnumerateConnections(
    const DataGraph& graph, const std::vector<KeywordMatches>& matches,
    const EnumerateOptions& options) {
  CLAKS_CHECK_EQ(matches.size(), 2u);
  return EnumerateConnections(graph, matches[0].TupleSet(),
                              matches[1].TupleSet(), options);
}

std::vector<Connection> DeduplicateUndirected(
    std::vector<Connection> connections) {
  std::vector<Connection> out;
  for (Connection& c : connections) {
    bool duplicate = false;
    for (const Connection& kept : out) {
      if (kept.SamePathUndirected(c)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace claks
