// Copyright 2026 The claks Authors.
//
// Ranking of result connections. The paper contrasts ranking by RDB length
// (connections 1 and 5 best, 4 and 7 worst) with ranking at the conceptual
// level where close associations are emphasised (1, 2 and 5 best; 4 and 7
// promoted above 3 and 6). Each policy here is a lexicographic sort key
// over the structural analysis, optionally combined with text scores.

#ifndef CLAKS_CORE_RANKING_H_
#define CLAKS_CORE_RANKING_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/association.h"

namespace claks {

/// The structural and textual facts a ranker may use.
struct RankInput {
  size_t rdb_length = 0;
  size_t er_length = 0;
  size_t hub_patterns = 0;
  size_t nm_steps = 0;
  bool schema_close = true;
  std::optional<bool> instance_close;
  double text_score = 0.0;
  /// Instance-level ambiguity (product of step fan-outs), ~1.0 for
  /// functional connections; see core/statistics.h.
  double ambiguity = 1.0;
};

/// Builds a RankInput from a connection analysis plus a text score and an
/// optional instance-ambiguity value.
RankInput MakeRankInput(const ConnectionAnalysis& analysis,
                        double text_score, double ambiguity = 1.0);

/// Available ranking policies.
enum class RankerKind {
  /// Ascending RDB length — the conventional shortest-first ranking.
  kRdbLength,
  /// Ascending conceptual length, RDB length as tie-break.
  kErLength,
  /// The paper's §3 policy: fewest transitive-N:M hubs first, then
  /// conceptual length, then RDB length. Orders the running example
  /// {1,2,5} > {4,7} > {3,6}.
  kCloseFirst,
  /// Loose points (N:M steps + hubs) first, then conceptual length.
  kLoosePenalty,
  /// Instance-verified close connections first, then kCloseFirst order.
  kInstanceClose,
  /// Text relevance combined with a structural penalty:
  /// text / (1 + er_length + hubs); descending.
  kCombined,
  /// The paper's §4 proposal: order by measured instance ambiguity (the
  /// actual number of participating entities), then conceptual length.
  kAmbiguity,
  /// The paper's §2 alternative: "if we want to emphasize access to more
  /// information a longer connection should be ranked before shorter
  /// connections" — among equally-unambiguous connections, longer
  /// conceptual length first.
  kMoreContext,
};

const char* RankerKindToString(RankerKind kind);

/// Inverse of RankerKindToString; nullopt for unknown names.
std::optional<RankerKind> RankerKindFromString(const std::string& name);

/// How a ranker's sort key relates to a connection's RDB length — the
/// contract the streaming search mode (core/topk.h, SearchMethod::kStream)
/// relies on to stop early: connections arrive in nondecreasing RDB-length
/// order, so once a lower bound on every future key passes the provisional
/// top-k, the top-k is settled.
enum class RankMonotonicity {
  /// The sort key is exactly {rdb_length}: stream order is rank order and
  /// early termination is exact with no reorder buffer.
  kExact,
  /// The key admits a nondecreasing-in-length lower bound
  /// (MinSortKeyAtLength): streamed candidates may arrive out of final
  /// order, but only within a bounded length window, so a reorder buffer
  /// plus the settled-k predicate still terminates early and exactly.
  kMonotone,
  /// No usable relation to length (text-driven or longest-first keys):
  /// streaming must drain the full result space before ranking.
  kNone,
};

RankMonotonicity RankerMonotonicity(RankerKind kind);

/// Lower bound on SortKey over every path hit of RDB length >= `length`.
/// Nondecreasing in `length`; sound for kExact/kMonotone rankers
/// (CLAKS_CHECK-fails for kNone). Rests on two instance-independent facts:
/// an ER step consumes at most two RDB edges, so er_length >=
/// ceil(length / 2) (core/length.h), and per-step ambiguity factors are
/// clamped to >= 1 (core/statistics.cc).
std::vector<double> MinSortKeyAtLength(RankerKind kind, size_t length);

/// A ranking policy: produces a lexicographic key; smaller keys rank
/// higher.
class Ranker {
 public:
  virtual ~Ranker() = default;
  virtual std::string name() const = 0;
  virtual std::vector<double> SortKey(const RankInput& input) const = 0;
};

std::unique_ptr<Ranker> MakeRanker(RankerKind kind);

/// Stable-sorts `items` by the ranker's key computed from
/// `inputs[i]` (parallel arrays). CLAKS_CHECKs equal sizes. Returns the
/// permutation applied (new index -> old index).
std::vector<size_t> RankOrder(const std::vector<RankInput>& inputs,
                              const Ranker& ranker);

/// Kendall tau-a distance between two rankings given as permutations
/// (new index -> item id). 0 = identical, 1 = reversed.
double KendallTauDistance(const std::vector<size_t>& a,
                          const std::vector<size_t>& b);

}  // namespace claks

#endif  // CLAKS_CORE_RANKING_H_
