// Copyright 2026 The claks Authors.
//
// Close/loose association analysis of connections — the paper's central
// contribution. A connection is classified at the *schema (intensional)
// level* from its cardinality sequence (§2), and optionally verified at the
// *instance (extensional) level*: a schema-loose connection whose endpoint
// tuples are also joined by a schema-close connection is close in this
// particular database instance (§3, connections 3 and 4 vs connection 6).

#ifndef CLAKS_CORE_ASSOCIATION_H_
#define CLAKS_CORE_ASSOCIATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/connection.h"
#include "core/length.h"
#include "er/transitive.h"

namespace claks {

/// Complete analysis of one connection.
struct ConnectionAnalysis {
  Connection connection;
  ErProjection projection;

  /// Cardinalities at the RDB level (one per FK edge).
  std::vector<Cardinality> rdb_steps;
  /// Cardinalities at the conceptual level (one per ER step).
  std::vector<Cardinality> er_steps;

  size_t rdb_length = 0;
  size_t er_length = 0;

  /// Classification of the ER step sequence (paper §2).
  AssociationKind kind = AssociationKind::kImmediate;
  /// Endpoint-to-endpoint composition of the ER steps.
  Cardinality endpoint = Cardinality::kOneOne;
  size_t nm_steps = 0;
  size_t hub_patterns = 0;

  /// True when the cardinality sequence guarantees a close association.
  bool schema_close = true;
  /// Filled by AssociationAnalyzer::CheckInstanceClose; nullopt until then.
  std::optional<bool> instance_close;

  std::string Describe(const Database& db) const;
};

/// Analyzer bound to one database + conceptual schema. The referenced
/// objects must outlive the analyzer.
class AssociationAnalyzer {
 public:
  AssociationAnalyzer(const Database* db, const ERSchema* er_schema,
                      const ErRelationalMapping* mapping,
                      const DataGraph* graph);

  /// Schema-level analysis (no instance check).
  Result<ConnectionAnalysis> Analyze(const Connection& connection) const;

  /// Instance-level closeness: a schema-close connection is trivially
  /// instance-close; a schema-loose one is instance-close iff its endpoint
  /// tuples are also joined by some schema-close connection of at most
  /// `max_witness_edges` FK edges (0: use the connection's own RDB length).
  Result<bool> IsInstanceClose(const Connection& connection,
                               size_t max_witness_edges = 0) const;

  /// Strict variant: every entity-tuple pair of the connection whose
  /// sub-path is schema-loose must have a close witness. Implies
  /// IsInstanceClose.
  Result<bool> IsInstanceCloseStrict(const Connection& connection,
                                     size_t max_witness_edges = 0) const;

  /// Analyze + fill instance_close.
  Result<ConnectionAnalysis> AnalyzeWithInstanceCheck(
      const Connection& connection, size_t max_witness_edges = 0) const;

  const Database& database() const { return *db_; }
  const ERSchema& er_schema() const { return *er_schema_; }
  const ErRelationalMapping& mapping() const { return *mapping_; }
  const DataGraph& graph() const { return *graph_; }

 private:
  /// True if tuples `a` and `b` are joined by a schema-close connection of
  /// at most `max_edges` FK edges.
  Result<bool> HasCloseWitness(TupleId a, TupleId b, size_t max_edges) const;

  const Database* db_;
  const ERSchema* er_schema_;
  const ErRelationalMapping* mapping_;
  const DataGraph* graph_;
};

}  // namespace claks

#endif  // CLAKS_CORE_ASSOCIATION_H_
