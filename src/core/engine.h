// Copyright 2026 The claks Authors.
//
// KeywordSearchEngine: the public facade. Builds (or accepts) the conceptual
// schema, constructs index and graphs, and answers keyword queries with
// ranked connections under any of the supported search methods and ranking
// policies.

#ifndef CLAKS_CORE_ENGINE_H_
#define CLAKS_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/association.h"
#include "core/enumerator.h"
#include "core/mtjnt.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "er/relational_to_er.h"
#include "graph/banks.h"
#include "text/scoring.h"

namespace claks {

/// How result connections are found.
enum class SearchMethod {
  /// Full enumeration of simple paths between keyword matches (two-keyword
  /// queries). The complete result space of the paper's Table 2.
  kEnumerate,
  /// MTJNT semantics (exact data-level enumeration).
  kMtjnt,
  /// MTJNT via DISCOVER candidate networks (same results as kMtjnt).
  kDiscover,
  /// BANKS backward expanding search (top-k answer trees).
  kBanks,
  /// Streaming top-k over the kEnumerate result space (1 or 2 keywords):
  /// connections are pulled lazily in nondecreasing RDB-length order
  /// (core/topk.h, both keyword directions interleaved with tree-level
  /// dedup), analysed on arrival, and the pull stops as soon as the top-k
  /// under `ranker` is provably settled. Exact for kRdbLength; exact via a
  /// bounded reorder buffer for every ranker whose key is length-monotone
  /// (RankerMonotonicity in core/ranking.h); falls back to a full drain
  /// with a logged warning otherwise. With top_k == 0 this is a lazy
  /// drop-in for kEnumerate (same hits, same ranking keys; ranking-key
  /// ties may order differently).
  kStream,
};

const char* SearchMethodToString(SearchMethod method);

struct SearchOptions {
  SearchMethod method = SearchMethod::kEnumerate;
  RankerKind ranker = RankerKind::kCloseFirst;
  /// Bound on FK edges for kEnumerate.
  size_t max_rdb_edges = 4;
  /// Bound on tuples per network for kMtjnt / kDiscover.
  size_t tmax = 5;
  /// Result cap after ranking (0 = unlimited).
  size_t top_k = 0;
  /// Verify instance-level closeness (fills SearchHit::instance_close).
  bool instance_check = true;
  /// Witness budget for the instance check (0: each connection's length).
  size_t witness_edges = 0;
  /// AND semantics (default): a keyword without matches empties the result.
  /// With OR semantics the unmatched keywords are dropped and the query
  /// runs over the remaining ones.
  bool require_all_keywords = true;
  /// When > 0, keep at most this many hits per endpoint group (after
  /// ranking): path hits group by their unordered endpoint pair, non-path
  /// trees by their full keyword-tuple set. The paper notes a longer
  /// connection's association can be "implicitly visible" in shorter ones
  /// between the same tuples (§3); this collapses such groups.
  size_t per_endpoint_limit = 0;
  BanksOptions banks;
};

/// One result: a connection (path) or a tuple tree, with its analysis.
struct SearchHit {
  /// Always set: the result as a tuple tree (a path is a tree).
  TupleTree tree;
  /// Set when the result is path-shaped.
  std::optional<Connection> connection;
  /// Full analysis; set when `connection` is set.
  std::optional<ConnectionAnalysis> analysis;

  /// Aggregate structural facts, defined for paths and trees alike. For a
  /// non-path tree these aggregate over the tree paths between each pair of
  /// keyword tuples (worst kind, max hubs, conceptual size = entity tuples
  /// minus one).
  size_t rdb_length = 0;
  size_t er_length = 0;
  AssociationKind kind = AssociationKind::kImmediate;
  size_t hub_patterns = 0;
  size_t nm_steps = 0;
  bool schema_close = true;
  std::optional<bool> instance_close;

  double text_score = 0.0;
  /// Instance ambiguity (product of measured step fan-outs; paper §4).
  double ambiguity = 1.0;
  /// Pretty-printed form with matched keywords marked.
  std::string rendered;

  RankInput ToRankInput() const;
};

struct SearchResult {
  KeywordQuery query;
  std::vector<KeywordMatches> matches;
  std::vector<SearchHit> hits;  ///< ranked, best first

  /// Keyword(s) matched by each tuple, for display.
  std::map<TupleId, std::string> keyword_of;

  /// Work metric of SearchMethod::kStream: partial paths expanded by the
  /// connection stream (ConnectionStream::expansions). 0 for the other
  /// methods. The scale benchmarks compare this against a full drain to
  /// measure how much work early termination saved.
  size_t expansions = 0;

  std::string ToString(const Database& db, size_t max_hits = 20) const;
};

class KeywordSearchEngine {
 public:
  /// Builds an engine over `db`, reverse-engineering the conceptual schema
  /// from the catalog. `db` must outlive the engine.
  static Result<std::unique_ptr<KeywordSearchEngine>> Create(
      const Database* db);

  /// Builds an engine with a known conceptual schema + mapping (e.g. the
  /// output of GenerateRelationalSchema).
  static Result<std::unique_ptr<KeywordSearchEngine>> Create(
      const Database* db, ERSchema er_schema, ErRelationalMapping mapping);

  /// Eagerly materializes every lazily-built structure the engine or its
  /// database serves queries from — today the per-FK join indexes and the
  /// cached FK edge list (the CSR data graph, schema graph, inverted
  /// index, association analyzer and ranking statistics are already built
  /// eagerly by Create). After Warmup returns, and as long as the backing
  /// Database is not mutated, Search touches no shared mutable state:
  /// concurrent Search calls from any number of threads are data-race-free
  /// and return the same results as serial execution. The service layer
  /// (service/search_service.h) calls this on every snapshot before
  /// publishing it.
  void Warmup() const { db_->Warmup(); }

  /// True when Warmup's work is in place for the current instance (it is
  /// also done by Create; only a Database mutated after Create can be
  /// unwarmed).
  bool Warm() const { return db_->JoinIndexesFresh(); }

  /// Answers a keyword query. Queries where some keyword matches nothing
  /// return an empty hit list (AND semantics).
  ///
  /// Thread-safety: const and data-race-free on a warmed engine (see
  /// Warmup); on an unwarmed engine the first call triggers the database's
  /// mutex-guarded lazy index build.
  Result<SearchResult> Search(const std::string& query_text,
                              const SearchOptions& options = {}) const;

  const Database& database() const { return *db_; }
  const ERSchema& er_schema() const { return *er_schema_; }
  const ErRelationalMapping& mapping() const { return *mapping_; }
  const DataGraph& data_graph() const { return *data_graph_; }
  const SchemaGraph& schema_graph() const { return *schema_graph_; }
  const InvertedIndex& index() const { return *index_; }
  const AssociationAnalyzer& analyzer() const { return *analyzer_; }
  const InstanceStatistics& statistics() const { return *statistics_; }

 private:
  KeywordSearchEngine() = default;

  Result<SearchHit> MakeHit(const TupleTree& tree,
                            const std::vector<KeywordMatches>& matches,
                            const std::map<TupleId, std::string>& keyword_of,
                            const SearchOptions& options) const;

  /// The SearchMethod::kStream path: pulls connections lazily and stops
  /// once the top-k is settled. `result` arrives with query/matches/
  /// keyword_of filled.
  Result<SearchResult> StreamSearch(SearchResult result,
                                    const SearchOptions& options) const;

  /// Shared result tail: rank by options.ranker, apply per_endpoint_limit
  /// (keeping each group's best), truncate to top_k.
  void RankGroupTruncate(SearchResult* result,
                         const SearchOptions& options) const;

  const Database* db_ = nullptr;
  std::unique_ptr<ERSchema> er_schema_;
  std::unique_ptr<ErRelationalMapping> mapping_;
  std::unique_ptr<DataGraph> data_graph_;
  std::unique_ptr<SchemaGraph> schema_graph_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<AssociationAnalyzer> analyzer_;
  std::unique_ptr<InstanceStatistics> statistics_;
};

}  // namespace claks

#endif  // CLAKS_CORE_ENGINE_H_
