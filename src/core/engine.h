// Copyright 2026 The claks Authors.
//
// KeywordSearchEngine: the public facade. Builds (or accepts) the conceptual
// schema, constructs index and graphs, and answers keyword queries under
// any of the supported search methods and ranking policies.
//
// Two consumption shapes share one pipeline. The incremental shape —
// Prepare a query (core/query_spec.h), Open a ResultCursor
// (core/cursor.h), pull pages with Next — is the primary API; the classic
// Search(text, options) call is a thin wrapper that prepares, opens a
// cursor and drains it, and returns results identical to the
// pre-cursor-era facade (tests/cursor_test.cc proves the equivalence).

#ifndef CLAKS_CORE_ENGINE_H_
#define CLAKS_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/association.h"
#include "core/enumerator.h"
#include "core/mtjnt.h"
#include "core/query_spec.h"
#include "core/ranking.h"
#include "core/statistics.h"
#include "observability/profile.h"
#include "er/relational_to_er.h"
#include "graph/banks.h"
#include "text/scoring.h"

namespace claks {

class ShardContext;
struct LoadedEngine;  // storage/snapshot.h

/// One result: a connection (path) or a tuple tree, with its analysis.
struct SearchHit {
  /// Always set: the result as a tuple tree (a path is a tree).
  TupleTree tree;
  /// Set when the result is path-shaped.
  std::optional<Connection> connection;
  /// Full analysis; set when `connection` is set.
  std::optional<ConnectionAnalysis> analysis;

  /// Aggregate structural facts, defined for paths and trees alike. For a
  /// non-path tree these aggregate over the tree paths between each pair of
  /// keyword tuples (worst kind, max hubs, conceptual size = entity tuples
  /// minus one).
  size_t rdb_length = 0;
  size_t er_length = 0;
  AssociationKind kind = AssociationKind::kImmediate;
  size_t hub_patterns = 0;
  size_t nm_steps = 0;
  bool schema_close = true;
  std::optional<bool> instance_close;

  double text_score = 0.0;
  /// Instance ambiguity (product of measured step fan-outs; paper §4).
  double ambiguity = 1.0;
  /// Pretty-printed form with matched keywords marked.
  std::string rendered;

  RankInput ToRankInput() const;
};

struct SearchResult {
  KeywordQuery query;
  std::vector<KeywordMatches> matches;
  std::vector<SearchHit> hits;  ///< ranked, best first

  /// Keyword(s) matched by each tuple, for display.
  std::map<TupleId, std::string> keyword_of;

  /// Per-method work metric, comparable across methods: partial paths
  /// expanded by the connection stream for SearchMethod::kStream
  /// (ConnectionStream::expansions), settled nodes visited by the backward
  /// expansion for SearchMethod::kBanks, 0 for the exhaustive methods
  /// (kEnumerate/kMtjnt/kDiscover visit the whole bounded space by
  /// definition). The scale benchmarks compare kStream's value against a
  /// full drain to measure how much work early termination saved.
  ///
  /// Under intra-query sharding (SearchOptions::shards > 1, streaming
  /// path) this is the sum of the per-shard stream counters in
  /// shard-index order — a stable, deterministic aggregation, so
  /// expansion-count regression tests stay exact under sharding.
  size_t expansions = 0;

  /// Per-shard expansion counters behind `expansions` (empty when the
  /// query ran unsharded or through a materialized method). Work-skew
  /// diagnostics for the benches' --shards sweeps.
  std::vector<size_t> shard_expansions;

  /// Per-stage wall times and work counters, set when
  /// SearchOptions::profile was on (observability/profile.h). Hits and
  /// ranking are byte-identical with or without it.
  std::optional<QueryProfile> profile;

  std::string ToString(const Database& db, size_t max_hits = 20) const;
};

/// When does a delta-derived engine fold its accumulated overlays into
/// fresh frozen bases (compaction)? Compaction costs O(dataset) once but
/// restores O(1)-overhead reads and resets the graph's id slack; the
/// overlays cost a hash probe on touched entries until then.
struct DeltaPolicy {
  enum class Mode {
    kAuto,           ///< compact when accumulated ops exceed the threshold
    kAlwaysCompact,  ///< every Derive compacts (degenerates to rebuild-like
                     ///< state with delta-validated integrity)
    kNeverCompact,   ///< keep overlays indefinitely (tests); graph id-slack
                     ///< exhaustion still forces a compaction
  };
  Mode mode = Mode::kAuto;
  /// kAuto threshold: compact when accumulated overlay ops reach
  /// max(min_ops, fraction * total row slots).
  size_t min_ops = 256;
  double fraction = 0.10;
};

class KeywordSearchEngine {
 public:
  /// Builds an engine over `db`, reverse-engineering the conceptual schema
  /// from the catalog. `db` must outlive the engine.
  static Result<std::unique_ptr<KeywordSearchEngine>> Create(
      const Database* db);

  /// Builds an engine with a known conceptual schema + mapping (e.g. the
  /// output of GenerateRelationalSchema).
  static Result<std::unique_ptr<KeywordSearchEngine>> Create(
      const Database* db, ERSchema er_schema, ErRelationalMapping mapping);

  /// Derives the next generation's engine from `prev` plus the row delta,
  /// in O(delta) instead of O(dataset): join indexes, CSR data graph,
  /// inverted index and instance statistics each apply `delta` as an
  /// overlay over their frozen bases (shared with `prev`, whose readers
  /// are untouched). The delta's referential integrity is validated first
  /// — a dangling FK on an inserted row or a delete of a still-referenced
  /// row (RESTRICT) returns IntegrityViolation and builds nothing.
  ///
  /// `next_db` must be `prev`'s database plus exactly `delta` (the service
  /// clones, mutates the clone, diffs watermarks); `delta.schema_changed`
  /// must be false and `prev` warm. Every observable query result on the
  /// derived engine is byte-identical to an engine Create()d from
  /// `next_db` (tests/differential_test.cc --mutations proves it).
  ///
  /// `policy` decides compaction; graph id-slack exhaustion forces one
  /// regardless of mode. `compacted` (optional) reports what happened.
  static Result<std::unique_ptr<KeywordSearchEngine>> Derive(
      const KeywordSearchEngine& prev, const Database* next_db,
      const DatabaseDelta& delta, const DeltaPolicy& policy = {},
      bool* compacted = nullptr);

  /// Serializes this generation into one page-aligned snapshot file
  /// (the claks storage engine, storage/snapshot.h). The engine must be
  /// warm and compact (no derive overlays) — InvalidArgument otherwise;
  /// the service layer compacts before saving. Defined in
  /// storage/snapshot.cc.
  Status SaveSnapshot(const std::string& path) const;

  /// Loads a generation saved by SaveSnapshot: the flat graph/index
  /// arrays come back as zero-copy views over the mmap'd file, so load
  /// time is O(sections + table rows), not O(postings + edges). The
  /// returned LoadedEngine (storage/snapshot.h) owns the database the
  /// engine reads. Defined in storage/snapshot.cc.
  static Result<LoadedEngine> LoadSnapshot(const std::string& path);

  /// Out-of-line: ShardContext is forward-declared here (core/shard.h
  /// depends on this header, not the other way around).
  ~KeywordSearchEngine();

  /// Eagerly materializes every lazily-built structure the engine or its
  /// database serves queries from — today the per-FK join indexes and the
  /// cached FK edge list (the CSR data graph, schema graph, inverted
  /// index, association analyzer and ranking statistics are already built
  /// eagerly by Create). After Warmup returns, and as long as the backing
  /// Database is not mutated, Search touches no shared mutable state:
  /// concurrent Search calls from any number of threads are data-race-free
  /// and return the same results as serial execution. The service layer
  /// (service/search_service.h) calls this on every snapshot before
  /// publishing it.
  void Warmup() const { db_->Warmup(); }

  /// True when Warmup's work is in place for the current instance (it is
  /// also done by Create; only a Database mutated after Create can be
  /// unwarmed).
  bool Warm() const { return db_->JoinIndexesFresh(); }

  /// Runs the pull-independent half of a query: tokenization, keyword
  /// matching, AND/OR resolution and the query-dependent structural checks
  /// (keyword-count limits per method). Option validation happens when the
  /// QuerySpec is built: pass QuerySpec::Create's result for strict typed
  /// validation, QuerySpec::Unvalidated for the legacy behavior. The
  /// returned PreparedQuery references this engine — open cursors with
  /// PreparedQuery::Open (and keep the PreparedQuery at a stable address
  /// while cursors are open).
  ///
  /// Thread-safety: const and data-race-free on a warmed engine, like
  /// Search.
  Result<PreparedQuery> Prepare(const std::string& query_text,
                                QuerySpec spec) const;

  /// Convenience: strict-validates `options` (QuerySpec::Create) and
  /// prepares.
  Result<PreparedQuery> Prepare(const std::string& query_text,
                                const SearchOptions& options) const;

  /// Answers a keyword query. Queries where some keyword matches nothing
  /// return an empty hit list (AND semantics). A thin wrapper over
  /// Prepare (unvalidated spec, for byte-compatibility with historical
  /// option bags) + cursor drain.
  ///
  /// Thread-safety: const and data-race-free on a warmed engine (see
  /// Warmup); on an unwarmed engine the first call triggers the database's
  /// mutex-guarded lazy index build.
  Result<SearchResult> Search(const std::string& query_text,
                              const SearchOptions& options = {}) const;

  /// Analyses one candidate tree into a SearchHit (text scores,
  /// association analysis, instance check, rendering). Internal engine
  /// plumbing shared with core/cursor.cc — streaming cursors analyse
  /// candidates on pull through this entry point.
  Result<SearchHit> AnalyzeTree(
      const TupleTree& tree, const std::vector<KeywordMatches>& matches,
      const std::map<TupleId, std::string>& keyword_of,
      const SearchOptions& options) const;

  /// Runs `prepared`'s method to completion and returns the fully ranked,
  /// grouped and truncated hit sequence — the backing store of
  /// materialized cursors (every method except two-keyword kStream).
  /// `work` (optional) receives the method's work metric (BANKS visited
  /// nodes; 0 for the exhaustive methods); `profiler` (optional) receives
  /// the stream/analyze/rank stage times. Internal plumbing shared with
  /// core/cursor.cc.
  Result<std::vector<SearchHit>> MaterializeHits(
      const PreparedQuery& prepared, size_t* work,
      QueryProfiler* profiler = nullptr) const;

  const Database& database() const { return *db_; }
  const ERSchema& er_schema() const { return *er_schema_; }
  const ErRelationalMapping& mapping() const { return *mapping_; }
  const DataGraph& data_graph() const { return *data_graph_; }
  const SchemaGraph& schema_graph() const { return *schema_graph_; }
  const InvertedIndex& index() const { return *index_; }
  const AssociationAnalyzer& analyzer() const { return *analyzer_; }
  const InstanceStatistics& statistics() const { return *statistics_; }

  /// Overlay ops accumulated across the Derive chain since the last
  /// compaction (0 on a freshly Create()d or just-compacted engine); the
  /// DeltaPolicy::kAuto compaction trigger.
  size_t overlay_ops() const { return overlay_ops_; }

  /// The engine-owned intra-query execution context (core/shard.h):
  /// a dedicated thread pool per-shard scatter tasks run on. Created
  /// lazily on the first sharded query — unsharded workloads never
  /// start extra threads — and shared by every sharded query on this
  /// engine thereafter. Never the service's admission pool: a query
  /// task fanning out on its own bounded pool could deadlock; shard
  /// tasks are pure compute and never block, so this pool cannot.
  ///
  /// Thread-safety: callable from any thread (call_once creation).
  ShardContext& shard_context() const;

 private:
  KeywordSearchEngine() = default;

  /// Snapshot save/load (storage/snapshot.cc) reads the built structures
  /// at save time and installs loaded ones at load time.
  friend class StorageCodec;

  /// Shared result tail: rank by options.ranker, apply per_endpoint_limit
  /// (keeping each group's best), truncate to top_k.
  void RankGroupTruncate(std::vector<SearchHit>* hits,
                         const std::map<TupleId, std::string>& keyword_of,
                         const SearchOptions& options) const;

  const Database* db_ = nullptr;
  /// Lazy (see shard_context()); mutable because sharded execution is a
  /// detail of const Search/MaterializeHits calls.
  mutable std::once_flag shard_context_once_;
  // claks-lint: allow(mutable-member) -- written exactly once under
  // shard_context_once_ (call_once publication), read-only afterwards.
  mutable std::unique_ptr<ShardContext> shard_context_;
  std::unique_ptr<ERSchema> er_schema_;
  std::unique_ptr<ErRelationalMapping> mapping_;
  std::unique_ptr<DataGraph> data_graph_;
  std::unique_ptr<SchemaGraph> schema_graph_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<AssociationAnalyzer> analyzer_;
  std::unique_ptr<InstanceStatistics> statistics_;
  size_t overlay_ops_ = 0;
};

}  // namespace claks

#endif  // CLAKS_CORE_ENGINE_H_
