// Copyright 2026 The claks Authors.
//
// Lazy, length-ordered connection streaming. Full enumeration (the default
// engine path) materialises every connection before ranking; for top-k
// queries over large instances a system wants to *stream* connections in
// nondecreasing RDB-length order and stop early. This module implements a
// best-first expansion over the data graph (uniform edge cost), the same
// strategy BANKS uses for its answer heap.
//
// Length order is compatible with the kRdbLength policy directly, and a
// bounded reorder buffer upgrades it to any policy whose primary key is
// monotone in RDB length (see StreamTopK).
//
// Entry points: construct a ConnectionStream over data-graph node sets
// (sources/targets as returned by the matcher, mapped through
// DataGraph::NodeOf) and pull with Next(), or use StreamTopK for the
// collect-first-k convenience. Expansion iterates the CSR adjacency spans
// of graph/data_graph.h; `expansions()` is the work metric the tests and
// benchmarks assert on. Not yet dispatched to by KeywordSearchEngine —
// candidates for a streaming search mode should start here.

#ifndef CLAKS_CORE_TOPK_H_
#define CLAKS_CORE_TOPK_H_

#include <queue>
#include <set>
#include <vector>

#include "core/connection.h"
#include "graph/traversal.h"

namespace claks {

/// Streams simple paths from `sources` to `targets` in nondecreasing
/// edge-count order. Paths stop at the first target tuple (connection
/// endpoints carry the keywords). Deterministic: ties break by discovery
/// order.
class ConnectionStream {
 public:
  ConnectionStream(const DataGraph* graph, std::vector<uint32_t> sources,
                   std::vector<uint32_t> targets, size_t max_edges);

  /// Returns the next connection, or nullopt when exhausted.
  std::optional<Connection> Next();

  /// Number of partial paths expanded so far (work metric for tests and
  /// benchmarks).
  size_t expansions() const { return expansions_; }

 private:
  struct Frontier {
    NodePath path;
    // Orders the priority queue: fewer edges first, then insertion order.
    size_t length;
    uint64_t sequence;
    bool operator>(const Frontier& other) const {
      if (length != other.length) return length > other.length;
      return sequence > other.sequence;
    }
  };

  void Push(NodePath path);

  const DataGraph* graph_;
  std::set<uint32_t> target_set_;
  size_t max_edges_;
  uint64_t next_sequence_ = 0;
  size_t expansions_ = 0;
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>>
      queue_;
};

/// Collects the first `k` connections of a stream (all of them when the
/// stream ends earlier).
std::vector<Connection> StreamTopK(ConnectionStream* stream, size_t k);

}  // namespace claks

#endif  // CLAKS_CORE_TOPK_H_
