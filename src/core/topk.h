// Copyright 2026 The claks Authors.
//
// Lazy, length-ordered connection streaming. Full enumeration (the default
// engine path) materialises every connection before ranking; for top-k
// queries over large instances a system wants to *stream* connections in
// nondecreasing RDB-length order and stop early. This module implements a
// best-first expansion over the data graph (uniform edge cost), the same
// strategy BANKS uses for its answer heap.
//
// Length order is compatible with the kRdbLength policy directly, and a
// bounded reorder buffer upgrades it to any policy whose primary key is
// monotone in RDB length (RankerMonotonicity / MinSortKeyAtLength in
// core/ranking.h state that contract per policy).
//
// Entry points: construct a ConnectionStream over data-graph node sets
// (sources/targets as returned by the matcher, mapped through
// DataGraph::NodeOf) and pull with Next(), or use StreamTopK for the
// collect-first-k convenience. A one-directional stream stops paths at the
// first target tuple, so connections whose interior contains a
// source-keyword tuple are only found from the other side;
// ConnectionStream::Bidirectional interleaves both directions in one
// length-ordered queue with tree-level deduplication, matching the
// engine's kEnumerate result space. Expansion iterates the CSR adjacency
// spans of graph/data_graph.h; `expansions()` is the work metric the tests
// and benchmarks assert on. KeywordSearchEngine dispatches here for
// SearchMethod::kStream.

#ifndef CLAKS_CORE_TOPK_H_
#define CLAKS_CORE_TOPK_H_

#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "core/connection.h"
#include "graph/traversal.h"

namespace claks {

/// One seed of a stream lane, carrying an explicit rank. The rank is the
/// cross-shard merge coordinate of intra-query sharding (core/shard.h):
/// within one RDB length level a stream's emissions are seed-major (see
/// the emission-order note on NextKeyedPath), so per-shard streams seeded
/// with their *global* ranks emit exactly the global order restricted to
/// their seeds, and a merger can interleave shards on (length, seed_rank)
/// alone.
struct RankedSeed {
  uint32_t node = 0;
  uint64_t rank = 0;
};

/// One lane of a ranked multi-lane stream: pre-deduplicated seeds with
/// global ranks, plus the lane's target set.
struct RankedLane {
  std::vector<RankedSeed> seeds;
  std::vector<uint32_t> targets;
};

/// An emission with its merge coordinates: the path, its edge count, and
/// the global rank of the seed whose expansion discovered it.
struct KeyedPath {
  NodePath path;
  size_t length = 0;
  uint64_t seed_rank = 0;
};

/// Streams simple paths from `sources` to `targets` in nondecreasing
/// edge-count order. Paths stop at the first target tuple (connection
/// endpoints carry the keywords). Deterministic: ties break by discovery
/// order.
class ConnectionStream {
 public:
  /// Passed as `stop_length` when Next() should run to exhaustion.
  static constexpr size_t kNoStopLength = static_cast<size_t>(-1);

  ConnectionStream(const DataGraph* graph, std::vector<uint32_t> sources,
                   std::vector<uint32_t> targets, size_t max_edges);

  /// Builds a two-lane stream: lane 0 expands side_a -> side_b, lane 1
  /// side_b -> side_a, interleaved in a single priority queue so
  /// connections still arrive in global nondecreasing length order. A
  /// connection found by both lanes (the same undirected path) is emitted
  /// once — tree-level dedup, mirroring the engine's enumerate semantics.
  static ConnectionStream Bidirectional(const DataGraph* graph,
                                        const std::vector<uint32_t>& side_a,
                                        const std::vector<uint32_t>& side_b,
                                        size_t max_edges);

  /// The shard-slice form of Bidirectional: the same two-lane dedup
  /// semantics, but seeded with explicit pre-ranked (already deduplicated)
  /// seed subsets. core/shard.h builds one per shard, assigning each seed
  /// the rank it holds in the full unsharded stream, so the per-shard
  /// emission sequences merge back into the unsharded order on
  /// (length, seed_rank).
  static ConnectionStream BidirectionalRanked(const DataGraph* graph,
                                              RankedLane lane_a,
                                              RankedLane lane_b,
                                              size_t max_edges);

  /// Returns the next connection, or nullopt when the stream is exhausted
  /// or every pending partial path already has `stop_length` or more
  /// edges. Stopping leaves the queue intact: a later call with a larger
  /// bound resumes where this one left off.
  std::optional<Connection> Next(size_t stop_length = kNoStopLength);

  /// Like Next but returns the raw data-graph path (node ids + adjacency
  /// steps carrying edge indices) — what the engine needs to build the
  /// canonical TupleTree without re-resolving FK edges.
  std::optional<NodePath> NextPath(size_t stop_length = kNoStopLength);

  /// Like NextPath but also reports the merge coordinates. Emission-order
  /// contract (what cross-shard merging rests on): the queue pops by
  /// (length, insertion sequence), and children inherit push order from
  /// their parent's pop order, so within one length level emissions come
  /// in lexicographic derivation order (seed rank first) — in particular
  /// seed-major. tests/shard_test.cc asserts the merged order equals the
  /// unsharded order emission by emission.
  std::optional<KeyedPath> NextKeyedPath(size_t stop_length = kNoStopLength);

  /// Number of edges of the shortest pending partial path — a lower bound
  /// on the RDB length of every future connection. nullopt once exhausted.
  std::optional<size_t> PendingLength() const;

  /// Largest frontier length popped so far; nullopt before the first pop.
  /// Pops come in nondecreasing length order, so the max is a complete
  /// record of which lengths have been popped. core/shard.h uses it to
  /// reconstruct the unsharded stream's knowledge horizon after a
  /// prefetch drained a shard deeper than the caller's final stop bound.
  std::optional<size_t> MaxPoppedLength() const {
    return popped_any_ ? std::optional<size_t>(max_popped_length_)
                       : std::nullopt;
  }

  /// Number of partial paths expanded so far (work metric for tests and
  /// benchmarks).
  size_t expansions() const { return expansions_; }

 private:
  struct Frontier {
    NodePath path;
    /// Nodes of `path` in travel order, maintained incrementally so
    /// expansion never rebuilds the vector from the step list.
    std::vector<uint32_t> nodes;
    // Orders the priority queue: fewer edges first, then insertion order.
    size_t length;
    uint32_t lane;
    uint64_t sequence;
    /// Global rank of the seed this partial path grew from (inherited
    /// unchanged by every extension) — the cross-shard merge coordinate.
    uint64_t seed_rank;
    bool operator>(const Frontier& other) const {
      if (length != other.length) return length > other.length;
      return sequence > other.sequence;
    }
  };

  ConnectionStream(const DataGraph* graph, size_t max_edges);

  void AddLane(const std::vector<uint32_t>& sources,
               const std::vector<uint32_t>& targets);

  /// AddLane with caller-assigned seed ranks (already deduplicated); the
  /// sharded factory's building block. Plain AddLane assigns ranks
  /// 0,1,2,... across lanes in seeding order, so both paths agree on what
  /// rank a seed holds.
  void AddLaneRanked(const std::vector<RankedSeed>& seeds,
                     const std::vector<uint32_t>& targets);

  /// Records the canonical (sorted node set, sorted edge set) form of an
  /// answer; false when it was already emitted by the other lane.
  bool MarkEmitted(const Frontier& frontier);

  const DataGraph* graph_;
  /// Target node set per lane (one lane for the plain constructor, two for
  /// Bidirectional).
  std::vector<std::set<uint32_t>> lane_targets_;
  size_t max_edges_;
  bool dedup_ = false;
  uint64_t next_sequence_ = 0;
  uint64_t next_seed_rank_ = 0;
  size_t expansions_ = 0;
  bool popped_any_ = false;
  size_t max_popped_length_ = 0;
  std::set<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>> emitted_;
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>>
      queue_;
};

/// Collects the first `k` connections of a stream (all of them when the
/// stream ends earlier).
std::vector<Connection> StreamTopK(ConnectionStream* stream, size_t k);

}  // namespace claks

#endif  // CLAKS_CORE_TOPK_H_
