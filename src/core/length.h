// Copyright 2026 The claks Authors.
//
// Conceptual (ER) projection of a connection: "in [the] conceptual approach
// middle relations should not be taken into account when calculating the
// length of a connection" (paper §3, Table 2). A connection through a
// middle-relation tuple (p1 - w_f1 - e1, RDB length 2) projects to a single
// N:M step (PROJECT N:M EMPLOYEE, ER length 1).

#ifndef CLAKS_CORE_LENGTH_H_
#define CLAKS_CORE_LENGTH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/connection.h"
#include "er/er_to_relational.h"

namespace claks {

/// One conceptual step of a projected connection.
struct ErProjectedStep {
  /// Name of the ER relationship this step traverses.
  std::string relationship;
  /// Cardinality oriented in travel direction.
  Cardinality cardinality = Cardinality::kOneN;
  /// Entity-type names at the two ends, in travel direction. For a partial
  /// step (connection starts or ends *inside* a middle relation) the open
  /// end holds the relationship name instead.
  std::string from_entity;
  std::string to_entity;
  /// True when only half of a middle relation was traversed (the connection
  /// starts or ends at a middle-relation tuple).
  bool partial = false;
  /// True when the step travels from the relationship's left entity toward
  /// its right entity (used by instance statistics to pick the fan-out
  /// direction; well-defined even for self-relationships).
  bool left_to_right = true;
};

/// A connection viewed at the conceptual level.
struct ErProjection {
  /// The entity tuples along the connection (middle-relation tuples
  /// dropped), in travel order.
  std::vector<TupleId> entity_tuples;
  std::vector<ErProjectedStep> steps;

  /// The paper's "length in ER".
  size_t ErLength() const { return steps.size(); }

  std::vector<Cardinality> CardinalitySequence() const;

  /// "DEPARTMENT 1:N EMPLOYEE N:M PROJECT".
  std::string ToString() const;
};

/// Projects a connection onto the ER schema using the table/FK mapping.
/// Fails if an FK of the connection is unknown to the mapping or the
/// relationship name does not resolve in `er_schema`.
Result<ErProjection> ProjectToEr(const Connection& connection,
                                 const Database& db,
                                 const ERSchema& er_schema,
                                 const ErRelationalMapping& mapping);

/// Convenience: just the conceptual length.
Result<size_t> ErLength(const Connection& connection, const Database& db,
                        const ERSchema& er_schema,
                        const ErRelationalMapping& mapping);

}  // namespace claks

#endif  // CLAKS_CORE_LENGTH_H_
