// Copyright 2026 The claks Authors.

#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/cursor.h"
#include "core/shard.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace claks {

namespace {

// Engine-level query metrics (catalog: docs/OBSERVABILITY.md). The
// family lookups run once per Search call, never per candidate.
CLAKS_METRIC_COUNTER_FAMILY(g_engine_queries, "claks_engine_queries_total",
                            "Queries answered by the engine facade",
                            "method");
CLAKS_METRIC_HISTOGRAM_FAMILY(
    g_engine_query_us, "claks_engine_query_duration_us",
    "End-to-end Search latency (prepare + drain)", "method", "ranker");
CLAKS_METRIC_HISTOGRAM_FAMILY(
    g_engine_expansions, "claks_engine_query_expansions_count",
    "Per-query work metric (stream expansions / BANKS visited nodes)",
    "method");

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

RankInput SearchHit::ToRankInput() const {
  RankInput input;
  input.rdb_length = rdb_length;
  input.er_length = er_length;
  input.hub_patterns = hub_patterns;
  input.nm_steps = nm_steps;
  input.schema_close = schema_close;
  input.instance_close = instance_close;
  input.text_score = text_score;
  input.ambiguity = ambiguity;
  return input;
}

std::string SearchResult::ToString(const Database& /*db*/,
                                   size_t max_hits) const {
  std::string out = "query: " + query.ToString() + "\n";
  for (const KeywordMatches& km : matches) {
    out += StrFormat("  keyword '%s': %zu tuples\n", km.keyword.c_str(),
                     km.matches.size());
  }
  size_t shown = std::min(max_hits, hits.size());
  for (size_t i = 0; i < shown; ++i) {
    const SearchHit& hit = hits[i];
    out += StrFormat("  #%zu  %s | rdb %zu er %zu %s%s | text %.3f\n",
                     i + 1, hit.rendered.c_str(), hit.rdb_length,
                     hit.er_length, AssociationKindToString(hit.kind),
                     hit.schema_close ? " (close)" : " (loose)",
                     hit.text_score);
  }
  if (shown < hits.size()) {
    out += StrFormat("  ... (%zu more)\n", hits.size() - shown);
  }
  return out;
}

KeywordSearchEngine::~KeywordSearchEngine() = default;

ShardContext& KeywordSearchEngine::shard_context() const {
  std::call_once(shard_context_once_, [this] {
    shard_context_ = std::make_unique<ShardContext>();
  });
  return *shard_context_;
}

Result<std::unique_ptr<KeywordSearchEngine>> KeywordSearchEngine::Create(
    const Database* db) {
  CLAKS_CHECK(db != nullptr);
  CLAKS_ASSIGN_OR_RETURN(RecoveredErSchema recovered,
                         ReverseEngineerEr(*db));
  return Create(db, std::move(recovered.schema),
                std::move(recovered.mapping));
}

Result<std::unique_ptr<KeywordSearchEngine>> KeywordSearchEngine::Create(
    const Database* db, ERSchema er_schema, ErRelationalMapping mapping) {
  CLAKS_CHECK(db != nullptr);
  CLAKS_RETURN_NOT_OK(db->CheckReferentialIntegrity());
  // Pay the join-index build once here; the data graph and every query
  // path are then served from the cache, and a freshly-created engine is
  // warm (Search is const and data-race-free until `db` is mutated).
  db->Warmup();
  // NOLINTNEXTLINE(modernize-make-unique): the constructor is private
  // (Build/Derive are the only entry points); make_unique cannot reach it.
  auto engine =
      std::unique_ptr<KeywordSearchEngine>(new KeywordSearchEngine());
  engine->db_ = db;
  engine->er_schema_ = std::make_unique<ERSchema>(std::move(er_schema));
  engine->mapping_ =
      std::make_unique<ErRelationalMapping>(std::move(mapping));
  engine->data_graph_ = std::make_unique<DataGraph>(db);
  engine->schema_graph_ = std::make_unique<SchemaGraph>(db);
  engine->index_ = std::make_unique<InvertedIndex>(db);
  engine->analyzer_ = std::make_unique<AssociationAnalyzer>(
      db, engine->er_schema_.get(), engine->mapping_.get(),
      engine->data_graph_.get());
  engine->statistics_ = std::make_unique<InstanceStatistics>(
      db, engine->er_schema_.get(), engine->mapping_.get());
  return engine;
}

Result<std::unique_ptr<KeywordSearchEngine>> KeywordSearchEngine::Derive(
    const KeywordSearchEngine& prev, const Database* next_db,
    const DatabaseDelta& delta, const DeltaPolicy& policy, bool* compacted) {
  CLAKS_CHECK(next_db != nullptr);
  CLAKS_CHECK(!delta.schema_changed);
  CLAKS_CHECK(prev.Warm());

  // Join indexes first: DeriveJoinIndexes doubles as the delta's
  // referential-integrity check (dangling FK, RESTRICT). On failure
  // nothing is built and `prev` is untouched.
  CLAKS_RETURN_NOT_OK(next_db->DeriveJoinIndexes(prev.database(), delta));

  // NOLINTNEXTLINE(modernize-make-unique): the constructor is private
  // (Build/Derive are the only entry points); make_unique cannot reach it.
  auto engine =
      std::unique_ptr<KeywordSearchEngine>(new KeywordSearchEngine());
  engine->db_ = next_db;
  engine->er_schema_ = std::make_unique<ERSchema>(*prev.er_schema_);
  engine->mapping_ = std::make_unique<ErRelationalMapping>(*prev.mapping_);

  size_t accumulated = prev.overlay_ops_ + delta.num_ops();
  bool compact = policy.mode == DeltaPolicy::Mode::kAlwaysCompact;
  if (policy.mode == DeltaPolicy::Mode::kAuto) {
    size_t threshold = std::max(
        policy.min_ops,
        static_cast<size_t>(policy.fraction *
                            static_cast<double>(next_db->TotalRows())));
    compact = accumulated >= threshold;
  }

  // Statistics derive against *both* generations' join indexes (prev
  // resolves deleted rows' parents), so run it before any compaction
  // rewrites next_db's overlays.
  engine->statistics_ = InstanceStatistics::Derive(
      *prev.statistics_, &prev.database(), next_db, delta,
      engine->er_schema_.get(), engine->mapping_.get());

  if (!compact) {
    CLAKS_ASSIGN_OR_RETURN(
        engine->data_graph_,
        DataGraph::Derive(*prev.data_graph_, next_db, delta));
    // nullptr = the id slack between tables is exhausted; only a
    // compaction renumbers, so force one whatever the policy says.
    if (engine->data_graph_ == nullptr) compact = true;
  }
  if (compact) {
    next_db->CompactJoinIndexes();
    engine->data_graph_ = std::make_unique<DataGraph>(next_db);
  }

  engine->index_ = InvertedIndex::Derive(*prev.index_, next_db, delta);
  if (compact) engine->index_->Compact();

  // Schema-sized structures: rebuilt outright, they never see row deltas.
  engine->schema_graph_ = std::make_unique<SchemaGraph>(next_db);
  engine->analyzer_ = std::make_unique<AssociationAnalyzer>(
      next_db, engine->er_schema_.get(), engine->mapping_.get(),
      engine->data_graph_.get());

  engine->overlay_ops_ = compact ? 0 : accumulated;
  if (compacted != nullptr) *compacted = compact;
  return engine;
}

namespace {

// The unique path between two nodes of a tree, restricted to tree edges.
NodePath TreePathBetween(const DataGraph& graph, const TupleTree& tree,
                         uint32_t from, uint32_t to) {
  std::map<uint32_t, std::vector<DataAdjacency>> adjacency;
  for (uint32_t e : tree.edge_indices) {
    const DataEdge& edge = graph.edge(e);
    uint32_t a = graph.NodeOf(edge.from);
    uint32_t b = graph.NodeOf(edge.to);
    adjacency[a].push_back(DataAdjacency{e, b, true});
    adjacency[b].push_back(DataAdjacency{e, a, false});
  }
  // BFS with parent tracking.
  std::map<uint32_t, DataAdjacency> parent_step;
  std::map<uint32_t, uint32_t> parent;
  std::deque<uint32_t> queue{from};
  std::set<uint32_t> seen{from};
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop_front();
    if (cur == to) break;
    for (const DataAdjacency& adj : adjacency[cur]) {
      if (seen.count(adj.neighbor) > 0) continue;
      seen.insert(adj.neighbor);
      parent[adj.neighbor] = cur;
      parent_step.emplace(adj.neighbor, adj);
      queue.push_back(adj.neighbor);
    }
  }
  NodePath path{from, {}};
  if (from == to || seen.count(to) == 0) return path;
  std::vector<DataAdjacency> reversed;
  uint32_t node = to;
  while (node != from) {
    reversed.push_back(parent_step.at(node));
    node = parent.at(node);
  }
  path.steps.assign(reversed.rbegin(), reversed.rend());
  return path;
}

// Extra answers requested from BANKS beyond options.top_k: BANKS orders by
// its internal tree weight, which need not agree with options.ranker, so
// truncation to k must happen only after the engine re-ranks. The margin
// absorbs rank disagreements near the cut.
constexpr size_t kBanksOverfetchMargin = 16;

// Sharded kEnumerate candidate generation: sources are mutually
// independent in EnumerateSimplePathsBetweenSets (per-source DFS, then
// one stable length sort), so per-shard tasks enumerate disjoint source
// subsets and concatenating the per-source outputs in original source
// order before the same sort reproduces the serial output exactly.
std::vector<NodePath> EnumerateBetweenSetsSharded(
    const DataGraph& graph, const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets, size_t max_edges, size_t shards,
    ThreadPool* pool) {
  std::vector<std::vector<NodePath>> per_source(sources.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    tasks.push_back([&, s] {
      for (size_t i = 0; i < sources.size(); ++i) {
        if (ShardOfNode(sources[i], shards) != s) continue;
        AppendSimplePathsFromSource(graph, sources[i], targets, max_edges,
                                    /*max_results=*/0, &per_source[i]);
      }
    });
  }
  RunAndWait(pool, std::move(tasks));
  std::vector<NodePath> out;
  for (std::vector<NodePath>& paths : per_source) {
    for (NodePath& path : paths) out.push_back(std::move(path));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const NodePath& a, const NodePath& b) {
                     return a.length() < b.length();
                   });
  return out;
}

size_t KindSeverity(AssociationKind kind) {
  switch (kind) {
    case AssociationKind::kImmediate:
      return 0;
    case AssociationKind::kTransitiveFunctional:
      return 1;
    case AssociationKind::kMixedLoose:
      return 2;
    case AssociationKind::kTransitiveNM:
      return 3;
  }
  return 3;
}

}  // namespace

Result<SearchHit> KeywordSearchEngine::AnalyzeTree(
    const TupleTree& tree, const std::vector<KeywordMatches>& matches,
    const std::map<TupleId, std::string>& keyword_of,
    const SearchOptions& options) const {
  SearchHit hit;
  hit.tree = tree;
  hit.rdb_length = tree.edge_indices.size();

  // Text score: best match per keyword among tuples in the tree.
  std::set<TupleId> tree_tuples;
  for (uint32_t node : tree.nodes) {
    tree_tuples.insert(data_graph_->TupleOf(node));
  }
  for (const KeywordMatches& km : matches) {
    double best = 0.0;
    for (const TupleMatch& m : km.matches) {
      if (tree_tuples.count(m.tuple) == 0) continue;
      best = std::max(best, ScoreTupleMatch(*index_, km.keyword, m));
    }
    hit.text_score += best;
  }

  if (tree.IsPath(*data_graph_)) {
    Connection connection = tree.ToConnection(*data_graph_);
    // Orient the path so a tuple matching the first keyword comes first
    // when possible (paper reads connections keyword-to-keyword).
    if (!matches.empty()) {
      auto first_set = matches[0].TupleSet();
      if (first_set.count(connection.front()) == 0 &&
          first_set.count(connection.back()) > 0) {
        connection = connection.Reversed();
      }
    }
    CLAKS_ASSIGN_OR_RETURN(ConnectionAnalysis analysis,
                           analyzer_->Analyze(connection));
    if (options.instance_check) {
      CLAKS_ASSIGN_OR_RETURN(
          bool close,
          analyzer_->IsInstanceClose(connection, options.witness_edges));
      analysis.instance_close = close;
    }
    hit.er_length = analysis.er_length;
    hit.kind = analysis.kind;
    hit.hub_patterns = analysis.hub_patterns;
    hit.nm_steps = analysis.nm_steps;
    hit.schema_close = analysis.schema_close;
    hit.instance_close = analysis.instance_close;
    hit.ambiguity = statistics_->ConnectionAmbiguity(analysis.projection);
    hit.rendered = connection.ToAnnotatedString(*db_, keyword_of);
    hit.connection = std::move(connection);
    hit.analysis = std::move(analysis);
    return hit;
  }

  // Non-path tree: aggregate over the tree paths between each pair of
  // keyword tuples.
  std::vector<uint32_t> keyword_nodes;
  for (uint32_t node : tree.nodes) {
    if (keyword_of.count(data_graph_->TupleOf(node)) > 0) {
      keyword_nodes.push_back(node);
    }
  }
  size_t entity_tuples = 0;
  for (uint32_t node : tree.nodes) {
    if (!mapping_->IsMiddleRelation(
            db_->SchemaOf(data_graph_->TupleOf(node)).name())) {
      ++entity_tuples;
    }
  }
  hit.er_length = entity_tuples > 0 ? entity_tuples - 1 : 0;
  bool all_instance_close = true;
  bool checked_any = false;
  for (size_t i = 0; i < keyword_nodes.size(); ++i) {
    for (size_t j = i + 1; j < keyword_nodes.size(); ++j) {
      NodePath path = TreePathBetween(*data_graph_, tree, keyword_nodes[i],
                                      keyword_nodes[j]);
      Connection connection =
          Connection::FromNodePath(*data_graph_, path);
      CLAKS_ASSIGN_OR_RETURN(ConnectionAnalysis analysis,
                             analyzer_->Analyze(connection));
      if (KindSeverity(analysis.kind) > KindSeverity(hit.kind)) {
        hit.kind = analysis.kind;
      }
      hit.hub_patterns = std::max(hit.hub_patterns, analysis.hub_patterns);
      hit.nm_steps = std::max(hit.nm_steps, analysis.nm_steps);
      hit.ambiguity = std::max(
          hit.ambiguity,
          statistics_->ConnectionAmbiguity(analysis.projection));
      if (options.instance_check) {
        CLAKS_ASSIGN_OR_RETURN(
            bool close,
            analyzer_->IsInstanceClose(connection, options.witness_edges));
        all_instance_close = all_instance_close && close;
        checked_any = true;
      }
    }
  }
  hit.schema_close = GuaranteesCloseAssociation(hit.kind);
  if (checked_any) hit.instance_close = all_instance_close;
  hit.rendered = tree.ToString(*data_graph_);
  return hit;
}

Result<PreparedQuery> KeywordSearchEngine::Prepare(
    const std::string& query_text, QuerySpec spec) const {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("match");
  PreparedQuery prepared(this, std::move(spec));
  prepared.query_ = ParseKeywordQuery(query_text, index_->tokenizer());
  if (prepared.query_.keywords.empty()) {
    return Status::InvalidArgument("empty keyword query");
  }
  if (prepared.query_.keywords.size() > 31) {
    return Status::InvalidArgument("too many keywords (max 31)");
  }
  prepared.matches_ = MatchKeywords(*index_, prepared.query_);

  for (const KeywordMatches& km : prepared.matches_) {
    for (const TupleMatch& m : km.matches) {
      std::string& label = prepared.keyword_of_[m.tuple];
      if (!label.empty()) label += ",";
      label += km.keyword;
    }
  }

  if (!AllKeywordsMatched(prepared.matches_)) {
    if (prepared.options().require_all_keywords) {
      // AND semantics: some keyword matched nothing; cursors are born
      // drained (the match metadata stays available for display).
      prepared.empty_result_ = true;
      prepared.match_ns_ = ElapsedNs(start);
      return prepared;
    }
    // OR semantics: drop unmatched keywords and continue with the rest.
    std::vector<KeywordMatches> matched;
    std::vector<std::string> kept_keywords;
    for (KeywordMatches& km : prepared.matches_) {
      if (!km.empty()) {
        kept_keywords.push_back(km.keyword);
        matched.push_back(std::move(km));
      }
    }
    if (matched.empty()) {
      prepared.empty_result_ = true;
      prepared.match_ns_ = ElapsedNs(start);
      return prepared;
    }
    prepared.matches_ = std::move(matched);
    prepared.query_.keywords = std::move(kept_keywords);
  }

  // Query-dependent structural checks (the spec cannot know the keyword
  // count). An empty result skips them: AND semantics already answered.
  size_t keywords = prepared.query_.keywords.size();
  if (prepared.options().method == SearchMethod::kEnumerate &&
      keywords > 2) {
    return Status::InvalidArgument(
        "SearchMethod::kEnumerate supports 1 or 2 keywords; use "
        "kMtjnt/kDiscover/kBanks for more");
  }
  if (prepared.options().method == SearchMethod::kStream && keywords > 2) {
    return Status::InvalidArgument(
        "SearchMethod::kStream supports 1 or 2 keywords; use "
        "kMtjnt/kDiscover/kBanks for more");
  }
  prepared.match_ns_ = ElapsedNs(start);
  return prepared;
}

Result<PreparedQuery> KeywordSearchEngine::Prepare(
    const std::string& query_text, const SearchOptions& options) const {
  auto start = std::chrono::steady_clock::now();
  Result<QuerySpec> spec = [&] {
    TraceSpan span("validate");
    return QuerySpec::Create(options);
  }();
  uint64_t validate_ns = ElapsedNs(start);
  CLAKS_RETURN_NOT_OK(spec.status());
  CLAKS_ASSIGN_OR_RETURN(PreparedQuery prepared,
                         Prepare(query_text, std::move(spec).ValueUnsafe()));
  prepared.validate_ns_ = validate_ns;
  return prepared;
}

Result<std::vector<SearchHit>> KeywordSearchEngine::MaterializeHits(
    const PreparedQuery& prepared, size_t* work,
    QueryProfiler* profiler) const {
  TraceSpan materialize_span("materialize");
  if (work != nullptr) *work = 0;
  std::vector<SearchHit> hits;
  if (prepared.empty_result()) return hits;

  const SearchOptions& options = prepared.options();
  const std::vector<KeywordMatches>& matches = prepared.matches();
  // shards == 1 is the single-threaded path, bit-for-bit the pre-sharding
  // engine: no pool is started, no task is scheduled.
  const size_t shards = EffectiveShards(options.shards);
  std::vector<TupleTree> trees;
  // Candidate generation is the materialized methods' stream stage: the
  // whole bounded result space is produced here. The span/timer pair ends
  // after the switch (std::optional controls the end point without
  // re-scoping the switch).
  auto candidates_start = std::chrono::steady_clock::now();
  std::optional<TraceSpan> candidates_span;
  candidates_span.emplace("candidates");
  switch (options.method) {
    // A 1-keyword kStream query degenerates to kEnumerate's single-node
    // hits: there is nothing to stream. (Two-keyword kStream is the
    // streaming cursor's job — PreparedQuery::Open never routes it here.)
    case SearchMethod::kStream:
    case SearchMethod::kEnumerate: {
      if (prepared.query().keywords.size() == 1) {
        for (const TupleMatch& m : matches[0].matches) {
          TupleTree tree;
          tree.nodes = {data_graph_->NodeOf(m.tuple)};
          trees.push_back(std::move(tree));
        }
        break;
      }
      CLAKS_CHECK(options.method == SearchMethod::kEnumerate);
      std::vector<uint32_t> sources;
      for (const TupleMatch& m : matches[0].matches) {
        sources.push_back(data_graph_->NodeOf(m.tuple));
      }
      std::vector<uint32_t> targets;
      for (const TupleMatch& m : matches[1].matches) {
        targets.push_back(data_graph_->NodeOf(m.tuple));
      }
      // Enumeration stops a path at the first tuple of the target set, so
      // connections whose *interior* contains a tuple matching the source
      // keyword are only found when enumerating from that keyword's side
      // (the paper's connection 3, p1(XML) - d1(XML) - e1(Smith), needs
      // XML as the source side). Run both directions and deduplicate to
      // make the result independent of keyword order.
      std::set<TupleTree> seen;
      auto collect = [&](const std::vector<uint32_t>& from,
                         const std::vector<uint32_t>& to) {
        std::vector<NodePath> paths =
            shards > 1
                ? EnumerateBetweenSetsSharded(*data_graph_, from, to,
                                              options.max_rdb_edges, shards,
                                              &shard_context().pool())
                : EnumerateSimplePathsBetweenSets(*data_graph_, from, to,
                                                  options.max_rdb_edges);
        for (const NodePath& path : paths) {
          TupleTree tree = CanonicalTree(path);
          if (seen.insert(tree).second) trees.push_back(std::move(tree));
        }
      };
      collect(sources, targets);
      collect(targets, sources);
      break;
    }
    case SearchMethod::kMtjnt:
      trees = EnumerateMtjnt(*data_graph_, matches, options.tmax);
      break;
    case SearchMethod::kDiscover:
      trees = DiscoverMtjnt(*data_graph_, *schema_graph_, matches,
                            options.tmax);
      break;
    case SearchMethod::kBanks: {
      std::vector<std::vector<uint32_t>> keyword_node_sets;
      for (const KeywordMatches& km : matches) {
        std::vector<uint32_t> nodes;
        for (const TupleMatch& m : km.matches) {
          nodes.push_back(data_graph_->NodeOf(m.tuple));
        }
        keyword_node_sets.push_back(std::move(nodes));
      }
      BanksOptions banks = options.banks;
      if (options.top_k != 0) {
        // Over-fetch: truncation to options.top_k happens only after the
        // engine re-ranks with options.ranker, so hits BANKS's internal
        // weight ranks low are not pre-dropped.
        banks.top_k =
            std::max(options.top_k, banks.top_k) + kBanksOverfetchMargin;
      }
      BanksSearchStats banks_stats;
      for (const AnswerTree& answer : BanksBackwardSearch(
               *data_graph_, keyword_node_sets, banks, &banks_stats)) {
        TupleTree tree;
        std::set<uint32_t> nodes{answer.root};
        for (uint32_t n : answer.keyword_nodes) nodes.insert(n);
        for (uint32_t e : answer.edge_indices) {
          const DataEdge& edge = data_graph_->edge(e);
          nodes.insert(data_graph_->NodeOf(edge.from));
          nodes.insert(data_graph_->NodeOf(edge.to));
        }
        tree.nodes.assign(nodes.begin(), nodes.end());
        tree.edge_indices = answer.edge_indices;
        std::sort(tree.edge_indices.begin(), tree.edge_indices.end());
        trees.push_back(std::move(tree));
      }
      if (work != nullptr) *work = banks_stats.visited_nodes;
      break;
    }
  }
  candidates_span.reset();
  if (profiler != nullptr) {
    profiler->Add(QueryProfiler::Stage::kStream, ElapsedNs(candidates_start));
  }

  auto analyze_start = std::chrono::steady_clock::now();
  std::optional<TraceSpan> analyze_span;
  analyze_span.emplace("analyze");
  if (shards > 1 && trees.size() > 1) {
    // Analysis dominates the materialized methods and AnalyzeTree is
    // const + data-race-free on a warmed engine: fan it out. Results are
    // collected in input order, so hits are byte-identical to the serial
    // loop below.
    CLAKS_ASSIGN_OR_RETURN(
        hits, AnalyzeTreesParallel(*this, trees, matches,
                                   prepared.keyword_of(), options,
                                   &shard_context().pool()));
  } else {
    for (const TupleTree& tree : trees) {
      CLAKS_ASSIGN_OR_RETURN(
          SearchHit hit,
          AnalyzeTree(tree, matches, prepared.keyword_of(), options));
      hits.push_back(std::move(hit));
    }
  }
  analyze_span.reset();
  if (profiler != nullptr) {
    profiler->Add(QueryProfiler::Stage::kAnalyze, ElapsedNs(analyze_start));
  }

  {
    QueryProfiler::ScopedTimer timer(profiler, QueryProfiler::Stage::kRank);
    RankGroupTruncate(&hits, prepared.keyword_of(), options);
  }
  return hits;
}

Result<SearchResult> KeywordSearchEngine::Search(
    const std::string& query_text, const SearchOptions& options) const {
  TraceSpan search_span("search");
  auto start = std::chrono::steady_clock::now();
  // The legacy facade: prepare (unvalidated spec, so historical option
  // bags keep working byte-for-byte), open a cursor, drain it. The spec
  // construction is still this path's validate stage — traced (and
  // timed below) so a traced Search shows the full lifecycle.
  QuerySpec spec = [&] {
    TraceSpan span("validate");
    return QuerySpec::Unvalidated(options);
  }();
  uint64_t validate_ns = ElapsedNs(start);
  CLAKS_ASSIGN_OR_RETURN(PreparedQuery prepared,
                         Prepare(query_text, std::move(spec)));
  prepared.validate_ns_ = validate_ns;
  CLAKS_ASSIGN_OR_RETURN(std::unique_ptr<ResultCursor> cursor,
                         prepared.Open());

  SearchResult result;
  constexpr size_t kDrainPageSize = 256;
  while (!cursor->Drained()) {
    CLAKS_ASSIGN_OR_RETURN(std::vector<SearchHit> page,
                           cursor->Next(kDrainPageSize));
    if (page.empty()) break;
    for (SearchHit& hit : page) result.hits.push_back(std::move(hit));
  }
  CursorStats stats = cursor->Stats();
  result.expansions = stats.expansions;
  result.shard_expansions = std::move(stats.shard_expansions);
  result.profile = std::move(stats.profile);
  // The drain is complete: no cursor call follows, so the prepared
  // metadata can be moved out rather than copied (the cursor only reads
  // it from inside Next).
  result.query = std::move(prepared.query_);
  result.matches = std::move(prepared.matches_);
  result.keyword_of = std::move(prepared.keyword_of_);
  if (MetricsRegistry::recording()) {
    const std::string method = SearchMethodToString(options.method);
    g_engine_queries.With({method}).Inc();
    g_engine_query_us.With({method, RankerKindToString(options.ranker)})
        .Observe(ElapsedNs(start) / 1000);
    g_engine_expansions.With({method}).Observe(result.expansions);
  }
  return result;
}

void KeywordSearchEngine::RankGroupTruncate(
    std::vector<SearchHit>* hits,
    const std::map<TupleId, std::string>& keyword_of,
    const SearchOptions& options) const {
  TraceSpan span("rank");
  std::unique_ptr<Ranker> ranker = MakeRanker(options.ranker);
  CLAKS_CHECK(ranker != nullptr);
  std::vector<RankInput> inputs;
  inputs.reserve(hits->size());
  for (const SearchHit& hit : *hits) {
    inputs.push_back(hit.ToRankInput());
  }
  std::vector<size_t> order = RankOrder(inputs, *ranker);
  std::vector<SearchHit> ranked;
  ranked.reserve(hits->size());
  for (size_t idx : order) ranked.push_back(std::move((*hits)[idx]));
  *hits = std::move(ranked);

  if (options.per_endpoint_limit != 0) {
    // Keep at most N hits per endpoint group (rank order is already
    // established, so survivors are each group's best).
    std::map<std::vector<uint64_t>, size_t> group_counts;
    std::vector<SearchHit> diverse;
    for (SearchHit& hit : *hits) {
      std::vector<uint64_t> key =
          EndpointGroupKey(hit, *data_graph_, keyword_of);
      if (++group_counts[key] <= options.per_endpoint_limit) {
        diverse.push_back(std::move(hit));
      }
    }
    *hits = std::move(diverse);
  }

  if (options.top_k != 0 && hits->size() > options.top_k) {
    hits->resize(options.top_k);
  }
}

}  // namespace claks
