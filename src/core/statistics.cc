// Copyright 2026 The claks Authors.

#include "core/statistics.h"

#include <set>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

double RelationshipStats::AvgFanoutLeftToRight() const {
  if (left_participants == 0) return 0.0;
  return static_cast<double>(link_count) /
         static_cast<double>(left_participants);
}

double RelationshipStats::AvgFanoutRightToLeft() const {
  if (right_participants == 0) return 0.0;
  return static_cast<double>(link_count) /
         static_cast<double>(right_participants);
}

double RelationshipStats::LeftParticipation() const {
  if (left_total == 0) return 0.0;
  return static_cast<double>(left_participants) /
         static_cast<double>(left_total);
}

double RelationshipStats::RightParticipation() const {
  if (right_total == 0) return 0.0;
  return static_cast<double>(right_participants) /
         static_cast<double>(right_total);
}

std::string RelationshipStats::ToString() const {
  return StrFormat(
      "%s: %zu links, left %zu/%zu (fanout %.2f), right %zu/%zu "
      "(fanout %.2f)",
      relationship.c_str(), link_count, left_participants, left_total,
      AvgFanoutLeftToRight(), right_participants, right_total,
      AvgFanoutRightToLeft());
}

namespace {

// Key string of the FK values of `row` at `indices` (empty when any NULL).
std::string FkKey(const Row& row, const std::vector<size_t>& indices) {
  for (size_t idx : indices) {
    if (row[idx].is_null()) return "";
  }
  return MakeKey(row, indices);
}

std::vector<size_t> LocalIndices(const TableSchema& schema,
                                 const ForeignKeyDef& fk) {
  std::vector<size_t> out;
  for (const auto& attr : fk.local_attributes) {
    auto idx = schema.AttributeIndex(attr);
    CLAKS_CHECK(idx.has_value());
    out.push_back(*idx);
  }
  return out;
}

}  // namespace

InstanceStatistics::InstanceStatistics(const Database* db,
                                       const ERSchema* er_schema,
                                       const ErRelationalMapping* mapping) {
  CLAKS_CHECK(db != nullptr && er_schema != nullptr && mapping != nullptr);

  // Entity table name per entity type.
  auto entity_rows = [&](const std::string& entity) -> size_t {
    for (const auto& [table, info] : mapping->tables) {
      if (!info.is_middle_relation && info.er_name == entity) {
        const Table* t = db->FindTable(table);
        if (t != nullptr) return t->num_rows();
      }
    }
    return 0;
  };

  for (const RelationshipType& rel : er_schema->relationships()) {
    RelationshipStats stats;
    stats.relationship = rel.name;
    stats.left_total = entity_rows(rel.left_entity);
    stats.right_total = entity_rows(rel.right_entity);
    stats_.emplace(rel.name, std::move(stats));
  }

  // Group (table, fk_index) pairs by relationship.
  struct Implementing {
    std::string table;
    size_t fk_index;
    bool references_left;
  };
  std::map<std::string, std::vector<Implementing>> by_relationship;
  for (const auto& [key, info] : mapping->foreign_keys) {
    by_relationship[info.relationship].push_back(
        Implementing{key.first, key.second, info.references_left});
  }

  for (auto& [rel_name, fks] : by_relationship) {
    auto it = stats_.find(rel_name);
    if (it == stats_.end()) continue;  // mapping mentions unknown rel
    RelationshipStats& stats = it->second;

    if (fks.size() == 1) {
      // Entity-table FK: one link per non-NULL FK row.
      const Table* owner = db->FindTable(fks[0].table);
      if (owner == nullptr) continue;
      std::vector<size_t> indices =
          LocalIndices(owner->schema(),
                       owner->schema().foreign_keys()[fks[0].fk_index]);
      std::set<std::string> referenced_keys;
      size_t links = 0;
      for (size_t r = 0; r < owner->num_rows(); ++r) {
        std::string key = FkKey(owner->row(r), indices);
        if (key.empty()) continue;
        ++links;
        referenced_keys.insert(std::move(key));
      }
      stats.link_count = links;
      // The FK points at one side; the owner side participates once per
      // linked row.
      if (fks[0].references_left) {
        stats.left_participants = referenced_keys.size();
        stats.right_participants = links;
      } else {
        stats.right_participants = referenced_keys.size();
        stats.left_participants = links;
      }
    } else if (fks.size() == 2 &&
               mapping->IsMiddleRelation(fks[0].table)) {
      // Middle relation: one link per row; distinct keys per side.
      const Table* middle = db->FindTable(fks[0].table);
      if (middle == nullptr) continue;
      const Implementing* left_fk =
          fks[0].references_left ? &fks[0] : &fks[1];
      const Implementing* right_fk =
          fks[0].references_left ? &fks[1] : &fks[0];
      std::vector<size_t> left_indices = LocalIndices(
          middle->schema(), middle->schema().foreign_keys()[left_fk->fk_index]);
      std::vector<size_t> right_indices =
          LocalIndices(middle->schema(),
                       middle->schema().foreign_keys()[right_fk->fk_index]);
      std::set<std::string> left_keys;
      std::set<std::string> right_keys;
      size_t links = 0;
      for (size_t r = 0; r < middle->num_rows(); ++r) {
        std::string lk = FkKey(middle->row(r), left_indices);
        std::string rk = FkKey(middle->row(r), right_indices);
        if (lk.empty() || rk.empty()) continue;
        ++links;
        left_keys.insert(std::move(lk));
        right_keys.insert(std::move(rk));
      }
      stats.link_count = links;
      stats.left_participants = left_keys.size();
      stats.right_participants = right_keys.size();
    }
  }
}

const RelationshipStats& InstanceStatistics::StatsFor(
    const std::string& relationship) const {
  auto it = stats_.find(relationship);
  CLAKS_CHECK(it != stats_.end());
  return it->second;
}

double InstanceStatistics::StepFanout(const ErProjectedStep& step) const {
  auto it = stats_.find(step.relationship);
  if (it == stats_.end()) return 1.0;
  const RelationshipStats& stats = it->second;
  double fanout = step.left_to_right ? stats.AvgFanoutLeftToRight()
                                     : stats.AvgFanoutRightToLeft();
  // A step that was actually traversed has at least one instantiation.
  return fanout < 1.0 ? 1.0 : fanout;
}

double InstanceStatistics::ConnectionAmbiguity(
    const ErProjection& projection) const {
  double ambiguity = 1.0;
  for (const ErProjectedStep& step : projection.steps) {
    ambiguity *= StepFanout(step);
  }
  return ambiguity;
}

std::string InstanceStatistics::ToString() const {
  std::string out = "INSTANCE STATISTICS\n";
  for (const auto& [name, stats] : stats_) {
    out += "  " + stats.ToString() + "\n";
  }
  return out;
}

}  // namespace claks
