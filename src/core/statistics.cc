// Copyright 2026 The claks Authors.

#include "core/statistics.h"

#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

double RelationshipStats::AvgFanoutLeftToRight() const {
  if (left_participants == 0) return 0.0;
  return static_cast<double>(link_count) /
         static_cast<double>(left_participants);
}

double RelationshipStats::AvgFanoutRightToLeft() const {
  if (right_participants == 0) return 0.0;
  return static_cast<double>(link_count) /
         static_cast<double>(right_participants);
}

double RelationshipStats::LeftParticipation() const {
  if (left_total == 0) return 0.0;
  return static_cast<double>(left_participants) /
         static_cast<double>(left_total);
}

double RelationshipStats::RightParticipation() const {
  if (right_total == 0) return 0.0;
  return static_cast<double>(right_participants) /
         static_cast<double>(right_total);
}

std::string RelationshipStats::ToString() const {
  return StrFormat(
      "%s: %zu links, left %zu/%zu (fanout %.2f), right %zu/%zu "
      "(fanout %.2f)",
      relationship.c_str(), link_count, left_participants, left_total,
      AvgFanoutLeftToRight(), right_participants, right_total,
      AvgFanoutRightToLeft());
}

namespace {

// Key string of the FK values of `row` at `indices` (empty when any NULL).
std::string FkKey(const Row& row, const std::vector<size_t>& indices) {
  for (size_t idx : indices) {
    if (row[idx].is_null()) return "";
  }
  return MakeKey(row, indices);
}

std::vector<size_t> LocalIndices(const TableSchema& schema,
                                 const ForeignKeyDef& fk) {
  std::vector<size_t> out;
  for (const auto& attr : fk.local_attributes) {
    auto idx = schema.AttributeIndex(attr);
    CLAKS_CHECK(idx.has_value());
    out.push_back(*idx);
  }
  return out;
}

// Live rows of the entity table mapped to `entity` (0 when unmapped).
size_t EntityRows(const Database* db, const ErRelationalMapping* mapping,
                  const std::string& entity) {
  for (const auto& [table, info] : mapping->tables) {
    if (!info.is_middle_relation && info.er_name == entity) {
      const Table* t = db->FindTable(table);
      if (t != nullptr) return t->live_rows();
    }
  }
  return 0;
}

// The (table, fk_index) pairs implementing each relationship.
struct Implementing {
  std::string table;
  size_t fk_index;
  bool references_left;
};

std::map<std::string, std::vector<Implementing>> GroupByRelationship(
    const ErRelationalMapping* mapping) {
  std::map<std::string, std::vector<Implementing>> by_relationship;
  for (const auto& [key, info] : mapping->foreign_keys) {
    by_relationship[info.relationship].push_back(
        Implementing{key.first, key.second, info.references_left});
  }
  return by_relationship;
}

size_t Shifted(size_t base, int64_t delta) {
  int64_t v = static_cast<int64_t>(base) + delta;
  CLAKS_CHECK_GE(v, 0);
  return static_cast<size_t>(v);
}

}  // namespace

InstanceStatistics::InstanceStatistics(const Database* db,
                                       const ERSchema* er_schema,
                                       const ErRelationalMapping* mapping) {
  CLAKS_CHECK(db != nullptr && er_schema != nullptr && mapping != nullptr);

  for (const RelationshipType& rel : er_schema->relationships()) {
    RelationshipStats stats;
    stats.relationship = rel.name;
    stats.left_total = EntityRows(db, mapping, rel.left_entity);
    stats.right_total = EntityRows(db, mapping, rel.right_entity);
    stats_.emplace(rel.name, std::move(stats));
  }

  std::map<std::string, std::vector<Implementing>> by_relationship =
      GroupByRelationship(mapping);

  for (auto& [rel_name, fks] : by_relationship) {
    auto it = stats_.find(rel_name);
    if (it == stats_.end()) continue;  // mapping mentions unknown rel
    RelationshipStats& stats = it->second;

    if (fks.size() == 1) {
      // Entity-table FK: one link per non-NULL FK row.
      const Table* owner = db->FindTable(fks[0].table);
      if (owner == nullptr) continue;
      std::vector<size_t> indices =
          LocalIndices(owner->schema(),
                       owner->schema().foreign_keys()[fks[0].fk_index]);
      std::set<std::string> referenced_keys;
      size_t links = 0;
      for (size_t r = 0; r < owner->num_rows(); ++r) {
        if (owner->IsDeleted(r)) continue;
        std::string key = FkKey(owner->row(r), indices);
        if (key.empty()) continue;
        ++links;
        referenced_keys.insert(std::move(key));
      }
      stats.link_count = links;
      // The FK points at one side; the owner side participates once per
      // linked row.
      if (fks[0].references_left) {
        stats.left_participants = referenced_keys.size();
        stats.right_participants = links;
      } else {
        stats.right_participants = referenced_keys.size();
        stats.left_participants = links;
      }
    } else if (fks.size() == 2 &&
               mapping->IsMiddleRelation(fks[0].table)) {
      // Middle relation: one link per row; distinct keys per side.
      const Table* middle = db->FindTable(fks[0].table);
      if (middle == nullptr) continue;
      const Implementing* left_fk =
          fks[0].references_left ? &fks[0] : &fks[1];
      const Implementing* right_fk =
          fks[0].references_left ? &fks[1] : &fks[0];
      std::vector<size_t> left_indices = LocalIndices(
          middle->schema(), middle->schema().foreign_keys()[left_fk->fk_index]);
      std::vector<size_t> right_indices =
          LocalIndices(middle->schema(),
                       middle->schema().foreign_keys()[right_fk->fk_index]);
      std::set<std::string> left_keys;
      std::set<std::string> right_keys;
      size_t links = 0;
      for (size_t r = 0; r < middle->num_rows(); ++r) {
        if (middle->IsDeleted(r)) continue;
        std::string lk = FkKey(middle->row(r), left_indices);
        std::string rk = FkKey(middle->row(r), right_indices);
        if (lk.empty() || rk.empty()) continue;
        ++links;
        left_keys.insert(std::move(lk));
        right_keys.insert(std::move(rk));
      }
      stats.link_count = links;
      stats.left_participants = left_keys.size();
      stats.right_participants = right_keys.size();
    }
  }
}

std::unique_ptr<InstanceStatistics> InstanceStatistics::Derive(
    const InstanceStatistics& prev, const Database* prev_db,
    const Database* next_db, const DatabaseDelta& delta,
    const ERSchema* er_schema, const ErRelationalMapping* mapping) {
  CLAKS_CHECK(prev_db != nullptr && next_db != nullptr &&
              er_schema != nullptr && mapping != nullptr);
  CLAKS_CHECK(!delta.schema_changed);

  auto out = std::make_unique<InstanceStatistics>(prev);

  // Totals come straight from live-row counters: O(1) per table.
  for (const RelationshipType& rel : er_schema->relationships()) {
    auto it = out->stats_.find(rel.name);
    if (it == out->stats_.end()) continue;
    it->second.left_total = EntityRows(next_db, mapping, rel.left_entity);
    it->second.right_total = EntityRows(next_db, mapping, rel.right_entity);
  }

  std::unordered_map<uint32_t, std::vector<uint32_t>> ins_by_table;
  std::unordered_map<uint32_t, std::vector<uint32_t>> del_by_table;
  for (const DeltaOp& op : delta.inserts) {
    ins_by_table[op.table].push_back(op.row);
  }
  for (const DeltaOp& op : delta.deletes) {
    del_by_table[op.table].push_back(op.row);
  }

  std::map<std::string, std::vector<Implementing>> by_relationship =
      GroupByRelationship(mapping);

  for (auto& [rel_name, fks] : by_relationship) {
    auto it = out->stats_.find(rel_name);
    if (it == out->stats_.end()) continue;
    RelationshipStats& stats = it->second;

    auto table_index = next_db->TableIndex(fks[0].table);
    if (!table_index.has_value()) continue;
    uint32_t t = *table_index;
    auto ins_it = ins_by_table.find(t);
    auto del_it = del_by_table.find(t);
    bool has_ins = ins_it != ins_by_table.end();
    bool has_del = del_it != del_by_table.end();
    if (!has_ins && !has_del) continue;  // no ops touched this relationship

    if (fks.size() == 1) {
      const Table& owner = next_db->table(t);
      std::vector<size_t> indices = LocalIndices(
          owner.schema(), owner.schema().foreign_keys()[fks[0].fk_index]);
      const FkJoinIndex& next_ji =
          next_db->JoinIndex(t, static_cast<uint32_t>(fks[0].fk_index));
      const FkJoinIndex& prev_ji =
          prev_db->JoinIndex(t, static_cast<uint32_t>(fks[0].fk_index));
      if (!next_ji.valid || !prev_ji.valid) {
        // A mapped FK the join indexes cannot resolve: transitions are not
        // derivable, recompute from scratch.
        return std::make_unique<InstanceStatistics>(next_db, er_schema,
                                                    mapping);
      }

      int64_t link_delta = 0;
      // parent slot -> {links gained, links lost} this batch. Grouping by
      // parent (not key string) dedups same-key churn; tombstoned rows
      // keep their values and prev's index still resolves their parent.
      std::map<uint32_t, std::pair<int64_t, int64_t>> touched;
      if (has_ins) {
        for (uint32_t r : ins_it->second) {
          if (FkKey(owner.row(r), indices).empty()) continue;
          ++link_delta;
          uint32_t parent = next_ji.Parent(r);
          CLAKS_CHECK(parent != FkJoinIndex::kNoParent);
          ++touched[parent].first;
        }
      }
      if (has_del) {
        for (uint32_t r : del_it->second) {
          if (FkKey(owner.row(r), indices).empty()) continue;
          --link_delta;
          uint32_t parent = prev_ji.Parent(r);
          CLAKS_CHECK(parent != FkJoinIndex::kNoParent);
          ++touched[parent].second;
        }
      }
      int64_t ref_delta = 0;
      for (const auto& [parent, gain_loss] : touched) {
        int64_t after = static_cast<int64_t>(next_ji.Children(parent).size());
        int64_t before = after - gain_loss.first + gain_loss.second;
        ref_delta += (after > 0 ? 1 : 0) - (before > 0 ? 1 : 0);
      }
      stats.link_count = Shifted(stats.link_count, link_delta);
      if (fks[0].references_left) {
        stats.left_participants = Shifted(stats.left_participants, ref_delta);
        stats.right_participants =
            Shifted(stats.right_participants, link_delta);
      } else {
        stats.right_participants =
            Shifted(stats.right_participants, ref_delta);
        stats.left_participants = Shifted(stats.left_participants, link_delta);
      }
    } else if (fks.size() == 2 && mapping->IsMiddleRelation(fks[0].table)) {
      const Table& middle = next_db->table(t);
      const Implementing* left_fk = fks[0].references_left ? &fks[0] : &fks[1];
      const Implementing* right_fk = fks[0].references_left ? &fks[1] : &fks[0];
      std::vector<size_t> left_indices = LocalIndices(
          middle.schema(), middle.schema().foreign_keys()[left_fk->fk_index]);
      std::vector<size_t> right_indices = LocalIndices(
          middle.schema(), middle.schema().foreign_keys()[right_fk->fk_index]);
      const FkJoinIndex& next_lji =
          next_db->JoinIndex(t, static_cast<uint32_t>(left_fk->fk_index));
      const FkJoinIndex& next_rji =
          next_db->JoinIndex(t, static_cast<uint32_t>(right_fk->fk_index));
      const FkJoinIndex& prev_lji =
          prev_db->JoinIndex(t, static_cast<uint32_t>(left_fk->fk_index));
      const FkJoinIndex& prev_rji =
          prev_db->JoinIndex(t, static_cast<uint32_t>(right_fk->fk_index));
      if (!next_lji.valid || !next_rji.valid || !prev_lji.valid ||
          !prev_rji.valid) {
        return std::make_unique<InstanceStatistics>(next_db, er_schema,
                                                    mapping);
      }

      int64_t link_delta = 0;
      std::map<uint32_t, std::pair<int64_t, int64_t>> touched_left;
      std::map<uint32_t, std::pair<int64_t, int64_t>> touched_right;
      auto record = [&](const std::vector<uint32_t>& rows, bool insert) {
        const FkJoinIndex& lji = insert ? next_lji : prev_lji;
        const FkJoinIndex& rji = insert ? next_rji : prev_rji;
        for (uint32_t r : rows) {
          // A middle row links only when *both* sides are non-NULL.
          if (FkKey(middle.row(r), left_indices).empty() ||
              FkKey(middle.row(r), right_indices).empty()) {
            continue;
          }
          link_delta += insert ? 1 : -1;
          uint32_t lparent = lji.Parent(r);
          uint32_t rparent = rji.Parent(r);
          CLAKS_CHECK(lparent != FkJoinIndex::kNoParent);
          CLAKS_CHECK(rparent != FkJoinIndex::kNoParent);
          if (insert) {
            ++touched_left[lparent].first;
            ++touched_right[rparent].first;
          } else {
            ++touched_left[lparent].second;
            ++touched_right[rparent].second;
          }
        }
      };
      if (has_ins) record(ins_it->second, true);
      if (has_del) record(del_it->second, false);

      // A side participates while it has at least one middle row whose
      // *other* side is also non-NULL — count live siblings through the
      // join index (O(fanout)).
      auto side_delta =
          [&](const std::map<uint32_t, std::pair<int64_t, int64_t>>& touched,
              const FkJoinIndex& ji, const std::vector<size_t>& other_indices) {
            int64_t d = 0;
            for (const auto& [parent, gain_loss] : touched) {
              int64_t after = 0;
              for (uint32_t c : ji.Children(parent)) {
                if (!FkKey(middle.row(c), other_indices).empty()) ++after;
              }
              int64_t before = after - gain_loss.first + gain_loss.second;
              d += (after > 0 ? 1 : 0) - (before > 0 ? 1 : 0);
            }
            return d;
          };
      stats.link_count = Shifted(stats.link_count, link_delta);
      stats.left_participants = Shifted(
          stats.left_participants,
          side_delta(touched_left, next_lji, right_indices));
      stats.right_participants = Shifted(
          stats.right_participants,
          side_delta(touched_right, next_rji, left_indices));
    }
  }
  return out;
}

const RelationshipStats& InstanceStatistics::StatsFor(
    const std::string& relationship) const {
  auto it = stats_.find(relationship);
  CLAKS_CHECK(it != stats_.end());
  return it->second;
}

double InstanceStatistics::StepFanout(const ErProjectedStep& step) const {
  auto it = stats_.find(step.relationship);
  if (it == stats_.end()) return 1.0;
  const RelationshipStats& stats = it->second;
  double fanout = step.left_to_right ? stats.AvgFanoutLeftToRight()
                                     : stats.AvgFanoutRightToLeft();
  // A step that was actually traversed has at least one instantiation.
  return fanout < 1.0 ? 1.0 : fanout;
}

double InstanceStatistics::ConnectionAmbiguity(
    const ErProjection& projection) const {
  double ambiguity = 1.0;
  for (const ErProjectedStep& step : projection.steps) {
    ambiguity *= StepFanout(step);
  }
  return ambiguity;
}

std::string InstanceStatistics::ToString() const {
  std::string out = "INSTANCE STATISTICS\n";
  for (const auto& [name, stats] : stats_) {
    out += "  " + stats.ToString() + "\n";
  }
  return out;
}

}  // namespace claks
