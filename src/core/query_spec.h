// Copyright 2026 The claks Authors.
//
// The prepared half of the query API. A raw query is a string plus a
// SearchOptions bag; preparing it performs everything that does not depend
// on pulling results — option validation (typed error codes), tokenization,
// keyword matching, AND/OR semantics — and yields a PreparedQuery from
// which core/cursor.h opens pull-based ResultCursors. KeywordSearchEngine
// ::Search is a thin wrapper over prepare + drain (core/engine.h).
//
// QuerySpec is the validated form of SearchOptions. QuerySpec::Create
// rejects nonsensical option combinations with one QuerySpecError per
// problem; QuerySpec::Unvalidated skips the check and is the compatibility
// path the legacy Search facade uses (it must keep accepting every option
// bag it historically accepted).

#ifndef CLAKS_CORE_QUERY_SPEC_H_
#define CLAKS_CORE_QUERY_SPEC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/ranking.h"
#include "graph/banks.h"
#include "text/matcher.h"

namespace claks {

class KeywordSearchEngine;
class ResultCursor;

/// How result connections are found.
enum class SearchMethod {
  /// Full enumeration of simple paths between keyword matches (two-keyword
  /// queries). The complete result space of the paper's Table 2.
  kEnumerate,
  /// MTJNT semantics (exact data-level enumeration).
  kMtjnt,
  /// MTJNT via DISCOVER candidate networks (same results as kMtjnt).
  kDiscover,
  /// BANKS backward expanding search (top-k answer trees).
  kBanks,
  /// Streaming top-k over the kEnumerate result space (1 or 2 keywords):
  /// connections are pulled lazily in nondecreasing RDB-length order
  /// (core/topk.h, both keyword directions interleaved with tree-level
  /// dedup), analysed on arrival, and the pull stops as soon as the top-k
  /// under `ranker` is provably settled. Exact for kRdbLength; exact via a
  /// bounded reorder buffer for every ranker whose key is length-monotone
  /// (RankerMonotonicity in core/ranking.h); falls back to a full drain
  /// with a logged warning otherwise. With top_k == 0 this is a lazy
  /// drop-in for kEnumerate (same hits, same ranking keys; ranking-key
  /// ties may order differently).
  kStream,
};

const char* SearchMethodToString(SearchMethod method);

/// Inverse of SearchMethodToString; nullopt for unknown names.
std::optional<SearchMethod> SearchMethodFromString(const std::string& name);

struct SearchOptions {
  SearchMethod method = SearchMethod::kEnumerate;
  RankerKind ranker = RankerKind::kCloseFirst;
  /// Bound on FK edges for kEnumerate.
  size_t max_rdb_edges = 4;
  /// Bound on tuples per network for kMtjnt / kDiscover.
  size_t tmax = 5;
  /// Result cap after ranking (0 = unlimited).
  size_t top_k = 0;
  /// Verify instance-level closeness (fills SearchHit::instance_close).
  bool instance_check = true;
  /// Witness budget for the instance check (0: each connection's length).
  size_t witness_edges = 0;
  /// AND semantics (default): a keyword without matches empties the result.
  /// With OR semantics the unmatched keywords are dropped and the query
  /// runs over the remaining ones.
  bool require_all_keywords = true;
  /// When > 0, keep at most this many hits per endpoint group (after
  /// ranking): path hits group by their unordered endpoint pair, non-path
  /// trees by their full keyword-tuple set. The paper notes a longer
  /// connection's association can be "implicitly visible" in shorter ones
  /// between the same tuples (§3); this collapses such groups.
  size_t per_endpoint_limit = 0;
  /// Intra-query shards: with N > 1 one query fans out over N seed
  /// partitions of the data graph on the engine's intra-query pool and a
  /// scatter-gather merger recombines the per-shard streams
  /// (core/shard.h). Results are byte-identical to shards == 1 for every
  /// method and ranker (the differential suite proves it); 1 is the
  /// single-threaded path, bit-for-bit the pre-sharding engine.
  size_t shards = 1;
  /// Collect a per-stage QueryProfile (observability/profile.h) while the
  /// query runs and attach it to CursorStats::profile /
  /// SearchResult::profile. Off by default: profiling costs a few clock
  /// reads per page, and hits/ranking are unaffected either way.
  bool profile = false;
  BanksOptions banks;
};

/// One validation failure of a SearchOptions bag. Every code names a
/// combination that silently did nothing (or worse) under the legacy
/// Search facade.
enum class QuerySpecError {
  /// witness_edges > 0 while instance_check is off: the witness budget
  /// gates a check that never runs.
  kWitnessWithoutInstanceCheck,
  /// banks.* customized while method is not kBanks: the BANKS knobs are
  /// ignored by every other method.
  kBanksOptionsOnNonBanksMethod,
  /// per_endpoint_limit > 0 with kBanks: BANKS over-fetches a fixed margin
  /// beyond top_k, so post-ranking group collapse can silently underfill
  /// the requested k.
  kPerEndpointLimitWithBanks,
  /// max_rdb_edges == 0 with kEnumerate/kStream: no connection can ever be
  /// found (only degenerate single-keyword node hits).
  kZeroMaxRdbEdges,
  /// tmax == 0 with kMtjnt/kDiscover: no joining network can exist.
  kZeroTmax,
  /// top_k == 0 with kStream under the prepared/cursor API: kStream exists
  /// for settled-k early termination, and unbounded paging over it cannot
  /// settle. State kEnumerate for exhaustive paging, or pass a top_k.
  kStreamWithoutTopK,
  /// shards == 0: a query cannot fan out over zero partitions. Pass 1 for
  /// the single-threaded path.
  kZeroShards,
};

const char* QuerySpecErrorToString(QuerySpecError error);

/// A validated SearchOptions bag. Create runs the strict validation and is
/// what the prepared-query API (engine Prepare, service Prepare) uses;
/// Unvalidated wraps the options untouched and backs the legacy Search
/// facade, which must keep accepting historical option bags byte-for-byte.
class QuerySpec {
 public:
  /// Every validation failure of `options`, in declaration order of
  /// QuerySpecError; empty when the options are sound.
  static std::vector<QuerySpecError> Validate(const SearchOptions& options);

  /// Strict construction: InvalidArgument naming every QuerySpecError when
  /// Validate(options) is non-empty.
  static Result<QuerySpec> Create(SearchOptions options);

  /// Compatibility construction: no validation (legacy Search path).
  static QuerySpec Unvalidated(SearchOptions options);

  const SearchOptions& options() const { return options_; }

  /// True when this spec went through Create's strict validation.
  bool validated() const { return validated_; }

 private:
  QuerySpec(SearchOptions options, bool validated)
      : options_(std::move(options)), validated_(validated) {}

  SearchOptions options_;
  bool validated_ = false;
};

/// A query after the pull-independent work: validated spec, tokenized
/// keywords, keyword-to-tuple matches and AND/OR resolution. Obtained from
/// KeywordSearchEngine::Prepare; Open() starts incremental consumption.
///
/// Lifetime: cursors returned by Open reference this PreparedQuery (and
/// the engine that prepared it) — keep both alive and at a stable address
/// while any cursor is open (heap-allocate the PreparedQuery when it must
/// outlive the preparing scope, as service/search_service.cc does).
///
/// Thread-safety: immutable after Prepare returns; concurrent Open calls
/// from any number of threads are safe on a warmed engine. Each returned
/// cursor is single-consumer (see core/cursor.h).
class PreparedQuery {
 public:
  /// Opens a fresh cursor over this query's result space. Every cursor
  /// yields the full ranked hit sequence of the spec, independently of
  /// other cursors. Implemented in core/cursor.cc.
  Result<std::unique_ptr<ResultCursor>> Open() const;

  const QuerySpec& spec() const { return spec_; }
  const SearchOptions& options() const { return spec_.options(); }
  const KeywordQuery& query() const { return query_; }
  const std::vector<KeywordMatches>& matches() const { return matches_; }
  /// Keyword(s) matched by each tuple, for display.
  const std::map<TupleId, std::string>& keyword_of() const {
    return keyword_of_;
  }
  /// True when AND semantics met an unmatched keyword (or OR semantics
  /// dropped every keyword): cursors are born drained.
  bool empty_result() const { return empty_result_; }
  const KeywordSearchEngine& engine() const { return *engine_; }

  /// Prepare-phase timings (nanoseconds), recorded by the engine when it
  /// builds this query: option validation (QuerySpec::Create; 0 on the
  /// unvalidated legacy path) and the tokenize/match/resolve body. Seeds
  /// of the QueryProfile's validate/match stages when
  /// SearchOptions::profile is on.
  uint64_t validate_ns() const { return validate_ns_; }
  uint64_t match_ns() const { return match_ns_; }

 private:
  friend class KeywordSearchEngine;

  PreparedQuery(const KeywordSearchEngine* engine, QuerySpec spec)
      : engine_(engine), spec_(std::move(spec)) {}

  const KeywordSearchEngine* engine_;
  QuerySpec spec_;
  KeywordQuery query_;
  std::vector<KeywordMatches> matches_;
  std::map<TupleId, std::string> keyword_of_;
  bool empty_result_ = false;
  uint64_t validate_ns_ = 0;
  uint64_t match_ns_ = 0;
};

}  // namespace claks

#endif  // CLAKS_CORE_QUERY_SPEC_H_
