// Copyright 2026 The claks Authors.

#include "core/explain.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

namespace {

std::string Words(const std::string& name) {
  std::string out = ToLower(name);
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

std::string EntityClause(const Database& db, TupleId id,
                         const std::string& entity_name,
                         const VerbalizerOptions& options) {
  const Table& table = db.table(id.table);
  std::string keys;
  for (size_t idx : table.schema().PrimaryKeyIndices()) {
    if (!keys.empty()) keys += ",";
    keys += table.row(id.row)[idx].ToString();
  }
  std::string out = ToLower(entity_name) + " " + keys;
  auto it = options.keyword_of.find(id);
  if (it != options.keyword_of.end()) out += "(" + it->second + ")";
  return out;
}

RelationshipPhrases PhrasesFor(const std::string& relationship,
                               const VerbalizerOptions& options) {
  auto it = options.phrases.find(relationship);
  if (it != options.phrases.end()) return it->second;
  std::string words = Words(relationship);
  return RelationshipPhrases{words, "is related via " + words + " to"};
}

}  // namespace

VerbalizerOptions CompanyPaperVerbalizer() {
  VerbalizerOptions options;
  options.phrases["WORKS_FOR"] = {"employs", "works for"};
  options.phrases["WORKS_ON"] = {"is worked on by", "works on"};
  options.phrases["CONTROLS"] = {"controls", "is controlled by"};
  options.phrases["DEPENDENTS_OF"] = {"has dependent", "is a dependent of"};
  return options;
}

Result<std::string> ExplainConnection(const Connection& connection,
                                      const Database& db,
                                      const ERSchema& er_schema,
                                      const ErRelationalMapping& mapping,
                                      const VerbalizerOptions& options) {
  CLAKS_ASSIGN_OR_RETURN(ErProjection projection,
                         ProjectToEr(connection, db, er_schema, mapping));
  if (projection.steps.empty()) {
    if (projection.entity_tuples.empty()) {
      return std::string("a relationship participation");
    }
    const TupleId id = projection.entity_tuples.front();
    std::string entity = mapping.EntityOf(db.SchemaOf(id).name());
    return EntityClause(db, id, entity, options) + " matches alone";
  }

  // Entity tuples line up with step boundaries except around partial
  // steps; walk them with an index that advances on non-open endpoints.
  std::string out;
  size_t entity_index = 0;
  for (size_t s = 0; s < projection.steps.size(); ++s) {
    const ErProjectedStep& step = projection.steps[s];
    RelationshipPhrases phrases = PhrasesFor(step.relationship, options);
    const std::string& verb =
        step.left_to_right ? phrases.left_to_right : phrases.right_to_left;

    bool from_open = step.partial && step.from_entity == step.relationship;
    bool to_open = step.partial && step.to_entity == step.relationship;

    if (s == 0) {
      if (from_open) {
        out += "a " + Words(step.relationship) + " participation";
      } else {
        CLAKS_CHECK_LT(entity_index, projection.entity_tuples.size());
        out += EntityClause(db, projection.entity_tuples[entity_index],
                            step.from_entity, options);
        ++entity_index;
      }
    } else {
      out += ", that";
    }

    if (to_open) {
      out += " participates in " + Words(step.relationship);
      continue;
    }
    out += " " + verb + " ";
    CLAKS_CHECK_LT(entity_index, projection.entity_tuples.size());
    out += EntityClause(db, projection.entity_tuples[entity_index],
                        step.to_entity, options);
    ++entity_index;
  }
  return out;
}

}  // namespace claks
