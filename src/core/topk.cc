// Copyright 2026 The claks Authors.

#include "core/topk.h"

#include <algorithm>

#include "common/macros.h"

namespace claks {

ConnectionStream::ConnectionStream(const DataGraph* graph, size_t max_edges)
    : graph_(graph), max_edges_(max_edges) {
  CLAKS_CHECK(graph_ != nullptr);
}

ConnectionStream::ConnectionStream(const DataGraph* graph,
                                   std::vector<uint32_t> sources,
                                   std::vector<uint32_t> targets,
                                   size_t max_edges)
    : ConnectionStream(graph, max_edges) {
  AddLane(sources, targets);
}

ConnectionStream ConnectionStream::Bidirectional(
    const DataGraph* graph, const std::vector<uint32_t>& side_a,
    const std::vector<uint32_t>& side_b, size_t max_edges) {
  ConnectionStream stream(graph, max_edges);
  stream.AddLane(side_a, side_b);
  stream.AddLane(side_b, side_a);
  stream.dedup_ = true;
  return stream;
}

ConnectionStream ConnectionStream::BidirectionalRanked(
    const DataGraph* graph, RankedLane lane_a, RankedLane lane_b,
    size_t max_edges) {
  ConnectionStream stream(graph, max_edges);
  stream.AddLaneRanked(lane_a.seeds, lane_a.targets);
  stream.AddLaneRanked(lane_b.seeds, lane_b.targets);
  stream.dedup_ = true;
  return stream;
}

void ConnectionStream::AddLane(const std::vector<uint32_t>& sources,
                               const std::vector<uint32_t>& targets) {
  // Deduplicate sources, preserve order; ranks continue across lanes so
  // every seed's rank equals its seeding position — the same numbering
  // AddLaneRanked callers reproduce per shard.
  std::vector<RankedSeed> seeds;
  std::set<uint32_t> seen;
  for (uint32_t source : sources) {
    if (seen.insert(source).second) {
      seeds.push_back(RankedSeed{source, next_seed_rank_++});
    }
  }
  AddLaneRanked(seeds, targets);
}

void ConnectionStream::AddLaneRanked(const std::vector<RankedSeed>& seeds,
                                     const std::vector<uint32_t>& targets) {
  uint32_t lane = static_cast<uint32_t>(lane_targets_.size());
  lane_targets_.emplace_back(targets.begin(), targets.end());
  for (const RankedSeed& seed : seeds) {
    queue_.push(Frontier{NodePath{seed.node, {}},
                         {seed.node},
                         0,
                         lane,
                         next_sequence_++,
                         seed.rank});
  }
}

bool ConnectionStream::MarkEmitted(const Frontier& frontier) {
  std::vector<uint32_t> nodes = frontier.nodes;
  std::sort(nodes.begin(), nodes.end());
  std::vector<uint32_t> edges;
  edges.reserve(frontier.path.steps.size());
  for (const DataAdjacency& step : frontier.path.steps) {
    edges.push_back(step.edge_index);
  }
  std::sort(edges.begin(), edges.end());
  return emitted_.insert({std::move(nodes), std::move(edges)}).second;
}

std::optional<size_t> ConnectionStream::PendingLength() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().length;
}

std::optional<Connection> ConnectionStream::Next(size_t stop_length) {
  std::optional<NodePath> path = NextPath(stop_length);
  if (!path.has_value()) return std::nullopt;
  return Connection::FromNodePath(*graph_, *path);
}

std::optional<NodePath> ConnectionStream::NextPath(size_t stop_length) {
  std::optional<KeyedPath> keyed = NextKeyedPath(stop_length);
  if (!keyed.has_value()) return std::nullopt;
  return std::move(keyed->path);
}

std::optional<KeyedPath> ConnectionStream::NextKeyedPath(size_t stop_length) {
  while (!queue_.empty()) {
    if (queue_.top().length >= stop_length) return std::nullopt;
    // priority_queue::top is const; moving out before pop is safe because
    // the popped element is never read again.
    // claks-lint: allow(no-const-cast) -- queue_ is this stream's own
    // single-consumer state, not a published snapshot; copying the path
    // vectors on every pop would tax the hottest loop in the engine.
    Frontier frontier = std::move(const_cast<Frontier&>(queue_.top()));
    queue_.pop();
    ++expansions_;
    popped_any_ = true;
    max_popped_length_ = frontier.length;  // pops are length-nondecreasing
    uint32_t end = frontier.path.End();

    bool is_answer = lane_targets_[frontier.lane].count(end) > 0;
    if (is_answer) {
      // A zero-length answer is a tuple in both keyword sets; longer
      // answers end at their first target by construction (we never expand
      // past a target). With two lanes the same undirected path can arrive
      // from both sides: only the first arrival is emitted.
      if (!dedup_ || MarkEmitted(frontier)) {
        return KeyedPath{std::move(frontier.path), frontier.length,
                         frontier.seed_rank};
      }
      continue;
    }
    if (frontier.path.length() >= max_edges_) continue;

    // Expand: simple paths only.
    for (const DataAdjacency& adj : graph_->Neighbors(end)) {
      if (std::find(frontier.nodes.begin(), frontier.nodes.end(),
                    adj.neighbor) != frontier.nodes.end()) {
        continue;
      }
      Frontier extended;
      extended.path = frontier.path;
      extended.path.steps.push_back(adj);
      extended.nodes = frontier.nodes;
      extended.nodes.push_back(adj.neighbor);
      extended.length = extended.path.length();
      extended.lane = frontier.lane;
      extended.sequence = next_sequence_++;
      extended.seed_rank = frontier.seed_rank;
      queue_.push(std::move(extended));
    }
  }
  return std::nullopt;
}

std::vector<Connection> StreamTopK(ConnectionStream* stream, size_t k) {
  std::vector<Connection> out;
  while (out.size() < k) {
    auto connection = stream->Next();
    if (!connection.has_value()) break;
    out.push_back(std::move(*connection));
  }
  return out;
}

}  // namespace claks
