// Copyright 2026 The claks Authors.

#include "core/topk.h"

#include <algorithm>

#include "common/macros.h"

namespace claks {

ConnectionStream::ConnectionStream(const DataGraph* graph,
                                   std::vector<uint32_t> sources,
                                   std::vector<uint32_t> targets,
                                   size_t max_edges)
    : graph_(graph),
      target_set_(targets.begin(), targets.end()),
      max_edges_(max_edges) {
  CLAKS_CHECK(graph_ != nullptr);
  // Deduplicate sources, preserve order.
  std::set<uint32_t> seen;
  for (uint32_t source : sources) {
    if (seen.insert(source).second) {
      Push(NodePath{source, {}});
    }
  }
}

void ConnectionStream::Push(NodePath path) {
  size_t length = path.length();
  queue_.push(Frontier{std::move(path), length, next_sequence_++});
}

std::optional<Connection> ConnectionStream::Next() {
  while (!queue_.empty()) {
    Frontier frontier = queue_.top();
    queue_.pop();
    ++expansions_;
    uint32_t end = frontier.path.End();

    bool is_answer = target_set_.count(end) > 0;
    if (is_answer) {
      // A zero-length answer is a tuple in both keyword sets; longer
      // answers end at their first target by construction (we never expand
      // past a target).
      return Connection::FromNodePath(*graph_, frontier.path);
    }
    if (frontier.path.length() >= max_edges_) continue;

    // Expand: simple paths only.
    auto nodes = frontier.path.Nodes();
    for (const DataAdjacency& adj : graph_->Neighbors(end)) {
      if (std::find(nodes.begin(), nodes.end(), adj.neighbor) !=
          nodes.end()) {
        continue;
      }
      NodePath extended = frontier.path;
      extended.steps.push_back(adj);
      Push(std::move(extended));
    }
  }
  return std::nullopt;
}

std::vector<Connection> StreamTopK(ConnectionStream* stream, size_t k) {
  std::vector<Connection> out;
  while (out.size() < k) {
    auto connection = stream->Next();
    if (!connection.has_value()) break;
    out.push_back(std::move(*connection));
  }
  return out;
}

}  // namespace claks
