// Copyright 2026 The claks Authors.
//
// Natural-language readings of connections. The paper (§3) reads its
// connections out loud — "employee e1(Smith) works for department d1(XML),
// that controls project p1(XML)" — and argues users need these readings to
// judge loose associations. This module generates them from the ER
// projection plus per-relationship verb phrases.

#ifndef CLAKS_CORE_EXPLAIN_H_
#define CLAKS_CORE_EXPLAIN_H_

#include <map>
#include <string>

#include "core/length.h"

namespace claks {

/// Verb phrases for one relationship, by travel direction.
struct RelationshipPhrases {
  /// Used when a step travels left -> right ("DEPARTMENT controls
  /// PROJECT" for CONTROLS).
  std::string left_to_right;
  /// Used right -> left ("PROJECT is controlled by DEPARTMENT").
  std::string right_to_left;
};

struct VerbalizerOptions {
  /// Phrases per relationship name; relationships without an entry get
  /// generated phrases derived from the relationship name.
  std::map<std::string, RelationshipPhrases> phrases;
  /// Mark matched keywords after the tuple, paper style: "e1(Smith)".
  std::map<TupleId, std::string> keyword_of;
};

/// The paper's own phrases for the company schema (WORKS_FOR, WORKS_ON,
/// CONTROLS, DEPENDENTS_OF).
VerbalizerOptions CompanyPaperVerbalizer();

/// Renders a connection as an English sentence following the paper's §3
/// pattern: entity clause, verb phrase, entity clause, with ", that"
/// chaining for onward steps. Partial steps (connections ending inside a
/// middle relation) render as "... participates in <relationship>".
Result<std::string> ExplainConnection(const Connection& connection,
                                      const Database& db,
                                      const ERSchema& er_schema,
                                      const ErRelationalMapping& mapping,
                                      const VerbalizerOptions& options = {});

}  // namespace claks

#endif  // CLAKS_CORE_EXPLAIN_H_
