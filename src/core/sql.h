// Copyright 2026 The claks Authors.
//
// SQL generation: a Connection pins concrete tuples (DISCOVER executes its
// joining networks as SQL; systems embedding claks can hand these
// statements to a real DBMS), and a CandidateNetwork becomes a parameterised
// join query with keyword predicates.

#ifndef CLAKS_CORE_SQL_H_
#define CLAKS_CORE_SQL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/connection.h"
#include "core/mtjnt.h"

namespace claks {

/// Quotes a value as a SQL literal ('it''s' for strings, bare numerals,
/// NULL).
std::string SqlLiteral(const Value& value);

/// SELECT statement reproducing one connection: one aliased table instance
/// per tuple, join conditions from the FK edges, WHERE conditions pinning
/// each tuple by its primary key.
Result<std::string> ConnectionToSql(const Connection& connection,
                                    const Database& db);

/// SELECT statement evaluating a candidate network: join conditions from
/// the CN edges plus, per non-free node, a disjunction of LIKE predicates
/// requiring its keywords in some searchable text attribute (an
/// approximation of exact tuple-set semantics, as DISCOVER notes).
Result<std::string> CandidateNetworkToSql(
    const CandidateNetwork& cn, const Database& db,
    const std::vector<std::string>& keywords);

}  // namespace claks

#endif  // CLAKS_CORE_SQL_H_
