// Copyright 2026 The claks Authors.

#include "core/association.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

std::string ConnectionAnalysis::Describe(const Database& db) const {
  std::string out = connection.ToAnnotatedString(db);
  out += StrFormat(" | rdb %zu, er %zu | %s", rdb_length, er_length,
                   AssociationKindToString(kind));
  out += schema_close ? " (close)" : " (loose)";
  if (instance_close.has_value()) {
    out += *instance_close ? " [instance-close]" : " [instance-loose]";
  }
  return out;
}

AssociationAnalyzer::AssociationAnalyzer(const Database* db,
                                         const ERSchema* er_schema,
                                         const ErRelationalMapping* mapping,
                                         const DataGraph* graph)
    : db_(db), er_schema_(er_schema), mapping_(mapping), graph_(graph) {
  CLAKS_CHECK(db_ != nullptr);
  CLAKS_CHECK(er_schema_ != nullptr);
  CLAKS_CHECK(mapping_ != nullptr);
  CLAKS_CHECK(graph_ != nullptr);
}

Result<ConnectionAnalysis> AssociationAnalyzer::Analyze(
    const Connection& connection) const {
  ConnectionAnalysis out;
  out.connection = connection;
  CLAKS_ASSIGN_OR_RETURN(
      out.projection, ProjectToEr(connection, *db_, *er_schema_, *mapping_));
  out.rdb_steps = connection.RdbCardinalitySequence();
  out.er_steps = out.projection.CardinalitySequence();
  out.rdb_length = connection.RdbLength();
  out.er_length = out.projection.ErLength();
  if (out.er_steps.empty()) {
    // A single tuple matching several keywords: trivially close.
    out.kind = AssociationKind::kImmediate;
    out.endpoint = Cardinality::kOneOne;
  } else {
    out.kind = ClassifyCardinalitySequence(out.er_steps);
    out.endpoint = ComposeCardinality(out.er_steps);
    out.nm_steps = CountNMSteps(out.er_steps);
    out.hub_patterns = CountHubPatterns(out.er_steps);
  }
  out.schema_close = GuaranteesCloseAssociation(out.kind);
  return out;
}

Result<bool> AssociationAnalyzer::HasCloseWitness(TupleId a, TupleId b,
                                                  size_t max_edges) const {
  uint32_t na = graph_->NodeOf(a);
  uint32_t nb = graph_->NodeOf(b);
  auto paths = EnumerateSimplePaths(*graph_, na, nb, max_edges);
  for (const NodePath& path : paths) {
    Connection candidate = Connection::FromNodePath(*graph_, path);
    CLAKS_ASSIGN_OR_RETURN(
        ErProjection projection,
        ProjectToEr(candidate, *db_, *er_schema_, *mapping_));
    auto steps = projection.CardinalitySequence();
    if (steps.empty()) return true;  // same tuple
    if (GuaranteesCloseAssociation(ClassifyCardinalitySequence(steps))) {
      return true;
    }
  }
  return false;
}

Result<bool> AssociationAnalyzer::IsInstanceClose(
    const Connection& connection, size_t max_witness_edges) const {
  CLAKS_ASSIGN_OR_RETURN(ConnectionAnalysis analysis, Analyze(connection));
  if (analysis.schema_close) return true;
  size_t budget =
      max_witness_edges == 0 ? connection.RdbLength() : max_witness_edges;
  return HasCloseWitness(connection.front(), connection.back(), budget);
}

Result<bool> AssociationAnalyzer::IsInstanceCloseStrict(
    const Connection& connection, size_t max_witness_edges) const {
  CLAKS_ASSIGN_OR_RETURN(ConnectionAnalysis analysis, Analyze(connection));
  if (analysis.schema_close) return true;
  size_t budget =
      max_witness_edges == 0 ? connection.RdbLength() : max_witness_edges;

  // Examine every pair of entity tuples whose connecting sub-sequence of ER
  // steps is loose.
  const auto& entity_tuples = analysis.projection.entity_tuples;
  const auto& steps = analysis.er_steps;
  for (size_t i = 0; i < entity_tuples.size(); ++i) {
    for (size_t j = i + 1; j < entity_tuples.size(); ++j) {
      // ER steps between entity tuple i and j are steps [i, j). This holds
      // because entity_tuples has one entry per step boundary (partial
      // steps at the ends excluded below).
      if (j - i > steps.size()) continue;
      if (entity_tuples.size() != steps.size() + 1) {
        // Partial steps present (connection endpoint inside a middle
        // relation); fall back to endpoint semantics.
        return IsInstanceClose(connection, max_witness_edges);
      }
      std::vector<Cardinality> sub(steps.begin() + i, steps.begin() + j);
      if (GuaranteesCloseAssociation(ClassifyCardinalitySequence(sub))) {
        continue;
      }
      CLAKS_ASSIGN_OR_RETURN(
          bool witness,
          HasCloseWitness(entity_tuples[i], entity_tuples[j], budget));
      if (!witness) return false;
    }
  }
  return true;
}

Result<ConnectionAnalysis> AssociationAnalyzer::AnalyzeWithInstanceCheck(
    const Connection& connection, size_t max_witness_edges) const {
  CLAKS_ASSIGN_OR_RETURN(ConnectionAnalysis analysis, Analyze(connection));
  CLAKS_ASSIGN_OR_RETURN(bool instance_close,
                         IsInstanceClose(connection, max_witness_edges));
  analysis.instance_close = instance_close;
  return analysis;
}

}  // namespace claks
