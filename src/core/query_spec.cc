// Copyright 2026 The claks Authors.

#include "core/query_spec.h"

namespace claks {

const char* SearchMethodToString(SearchMethod method) {
  switch (method) {
    case SearchMethod::kEnumerate:
      return "enumerate";
    case SearchMethod::kMtjnt:
      return "mtjnt";
    case SearchMethod::kDiscover:
      return "discover";
    case SearchMethod::kBanks:
      return "banks";
    case SearchMethod::kStream:
      return "stream";
  }
  return "?";
}

std::optional<SearchMethod> SearchMethodFromString(const std::string& name) {
  static const SearchMethod kAll[] = {
      SearchMethod::kEnumerate, SearchMethod::kMtjnt,
      SearchMethod::kDiscover,  SearchMethod::kBanks,
      SearchMethod::kStream};
  for (SearchMethod method : kAll) {
    if (name == SearchMethodToString(method)) return method;
  }
  return std::nullopt;
}

const char* QuerySpecErrorToString(QuerySpecError error) {
  switch (error) {
    case QuerySpecError::kWitnessWithoutInstanceCheck:
      return "witness-without-instance-check";
    case QuerySpecError::kBanksOptionsOnNonBanksMethod:
      return "banks-options-on-non-banks-method";
    case QuerySpecError::kPerEndpointLimitWithBanks:
      return "per-endpoint-limit-with-banks";
    case QuerySpecError::kZeroMaxRdbEdges:
      return "zero-max-rdb-edges";
    case QuerySpecError::kZeroTmax:
      return "zero-tmax";
    case QuerySpecError::kStreamWithoutTopK:
      return "stream-without-top-k";
    case QuerySpecError::kZeroShards:
      return "zero-shards";
  }
  return "?";
}

std::vector<QuerySpecError> QuerySpec::Validate(
    const SearchOptions& options) {
  std::vector<QuerySpecError> errors;
  if (options.witness_edges > 0 && !options.instance_check) {
    errors.push_back(QuerySpecError::kWitnessWithoutInstanceCheck);
  }
  if (options.method != SearchMethod::kBanks) {
    const BanksOptions defaults;
    if (options.banks.top_k != defaults.top_k ||
        options.banks.weight_model != defaults.weight_model ||
        options.banks.max_distance != defaults.max_distance) {
      errors.push_back(QuerySpecError::kBanksOptionsOnNonBanksMethod);
    }
  }
  if (options.method == SearchMethod::kBanks &&
      options.per_endpoint_limit > 0) {
    errors.push_back(QuerySpecError::kPerEndpointLimitWithBanks);
  }
  if ((options.method == SearchMethod::kEnumerate ||
       options.method == SearchMethod::kStream) &&
      options.max_rdb_edges == 0) {
    errors.push_back(QuerySpecError::kZeroMaxRdbEdges);
  }
  if ((options.method == SearchMethod::kMtjnt ||
       options.method == SearchMethod::kDiscover) &&
      options.tmax == 0) {
    errors.push_back(QuerySpecError::kZeroTmax);
  }
  if (options.method == SearchMethod::kStream && options.top_k == 0) {
    errors.push_back(QuerySpecError::kStreamWithoutTopK);
  }
  if (options.shards == 0) {
    errors.push_back(QuerySpecError::kZeroShards);
  }
  return errors;
}

Result<QuerySpec> QuerySpec::Create(SearchOptions options) {
  std::vector<QuerySpecError> errors = Validate(options);
  if (!errors.empty()) {
    std::string message = "invalid query spec:";
    for (QuerySpecError error : errors) {
      message += ' ';
      message += QuerySpecErrorToString(error);
    }
    return Status::InvalidArgument(message);
  }
  return QuerySpec(std::move(options), /*validated=*/true);
}

QuerySpec QuerySpec::Unvalidated(SearchOptions options) {
  return QuerySpec(std::move(options), /*validated=*/false);
}

}  // namespace claks
