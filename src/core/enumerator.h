// Copyright 2026 The claks Authors.
//
// Connection enumeration: all simple tuple paths between the matches of two
// keywords, bounded by RDB length. This is the "full" result space the
// paper compares MTJNT against (its Table 2 lists such connections for
// "Smith XML").
//
// Entry point: EnumerateConnections, dispatched to by KeywordSearchEngine
// for SearchMethod::kEnumerate (two-keyword queries; the engine runs both
// keyword orders and deduplicates so results are order-independent). Built
// on the bounded simple-path primitives of graph/traversal.h over the CSR
// data graph; for lazy, length-ordered streaming of the same result space
// see core/topk.h.

#ifndef CLAKS_CORE_ENUMERATOR_H_
#define CLAKS_CORE_ENUMERATOR_H_

#include <set>
#include <vector>

#include "core/connection.h"
#include "text/matcher.h"

namespace claks {

struct EnumerateOptions {
  /// Maximum number of FK edges (RDB length) of a connection.
  size_t max_rdb_edges = 4;
  /// Hard cap on results (0: unlimited).
  size_t max_results = 0;
};

/// Enumerates simple paths between two tuple sets. A tuple present in both
/// sets yields a zero-edge connection. Paths stop at the first tuple of the
/// target set (connection endpoints carry the keywords, as in the paper's
/// examples).
std::vector<Connection> EnumerateConnections(
    const DataGraph& graph, const std::set<TupleId>& from,
    const std::set<TupleId>& to, const EnumerateOptions& options = {});

/// Convenience for a two-keyword query: enumerates between the matches of
/// matches[0] and matches[1]. CLAKS_CHECKs that exactly two keyword match
/// sets are given.
std::vector<Connection> EnumerateConnections(
    const DataGraph& graph, const std::vector<KeywordMatches>& matches,
    const EnumerateOptions& options = {});

/// Deduplicates connections equal up to reversal, keeping the first
/// occurrence.
std::vector<Connection> DeduplicateUndirected(
    std::vector<Connection> connections);

}  // namespace claks

#endif  // CLAKS_CORE_ENUMERATOR_H_
