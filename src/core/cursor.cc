// Copyright 2026 The claks Authors.

#include "core/cursor.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "core/shard.h"
#include "core/topk.h"
#include "observability/trace.h"

namespace claks {

std::vector<uint64_t> EndpointGroupKey(
    const SearchHit& hit, const DataGraph& graph,
    const std::map<TupleId, std::string>& keyword_of) {
  if (hit.connection.has_value()) {
    uint64_t a = hit.connection->front().Pack();
    uint64_t b = hit.connection->back().Pack();
    if (a > b) std::swap(a, b);
    return {a, b};
  }
  std::vector<uint64_t> key;
  for (uint32_t node : hit.tree.nodes) {
    TupleId tuple = graph.TupleOf(node);
    if (keyword_of.count(tuple) > 0) key.push_back(tuple.Pack());
  }
  if (key.empty()) {
    // Defensive: a tree with no labelled keyword tuple groups by its full
    // node set (exact repeats only).
    for (uint32_t node : hit.tree.nodes) {
      key.push_back(graph.TupleOf(node).Pack());
    }
  }
  std::sort(key.begin(), key.end());
  return key;
}

TupleTree CanonicalTree(const NodePath& path) {
  TupleTree tree;
  tree.nodes = path.Nodes();
  std::sort(tree.nodes.begin(), tree.nodes.end());
  for (const DataAdjacency& step : path.steps) {
    tree.edge_indices.push_back(step.edge_index);
  }
  std::sort(tree.edge_indices.begin(), tree.edge_indices.end());
  return tree;
}

namespace {

// Callers pass arbitrary page sizes; additions on consumption offsets
// must saturate instead of wrapping (a wrapped target would rewind or
// stall a cursor).
size_t SaturatingAdd(size_t a, size_t b) {
  size_t sum = a + b;
  return sum < a ? static_cast<size_t>(-1) : sum;
}

uint64_t ElapsedNs(QueryProfiler::Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          QueryProfiler::Clock::now() - start)
          .count());
}

/// Seeds a fresh profiler with the prepare-phase timings the engine
/// recorded on the PreparedQuery (they happened before any cursor
/// existed, so the cursor's own timers never see them).
std::unique_ptr<QueryProfiler> MakeProfiler(const PreparedQuery& prepared) {
  if (!prepared.options().profile) return nullptr;
  auto profiler = std::make_unique<QueryProfiler>();
  profiler->Add(QueryProfiler::Stage::kValidate, prepared.validate_ns());
  profiler->Add(QueryProfiler::Stage::kMatch, prepared.match_ns());
  profiler->Add(QueryProfiler::Stage::kTotal,
                prepared.validate_ns() + prepared.match_ns());
  return profiler;
}

/// Serves pages by slicing a fully ranked hit buffer — the cursor shape of
/// every method whose algorithm materializes its answer set anyway
/// (kEnumerate/kMtjnt/kDiscover/kBanks, one-keyword kStream, and empty
/// AND-miss results).
class MaterializedCursor : public ResultCursor {
 public:
  MaterializedCursor(std::vector<SearchHit> hits, size_t work,
                     std::unique_ptr<QueryProfiler> profiler)
      : hits_(std::move(hits)),
        work_(work),
        profiler_(std::move(profiler)) {}

  Result<std::vector<SearchHit>> Next(size_t n) override {
    // kTotal and kFetch deliberately cover the same scope: for a
    // materialized cursor a page is pure copy-out, and kTotal is the
    // wall-time denominator, not a stage.
    QueryProfiler::ScopedTimer total(profiler_.get(),
                                     QueryProfiler::Stage::kTotal);
    QueryProfiler::ScopedTimer fetch(profiler_.get(),
                                     QueryProfiler::Stage::kFetch);
    TraceSpan span("page-fetch");
    std::vector<SearchHit> page;
    size_t end = std::min(hits_.size(), SaturatingAdd(offset_, n));
    page.reserve(end - offset_);
    for (; offset_ < end; ++offset_) {
      page.push_back(std::move(hits_[offset_]));
    }
    return page;
  }

  bool Drained() const override { return offset_ >= hits_.size(); }

  CursorStats Stats() const override {
    CursorStats stats;
    stats.returned = offset_;
    stats.expansions = work_;
    stats.drained = Drained();
    if (profiler_ != nullptr) {
      stats.profile = profiler_->Snapshot(work_, offset_, {});
    }
    return stats;
  }

 private:
  std::vector<SearchHit> hits_;
  size_t work_;
  std::unique_ptr<QueryProfiler> profiler_;
  size_t offset_ = 0;
};

// The settled-k predicate of the streaming search, page-wise: the smallest
// RDB length L such that no future connection (every one has length >= L,
// by stream order) can rank strictly better than the current provisional
// top-`k`. The provisional top-k is computed over the collected candidates
// after the per-endpoint cap, so grouping is honoured incrementally.
// Returns ConnectionStream::kNoStopLength while the top-k is not yet
// settled; `bar` receives the k-th surviving key when one exists (the
// caller skips the recompute for arrivals that cannot lower it).
//
// Why a settled prefix is final: future arrivals carry keys >= `bar`, so a
// stable sort keeps them behind every current survivor at ranks < k, and
// grouping only ever drops later (worse-or-equal) group members — the
// first k survivors can never change. This is what lets a cursor emit a
// page and then keep pulling for the next one.
size_t SettleLength(const std::vector<std::vector<double>>& keys,
                    const std::vector<std::vector<uint64_t>>& groups,
                    size_t k, const SearchOptions& options,
                    std::vector<double>* bar) {
  bar->clear();
  if (k == 0 || keys.size() < k) return ConnectionStream::kNoStopLength;
  // Provisional ranking: stable order on keys (arrival order breaks ties,
  // matching the final stable sort over the same arrival order).
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  // The k-th surviving key is the bar a future connection would have to
  // beat; a future arrival never evicts a survivor because grouping keeps
  // each group's best and future keys are no better than the bar.
  std::map<std::vector<uint64_t>, size_t> group_counts;
  const std::vector<double>* kth = nullptr;
  size_t survivors = 0;
  for (size_t idx : order) {
    if (options.per_endpoint_limit != 0) {
      size_t& count = group_counts[groups[idx]];
      if (count >= options.per_endpoint_limit) continue;
      ++count;
    }
    if (++survivors == k) {
      kth = &keys[idx];
      break;
    }
  }
  if (kth == nullptr) return ConnectionStream::kNoStopLength;
  *bar = *kth;
  // MinSortKeyAtLength is nondecreasing in length, so the first length
  // whose bound reaches the bar is the stop bound. Beyond max_rdb_edges
  // the stream is exhausted anyway.
  for (size_t length = 0; length <= options.max_rdb_edges; ++length) {
    if (!(MinSortKeyAtLength(options.ranker, length) < *kth)) return length;
  }
  return ConnectionStream::kNoStopLength;
}

/// The genuinely lazy cursor behind two-keyword SearchMethod::kStream:
/// owns the bidirectional ConnectionStream and pulls, analyses and settles
/// candidates only as pages are requested. Next(n) runs the settled-k
/// predicate with k = returned-so-far + n, so the expansion work grows
/// with consumption, not with the query's top_k.
class StreamingCursor : public ResultCursor {
 public:
  explicit StreamingCursor(const PreparedQuery* prepared)
      : prepared_(prepared),
        engine_(&prepared->engine()),
        options_(prepared->options()),
        ranker_(MakeRanker(options_.ranker)),
        monotone_(RankerMonotonicity(options_.ranker) !=
                  RankMonotonicity::kNone),
        profiler_(MakeProfiler(*prepared)) {
    CLAKS_CHECK(ranker_ != nullptr);
    // Construction is the plan stage: seed partitioning and per-shard
    // stream setup happen here, before the first possible pull.
    QueryProfiler::ScopedTimer total(profiler_.get(),
                                     QueryProfiler::Stage::kTotal);
    QueryProfiler::ScopedTimer plan(profiler_.get(),
                                    QueryProfiler::Stage::kPlan);
    TraceSpan span("seed-partition");
    size_t shards = EffectiveShards(options_.shards);
    if (shards > 1) {
      // Scatter-gather: per-shard streams on the engine's intra-query
      // pool, analysed on the shard tasks, merged back into exactly the
      // unsharded emission order (core/shard.h). The settle predicate
      // below stays global — its stop bound pauses shards, never drains
      // them. Non-monotone rankers pass kNoStopLength through the same
      // code path, which degrades to full per-shard drain + merge.
      sharded_ = std::make_unique<ShardedStreamSource>(
          &engine_->data_graph(), MatchNodes(prepared, 0),
          MatchNodes(prepared, 1), options_.max_rdb_edges, shards,
          &engine_->shard_context().pool(), [this](const NodePath& path) {
            // Runs on a shard fill task: the trace span parents under the
            // task's shard-fill span via the thread-local chain, and the
            // time lands in the profiler's cross-thread analyze-task
            // accumulators (it overlaps the consumer's stream wait).
            TraceSpan analyze_span("analyze");
            if (profiler_ == nullptr) {
              return engine_->AnalyzeTree(CanonicalTree(path),
                                          prepared_->matches(),
                                          prepared_->keyword_of(), options_);
            }
            auto start = QueryProfiler::Clock::now();
            Result<SearchHit> hit = engine_->AnalyzeTree(
                CanonicalTree(path), prepared_->matches(),
                prepared_->keyword_of(), options_);
            profiler_->AddAnalyzeTask(ElapsedNs(start));
            return hit;
          });
    } else {
      // The single-threaded path, bit-for-bit the pre-sharding cursor.
      stream_.emplace(ConnectionStream::Bidirectional(
          &engine_->data_graph(), MatchNodes(prepared, 0),
          MatchNodes(prepared, 1), options_.max_rdb_edges));
    }
    if (!monotone_ && options_.top_k != 0) {
      CLAKS_LOG(Warning)
          << "kStream: ranker '" << RankerKindToString(options_.ranker)
          << "' has no length-monotone sort key; draining the full result "
             "space before ranking";
    }
  }

  Result<std::vector<SearchHit>> Next(size_t n) override {
    QueryProfiler::ScopedTimer total(profiler_.get(),
                                     QueryProfiler::Stage::kTotal);
    std::vector<SearchHit> page;
    if (n == 0 || finished_) return page;
    size_t want = SaturatingAdd(emitted_, n);
    if (options_.top_k != 0 && want > options_.top_k) {
      want = options_.top_k;
    }
    if (want > emitted_) {
      CLAKS_RETURN_NOT_OK(EnsureDecided(want));
      const std::vector<size_t>& order = SurvivorOrder();
      QueryProfiler::ScopedTimer fetch(profiler_.get(),
                                       QueryProfiler::Stage::kFetch);
      TraceSpan fetch_span("page-fetch");
      size_t end = std::min(want, order.size());
      page.reserve(end > emitted_ ? end - emitted_ : 0);
      for (size_t i = emitted_; i < end; ++i) {
        // Each rank position is emitted exactly once and the buffer slot
        // is never read again (ordering reads keys_/groups_ only), so the
        // hit moves out instead of copying.
        page.push_back(std::move(hits_[order[i]]));
      }
      emitted_ = std::max(emitted_, end);
      if (exhausted_ && emitted_ >= order.size()) finished_ = true;
    }
    if (options_.top_k != 0 && emitted_ >= options_.top_k) {
      finished_ = true;
    }
    return page;
  }

  bool Drained() const override { return finished_; }

  CursorStats Stats() const override {
    CursorStats stats;
    stats.returned = emitted_;
    if (sharded_ != nullptr) {
      stats.expansions = sharded_->TotalExpansions();
      stats.shard_expansions = sharded_->ShardExpansions();
    } else {
      stats.expansions = stream_->expansions();
    }
    stats.drained = finished_;
    if (profiler_ != nullptr) {
      stats.profile = profiler_->Snapshot(stats.expansions, stats.returned,
                                          stats.shard_expansions);
    }
    return stats;
  }

 private:
  static std::vector<uint32_t> MatchNodes(const PreparedQuery* prepared,
                                          size_t keyword) {
    const DataGraph& graph = prepared->engine().data_graph();
    std::vector<uint32_t> nodes;
    for (const TupleMatch& m : prepared->matches()[keyword].matches) {
      nodes.push_back(graph.NodeOf(m.tuple));
    }
    return nodes;
  }

  /// Pulls (and analyses) stream candidates until the first `want` rank
  /// positions are provably final — or the stream is exhausted. `want`
  /// only ever grows across calls, so the stream resumes where the
  /// previous page left it.
  Status EnsureDecided(size_t want) {
    if (exhausted_) return Status::OK();
    if (!monotone_ || options_.top_k == 0) {
      // No usable length bound (kNone ranker), or an unbounded drain
      // (top_k == 0, only reachable through the legacy unvalidated
      // facade): every hit is needed anyway, so skip the per-arrival
      // settle bookkeeping and pull the full result space once — exactly
      // what the legacy streaming search did.
      return Pull(/*want=*/0, /*settle=*/false);
    }
    return Pull(want, /*settle=*/true);
  }

  /// Timing shell around the pull loop: the stream stage is everything
  /// the loop does on the consumer thread (pulling/waiting on the
  /// stream or the shard merge, settle bookkeeping) MINUS the inline
  /// analysis time, which PullLoop accumulates separately — subtracting
  /// instead of nesting keeps the two stages disjoint with no untimed
  /// gap, so the profile's stage-sum contract holds.
  Status Pull(size_t want, bool settle) {
    if (profiler_ == nullptr) return PullLoop(want, settle);
    auto start = QueryProfiler::Clock::now();
    inline_analyze_ns_ = 0;
    Status status = PullLoop(want, settle);
    uint64_t elapsed = ElapsedNs(start);
    uint64_t analyze = std::min(inline_analyze_ns_, elapsed);
    profiler_->Add(QueryProfiler::Stage::kAnalyze, analyze);
    profiler_->Add(QueryProfiler::Stage::kStream, elapsed - analyze);
    return status;
  }

  Status PullLoop(size_t want, bool settle) {
    TraceSpan stream_span("stream");
    std::vector<double> bar;
    size_t stop = settle
                      ? SettleLength(keys_, groups_, want, options_, &bar)
                      : ConnectionStream::kNoStopLength;
    while (true) {
      SearchHit hit;
      if (sharded_ != nullptr) {
        // Merged emissions arrive in the unsharded stream's order with
        // analysis already done on the shard tasks; everything from the
        // sort key on is shared with the single-stream path, so both
        // produce byte-identical pages under any stop schedule.
        CLAKS_ASSIGN_OR_RETURN(
            std::optional<ShardedStreamSource::Emission> emission,
            sharded_->Next(stop));
        if (!emission.has_value()) {
          if (!sharded_->PendingLength().has_value()) exhausted_ = true;
          return Status::OK();
        }
        hit = std::move(emission->hit);
      } else {
        std::optional<NodePath> path = stream_->NextPath(stop);
        if (!path.has_value()) {
          if (!stream_->PendingLength().has_value()) exhausted_ = true;
          return Status::OK();
        }
        auto analyze_start = profiler_ != nullptr
                                 ? QueryProfiler::Clock::now()
                                 : QueryProfiler::Clock::time_point();
        TraceSpan analyze_span("analyze");
        CLAKS_ASSIGN_OR_RETURN(
            hit,
            engine_->AnalyzeTree(CanonicalTree(*path), prepared_->matches(),
                                 prepared_->keyword_of(), options_));
        if (profiler_ != nullptr) {
          inline_analyze_ns_ += ElapsedNs(analyze_start);
        }
      }
      std::vector<double> key = ranker_->SortKey(hit.ToRankInput());
      // An arrival that does not beat the current bar sorts after the
      // first `want` survivors and cannot lower it — skip the recompute.
      bool recompute = settle && (bar.empty() || key < bar);
      keys_.push_back(std::move(key));
      groups_.push_back(options_.per_endpoint_limit != 0
                            ? EndpointGroupKey(hit, engine_->data_graph(),
                                               prepared_->keyword_of())
                            : std::vector<uint64_t>());
      hits_.push_back(std::move(hit));
      order_dirty_ = true;
      if (recompute) {
        TraceSpan settle_span("settle");
        stop = SettleLength(keys_, groups_, want, options_, &bar);
      }
    }
  }

  /// Indices into hits_ of the grouped survivors, in final rank order
  /// (stable sort over arrival order — identical to the engine's
  /// rank/group tail). The emitted prefix of this order is immutable once
  /// settled, so recomputing after new arrivals never changes handed-out
  /// pages; the result is cached until the next arrival so back-to-back
  /// pages over an unchanged buffer pay the sort once.
  const std::vector<size_t>& SurvivorOrder() {
    if (!order_dirty_) return cached_order_;
    QueryProfiler::ScopedTimer rank(profiler_.get(),
                                    QueryProfiler::Stage::kRank);
    TraceSpan span("rank");
    std::vector<size_t> order(hits_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return keys_[a] < keys_[b];
    });
    if (options_.per_endpoint_limit != 0) {
      std::map<std::vector<uint64_t>, size_t> group_counts;
      std::vector<size_t> survivors;
      survivors.reserve(order.size());
      for (size_t idx : order) {
        if (++group_counts[groups_[idx]] <= options_.per_endpoint_limit) {
          survivors.push_back(idx);
        }
      }
      order = std::move(survivors);
    }
    cached_order_ = std::move(order);
    order_dirty_ = false;
    return cached_order_;
  }

  const PreparedQuery* prepared_;
  const KeywordSearchEngine* engine_;
  const SearchOptions options_;
  /// Exactly one of these is set: the single-threaded stream
  /// (shards <= 1, the pre-sharding path bit-for-bit) or the
  /// scatter-gather merger over per-shard streams.
  std::optional<ConnectionStream> stream_;
  std::unique_ptr<ShardedStreamSource> sharded_;
  std::unique_ptr<Ranker> ranker_;
  const bool monotone_;
  /// Null unless SearchOptions::profile; shard analyze tasks write only
  /// its atomic accumulators (AddAnalyzeTask).
  std::unique_ptr<QueryProfiler> profiler_;
  /// Inline (consumer-thread) analysis time inside the current PullLoop
  /// call; Pull subtracts it from the loop's elapsed time so the stream
  /// and analyze stages stay disjoint.
  uint64_t inline_analyze_ns_ = 0;

  /// Arrival-order candidate buffer (the reorder window) plus the
  /// parallel sort keys and group keys the settle predicate reads.
  std::vector<SearchHit> hits_;
  std::vector<std::vector<double>> keys_;
  std::vector<std::vector<uint64_t>> groups_;

  bool exhausted_ = false;  ///< stream has no pending partial paths left
  bool finished_ = false;   ///< every emittable hit has been handed out
  size_t emitted_ = 0;
  /// SurvivorOrder memo, valid while no new candidate arrives.
  std::vector<size_t> cached_order_;
  bool order_dirty_ = true;
};

}  // namespace

Result<std::unique_ptr<ResultCursor>> PreparedQuery::Open() const {
  if (!empty_result_ && options().method == SearchMethod::kStream &&
      query_.keywords.size() == 2) {
    return std::unique_ptr<ResultCursor>(
        std::make_unique<StreamingCursor>(this));
  }
  std::unique_ptr<QueryProfiler> profiler = MakeProfiler(*this);
  size_t work = 0;
  Result<std::vector<SearchHit>> hits = [&] {
    // Materialization is the whole query for these methods — it is the
    // open-time slice of the wall-time denominator.
    QueryProfiler::ScopedTimer total(profiler.get(),
                                     QueryProfiler::Stage::kTotal);
    return engine_->MaterializeHits(*this, &work, profiler.get());
  }();
  CLAKS_RETURN_NOT_OK(hits.status());
  return std::unique_ptr<ResultCursor>(std::make_unique<MaterializedCursor>(
      std::move(hits).ValueUnsafe(), work, std::move(profiler)));
}

}  // namespace claks
