// Copyright 2026 The claks Authors.

#include "core/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace claks {

RankInput MakeRankInput(const ConnectionAnalysis& analysis,
                        double text_score, double ambiguity) {
  RankInput input;
  input.rdb_length = analysis.rdb_length;
  input.er_length = analysis.er_length;
  input.hub_patterns = analysis.hub_patterns;
  input.nm_steps = analysis.nm_steps;
  input.schema_close = analysis.schema_close;
  input.instance_close = analysis.instance_close;
  input.text_score = text_score;
  input.ambiguity = ambiguity;
  return input;
}

const char* RankerKindToString(RankerKind kind) {
  switch (kind) {
    case RankerKind::kRdbLength:
      return "rdb-length";
    case RankerKind::kErLength:
      return "er-length";
    case RankerKind::kCloseFirst:
      return "close-first";
    case RankerKind::kLoosePenalty:
      return "loose-penalty";
    case RankerKind::kInstanceClose:
      return "instance-close";
    case RankerKind::kCombined:
      return "combined";
    case RankerKind::kAmbiguity:
      return "ambiguity";
    case RankerKind::kMoreContext:
      return "more-context";
  }
  return "?";
}

std::optional<RankerKind> RankerKindFromString(const std::string& name) {
  static const RankerKind kAll[] = {
      RankerKind::kRdbLength,     RankerKind::kErLength,
      RankerKind::kCloseFirst,    RankerKind::kLoosePenalty,
      RankerKind::kInstanceClose, RankerKind::kCombined,
      RankerKind::kAmbiguity,     RankerKind::kMoreContext};
  for (RankerKind kind : kAll) {
    if (name == RankerKindToString(kind)) return kind;
  }
  return std::nullopt;
}

RankMonotonicity RankerMonotonicity(RankerKind kind) {
  switch (kind) {
    case RankerKind::kRdbLength:
      return RankMonotonicity::kExact;
    case RankerKind::kErLength:
    case RankerKind::kCloseFirst:
    case RankerKind::kLoosePenalty:
    case RankerKind::kInstanceClose:
    case RankerKind::kAmbiguity:
      return RankMonotonicity::kMonotone;
    case RankerKind::kCombined:     // text score is unrelated to length
    case RankerKind::kMoreContext:  // longer-first: anti-monotone
      return RankMonotonicity::kNone;
  }
  return RankMonotonicity::kNone;
}

std::vector<double> MinSortKeyAtLength(RankerKind kind, size_t length) {
  double rdb = static_cast<double>(length);
  // An ER step projects at most two RDB edges (a full middle-relation
  // traversal); partial and 1:N steps project one.
  double er = static_cast<double>((length + 1) / 2);
  switch (kind) {
    case RankerKind::kRdbLength:
      return {rdb};
    case RankerKind::kErLength:
      return {er, rdb};
    case RankerKind::kCloseFirst:
    case RankerKind::kLoosePenalty:
      // hub_patterns (resp. hubs + nm_steps) can be 0 at any length.
      return {0.0, er, rdb};
    case RankerKind::kInstanceClose:
      return {0.0, 0.0, er, rdb};
    case RankerKind::kAmbiguity:
      // Per-step fan-out factors are clamped to >= 1, so the product is.
      return {1.0, er, rdb};
    case RankerKind::kCombined:
    case RankerKind::kMoreContext:
      break;
  }
  CLAKS_CHECK(false && "MinSortKeyAtLength: ranker has no monotone bound");
  return {};
}

namespace {

class RdbLengthRanker : public Ranker {
 public:
  std::string name() const override { return "rdb-length"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    return {static_cast<double>(in.rdb_length)};
  }
};

class ErLengthRanker : public Ranker {
 public:
  std::string name() const override { return "er-length"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    return {static_cast<double>(in.er_length),
            static_cast<double>(in.rdb_length)};
  }
};

class CloseFirstRanker : public Ranker {
 public:
  std::string name() const override { return "close-first"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    return {static_cast<double>(in.hub_patterns),
            static_cast<double>(in.er_length),
            static_cast<double>(in.rdb_length)};
  }
};

class LoosePenaltyRanker : public Ranker {
 public:
  std::string name() const override { return "loose-penalty"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    return {static_cast<double>(in.hub_patterns + in.nm_steps),
            static_cast<double>(in.er_length),
            static_cast<double>(in.rdb_length)};
  }
};

class InstanceCloseRanker : public Ranker {
 public:
  std::string name() const override { return "instance-close"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    double verified_loose =
        in.instance_close.has_value() ? (*in.instance_close ? 0.0 : 1.0)
                                      : (in.schema_close ? 0.0 : 1.0);
    return {verified_loose, static_cast<double>(in.hub_patterns),
            static_cast<double>(in.er_length),
            static_cast<double>(in.rdb_length)};
  }
};

class CombinedRanker : public Ranker {
 public:
  std::string name() const override { return "combined"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    double structural = 1.0 + static_cast<double>(in.er_length) +
                        static_cast<double>(in.hub_patterns);
    // Negated: smaller key ranks higher.
    return {-(in.text_score + 1e-9) / structural};
  }
};

class AmbiguityRanker : public Ranker {
 public:
  std::string name() const override { return "ambiguity"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    return {in.ambiguity, static_cast<double>(in.er_length),
            static_cast<double>(in.rdb_length)};
  }
};

class MoreContextRanker : public Ranker {
 public:
  std::string name() const override { return "more-context"; }
  std::vector<double> SortKey(const RankInput& in) const override {
    // Unambiguous first (hubs are still penalised — a longer *loose*
    // connection adds noise, not information), then MORE conceptual steps.
    return {static_cast<double>(in.hub_patterns),
            -static_cast<double>(in.er_length),
            -static_cast<double>(in.rdb_length)};
  }
};

}  // namespace

std::unique_ptr<Ranker> MakeRanker(RankerKind kind) {
  switch (kind) {
    case RankerKind::kRdbLength:
      return std::make_unique<RdbLengthRanker>();
    case RankerKind::kErLength:
      return std::make_unique<ErLengthRanker>();
    case RankerKind::kCloseFirst:
      return std::make_unique<CloseFirstRanker>();
    case RankerKind::kLoosePenalty:
      return std::make_unique<LoosePenaltyRanker>();
    case RankerKind::kInstanceClose:
      return std::make_unique<InstanceCloseRanker>();
    case RankerKind::kCombined:
      return std::make_unique<CombinedRanker>();
    case RankerKind::kAmbiguity:
      return std::make_unique<AmbiguityRanker>();
    case RankerKind::kMoreContext:
      return std::make_unique<MoreContextRanker>();
  }
  return nullptr;
}

std::vector<size_t> RankOrder(const std::vector<RankInput>& inputs,
                              const Ranker& ranker) {
  std::vector<std::vector<double>> keys;
  keys.reserve(inputs.size());
  for (const RankInput& input : inputs) {
    keys.push_back(ranker.SortKey(input));
  }
  std::vector<size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  return order;
}

double KendallTauDistance(const std::vector<size_t>& a,
                          const std::vector<size_t>& b) {
  CLAKS_CHECK_EQ(a.size(), b.size());
  size_t n = a.size();
  if (n < 2) return 0.0;
  // position of each item in b
  std::vector<size_t> pos_b(n);
  for (size_t i = 0; i < n; ++i) {
    CLAKS_CHECK_LT(b[i], n);
    pos_b[b[i]] = i;
  }
  size_t discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (pos_b[a[i]] > pos_b[a[j]]) ++discordant;
    }
  }
  return static_cast<double>(discordant) /
         (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

}  // namespace claks
