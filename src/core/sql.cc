// Copyright 2026 The claks Authors.

#include "core/sql.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

std::string SqlLiteral(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
    case ValueType::kDouble:
      return value.ToString();
    case ValueType::kBool:
      return value.AsBool() ? "TRUE" : "FALSE";
    case ValueType::kString: {
      std::string out = "'";
      for (char c : value.AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

namespace {

// Join condition between two aliases where `referencing_alias` owns FK `fk`.
std::string JoinCondition(const ForeignKeyDef& fk,
                          const std::string& referencing_alias,
                          const std::string& referenced_alias) {
  std::string out;
  for (size_t k = 0; k < fk.local_attributes.size(); ++k) {
    if (k > 0) out += " AND ";
    out += referencing_alias + "." + fk.local_attributes[k] + " = " +
           referenced_alias + "." + fk.referenced_attributes[k];
  }
  return out;
}

}  // namespace

Result<std::string> ConnectionToSql(const Connection& connection,
                                    const Database& db) {
  const auto& tuples = connection.tuples();
  if (tuples.empty()) return Status::InvalidArgument("empty connection");

  std::string select = "SELECT ";
  std::string from = " FROM ";
  std::string where = " WHERE ";
  bool first_where = true;

  for (size_t i = 0; i < tuples.size(); ++i) {
    const Table& table = db.table(tuples[i].table);
    std::string alias = StrFormat("t%zu", i);
    if (i > 0) {
      select += ", ";
      from += ", ";
    }
    select += alias + ".*";
    from += table.name() + " " + alias;
    // Pin the tuple by primary key.
    for (size_t idx : table.schema().PrimaryKeyIndices()) {
      if (!first_where) where += " AND ";
      first_where = false;
      where += alias + "." + table.schema().attribute(idx).name + " = " +
               SqlLiteral(table.row(tuples[i].row)[idx]);
    }
  }

  // Join conditions.
  for (size_t e = 0; e < connection.edges().size(); ++e) {
    const ConnectionEdge& edge = connection.edges()[e];
    size_t referencing_pos = edge.along_fk ? e : e + 1;
    size_t referenced_pos = edge.along_fk ? e + 1 : e;
    const TableSchema& schema = db.SchemaOf(tuples[referencing_pos]);
    if (edge.fk_index >= schema.foreign_keys().size()) {
      return Status::OutOfRange(
          StrFormat("fk %u of table '%s'", edge.fk_index,
                    schema.name().c_str()));
    }
    const ForeignKeyDef& fk = schema.foreign_keys()[edge.fk_index];
    if (!first_where) where += " AND ";
    first_where = false;
    where += JoinCondition(fk, StrFormat("t%zu", referencing_pos),
                           StrFormat("t%zu", referenced_pos));
  }

  return select + from + (first_where ? "" : where) + ";";
}

Result<std::string> CandidateNetworkToSql(
    const CandidateNetwork& cn, const Database& db,
    const std::vector<std::string>& keywords) {
  if (cn.nodes.empty()) return Status::InvalidArgument("empty CN");
  std::string select = "SELECT ";
  std::string from = " FROM ";
  std::vector<std::string> conditions;

  for (size_t i = 0; i < cn.nodes.size(); ++i) {
    const Table& table = db.table(cn.nodes[i].table);
    std::string alias = StrFormat("t%zu", i);
    if (i > 0) {
      select += ", ";
      from += ", ";
    }
    select += alias + ".*";
    from += table.name() + " " + alias;

    // Keyword predicates for the node's tuple set.
    for (size_t k = 0; k < keywords.size(); ++k) {
      if ((cn.nodes[i].keyword_mask & (1u << k)) == 0) continue;
      std::string disjunction;
      for (size_t a = 0; a < table.schema().num_attributes(); ++a) {
        const AttributeDef& attr = table.schema().attribute(a);
        if (!attr.searchable || attr.type != ValueType::kString) continue;
        if (!disjunction.empty()) disjunction += " OR ";
        disjunction += "LOWER(" + alias + "." + attr.name + ") LIKE '%" +
                       ToLower(keywords[k]) + "%'";
      }
      if (disjunction.empty()) {
        return Status::InvalidArgument(
            "CN node over table '" + table.name() +
            "' requires keyword '" + keywords[k] +
            "' but the table has no searchable text attribute");
      }
      conditions.push_back("(" + disjunction + ")");
    }
  }

  for (const CandidateNetwork::Edge& edge : cn.edges) {
    uint32_t referencing = edge.a_is_referencing ? edge.a : edge.b;
    uint32_t referenced = edge.a_is_referencing ? edge.b : edge.a;
    const TableSchema& schema =
        db.table(cn.nodes[referencing].table).schema();
    if (edge.fk_index >= schema.foreign_keys().size()) {
      return Status::OutOfRange(
          StrFormat("fk %u of table '%s'", edge.fk_index,
                    schema.name().c_str()));
    }
    conditions.push_back(JoinCondition(
        schema.foreign_keys()[edge.fk_index],
        StrFormat("t%u", referencing), StrFormat("t%u", referenced)));
  }

  std::string where;
  if (!conditions.empty()) {
    where = " WHERE " + Join(conditions, " AND ");
  }
  return select + from + where + ";";
}

}  // namespace claks
