// Copyright 2026 The claks Authors.
//
// Intra-query sharding: one query fans out over N shards of the data
// graph and the scatter-gather merger recombines the per-shard streams
// into exactly the unsharded result sequence.
//
// The partition hashes dense node ids (ShardOfNode), so a tuple's shard
// is pure arithmetic and the table-major id layout is respected: shard
// slices keep the shared CSR of graph/data_graph.h and every FK edge
// stays resolvable from either endpoint, with ShardOfEdge assigning each
// cross-shard edge to exactly one owner (the referencing side). What is
// partitioned is the *seed space*: each shard's ConnectionStream is
// seeded with the keyword-match nodes hashed to it, carrying the rank
// those seeds hold in the full unsharded stream
// (ConnectionStream::BidirectionalRanked).
//
// Correctness rests on the stream's emission-order contract
// (core/topk.h, NextKeyedPath): within one RDB-length level emissions
// are seed-major, so a shard's stream emits the global order restricted
// to its seeds, and ShardedStreamSource reconstructs the global order by
// always emitting the minimal buffered (length, seed_rank) head. The
// settled-k predicate is applied globally by the caller: a stop bound
// derived from MinSortKeyAtLength pauses every shard whose next emission
// cannot beat the provisional top-k — paused shards keep their queues
// intact and resume when a later page raises the bound; they are never
// drained. Non-monotone rankers pass kNoStopLength and get a full
// per-shard drain + merge, exactly like the unsharded kStream fallback.
//
// Thread model: shard fill tasks run on an engine-owned ShardContext
// pool (never on the service's bounded admission pool — a query task
// spawning sub-tasks on its own pool could deadlock on a full queue;
// shard tasks are pure compute and never block). AnalyzeTree is const
// and data-race-free on a warmed engine, so fills analyse candidates in
// parallel. Per-shard expansion counters are a deterministic function of
// the stop schedule — independent of thread interleaving — and
// aggregate in stable shard-index order (TotalExpansions), keeping
// SearchResult::expansions exact under sharding.

#ifndef CLAKS_CORE_SHARD_H_
#define CLAKS_CORE_SHARD_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/topk.h"
#include "graph/data_graph.h"
#include "observability/metrics.h"

namespace claks {

/// Shard of a dense node id under an N-way partition. Stateless integer
/// hash (splitmix-style finalizer) — uniform across shards regardless of
/// the table-major id layout, identical on every run and platform.
uint32_t ShardOfNode(uint32_t node, size_t num_shards);

/// Owner of an FK edge: the shard of its referencing (`from`) endpoint.
/// A cross-shard edge is therefore seen by exactly one side — the
/// invariant tests/shard_test.cc asserts.
uint32_t ShardOfEdge(const DataGraph& graph, uint32_t edge_index,
                     size_t num_shards);

/// Requested shard count normalized for execution: 0 (only reachable
/// through the unvalidated legacy facade) behaves like 1, everything
/// else passes through. 1 means the single-threaded unsharded path.
size_t EffectiveShards(size_t requested);

/// A materialized N-way node partition (the inspectable form of
/// ShardOfNode, for tests, diagnostics and benchmark skew reporting —
/// query execution hashes seeds on the fly and never builds this).
struct ShardPartition {
  size_t num_shards = 1;
  std::vector<uint32_t> shard_of_node;  ///< indexed by dense node id
  std::vector<size_t> node_counts;      ///< nodes per shard
  std::vector<size_t> edge_counts;      ///< owned edges per shard
};

ShardPartition MakeShardPartition(const DataGraph& graph,
                                  size_t num_shards);

/// Engine-owned context for intra-query parallelism: one dedicated
/// ThreadPool shared by every sharded query on the engine. Created
/// lazily (first sharded query) so unsharded workloads never start
/// threads.
class ShardContext {
 public:
  ShardContext();
  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
};

/// Runs every task on `pool` and blocks until all of them finished.
/// Unlike ThreadPool::Drain this waits only for these tasks — the pool
/// is shared across concurrent queries, so draining it would wait on
/// strangers. Tasks run concurrently; exceptions must not escape them.
void RunAndWait(ThreadPool* pool, std::vector<std::function<void()>> tasks);

/// The two keyword-side seed lists of a bidirectional stream with their
/// global ranks assigned: side A deduplicated in order with ranks
/// 0..A-1, side B with ranks A..A+B-1 — exactly the numbering
/// ConnectionStream::Bidirectional produces internally, so per-shard
/// slices built from these agree with the unsharded stream on every
/// seed's rank.
struct RankedSeedSets {
  std::vector<RankedSeed> side_a;
  std::vector<RankedSeed> side_b;
};

RankedSeedSets RankSeedSets(const std::vector<uint32_t>& side_a,
                            const std::vector<uint32_t>& side_b);

/// Scatter-gather merger over per-shard connection streams: the sharded
/// drop-in for the single ConnectionStream inside the streaming cursor.
/// Emissions come out in exactly the unsharded stream's order (hits are
/// analysed on the shard tasks and carried along), under any schedule of
/// stop bounds. Single-consumer, like the stream it replaces.
class ShardedStreamSource {
 public:
  /// One merged emission: the path's merge coordinates plus its analysed
  /// hit (produced by `analyze` on a shard task).
  struct Emission {
    KeyedPath keyed;
    SearchHit hit;
  };

  /// Analysis callback run per candidate on shard fill tasks; must be
  /// safe to invoke concurrently from multiple threads (the engine's
  /// AnalyzeTree on a warmed engine is).
  using AnalyzeFn = std::function<Result<SearchHit>(const NodePath&)>;

  /// Builds `num_shards` per-shard streams over the full graph, seeding
  /// shard s with the side-A/side-B match nodes whose ShardOfNode is s
  /// (global ranks preserved). Every shard keeps the full opposite-side
  /// target set: a connection may end anywhere.
  ShardedStreamSource(const DataGraph* graph,
                      const std::vector<uint32_t>& side_a,
                      const std::vector<uint32_t>& side_b, size_t max_edges,
                      size_t num_shards, ThreadPool* pool,
                      AnalyzeFn analyze);

  /// Next emission with length < stop_length in unsharded order, or
  /// nullopt when every shard is exhausted or paused at the bound.
  /// Pausing leaves all per-shard queues intact — a later call with a
  /// larger bound resumes them. Returns the first analysis error raised
  /// on any shard task.
  Result<std::optional<Emission>> Next(size_t stop_length)
      CLAKS_EXCLUDES(mutex_);

  /// Lower bound on the length of every future emission: min over
  /// buffered heads and per-shard pending partial paths. nullopt once
  /// fully exhausted (the cursor's drain test, like the unsharded
  /// stream's PendingLength). Matches the *unsharded* stream's knowledge
  /// horizon, not the physical shard state: a shard drained by a
  /// prefetch batch past the last stop bound still reports a pending at
  /// that bound as long as it popped frontiers the single stream would
  /// not have popped yet, so the cursor's drain flag flips on exactly
  /// the same call under both execution modes.
  std::optional<size_t> PendingLength() const;

  /// Sum of per-shard expansion counters in shard-index order — the
  /// stable aggregation SearchResult::expansions reports. Deterministic
  /// for a fixed stop schedule.
  size_t TotalExpansions() const;

  /// Per-shard expansion counters (work-skew metric for the benches).
  std::vector<size_t> ShardExpansions() const;

  /// Max/mean/ratio skew over ShardExpansions() — the balance metric the
  /// --shards bench sweeps and QueryProfile::shard_skew report.
  SkewSummary WorkSkew() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::unique_ptr<ConnectionStream> stream;
    /// Emissions pulled ahead under some stop bound, in shard order
    /// (each shard's own order is nondecreasing (length, seed-major)).
    std::deque<Emission> buffer;
    bool exhausted = false;
    /// True after a fill came back empty with pendings left: the shard
    /// is paused at `paused_at`. Refilling at the same bound is a
    /// no-op, so Next skips it until the bound changes.
    bool paused = false;
    size_t paused_at = 0;
    /// Snapshot of stream->expansions() after the last fill (the stream
    /// itself is only touched by fill tasks).
    size_t expansions = 0;
  };

  /// Schedules fill tasks for every empty, unexhausted, unpaused shard
  /// and blocks until they finish. Each task pulls up to a small
  /// prefetch batch of emissions (all with length < stop_length) and
  /// analyses them — the scatter half of the merge.
  void FillAll(size_t stop_length) CLAKS_EXCLUDES(mutex_);

  const DataGraph* graph_;
  ThreadPool* pool_;
  AnalyzeFn analyze_;
  /// Not mutex-annotated: ownership alternates by protocol instead. Fill
  /// tasks write their shard's entry (under mutex_, for the rendezvous
  /// ordering); between FillAll rendezvous points no task is outstanding
  /// and the single consumer reads without the lock. The TSan matrix
  /// exercises this handoff; the annotations cover the rendezvous
  /// counters below, which are what make it sound.
  std::vector<Shard> shards_;
  /// Stop bound of the most recent Next call — the pause horizon
  /// PendingLength mirrors for drained-by-prefetch shards.
  size_t last_stop_ = ConnectionStream::kNoStopLength;
  /// Cross-shard dedup in merge order: the same undirected path can be
  /// discovered from seeds in two different shards (one per lane); the
  /// merge emits the first arrival — which, because merge order equals
  /// unsharded order, is the same representative the unsharded stream's
  /// own dedup keeps.
  std::set<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
      emitted_;

  /// Fill-task rendezvous: tasks report completion (and the first
  /// analysis error) under this mutex; Next waits for outstanding to
  /// reach zero before merging.
  Mutex mutex_;
  std::condition_variable fills_done_;
  size_t outstanding_ CLAKS_GUARDED_BY(mutex_) = 0;
  Status fill_status_ CLAKS_GUARDED_BY(mutex_);
};

/// Order-preserving parallel analysis: AnalyzeTree for every tree on the
/// shard pool, results in input order, first error (by input index)
/// wins. The materialized methods' share of intra-query parallelism —
/// candidate generation stays method-specific, but analysis dominates
/// and parallelizes identically for all of them.
Result<std::vector<SearchHit>> AnalyzeTreesParallel(
    const KeywordSearchEngine& engine, const std::vector<TupleTree>& trees,
    const std::vector<KeywordMatches>& matches,
    const std::map<TupleId, std::string>& keyword_of,
    const SearchOptions& options, ThreadPool* pool);

}  // namespace claks

#endif  // CLAKS_CORE_SHARD_H_
