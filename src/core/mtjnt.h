// Copyright 2026 The claks Authors.
//
// Minimal Total Joining Networks of Tuples (MTJNT) à la DISCOVER
// [Hristidis & Papakonstantinou, VLDB'02] — the approach the paper shows
// "loses semantic connections or fragments the results" (§3).
//
// Two implementations are provided and cross-checked in tests:
//  * an exact data-level enumerator growing tuple trees directly on the
//    data graph (simple, reference semantics);
//  * the DISCOVER pipeline: candidate-network (CN) generation over the
//    schema-level tuple-set graph, then CN evaluation by joins.
//
// Keyword tuple sets follow DISCOVER's partition semantics: tuple set
// R^S contains the tuples of R whose set of matched query keywords is
// exactly S; R^{} (the free tuple set) contains the keyword-free tuples.
//
// Entry points: EnumerateMtjnt (reference) and DiscoverMtjnt (CN pipeline);
// KeywordSearchEngine dispatches to them for SearchMethod::kMtjnt and
// kDiscover respectively. Both return TupleTrees, the result currency the
// engine analyses and ranks (path-shaped trees convert to Connections for
// the full close-association analysis).

#ifndef CLAKS_CORE_MTJNT_H_
#define CLAKS_CORE_MTJNT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/connection.h"
#include "graph/schema_graph.h"
#include "text/matcher.h"

namespace claks {

/// A joining network of tuples: a tree in the data graph.
struct TupleTree {
  /// Data-graph node ids, sorted ascending.
  std::vector<uint32_t> nodes;
  /// Data-graph edge indices, sorted ascending. Empty for one-node trees.
  std::vector<uint32_t> edge_indices;

  size_t size() const { return nodes.size(); }

  /// Leaves of the tree (degree <= 1 within the tree).
  std::vector<uint32_t> Leaves(const DataGraph& graph) const;

  /// True when the edge set forms a path; such trees convert losslessly to
  /// Connections.
  bool IsPath(const DataGraph& graph) const;

  /// Converts a path-shaped tree to a Connection starting from its
  /// lowest-id endpoint. CLAKS_CHECKs IsPath.
  Connection ToConnection(const DataGraph& graph) const;

  std::string ToString(const DataGraph& graph) const;

  bool operator==(const TupleTree& other) const {
    return nodes == other.nodes && edge_indices == other.edge_indices;
  }
  bool operator<(const TupleTree& other) const {
    if (nodes != other.nodes) return nodes < other.nodes;
    return edge_indices < other.edge_indices;
  }
};

/// Keyword containment mask per tuple: bit i set when the tuple matches
/// query keyword i. Tuples matching no keyword are absent from the map.
std::map<TupleId, uint32_t> ComputeKeywordMasks(
    const std::vector<KeywordMatches>& matches);

/// Totality: the tree contains, for every query keyword, at least one tuple
/// matching it.
bool IsTotal(const DataGraph& graph, const TupleTree& tree,
             const std::map<TupleId, uint32_t>& masks,
             uint32_t num_keywords);

/// Minimality: no leaf can be removed with the tree remaining total.
bool IsMinimalTotal(const DataGraph& graph, const TupleTree& tree,
                    const std::map<TupleId, uint32_t>& masks,
                    uint32_t num_keywords);

/// Exact data-level enumeration of all MTJNTs with at most `tmax` tuples.
/// Deterministic order (sorted by node/edge sets).
std::vector<TupleTree> EnumerateMtjnt(
    const DataGraph& graph, const std::vector<KeywordMatches>& matches,
    size_t tmax);

// ---------------------------------------------------------------------------
// DISCOVER candidate networks
// ---------------------------------------------------------------------------

/// A node of a candidate network: a tuple set R^S.
struct CnNode {
  uint32_t table = 0;
  uint32_t keyword_mask = 0;  ///< 0 = free tuple set

  bool operator==(const CnNode& other) const {
    return table == other.table && keyword_mask == other.keyword_mask;
  }
};

/// A candidate network: a tree over tuple-set nodes.
struct CandidateNetwork {
  std::vector<CnNode> nodes;
  struct Edge {
    uint32_t a = 0;  ///< index into nodes
    uint32_t b = 0;
    uint32_t fk_index = 0;       ///< FK within the referencing table
    bool a_is_referencing = true;
  };
  std::vector<Edge> edges;

  size_t size() const { return nodes.size(); }

  /// Canonical string (AHU tree encoding) for deduplication.
  std::string Canonical() const;

  std::string ToString(const Database& db,
                       const std::vector<std::string>& keywords) const;
};

/// Generates all candidate networks of at most `tmax` nodes whose keyword
/// masks cover all keywords, whose leaves are non-free, and in which no
/// leaf is redundant. `masks_per_table[t]` lists the non-empty non-zero
/// masks of table t.
std::vector<CandidateNetwork> GenerateCandidateNetworks(
    const SchemaGraph& schema_graph,
    const std::vector<std::vector<uint32_t>>& masks_per_table,
    uint32_t num_keywords, size_t tmax);

/// How EvaluateCandidateNetwork finds the tuples joining a CN edge.
enum class CnEvalStrategy {
  /// Per-FK hash join indexes (Database::JoinParent / JoinChildren): each
  /// join step is an O(1) index probe plus its matching child range. The
  /// production path.
  kIndexed,
  /// The seed nested-loop evaluation: per-node table scans and linear
  /// candidate-membership checks. Kept as the reference implementation for
  /// equivalence tests (tests/join_index_test.cc) and as the baseline the
  /// scale benchmark (bench/bench_scale.cc) measures speedups against.
  kScan,
};

/// Evaluates one CN against the data: every assignment of distinct tuples
/// to CN nodes that respects tuple-set membership and the CN's join edges.
/// Results are filtered to MTJNTs (total + minimal; CN-level conditions do
/// not always guarantee tuple-level minimality). Both strategies return
/// identical results; kIndexed never scans a table.
std::vector<TupleTree> EvaluateCandidateNetwork(
    const DataGraph& graph, const CandidateNetwork& cn,
    const std::map<TupleId, uint32_t>& masks, uint32_t num_keywords,
    CnEvalStrategy strategy = CnEvalStrategy::kIndexed);

/// Full DISCOVER pipeline: masks -> CN generation -> evaluation ->
/// deduplicated MTJNTs. Equivalent to EnumerateMtjnt (tested).
std::vector<TupleTree> DiscoverMtjnt(
    const DataGraph& graph, const SchemaGraph& schema_graph,
    const std::vector<KeywordMatches>& matches, size_t tmax,
    CnEvalStrategy strategy = CnEvalStrategy::kIndexed);

}  // namespace claks

#endif  // CLAKS_CORE_MTJNT_H_
