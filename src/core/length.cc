// Copyright 2026 The claks Authors.

#include "core/length.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

std::vector<Cardinality> ErProjection::CardinalitySequence() const {
  std::vector<Cardinality> out;
  out.reserve(steps.size());
  for (const ErProjectedStep& step : steps) out.push_back(step.cardinality);
  return out;
}

std::string ErProjection::ToString() const {
  if (steps.empty()) return entity_tuples.empty() ? "(empty)" : "(tuple)";
  std::string out = steps.front().from_entity;
  for (const ErProjectedStep& step : steps) {
    out += " ";
    out += CardinalityToString(step.cardinality);
    out += " ";
    out += step.to_entity;
  }
  return out;
}

namespace {

struct EdgeView {
  const FkErInfo* info = nullptr;
  const RelationshipType* relationship = nullptr;
  TupleId referencing;
  TupleId referenced;
};

Result<EdgeView> ResolveEdge(const Connection& connection, size_t index,
                             const Database& db, const ERSchema& er_schema,
                             const ErRelationalMapping& mapping) {
  const ConnectionEdge& edge = connection.edges()[index];
  TupleId a = connection.tuples()[index];
  TupleId b = connection.tuples()[index + 1];
  TupleId referencing = edge.along_fk ? a : b;
  TupleId referenced = edge.along_fk ? b : a;
  const std::string& table_name = db.SchemaOf(referencing).name();
  const FkErInfo* info = mapping.FindFk(table_name, edge.fk_index);
  if (info == nullptr) {
    return Status::NotFound(StrFormat(
        "no ER mapping for FK %u of table '%s'", edge.fk_index,
        table_name.c_str()));
  }
  const RelationshipType* rel =
      er_schema.FindRelationship(info->relationship);
  if (rel == nullptr) {
    return Status::NotFound("relationship '" + info->relationship +
                            "' not in ER schema");
  }
  return EdgeView{info, rel, referencing, referenced};
}

bool IsMiddleTuple(const Database& db, const ErRelationalMapping& mapping,
                   TupleId id) {
  return mapping.IsMiddleRelation(db.SchemaOf(id).name());
}

}  // namespace

Result<ErProjection> ProjectToEr(const Connection& connection,
                                 const Database& db,
                                 const ERSchema& er_schema,
                                 const ErRelationalMapping& mapping) {
  ErProjection out;
  const auto& tuples = connection.tuples();
  const auto& edges = connection.edges();

  if (!IsMiddleTuple(db, mapping, tuples.front())) {
    out.entity_tuples.push_back(tuples.front());
  }

  size_t i = 0;
  while (i < edges.size()) {
    TupleId a = tuples[i];
    TupleId b = tuples[i + 1];
    bool a_middle = IsMiddleTuple(db, mapping, a);
    bool b_middle = IsMiddleTuple(db, mapping, b);
    CLAKS_ASSIGN_OR_RETURN(EdgeView view,
                           ResolveEdge(connection, i, db, er_schema,
                                       mapping));
    CLAKS_CHECK(view.info != nullptr && view.relationship != nullptr);

    if (!a_middle && !b_middle) {
      // A plain entity-to-entity step: one immediate relationship.
      bool along_fk = edges[i].along_fk;
      bool arriving_at_left =
          along_fk ? view.info->references_left : !view.info->references_left;
      ErProjectedStep step;
      step.relationship = view.relationship->name;
      step.cardinality = arriving_at_left
                             ? Inverse(view.relationship->cardinality)
                             : view.relationship->cardinality;
      step.from_entity = arriving_at_left ? view.relationship->right_entity
                                          : view.relationship->left_entity;
      step.to_entity = arriving_at_left ? view.relationship->left_entity
                                        : view.relationship->right_entity;
      step.left_to_right = !arriving_at_left;
      out.steps.push_back(std::move(step));
      out.entity_tuples.push_back(b);
      ++i;
      continue;
    }

    if (!a_middle && b_middle) {
      // Entering a middle relation. The middle tuple owns the FK, so the
      // edge's referencing side is b.
      bool a_left = view.info->references_left;
      if (i + 1 < edges.size()) {
        // Full traversal a -> middle -> c collapses to one N:M step.
        CLAKS_ASSIGN_OR_RETURN(EdgeView exit_view,
                               ResolveEdge(connection, i + 1, db, er_schema,
                                           mapping));
        if (exit_view.relationship->name != view.relationship->name) {
          return Status::Internal(
              "middle relation '" + db.SchemaOf(b).name() +
              "' maps to two relationships");
        }
        bool c_left = exit_view.info->references_left;
        CLAKS_CHECK(a_left != c_left);
        ErProjectedStep step;
        step.relationship = view.relationship->name;
        step.cardinality = a_left ? view.relationship->cardinality
                                  : Inverse(view.relationship->cardinality);
        step.from_entity = a_left ? view.relationship->left_entity
                                  : view.relationship->right_entity;
        step.to_entity = a_left ? view.relationship->right_entity
                                : view.relationship->left_entity;
        step.left_to_right = a_left;
        out.steps.push_back(std::move(step));
        out.entity_tuples.push_back(tuples[i + 2]);
        i += 2;
        continue;
      }
      // The connection ends inside the middle relation: a partial step.
      ErProjectedStep step;
      step.relationship = view.relationship->name;
      step.cardinality = a_left ? view.relationship->cardinality
                                : Inverse(view.relationship->cardinality);
      step.from_entity = a_left ? view.relationship->left_entity
                                : view.relationship->right_entity;
      step.to_entity = view.relationship->name;  // open end
      step.partial = true;
      step.left_to_right = a_left;
      out.steps.push_back(std::move(step));
      ++i;
      continue;
    }

    if (a_middle && !b_middle) {
      // The connection starts inside a middle relation (only possible at
      // i == 0; otherwise the previous iteration consumed the middle
      // tuple).
      CLAKS_CHECK_EQ(i, 0u);
      bool b_left = view.info->references_left;
      ErProjectedStep step;
      step.relationship = view.relationship->name;
      step.cardinality = b_left ? Inverse(view.relationship->cardinality)
                                : view.relationship->cardinality;
      step.from_entity = view.relationship->name;  // open end
      step.to_entity = b_left ? view.relationship->left_entity
                              : view.relationship->right_entity;
      step.partial = true;
      step.left_to_right = !b_left;
      out.steps.push_back(std::move(step));
      out.entity_tuples.push_back(b);
      ++i;
      continue;
    }

    return Status::Internal(
        "two adjacent middle-relation tuples in a connection");
  }

  return out;
}

Result<size_t> ErLength(const Connection& connection, const Database& db,
                        const ERSchema& er_schema,
                        const ErRelationalMapping& mapping) {
  CLAKS_ASSIGN_OR_RETURN(ErProjection projection,
                         ProjectToEr(connection, db, er_schema, mapping));
  return projection.ErLength();
}

}  // namespace claks
