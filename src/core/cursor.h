// Copyright 2026 The claks Authors.
//
// Pull-based result cursors: the incremental-consumption half of the
// prepared-query API (core/query_spec.h). A ResultCursor yields the ranked
// hit sequence of one PreparedQuery page by page; draining any cursor
// reproduces exactly what KeywordSearchEngine::Search returns for the same
// query and options (proven by tests/cursor_test.cc).
//
// Two implementations sit behind the interface. Materialized-backed
// cursors (kEnumerate, kMtjnt, kDiscover, kBanks, and degenerate
// one-keyword kStream) run the method to completion on Open and slice
// pages from the ranked buffer. The streaming cursor (two-keyword kStream)
// is genuinely lazy: it owns a ConnectionStream (core/topk.h) and pulls,
// analyses and settles candidates only as pages are requested — Next(n)
// extends the settled-k predicate page-wise to the first
// `returned + n` rank positions, so fetching page 1 of a top-10 query does
// strictly less expansion work than settling all ten, which does strictly
// less than draining (asserted at 100x by tests and bench_stream).
// `Stats().expansions` accumulates across pages; non-length-monotone
// rankers (RankerMonotonicity == kNone) fall back to a full drain on the
// first pull, exactly like the legacy streaming search did.

#ifndef CLAKS_CORE_CURSOR_H_
#define CLAKS_CORE_CURSOR_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_spec.h"

namespace claks {

/// Point-in-time progress of one cursor.
struct CursorStats {
  /// Hits handed out by Next so far.
  size_t returned = 0;
  /// Work metric so far: ConnectionStream expansions for streaming
  /// cursors, the method's work count (e.g. BANKS visited nodes) for
  /// materialized ones. Accumulates as pages are pulled. Under
  /// intra-query sharding this is the stable shard-index-order sum of
  /// `shard_expansions`.
  size_t expansions = 0;
  /// Per-shard expansion counters (streaming cursor with
  /// SearchOptions::shards > 1; empty otherwise). Index = shard id.
  std::vector<size_t> shard_expansions;
  /// True when every hit of the result space has been handed out.
  bool drained = false;
  /// Stage times and work counters accumulated so far, set when the
  /// query ran with SearchOptions::profile (observability/profile.h).
  std::optional<QueryProfile> profile;
};

/// One consumer's view of a prepared query's ranked result sequence.
///
/// Thread-safety: a cursor is single-consumer — calls on one cursor must
/// be externally serialized. Distinct cursors over the same PreparedQuery
/// (or the same engine) are independent and may be pulled concurrently
/// from different threads on a warmed engine; cursors never mutate the
/// engine or the snapshot they read.
class ResultCursor {
 public:
  virtual ~ResultCursor() = default;

  /// Returns the next `n` hits in rank order (fewer when the result space
  /// ends first, empty at the end; n == 0 yields empty without work).
  /// Hits arrive exactly in the order a single Search call would have
  /// ranked them, and the concatenation of all pages — for any page-size
  /// schedule — is that full sequence.
  virtual Result<std::vector<SearchHit>> Next(size_t n) = 0;

  /// True once the full result sequence has been handed out. A cursor
  /// whose underlying size is unknown (streaming) learns this on the Next
  /// call that crosses the end.
  virtual bool Drained() const = 0;

  virtual CursorStats Stats() const = 0;
};

/// Grouping key for SearchOptions::per_endpoint_limit. Path-shaped hits
/// group by their unordered endpoint pair; non-path trees group by their
/// full sorted keyword-tuple set — two distinct trees sharing only the
/// min/max ids of their sorted node lists must not collide. Shared by the
/// engine's rank/group/truncate tail and the streaming cursor's
/// incremental grouping.
std::vector<uint64_t> EndpointGroupKey(
    const SearchHit& hit, const DataGraph& graph,
    const std::map<TupleId, std::string>& keyword_of);

/// Canonical tree form of a data-graph path: sorted node ids + sorted edge
/// indices. Every engine path (enumerate, stream, cursors) builds hits
/// through this helper, so results stay structurally identical by
/// construction.
TupleTree CanonicalTree(const NodePath& path);

}  // namespace claks

#endif  // CLAKS_CORE_CURSOR_H_
