// Copyright 2026 The claks Authors.

#include "core/shard.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"
#include "observability/trace.h"

namespace claks {

uint32_t ShardOfNode(uint32_t node, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // splitmix32 finalizer: full-avalanche integer hash, so consecutive
  // dense ids (one table's tuples) spread uniformly across shards.
  uint32_t x = node;
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return static_cast<uint32_t>(x % num_shards);
}

uint32_t ShardOfEdge(const DataGraph& graph, uint32_t edge_index,
                     size_t num_shards) {
  return ShardOfNode(graph.NodeOf(graph.edge(edge_index).from), num_shards);
}

size_t EffectiveShards(size_t requested) {
  return requested == 0 ? 1 : requested;
}

ShardPartition MakeShardPartition(const DataGraph& graph,
                                  size_t num_shards) {
  num_shards = EffectiveShards(num_shards);
  ShardPartition partition;
  partition.num_shards = num_shards;
  partition.shard_of_node.reserve(graph.node_id_bound());
  partition.node_counts.assign(num_shards, 0);
  partition.edge_counts.assign(num_shards, 0);
  // Node ids are slack-gapped: the lookup table covers the whole id space
  // but only real row slots count toward the balance stats.
  for (uint32_t node = 0; node < graph.node_id_bound(); ++node) {
    uint32_t shard = ShardOfNode(node, num_shards);
    partition.shard_of_node.push_back(shard);
    if (graph.IsNode(node)) ++partition.node_counts[shard];
  }
  for (uint32_t edge : graph.EdgeIds()) {
    ++partition.edge_counts[ShardOfEdge(graph, edge, num_shards)];
  }
  return partition;
}

namespace {

size_t IntraQueryThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 16);
}

/// Emissions a fill task pulls ahead per shard per round. Bounds how
/// much analysed-but-never-emitted work a settling query can waste (at
/// most this many per shard) while giving shard tasks enough work to
/// overlap.
constexpr size_t kPrefetchBatch = 8;

// Scatter-gather counters (catalog: docs/OBSERVABILITY.md): how often
// the merge scheduled fill tasks, emitted, and paused shards at a
// settle bound.
CLAKS_METRIC_COUNTER(g_shard_fills, "claks_shard_fill_tasks_total",
                     "Shard fill tasks scheduled by the scatter half");
CLAKS_METRIC_COUNTER(g_shard_merges, "claks_shard_merge_emissions_total",
                     "Emissions handed out by the gather-side merge");
CLAKS_METRIC_COUNTER(g_shard_pauses, "claks_shard_pauses_total",
                     "Shard streams paused at a settle bound (not drained)");

}  // namespace

ShardContext::ShardContext()
    : pool_(IntraQueryThreads(), /*queue_capacity=*/1024) {}

void RunAndWait(ThreadPool* pool,
                std::vector<std::function<void()>> tasks) {
  CLAKS_CHECK(pool != nullptr);
  struct Rendezvous {
    Mutex mutex;
    std::condition_variable done;
    size_t outstanding CLAKS_GUARDED_BY(mutex) = 0;
  };
  Rendezvous rendezvous;
  {
    MutexLock lock(&rendezvous.mutex);
    rendezvous.outstanding = tasks.size();
  }
  for (std::function<void()>& task : tasks) {
    pool->Submit([&rendezvous, task = std::move(task)] {
      task();
      MutexLock lock(&rendezvous.mutex);
      if (--rendezvous.outstanding == 0) rendezvous.done.notify_all();
    });
  }
  MutexLock lock(&rendezvous.mutex);
  while (rendezvous.outstanding != 0) rendezvous.done.wait(lock.native());
}

RankedSeedSets RankSeedSets(const std::vector<uint32_t>& side_a,
                            const std::vector<uint32_t>& side_b) {
  // Mirror of ConnectionStream::AddLane's numbering: dedup each side
  // preserving order, ranks contiguous across sides (A first).
  RankedSeedSets sets;
  uint64_t rank = 0;
  std::set<uint32_t> seen_a;
  for (uint32_t node : side_a) {
    if (seen_a.insert(node).second) {
      sets.side_a.push_back(RankedSeed{node, rank++});
    }
  }
  std::set<uint32_t> seen_b;
  for (uint32_t node : side_b) {
    if (seen_b.insert(node).second) {
      sets.side_b.push_back(RankedSeed{node, rank++});
    }
  }
  return sets;
}

ShardedStreamSource::ShardedStreamSource(
    const DataGraph* graph, const std::vector<uint32_t>& side_a,
    const std::vector<uint32_t>& side_b, size_t max_edges,
    size_t num_shards, ThreadPool* pool, AnalyzeFn analyze)
    : graph_(graph), pool_(pool), analyze_(std::move(analyze)) {
  CLAKS_CHECK(graph_ != nullptr);
  CLAKS_CHECK(pool_ != nullptr);
  num_shards = EffectiveShards(num_shards);
  shards_.reserve(num_shards);
  RankedSeedSets ranked = RankSeedSets(side_a, side_b);
  for (size_t s = 0; s < num_shards; ++s) {
    RankedLane lane_a;
    lane_a.targets = side_b;
    for (const RankedSeed& seed : ranked.side_a) {
      if (ShardOfNode(seed.node, num_shards) == s) {
        lane_a.seeds.push_back(seed);
      }
    }
    RankedLane lane_b;
    lane_b.targets = side_a;
    for (const RankedSeed& seed : ranked.side_b) {
      if (ShardOfNode(seed.node, num_shards) == s) {
        lane_b.seeds.push_back(seed);
      }
    }
    Shard shard;
    shard.stream = std::make_unique<ConnectionStream>(
        ConnectionStream::BidirectionalRanked(
            graph_, std::move(lane_a), std::move(lane_b), max_edges));
    shard.exhausted = !shard.stream->PendingLength().has_value();
    shards_.push_back(std::move(shard));
  }
}

void ShardedStreamSource::FillAll(size_t stop_length) {
  // No tasks are outstanding here (Next only runs after the previous
  // rendezvous), so the scan reads shard state without the lock.
  std::vector<size_t> to_fill;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    if (shard.exhausted || !shard.buffer.empty()) continue;
    if (shard.paused && shard.paused_at == stop_length) continue;
    to_fill.push_back(i);
  }
  if (to_fill.empty()) return;
  g_shard_fills.Inc(to_fill.size());
  {
    MutexLock lock(&mutex_);
    outstanding_ += to_fill.size();
  }
  // Captured on the consumer thread: fill spans on the pool threads
  // parent under the consumer's current span (the page's stream span),
  // so the trace shows which page each shard worked for.
  TraceContext trace_context = TraceSpan::Capture();
  for (size_t i : to_fill) {
    Shard* shard = &shards_[i];
    pool_->Submit([this, shard, stop_length, trace_context,
                   shard_index = i] {
      TraceSpan fill_span(trace_context, "shard-fill");
      fill_span.SetArg("shard", shard_index);
      std::deque<Emission> got;
      Status status = Status::OK();
      while (got.size() < kPrefetchBatch) {
        std::optional<KeyedPath> keyed =
            shard->stream->NextKeyedPath(stop_length);
        if (!keyed.has_value()) break;
        Result<SearchHit> hit = analyze_(keyed->path);
        if (!hit.ok()) {
          status = hit.status();
          break;
        }
        got.push_back(
            Emission{std::move(*keyed), std::move(hit).ValueUnsafe()});
      }
      bool exhausted = !shard->stream->PendingLength().has_value();
      if (got.empty() && !exhausted) g_shard_pauses.Inc();
      size_t expansions = shard->stream->expansions();
      MutexLock lock(&mutex_);
      shard->exhausted = exhausted;
      shard->paused = got.empty() && !exhausted;
      shard->paused_at = stop_length;
      shard->buffer = std::move(got);
      shard->expansions = expansions;
      if (!status.ok() && fill_status_.ok()) fill_status_ = status;
      if (--outstanding_ == 0) fills_done_.notify_all();
    });
  }
  MutexLock lock(&mutex_);
  while (outstanding_ != 0) fills_done_.wait(lock.native());
}

Result<std::optional<ShardedStreamSource::Emission>>
ShardedStreamSource::Next(size_t stop_length) {
  last_stop_ = stop_length;
  while (true) {
    FillAll(stop_length);
    {
      // No fill task is outstanding after FillAll, but the error slot is
      // a guarded field — read it under its lock.
      MutexLock lock(&mutex_);
      if (!fill_status_.ok()) return fill_status_;
    }
    // Gather: the minimal buffered (length, seed_rank) head is the
    // globally next emission. Shards never share a seed, so the key has
    // no cross-shard ties; a shard with an empty buffer is exhausted or
    // paused at the bound, and a paused shard's next emission has
    // length >= stop_length — it can never outrank a live head.
    size_t best = shards_.size();
    for (size_t i = 0; i < shards_.size(); ++i) {
      const std::deque<Emission>& buffer = shards_[i].buffer;
      if (buffer.empty()) continue;
      if (best == shards_.size() ||
          std::make_pair(buffer.front().keyed.length,
                         buffer.front().keyed.seed_rank) <
              std::make_pair(shards_[best].buffer.front().keyed.length,
                             shards_[best].buffer.front().keyed.seed_rank)) {
        best = i;
      }
    }
    if (best == shards_.size()) return std::optional<Emission>(std::nullopt);
    if (shards_[best].buffer.front().keyed.length >= stop_length) {
      // Every head sits at or past the bound: globally paused, buffers
      // intact for the next (possibly larger) bound.
      return std::optional<Emission>(std::nullopt);
    }
    Emission emission = std::move(shards_[best].buffer.front());
    shards_[best].buffer.pop_front();
    // Cross-shard dedup in merge order (same canonical form as the
    // stream's own MarkEmitted): the first arrival wins — the same
    // representative the unsharded stream keeps, because merge order
    // equals unsharded order.
    std::vector<uint32_t> nodes = emission.keyed.path.Nodes();
    std::sort(nodes.begin(), nodes.end());
    std::vector<uint32_t> edges;
    edges.reserve(emission.keyed.path.steps.size());
    for (const DataAdjacency& step : emission.keyed.path.steps) {
      edges.push_back(step.edge_index);
    }
    std::sort(edges.begin(), edges.end());
    if (!emitted_.insert({std::move(nodes), std::move(edges)}).second) {
      continue;  // duplicate; the drained shard refills next round
    }
    g_shard_merges.Inc();
    return std::optional<Emission>(std::move(emission));
  }
}

std::optional<size_t> ShardedStreamSource::PendingLength() const {
  std::optional<size_t> min;
  for (const Shard& shard : shards_) {
    std::optional<size_t> candidate;
    if (!shard.buffer.empty()) {
      candidate = shard.buffer.front().keyed.length;
    } else if (!shard.exhausted) {
      candidate = shard.stream->PendingLength();
    } else {
      // Knowledge-horizon parity with the unsharded stream. A prefetch
      // batch may have run under a stale (larger) stop bound and drained
      // this shard's stream to physical exhaustion, popping frontiers at
      // or past the bound the caller last paused at — frontiers the
      // unsharded stream, pulled one emission at a time under the
      // tightened bound, would still hold in its queue. Report them as
      // pending at the pause bound (a valid lower bound: they are at
      // least that long), so the streaming cursor learns exhaustion on
      // exactly the same Next call as the single-stream path and page
      // boundaries stay byte-identical. Pop order is length-
      // nondecreasing, so MaxPoppedLength is a complete record.
      std::optional<size_t> max_popped = shard.stream->MaxPoppedLength();
      if (max_popped.has_value() && *max_popped >= last_stop_) {
        candidate = last_stop_;
      }
    }
    if (candidate.has_value() && (!min.has_value() || *candidate < *min)) {
      min = candidate;
    }
  }
  return min;
}

size_t ShardedStreamSource::TotalExpansions() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.expansions;
  return total;
}

std::vector<size_t> ShardedStreamSource::ShardExpansions() const {
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const Shard& shard : shards_) counts.push_back(shard.expansions);
  return counts;
}

SkewSummary ShardedStreamSource::WorkSkew() const {
  return ComputeSkew(ShardExpansions());
}

Result<std::vector<SearchHit>> AnalyzeTreesParallel(
    const KeywordSearchEngine& engine, const std::vector<TupleTree>& trees,
    const std::vector<KeywordMatches>& matches,
    const std::map<TupleId, std::string>& keyword_of,
    const SearchOptions& options, ThreadPool* pool) {
  CLAKS_CHECK(pool != nullptr);
  std::vector<std::optional<SearchHit>> slots(trees.size());
  std::vector<Status> statuses(trees.size());
  // Strided chunks keep neighbours (similar lengths, similar analysis
  // cost) spread across tasks; slots preserve input order regardless of
  // completion order.
  size_t chunks = std::min(trees.size(), pool->num_threads() * 4);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    tasks.push_back([&, c] {
      for (size_t i = c; i < trees.size(); i += chunks) {
        Result<SearchHit> hit =
            engine.AnalyzeTree(trees[i], matches, keyword_of, options);
        if (hit.ok()) {
          slots[i] = std::move(hit).ValueUnsafe();
        } else {
          statuses[i] = hit.status();
        }
      }
    });
  }
  RunAndWait(pool, std::move(tasks));
  for (size_t i = 0; i < trees.size(); ++i) {
    CLAKS_RETURN_NOT_OK(statuses[i]);
  }
  std::vector<SearchHit> hits;
  hits.reserve(slots.size());
  for (std::optional<SearchHit>& slot : slots) {
    hits.push_back(std::move(*slot));
  }
  return hits;
}

}  // namespace claks
