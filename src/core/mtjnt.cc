// Copyright 2026 The claks Authors.

#include "core/mtjnt.h"

#include <algorithm>
#include <deque>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

std::vector<uint32_t> TupleTree::Leaves(const DataGraph& graph) const {
  std::map<uint32_t, size_t> degree;
  for (uint32_t node : nodes) degree[node] = 0;
  for (uint32_t e : edge_indices) {
    const DataEdge& edge = graph.edge(e);
    ++degree[graph.NodeOf(edge.from)];
    ++degree[graph.NodeOf(edge.to)];
  }
  std::vector<uint32_t> out;
  for (const auto& [node, d] : degree) {
    if (d <= 1) out.push_back(node);
  }
  return out;
}

bool TupleTree::IsPath(const DataGraph& graph) const {
  if (nodes.size() <= 2) return true;
  std::map<uint32_t, size_t> degree;
  for (uint32_t e : edge_indices) {
    const DataEdge& edge = graph.edge(e);
    ++degree[graph.NodeOf(edge.from)];
    ++degree[graph.NodeOf(edge.to)];
  }
  size_t endpoints = 0;
  for (const auto& [node, d] : degree) {
    if (d == 1) ++endpoints;
    if (d > 2) return false;
  }
  return endpoints == 2;
}

Connection TupleTree::ToConnection(const DataGraph& graph) const {
  CLAKS_CHECK(IsPath(graph));
  if (nodes.size() == 1) {
    return Connection({graph.TupleOf(nodes[0])}, {});
  }
  // Build intra-tree adjacency.
  std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> adjacency;
  for (uint32_t e : edge_indices) {
    const DataEdge& edge = graph.edge(e);
    uint32_t a = graph.NodeOf(edge.from);
    uint32_t b = graph.NodeOf(edge.to);
    adjacency[a].emplace_back(b, e);
    adjacency[b].emplace_back(a, e);
  }
  uint32_t start = UINT32_MAX;
  for (const auto& [node, neigh] : adjacency) {
    if (neigh.size() == 1 && node < start) start = node;
  }
  CLAKS_CHECK_NE(start, UINT32_MAX);

  std::vector<TupleId> tuples{graph.TupleOf(start)};
  std::vector<ConnectionEdge> edges;
  uint32_t prev = UINT32_MAX;
  uint32_t cur = start;
  while (tuples.size() < nodes.size()) {
    for (const auto& [next, e] : adjacency[cur]) {
      if (next == prev) continue;
      const DataEdge& edge = graph.edge(e);
      bool along_fk = graph.NodeOf(edge.from) == cur;
      edges.push_back(ConnectionEdge{edge.fk_index, along_fk});
      tuples.push_back(graph.TupleOf(next));
      prev = cur;
      cur = next;
      break;
    }
  }
  return Connection(std::move(tuples), std::move(edges));
}

std::string TupleTree::ToString(const DataGraph& graph) const {
  std::string out = "{";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += graph.database().TupleLabel(graph.TupleOf(nodes[i]));
  }
  out += "}";
  return out;
}

std::map<TupleId, uint32_t> ComputeKeywordMasks(
    const std::vector<KeywordMatches>& matches) {
  std::map<TupleId, uint32_t> masks;
  for (size_t k = 0; k < matches.size(); ++k) {
    for (const TupleMatch& m : matches[k].matches) {
      masks[m.tuple] |= (1u << k);
    }
  }
  return masks;
}

namespace {

uint32_t MaskOf(const DataGraph& graph,
                const std::map<TupleId, uint32_t>& masks, uint32_t node) {
  auto it = masks.find(graph.TupleOf(node));
  return it == masks.end() ? 0u : it->second;
}

uint32_t FullMask(uint32_t num_keywords) {
  CLAKS_CHECK_LE(num_keywords, 31u);
  return (1u << num_keywords) - 1u;
}

uint32_t UnionMask(const DataGraph& graph,
                   const std::map<TupleId, uint32_t>& masks,
                   const std::vector<uint32_t>& nodes,
                   uint32_t excluded = UINT32_MAX) {
  uint32_t acc = 0;
  for (uint32_t node : nodes) {
    if (node == excluded) continue;
    acc |= MaskOf(graph, masks, node);
  }
  return acc;
}

}  // namespace

bool IsTotal(const DataGraph& graph, const TupleTree& tree,
             const std::map<TupleId, uint32_t>& masks,
             uint32_t num_keywords) {
  return UnionMask(graph, masks, tree.nodes) == FullMask(num_keywords);
}

bool IsMinimalTotal(const DataGraph& graph, const TupleTree& tree,
                    const std::map<TupleId, uint32_t>& masks,
                    uint32_t num_keywords) {
  if (!IsTotal(graph, tree, masks, num_keywords)) return false;
  uint32_t full = FullMask(num_keywords);
  for (uint32_t leaf : tree.Leaves(graph)) {
    if (tree.nodes.size() == 1) {
      // Removing the only node always breaks totality (k >= 1).
      return num_keywords > 0;
    }
    if (UnionMask(graph, masks, tree.nodes, leaf) == full) return false;
  }
  return true;
}

namespace {

struct GrowState {
  const DataGraph* graph;
  const std::map<TupleId, uint32_t>* masks;
  uint32_t num_keywords;
  size_t tmax;
  std::set<std::vector<uint32_t>> visited;  // canonical partial keys
  std::set<TupleTree> results;

  void Grow(std::set<uint32_t>* nodes, std::set<uint32_t>* edges) {
    std::vector<uint32_t> key;
    if (edges->empty()) {
      key.push_back(0x80000000u | *nodes->begin());
    } else {
      key.assign(edges->begin(), edges->end());
    }
    if (!visited.insert(key).second) return;

    TupleTree tree;
    tree.nodes.assign(nodes->begin(), nodes->end());
    tree.edge_indices.assign(edges->begin(), edges->end());
    if (IsMinimalTotal(*graph, tree, *masks, num_keywords)) {
      results.insert(tree);
    }
    if (nodes->size() >= tmax) return;

    // Expand by one frontier edge. Copy the node list to keep iteration
    // stable while mutating the sets.
    std::vector<uint32_t> current(nodes->begin(), nodes->end());
    for (uint32_t node : current) {
      for (const DataAdjacency& adj : graph->Neighbors(node)) {
        if (nodes->count(adj.neighbor) > 0) continue;  // no cycles
        nodes->insert(adj.neighbor);
        edges->insert(adj.edge_index);
        Grow(nodes, edges);
        edges->erase(adj.edge_index);
        nodes->erase(adj.neighbor);
      }
    }
  }
};

}  // namespace

std::vector<TupleTree> EnumerateMtjnt(
    const DataGraph& graph, const std::vector<KeywordMatches>& matches,
    size_t tmax) {
  if (matches.empty() || !AllKeywordsMatched(matches)) return {};
  auto masks = ComputeKeywordMasks(matches);
  GrowState state{&graph, &masks, static_cast<uint32_t>(matches.size()),
                  tmax,   {},     {}};
  // Every total tree contains a tuple matching keyword 0; seed from those.
  for (const TupleMatch& m : matches[0].matches) {
    std::set<uint32_t> nodes{graph.NodeOf(m.tuple)};
    std::set<uint32_t> edges;
    state.Grow(&nodes, &edges);
  }
  return std::vector<TupleTree>(state.results.begin(), state.results.end());
}

// ---------------------------------------------------------------------------
// Candidate networks
// ---------------------------------------------------------------------------

namespace {

// AHU-style canonical encoding of the CN rooted at `root`.
std::string EncodeRooted(const CandidateNetwork& cn, uint32_t root,
                         uint32_t parent_edge) {
  std::vector<std::string> children;
  for (uint32_t e = 0; e < cn.edges.size(); ++e) {
    if (e == parent_edge) continue;
    const CandidateNetwork::Edge& edge = cn.edges[e];
    uint32_t child = UINT32_MAX;
    bool root_is_a = false;
    if (edge.a == root) {
      child = edge.b;
      root_is_a = true;
    } else if (edge.b == root) {
      child = edge.a;
    } else {
      continue;
    }
    // Edge label as seen from root: fk index plus which side references.
    bool child_is_referencing = root_is_a ? !edge.a_is_referencing
                                          : edge.a_is_referencing;
    std::string label = StrFormat("[%u%c", edge.fk_index,
                                  child_is_referencing ? '<' : '>');
    children.push_back(label + EncodeRooted(cn, child, e) + "]");
  }
  std::sort(children.begin(), children.end());
  std::string out = StrFormat("(%u;%u", cn.nodes[root].table,
                              cn.nodes[root].keyword_mask);
  for (const std::string& child : children) out += child;
  out += ")";
  return out;
}

}  // namespace

std::string CandidateNetwork::Canonical() const {
  std::string best;
  for (uint32_t root = 0; root < nodes.size(); ++root) {
    std::string enc = EncodeRooted(*this, root, UINT32_MAX);
    if (best.empty() || enc < best) best = enc;
  }
  return best;
}

std::string CandidateNetwork::ToString(
    const Database& db, const std::vector<std::string>& keywords) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += " ";
    out += db.table(nodes[i].table).name() + "^{";
    bool first = true;
    for (size_t k = 0; k < keywords.size(); ++k) {
      if (nodes[i].keyword_mask & (1u << k)) {
        if (!first) out += ",";
        out += keywords[k];
        first = false;
      }
    }
    out += "}";
  }
  out += " |";
  for (const Edge& edge : edges) {
    out += StrFormat(" %u%s%u", edge.a, edge.a_is_referencing ? "->" : "<-",
                     edge.b);
  }
  return out;
}

namespace {

struct CnGenState {
  const SchemaGraph* schema_graph;
  const std::vector<std::vector<uint32_t>>* masks_per_table;
  uint32_t full_mask;
  size_t tmax;
  std::set<std::string> visited;
  std::vector<CandidateNetwork> accepted;
  std::set<std::string> accepted_keys;

  uint32_t MaskUnion(const CandidateNetwork& cn, uint32_t excluded_node) {
    uint32_t acc = 0;
    for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
      if (i == excluded_node) continue;
      acc |= cn.nodes[i].keyword_mask;
    }
    return acc;
  }

  // Degree of node i within the CN tree.
  size_t Degree(const CandidateNetwork& cn, uint32_t i) {
    size_t d = 0;
    for (const auto& edge : cn.edges) {
      if (edge.a == i || edge.b == i) ++d;
    }
    return d;
  }

  bool Acceptable(const CandidateNetwork& cn) {
    if (MaskUnion(cn, UINT32_MAX) != full_mask) return false;
    for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
      if (Degree(cn, i) <= 1) {
        if (cn.nodes[i].keyword_mask == 0) return false;  // free leaf
        if (MaskUnion(cn, i) == full_mask) return false;  // redundant leaf
      }
    }
    return true;
  }

  void Expand(CandidateNetwork* cn) {
    std::string key = cn->Canonical();
    if (!visited.insert(key).second) return;

    if (Acceptable(*cn) && accepted_keys.insert(key).second) {
      accepted.push_back(*cn);
    }
    if (cn->size() >= tmax) return;

    // Prune: each free leaf needs at least one more node.
    size_t free_leaves = 0;
    for (uint32_t i = 0; i < cn->nodes.size(); ++i) {
      if (Degree(*cn, i) <= 1 && cn->nodes[i].keyword_mask == 0) {
        ++free_leaves;
      }
    }
    if (free_leaves > tmax - cn->size()) return;

    size_t node_count = cn->nodes.size();
    for (uint32_t i = 0; i < node_count; ++i) {
      uint32_t table = cn->nodes[i].table;
      for (const SchemaAdjacency& adj : schema_graph->Neighbors(table)) {
        const SchemaEdge& sedge = schema_graph->edges()[adj.edge_index];
        std::vector<uint32_t> candidate_masks{0};
        for (uint32_t m : (*masks_per_table)[adj.neighbor]) {
          candidate_masks.push_back(m);
        }
        for (uint32_t mask : candidate_masks) {
          cn->nodes.push_back(CnNode{adj.neighbor, mask});
          CandidateNetwork::Edge edge;
          edge.a = i;
          edge.b = static_cast<uint32_t>(cn->nodes.size() - 1);
          edge.fk_index = sedge.fk_index;
          edge.a_is_referencing = adj.along_fk;
          cn->edges.push_back(edge);
          Expand(cn);
          cn->edges.pop_back();
          cn->nodes.pop_back();
        }
      }
    }
  }
};

}  // namespace

std::vector<CandidateNetwork> GenerateCandidateNetworks(
    const SchemaGraph& schema_graph,
    const std::vector<std::vector<uint32_t>>& masks_per_table,
    uint32_t num_keywords, size_t tmax) {
  CLAKS_CHECK_EQ(masks_per_table.size(), schema_graph.num_tables());
  CnGenState state{&schema_graph, &masks_per_table,
                   FullMask(num_keywords), tmax, {}, {}, {}};
  for (uint32_t t = 0; t < masks_per_table.size(); ++t) {
    for (uint32_t mask : masks_per_table[t]) {
      CandidateNetwork cn;
      cn.nodes.push_back(CnNode{t, mask});
      state.Expand(&cn);
    }
  }
  return std::move(state.accepted);
}

namespace {

// BFS order over CN nodes from node 0 so each node after the first has a
// CN edge (`via_edge`) to an already-placed node.
void OrderCnNodes(const CandidateNetwork& cn, std::vector<uint32_t>* order,
                  std::vector<std::optional<uint32_t>>* via_edge) {
  order->assign(1, 0);
  via_edge->assign(cn.nodes.size(), std::nullopt);
  std::vector<bool> placed(cn.nodes.size(), false);
  placed[0] = true;
  while (order->size() < cn.nodes.size()) {
    bool progressed = false;
    for (uint32_t e = 0; e < cn.edges.size(); ++e) {
      const auto& edge = cn.edges[e];
      if (placed[edge.a] && !placed[edge.b]) {
        placed[edge.b] = true;
        (*via_edge)[edge.b] = e;
        order->push_back(edge.b);
        progressed = true;
      } else if (placed[edge.b] && !placed[edge.a]) {
        placed[edge.a] = true;
        (*via_edge)[edge.a] = e;
        order->push_back(edge.a);
        progressed = true;
      }
    }
    CLAKS_CHECK(progressed);  // CN must be connected
  }
}

// Mask of one tuple under the query (0 for keyword-free tuples).
uint32_t TupleMask(const std::map<TupleId, uint32_t>& masks, TupleId id) {
  auto it = masks.find(id);
  return it == masks.end() ? 0u : it->second;
}

// The seed nested-loop evaluation: candidate tuple sets built by scanning
// every CN node's table, join steps answered by filtering the anchor's
// adjacency, membership checked with linear find.
std::vector<TupleTree> EvaluateCandidateNetworkScan(
    const DataGraph& graph, const CandidateNetwork& cn,
    const std::map<TupleId, uint32_t>& masks, uint32_t num_keywords) {
  const Database& db = graph.database();
  // Candidate tuples per CN node.
  std::vector<std::vector<uint32_t>> candidates(cn.nodes.size());
  for (size_t i = 0; i < cn.nodes.size(); ++i) {
    const CnNode& node = cn.nodes[i];
    const Table& table = db.table(node.table);
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      if (table.IsDeleted(r)) continue;  // mask 0 would match tombstones
      TupleId id{node.table, r};
      if (TupleMask(masks, id) == node.keyword_mask) {
        candidates[i].push_back(graph.NodeOf(id));
      }
    }
  }

  std::vector<uint32_t> order;
  std::vector<std::optional<uint32_t>> via_edge;
  OrderCnNodes(cn, &order, &via_edge);

  std::set<TupleTree> results;
  std::vector<uint32_t> assignment(cn.nodes.size(), UINT32_MAX);
  std::vector<uint32_t> used_edges;

  std::function<void(size_t)> assign = [&](size_t pos) {
    if (pos == order.size()) {
      TupleTree tree;
      tree.nodes = assignment;
      std::sort(tree.nodes.begin(), tree.nodes.end());
      tree.edge_indices = used_edges;
      std::sort(tree.edge_indices.begin(), tree.edge_indices.end());
      if (IsMinimalTotal(graph, tree, masks, num_keywords)) {
        results.insert(std::move(tree));
      }
      return;
    }
    uint32_t cn_node = order[pos];
    if (pos == 0) {
      for (uint32_t tuple_node : candidates[cn_node]) {
        assignment[cn_node] = tuple_node;
        assign(pos + 1);
        assignment[cn_node] = UINT32_MAX;
      }
      return;
    }
    const auto& edge = cn.edges[*via_edge[cn_node]];
    uint32_t other_cn = edge.a == cn_node ? edge.b : edge.a;
    bool this_is_a = edge.a == cn_node;
    bool this_referencing =
        this_is_a ? edge.a_is_referencing : !edge.a_is_referencing;
    uint32_t anchor = assignment[other_cn];
    for (const DataAdjacency& adj : graph.Neighbors(anchor)) {
      // adj.along_fk: anchor is the referencing side of this data edge.
      bool neighbor_referencing = !adj.along_fk;
      if (neighbor_referencing != this_referencing) continue;
      const DataEdge& dedge = graph.edge(adj.edge_index);
      if (dedge.fk_index != edge.fk_index) continue;
      // Membership in the CN node's tuple set.
      if (std::find(candidates[cn_node].begin(), candidates[cn_node].end(),
                    adj.neighbor) == candidates[cn_node].end()) {
        continue;
      }
      // Distinct tuples across the network.
      if (std::find(assignment.begin(), assignment.end(), adj.neighbor) !=
          assignment.end()) {
        continue;
      }
      assignment[cn_node] = adj.neighbor;
      used_edges.push_back(adj.edge_index);
      assign(pos + 1);
      used_edges.pop_back();
      assignment[cn_node] = UINT32_MAX;
    }
  };
  assign(0);

  return std::vector<TupleTree>(results.begin(), results.end());
}

// Join-index evaluation. The root's candidate set comes from the (small)
// mask map, never from a table scan; each join step resolves through a
// per-CN-edge FkJoinIndex probe hoisted out of the recursion, and
// tuple-set membership is a mask comparison instead of a candidate-list
// find.
std::vector<TupleTree> EvaluateCandidateNetworkIndexed(
    const DataGraph& graph, const CandidateNetwork& cn,
    const std::map<TupleId, uint32_t>& masks, uint32_t num_keywords) {
  const Database& db = graph.database();
  // Join index per CN edge, resolved once so the recursion below pays a
  // plain array access per probe (JoinIndex re-checks cache freshness on
  // every call). The referencing side's table + FK identify the index.
  std::vector<const FkJoinIndex*> edge_indexes(cn.edges.size());
  for (uint32_t e = 0; e < cn.edges.size(); ++e) {
    const CandidateNetwork::Edge& edge = cn.edges[e];
    uint32_t referencing_table = edge.a_is_referencing
                                     ? cn.nodes[edge.a].table
                                     : cn.nodes[edge.b].table;
    edge_indexes[e] = &db.JoinIndex(referencing_table, edge.fk_index);
  }

  // Candidate node list for the root only (the other nodes are reached
  // through join probes). masks iterates in TupleId order, so the list is
  // ascending.
  std::vector<uint32_t> root_candidates;
  for (const auto& [id, mask] : masks) {
    if (cn.nodes[0].keyword_mask != 0 && cn.nodes[0].table == id.table &&
        cn.nodes[0].keyword_mask == mask) {
      root_candidates.push_back(graph.NodeOf(id));
    }
  }

  // Membership in CN node i's tuple set (R^S partition semantics).
  auto member_of = [&](uint32_t i, uint32_t tuple_node) {
    const CnNode& node = cn.nodes[i];
    TupleId id = graph.TupleOf(tuple_node);
    return id.table == node.table &&
           TupleMask(masks, id) == node.keyword_mask;
  };

  std::vector<uint32_t> order;
  std::vector<std::optional<uint32_t>> via_edge;
  OrderCnNodes(cn, &order, &via_edge);

  std::set<TupleTree> results;
  std::vector<uint32_t> assignment(cn.nodes.size(), UINT32_MAX);
  std::vector<uint32_t> used_edges;

  std::function<void(size_t)> assign = [&](size_t pos) {
    if (pos == order.size()) {
      TupleTree tree;
      tree.nodes = assignment;
      std::sort(tree.nodes.begin(), tree.nodes.end());
      tree.edge_indices = used_edges;
      std::sort(tree.edge_indices.begin(), tree.edge_indices.end());
      if (IsMinimalTotal(graph, tree, masks, num_keywords)) {
        results.insert(std::move(tree));
      }
      return;
    }
    uint32_t cn_node = order[pos];
    if (pos == 0) {
      // CN generation seeds node 0 from a keyword tuple set, so its
      // candidates are indexed; fall back to a scan only for a (never
      // generated) free root.
      if (cn.nodes[0].keyword_mask == 0) {
        const Table& table = db.table(cn.nodes[0].table);
        for (uint32_t r = 0; r < table.num_rows(); ++r) {
          if (table.IsDeleted(r)) continue;
          uint32_t tuple_node = graph.NodeOf(TupleId{cn.nodes[0].table, r});
          if (!member_of(0, tuple_node)) continue;
          assignment[cn_node] = tuple_node;
          assign(pos + 1);
          assignment[cn_node] = UINT32_MAX;
        }
        return;
      }
      for (uint32_t tuple_node : root_candidates) {
        assignment[cn_node] = tuple_node;
        assign(pos + 1);
        assignment[cn_node] = UINT32_MAX;
      }
      return;
    }
    const auto& edge = cn.edges[*via_edge[cn_node]];
    const FkJoinIndex& join_index = *edge_indexes[*via_edge[cn_node]];
    uint32_t other_cn = edge.a == cn_node ? edge.b : edge.a;
    bool this_is_a = edge.a == cn_node;
    bool this_referencing =
        this_is_a ? edge.a_is_referencing : !edge.a_is_referencing;
    uint32_t anchor = assignment[other_cn];
    TupleId anchor_tuple = graph.TupleOf(anchor);

    auto try_assign = [&](uint32_t tuple_node, uint32_t data_edge) {
      if (!member_of(cn_node, tuple_node)) return;
      // Distinct tuples across the network.
      if (std::find(assignment.begin(), assignment.end(), tuple_node) !=
          assignment.end()) {
        return;
      }
      assignment[cn_node] = tuple_node;
      used_edges.push_back(data_edge);
      assign(pos + 1);
      used_edges.pop_back();
      assignment[cn_node] = UINT32_MAX;
    };

    if (!join_index.valid) return;
    if (this_referencing) {
      // The new node's tuples reference the anchor: walk the join index's
      // parent->children CSR.
      if (anchor_tuple.table != join_index.referenced_table) return;
      for (uint32_t child_row : join_index.Children(anchor_tuple.row)) {
        uint32_t child_node =
            graph.NodeOf(TupleId{join_index.table, child_row});
        auto data_edge = graph.OutEdge(child_node, edge.fk_index);
        CLAKS_CHECK(data_edge.has_value());  // the index resolved this FK
        try_assign(child_node, *data_edge);
      }
    } else {
      // The anchor references the new node: one child->parent probe.
      if (anchor_tuple.table != join_index.table) return;
      uint32_t parent_row = join_index.Parent(anchor_tuple.row);
      if (parent_row == FkJoinIndex::kNoParent) return;
      TupleId parent{join_index.referenced_table, parent_row};
      if (parent.table == cn.nodes[cn_node].table) {
        auto data_edge = graph.OutEdge(anchor, edge.fk_index);
        CLAKS_CHECK(data_edge.has_value());
        try_assign(graph.NodeOf(parent), *data_edge);
      }
    }
  };
  assign(0);

  return std::vector<TupleTree>(results.begin(), results.end());
}

}  // namespace

std::vector<TupleTree> EvaluateCandidateNetwork(
    const DataGraph& graph, const CandidateNetwork& cn,
    const std::map<TupleId, uint32_t>& masks, uint32_t num_keywords,
    CnEvalStrategy strategy) {
  return strategy == CnEvalStrategy::kIndexed
             ? EvaluateCandidateNetworkIndexed(graph, cn, masks,
                                               num_keywords)
             : EvaluateCandidateNetworkScan(graph, cn, masks, num_keywords);
}

std::vector<TupleTree> DiscoverMtjnt(
    const DataGraph& graph, const SchemaGraph& schema_graph,
    const std::vector<KeywordMatches>& matches, size_t tmax,
    CnEvalStrategy strategy) {
  if (matches.empty() || !AllKeywordsMatched(matches)) return {};
  auto masks = ComputeKeywordMasks(matches);
  uint32_t num_keywords = static_cast<uint32_t>(matches.size());

  std::vector<std::vector<uint32_t>> masks_per_table(
      schema_graph.num_tables());
  {
    std::vector<std::set<uint32_t>> seen(schema_graph.num_tables());
    for (const auto& [tuple, mask] : masks) {
      seen[tuple.table].insert(mask);
    }
    for (size_t t = 0; t < seen.size(); ++t) {
      masks_per_table[t].assign(seen[t].begin(), seen[t].end());
    }
  }

  auto cns = GenerateCandidateNetworks(schema_graph, masks_per_table,
                                       num_keywords, tmax);
  std::set<TupleTree> all;
  for (const CandidateNetwork& cn : cns) {
    for (TupleTree& tree : EvaluateCandidateNetwork(graph, cn, masks,
                                                    num_keywords, strategy)) {
      all.insert(std::move(tree));
    }
  }
  return std::vector<TupleTree>(all.begin(), all.end());
}

}  // namespace claks
