// Copyright 2026 The claks Authors.

#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/macros.h"

namespace claks {

std::vector<uint32_t> NodePath::Nodes() const {
  std::vector<uint32_t> out;
  out.reserve(steps.size() + 1);
  out.push_back(start);
  for (const DataAdjacency& step : steps) out.push_back(step.neighbor);
  return out;
}

std::vector<size_t> BfsDistances(const DataGraph& graph, uint32_t source) {
  return BfsDistances(graph, std::vector<uint32_t>{source});
}

std::vector<size_t> BfsDistances(const DataGraph& graph,
                                 const std::vector<uint32_t>& sources) {
  std::vector<size_t> dist(graph.node_id_bound(), SIZE_MAX);
  std::deque<uint32_t> queue;
  for (uint32_t s : sources) {
    CLAKS_CHECK_LT(s, graph.node_id_bound());
    if (dist[s] == SIZE_MAX) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop_front();
    for (const DataAdjacency& adj : graph.Neighbors(cur)) {
      if (dist[adj.neighbor] != SIZE_MAX) continue;
      dist[adj.neighbor] = dist[cur] + 1;
      queue.push_back(adj.neighbor);
    }
  }
  return dist;
}

std::optional<NodePath> ShortestPath(const DataGraph& graph, uint32_t from,
                                     uint32_t to) {
  if (from == to) return NodePath{from, {}};
  std::vector<std::optional<DataAdjacency>> parent_step(
      graph.node_id_bound());
  std::vector<uint32_t> parent(graph.node_id_bound(), UINT32_MAX);
  std::deque<uint32_t> queue{from};
  std::vector<bool> seen(graph.node_id_bound(), false);
  seen[from] = true;
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop_front();
    for (const DataAdjacency& adj : graph.Neighbors(cur)) {
      if (seen[adj.neighbor]) continue;
      seen[adj.neighbor] = true;
      parent[adj.neighbor] = cur;
      parent_step[adj.neighbor] = adj;
      if (adj.neighbor == to) {
        // Reconstruct.
        std::vector<DataAdjacency> reversed;
        uint32_t node = to;
        while (node != from) {
          reversed.push_back(*parent_step[node]);
          node = parent[node];
        }
        NodePath path{from, {}};
        path.steps.assign(reversed.rbegin(), reversed.rend());
        return path;
      }
      queue.push_back(adj.neighbor);
    }
  }
  return std::nullopt;
}

namespace {

struct PathEnumerator {
  const DataGraph& graph;
  size_t max_edges;
  size_t max_results;
  const std::unordered_set<uint32_t>* targets;
  std::vector<NodePath>* out;
  std::vector<DataAdjacency> prefix;
  std::vector<bool> on_path;
  uint32_t start = 0;

  bool Full() const {
    return max_results != 0 && out->size() >= max_results;
  }

  void Recurse(uint32_t current) {
    if (Full()) return;
    if (!prefix.empty() && targets->count(current) > 0) {
      out->push_back(NodePath{start, prefix});
      // A simple path may continue through a target only if targets can be
      // interior — for keyword search the path ends at the first matched
      // target, matching the paper's connections (endpoints carry the
      // keywords). So stop here.
      return;
    }
    if (prefix.size() >= max_edges) return;
    for (const DataAdjacency& adj : graph.Neighbors(current)) {
      if (on_path[adj.neighbor]) continue;
      on_path[adj.neighbor] = true;
      prefix.push_back(adj);
      Recurse(adj.neighbor);
      prefix.pop_back();
      on_path[adj.neighbor] = false;
      if (Full()) return;
    }
  }
};

}  // namespace

std::vector<NodePath> EnumerateSimplePaths(const DataGraph& graph,
                                           uint32_t from, uint32_t to,
                                           size_t max_edges,
                                           size_t max_results) {
  return EnumerateSimplePathsBetweenSets(graph, {from}, {to}, max_edges,
                                         max_results);
}

void AppendSimplePathsFromSource(const DataGraph& graph, uint32_t source,
                                 const std::vector<uint32_t>& targets,
                                 size_t max_edges, size_t max_results,
                                 std::vector<NodePath>* out) {
  if (max_results != 0 && out->size() >= max_results) return;
  std::unordered_set<uint32_t> target_set(targets.begin(), targets.end());
  if (target_set.count(source) > 0) {
    // A single tuple containing both keywords is a length-0 connection.
    out->push_back(NodePath{source, {}});
    return;
  }
  PathEnumerator enumerator{graph,       max_edges, max_results,
                            &target_set, out,       {},
                            std::vector<bool>(graph.node_id_bound(), false),
                            source};
  enumerator.on_path[source] = true;
  enumerator.Recurse(source);
}

std::vector<NodePath> EnumerateSimplePathsBetweenSets(
    const DataGraph& graph, const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets, size_t max_edges,
    size_t max_results) {
  std::vector<NodePath> out;
  for (uint32_t source : sources) {
    AppendSimplePathsFromSource(graph, source, targets, max_edges,
                                max_results, &out);
    if (max_results != 0 && out.size() >= max_results) break;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const NodePath& a, const NodePath& b) {
                     return a.length() < b.length();
                   });
  return out;
}

}  // namespace claks
