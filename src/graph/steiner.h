// Copyright 2026 The claks Authors.
//
// Approximate Steiner trees over the data graph. Keyword-search systems in
// the BANKS family model an answer as a Steiner tree spanning the keyword
// tuples; we provide the classic metric-closure 2-approximation as a
// baseline and for tests.
//
// Entry point: ApproximateSteinerTree over data-graph node ids (one
// terminal per keyword tuple). The BFS metric closure runs on the CSR
// adjacency of graph/data_graph.h; tests use the result as a size bound
// on the answer trees BANKS (graph/banks.h) produces. Uniform edge
// weights — the weighted variant would reuse BanksWeightModel.

#ifndef CLAKS_GRAPH_STEINER_H_
#define CLAKS_GRAPH_STEINER_H_

#include <optional>
#include <vector>

#include "graph/data_graph.h"

namespace claks {

/// An (approximate) Steiner tree: the spanned terminals, the tree edges and
/// the total edge count (uniform weights).
struct SteinerTree {
  std::vector<uint32_t> terminals;
  std::vector<uint32_t> edge_indices;
  size_t weight = 0;

  /// Distinct nodes touched by the tree edges plus isolated terminals.
  std::vector<uint32_t> Nodes(const DataGraph& graph) const;
};

/// Metric-closure 2-approximation: BFS metric over terminals, MST over the
/// closure, union of shortest paths, then pruning of non-terminal leaves.
/// Returns nullopt when the terminals are not all connected.
std::optional<SteinerTree> ApproximateSteinerTree(
    const DataGraph& graph, const std::vector<uint32_t>& terminals);

}  // namespace claks

#endif  // CLAKS_GRAPH_STEINER_H_
