// Copyright 2026 The claks Authors.
//
// Schema graph: one node per table, one edge per foreign key. Candidate
// network generation (DISCOVER) and path reasoning happen here.

#ifndef CLAKS_GRAPH_SCHEMA_GRAPH_H_
#define CLAKS_GRAPH_SCHEMA_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.h"

namespace claks {

/// One schema edge: table `from_table` declares FK number `fk_index`
/// referencing `to_table`.
struct SchemaEdge {
  uint32_t from_table = 0;
  uint32_t to_table = 0;
  uint32_t fk_index = 0;
};

/// Direction-aware view of a schema edge from one endpoint.
struct SchemaAdjacency {
  uint32_t edge_index = 0;
  uint32_t neighbor = 0;
  /// True when traversing the FK from referencing to referenced table.
  bool along_fk = true;
};

class SchemaGraph {
 public:
  /// Builds the graph from the database catalog. The database must outlive
  /// the graph.
  explicit SchemaGraph(const Database* db);

  const Database& database() const { return *db_; }
  size_t num_tables() const { return adjacency_.size(); }
  const std::vector<SchemaEdge>& edges() const { return edges_; }

  /// Edges incident to `table`, both directions.
  const std::vector<SchemaAdjacency>& Neighbors(uint32_t table) const;

  /// BFS distance (number of FK edges, direction ignored) between two
  /// tables; SIZE_MAX when disconnected.
  size_t Distance(uint32_t from, uint32_t to) const;

  /// All simple table paths (≤ max_edges edges) between two tables. A path
  /// is a sequence of adjacency steps; tables may repeat across different
  /// paths but not within one.
  std::vector<std::vector<SchemaAdjacency>> EnumerateTablePaths(
      uint32_t from, uint32_t to, size_t max_edges) const;

  std::string ToString() const;

 private:
  const Database* db_;
  std::vector<SchemaEdge> edges_;
  std::vector<std::vector<SchemaAdjacency>> adjacency_;
};

}  // namespace claks

#endif  // CLAKS_GRAPH_SCHEMA_GRAPH_H_
