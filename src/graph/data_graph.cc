// Copyright 2026 The claks Authors.

#include "graph/data_graph.h"

#include <algorithm>
#include <deque>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

DataGraph::DataGraph(const Database* db) : db_(db) {
  CLAKS_CHECK(db_ != nullptr);
  // Dense node ids: table-major, row-minor. table_offsets_[t] is the node
  // id of row 0 of table t, so NodeOf is arithmetic.
  table_offsets_.reserve(db_->num_tables() + 1);
  table_offsets_.push_back(0);
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    table_offsets_.push_back(
        table_offsets_.back() +
        static_cast<uint32_t>(db_->table(t).num_rows()));
    for (uint32_t r = 0; r < db_->table(t).num_rows(); ++r) {
      node_to_tuple_.push_back(TupleId{t, r});
    }
  }

  // Edges come from the join-index cache; the (table, row, fk) order means
  // edges sharing a `from` node are consecutive and ascending in fk.
  const std::vector<FkEdge>& fk_edges = db_->ResolveAllFkEdges();
  edges_.reserve(fk_edges.size());
  for (const FkEdge& fk_edge : fk_edges) {
    edges_.push_back(DataEdge{fk_edge.from, fk_edge.to, fk_edge.fk_index});
  }

  // Out-edge offsets: count per from-node, prefix-sum.
  out_edge_offsets_.assign(num_nodes() + 1, 0);
  for (const DataEdge& edge : edges_) {
    ++out_edge_offsets_[NodeOf(edge.from) + 1];
  }
  for (size_t n = 1; n < out_edge_offsets_.size(); ++n) {
    out_edge_offsets_[n] += out_edge_offsets_[n - 1];
  }

  // Undirected adjacency CSR. Two passes: degree count, then a cursor fill
  // in edge order — per-node entries end up ordered exactly as the old
  // vector-of-vectors push_back build (ascending edge index, referencing
  // side first for self-links).
  adjacency_offsets_.assign(num_nodes() + 1, 0);
  for (const DataEdge& edge : edges_) {
    ++adjacency_offsets_[NodeOf(edge.from) + 1];
    ++adjacency_offsets_[NodeOf(edge.to) + 1];
  }
  for (size_t n = 1; n < adjacency_offsets_.size(); ++n) {
    adjacency_offsets_[n] += adjacency_offsets_[n - 1];
  }
  adjacency_.resize(adjacency_offsets_.back());
  std::vector<uint32_t> cursor(adjacency_offsets_.begin(),
                               adjacency_offsets_.end() - 1);
  for (uint32_t e = 0; e < edges_.size(); ++e) {
    uint32_t from_node = NodeOf(edges_[e].from);
    uint32_t to_node = NodeOf(edges_[e].to);
    adjacency_[cursor[from_node]++] = DataAdjacency{e, to_node, true};
    adjacency_[cursor[to_node]++] = DataAdjacency{e, from_node, false};
  }
}

uint32_t DataGraph::NodeOf(TupleId tuple) const {
  // Bounds come from the offsets captured at construction, not the live
  // database: a row inserted after the build must fail fast here, not
  // alias the next table's first node.
  CLAKS_CHECK_LT(static_cast<size_t>(tuple.table) + 1,
                 table_offsets_.size());
  CLAKS_CHECK_LT(tuple.row, table_offsets_[tuple.table + 1] -
                                table_offsets_[tuple.table]);
  return table_offsets_[tuple.table] + tuple.row;
}

TupleId DataGraph::TupleOf(uint32_t node) const {
  CLAKS_CHECK_LT(node, node_to_tuple_.size());
  return node_to_tuple_[node];
}

const DataEdge& DataGraph::edge(uint32_t edge_index) const {
  CLAKS_CHECK_LT(edge_index, edges_.size());
  return edges_[edge_index];
}

Span<DataAdjacency> DataGraph::Neighbors(uint32_t node) const {
  CLAKS_CHECK_LT(node, num_nodes());
  return Span<DataAdjacency>(
      adjacency_.data() + adjacency_offsets_[node],
      adjacency_offsets_[node + 1] - adjacency_offsets_[node]);
}

Span<DataEdge> DataGraph::OutEdges(uint32_t node) const {
  CLAKS_CHECK_LT(node, num_nodes());
  return Span<DataEdge>(edges_.data() + out_edge_offsets_[node],
                        out_edge_offsets_[node + 1] - out_edge_offsets_[node]);
}

uint32_t DataGraph::FirstOutEdge(uint32_t node) const {
  CLAKS_CHECK_LT(node, num_nodes());
  return out_edge_offsets_[node];
}

std::optional<uint32_t> DataGraph::OutEdge(uint32_t node,
                                           uint32_t fk_index) const {
  Span<DataEdge> out = OutEdges(node);
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].fk_index == fk_index) return out_edge_offsets_[node] + i;
  }
  return std::nullopt;
}

size_t DataGraph::MaxDegree() const {
  size_t max_degree = 0;
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    max_degree = std::max(
        max_degree,
        static_cast<size_t>(adjacency_offsets_[n + 1] -
                            adjacency_offsets_[n]));
  }
  return max_degree;
}

double DataGraph::AvgDegree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(num_nodes());
}

size_t DataGraph::CountConnectedComponents() const {
  std::vector<bool> seen(num_nodes(), false);
  size_t components = 0;
  for (uint32_t start = 0; start < num_nodes(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::deque<uint32_t> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
      uint32_t cur = queue.front();
      queue.pop_front();
      for (const DataAdjacency& adj : Neighbors(cur)) {
        if (!seen[adj.neighbor]) {
          seen[adj.neighbor] = true;
          queue.push_back(adj.neighbor);
        }
      }
    }
  }
  return components;
}

std::string DataGraph::ToString(size_t max_edges) const {
  std::string out = StrFormat("DATA GRAPH: %zu nodes, %zu edges\n",
                              num_nodes(), num_edges());
  size_t shown = std::min(max_edges, edges_.size());
  for (size_t e = 0; e < shown; ++e) {
    out += "  " + db_->TupleLabel(edges_[e].from) + " -> " +
           db_->TupleLabel(edges_[e].to) + "\n";
  }
  if (shown < edges_.size()) {
    out += StrFormat("  ... (%zu more edges)\n", edges_.size() - shown);
  }
  return out;
}

}  // namespace claks
