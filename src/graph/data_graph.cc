// Copyright 2026 The claks Authors.

#include "graph/data_graph.h"

#include <algorithm>
#include <deque>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

DataGraph::DataGraph(const Database* db) : db_(db) {
  CLAKS_CHECK(db_ != nullptr);
  auto base = std::make_shared<GraphBase>();
  const size_t num_tables = db_->num_tables();

  // Node id regions: table-major, row-minor, plus per-table slack so rows
  // appended by later generations keep arithmetic ids.
  base->node_offsets.reserve(num_tables + 1);
  base->node_offsets.push_back(0);
  base->base_slots.reserve(num_tables);
  table_slots_.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables; ++t) {
    uint32_t slots = static_cast<uint32_t>(db_->table(t).num_rows());
    base->base_slots.push_back(slots);
    table_slots_.push_back(slots);
    num_nodes_ += slots;
    base->node_offsets.push_back(base->node_offsets.back() + slots +
                                 Slack(slots));
  }

  // Edges come from the join-index cache; the (table, row, fk) order means
  // edges sharing a `from` node are consecutive and ascending in fk, and
  // per-table slices are contiguous.
  const std::vector<FkEdge>& fk_edges = db_->ResolveAllFkEdges();
  base->edges.reserve(fk_edges.size());
  for (const FkEdge& fk_edge : fk_edges) {
    base->edges.push_back(
        DataEdge{fk_edge.from, fk_edge.to, fk_edge.fk_index});
  }
  base->edge_dense_offsets.assign(num_tables + 1, 0);
  for (const DataEdge& edge : base->edges) {
    ++base->edge_dense_offsets[edge.from.table + 1];
  }
  for (size_t t = 1; t < base->edge_dense_offsets.size(); ++t) {
    base->edge_dense_offsets[t] += base->edge_dense_offsets[t - 1];
  }
  base->edge_offsets.reserve(num_tables + 1);
  base->edge_offsets.push_back(0);
  for (uint32_t t = 0; t < num_tables; ++t) {
    uint32_t dense =
        base->edge_dense_offsets[t + 1] - base->edge_dense_offsets[t];
    // A table without foreign keys can never grow an edge: no slack.
    uint32_t capacity =
        db_->table(t).schema().foreign_keys().empty() ? 0
                                                      : dense + Slack(dense);
    base->edge_offsets.push_back(base->edge_offsets.back() + capacity);
  }

  auto node_of = [&base](TupleId id) {
    return base->node_offsets[id.table] + id.row;
  };

  // Out-edge offsets: count per from-node, prefix-sum (dense indexes).
  uint32_t bound = base->node_offsets.back();
  base->out_edge_offsets.assign(bound + 1, 0);
  for (const DataEdge& edge : base->edges) {
    ++base->out_edge_offsets[node_of(edge.from) + 1];
  }
  for (size_t n = 1; n < base->out_edge_offsets.size(); ++n) {
    base->out_edge_offsets[n] += base->out_edge_offsets[n - 1];
  }

  // Undirected adjacency CSR. Two passes: degree count, then a cursor fill
  // in ascending edge-id order — per-node entries end up ordered exactly
  // as the old vector-of-vectors push_back build (ascending edge id,
  // referencing side first for self-links). Gap ids get empty ranges.
  base->adjacency_offsets.assign(bound + 1, 0);
  for (const DataEdge& edge : base->edges) {
    ++base->adjacency_offsets[node_of(edge.from) + 1];
    ++base->adjacency_offsets[node_of(edge.to) + 1];
  }
  for (size_t n = 1; n < base->adjacency_offsets.size(); ++n) {
    base->adjacency_offsets[n] += base->adjacency_offsets[n - 1];
  }
  base->adjacency.resize(base->adjacency_offsets.back());
  std::vector<uint32_t> cursor(base->adjacency_offsets.begin(),
                               base->adjacency_offsets.end() - 1);
  for (uint32_t t = 0; t < num_tables; ++t) {
    for (uint32_t d = base->edge_dense_offsets[t];
         d < base->edge_dense_offsets[t + 1]; ++d) {
      const DataEdge& edge = base->edges[d];
      uint32_t id = base->edge_offsets[t] + (d - base->edge_dense_offsets[t]);
      uint32_t from_node = node_of(edge.from);
      uint32_t to_node = node_of(edge.to);
      base->adjacency[cursor[from_node]++] = DataAdjacency{id, to_node, true};
      base->adjacency[cursor[to_node]++] = DataAdjacency{id, from_node, false};
    }
  }

  live_edges_ = base->edges.size();
  appended_edges_.assign(num_tables, {});
  base_ = std::move(base);
}

Result<std::unique_ptr<DataGraph>> DataGraph::Derive(
    const DataGraph& prev, const Database* next_db,
    const DatabaseDelta& delta) {
  CLAKS_CHECK(next_db != nullptr);
  CLAKS_CHECK(!delta.schema_changed);
  CLAKS_CHECK_EQ(next_db->num_tables(), prev.table_slots_.size());
  const size_t num_tables = prev.table_slots_.size();

  // Count the edges each insert will append, then verify every table's id
  // slack can absorb its new rows and edges. An exhausted region means the
  // caller must compact (rebuild from scratch, which re-sizes regions).
  std::vector<uint32_t> new_edges(num_tables, 0);
  for (const DeltaOp& op : delta.inserts) {
    const auto& fks = next_db->table(op.table).schema().foreign_keys();
    for (uint32_t f = 0; f < fks.size(); ++f) {
      if (next_db->JoinIndex(op.table, f).Parent(op.row) !=
          FkJoinIndex::kNoParent) {
        ++new_edges[op.table];
      }
    }
  }
  for (uint32_t t = 0; t < num_tables; ++t) {
    uint32_t node_capacity =
        prev.base_->node_offsets[t + 1] - prev.base_->node_offsets[t];
    if (next_db->table(t).num_rows() > node_capacity) {
      return std::unique_ptr<DataGraph>();
    }
    uint32_t edge_capacity =
        prev.base_->edge_offsets[t + 1] - prev.base_->edge_offsets[t];
    uint32_t dense = prev.base_->edge_dense_offsets[t + 1] -
                     prev.base_->edge_dense_offsets[t];
    if (dense + prev.appended_edges_[t].size() + new_edges[t] >
        edge_capacity) {
      return std::unique_ptr<DataGraph>();
    }
  }

  std::unique_ptr<DataGraph> g(new DataGraph(prev));
  g->db_ = next_db;
  // All slot counts move to their post-batch values up front: a child
  // inserted early in the batch may reference a parent row of a
  // higher-numbered table inserted later in the same batch.
  g->num_nodes_ = 0;
  for (uint32_t t = 0; t < num_tables; ++t) {
    g->table_slots_[t] = static_cast<uint32_t>(next_db->table(t).num_rows());
    g->num_nodes_ += g->table_slots_[t];
  }

  // Deletes: drop each dead row's out-edges from both endpoints. In-edges
  // are dropped by the (same-batch, RESTRICT-guaranteed) deletes of the
  // referencing children themselves.
  for (const DeltaOp& op : delta.deletes) {
    uint32_t node = g->NodeOf(TupleId{op.table, op.row});
    Span<DataEdge> out = g->OutEdges(node);
    uint32_t first = g->FirstOutEdge(node);
    for (size_t i = 0; i < out.size(); ++i) {
      uint32_t id = first + static_cast<uint32_t>(i);
      uint32_t to_node = g->NodeOf(out[i].to);
      g->RemoveAdjEntry(node, id, true);
      g->RemoveAdjEntry(to_node, id, false);
      --g->live_edges_;
    }
  }
  for (const DeltaOp& op : delta.deletes) {
    // Join-index derivation already enforced RESTRICT; a leftover entry
    // here would be a live child still pointing at the dead row.
    CLAKS_CHECK(g->Neighbors(g->NodeOf(TupleId{op.table, op.row})).empty());
  }

  // Inserts, ascending (table, row): append the new row's resolved edges
  // into its table's slack region, ids ascending.
  for (const DeltaOp& op : delta.inserts) {
    uint32_t node = g->NodeOf(TupleId{op.table, op.row});
    const auto& fks = next_db->table(op.table).schema().foreign_keys();
    uint32_t dense = prev.base_->edge_dense_offsets[op.table + 1] -
                     prev.base_->edge_dense_offsets[op.table];
    uint32_t start = static_cast<uint32_t>(g->appended_edges_[op.table].size());
    uint32_t count = 0;
    for (uint32_t f = 0; f < fks.size(); ++f) {
      const FkJoinIndex& index = next_db->JoinIndex(op.table, f);
      uint32_t parent = index.Parent(op.row);
      if (!index.valid || parent == FkJoinIndex::kNoParent) continue;
      TupleId to{index.referenced_table, parent};
      uint32_t id =
          g->base_->edge_offsets[op.table] + dense +
          static_cast<uint32_t>(g->appended_edges_[op.table].size());
      g->appended_edges_[op.table].push_back(
          DataEdge{TupleId{op.table, op.row}, to, f});
      uint32_t to_node = g->NodeOf(to);
      g->InsertAdjEntry(node, DataAdjacency{id, to_node, true});
      g->InsertAdjEntry(to_node, DataAdjacency{id, node, false});
      ++g->live_edges_;
      ++count;
    }
    if (count > 0) g->appended_out_.emplace(node, std::make_pair(start, count));
  }
  return g;
}

uint32_t DataGraph::TableOfNode(uint32_t node) const {
  auto it = std::upper_bound(base_->node_offsets.begin(),
                             base_->node_offsets.end(), node);
  CLAKS_CHECK(it != base_->node_offsets.begin());
  return static_cast<uint32_t>(it - base_->node_offsets.begin()) - 1;
}

uint32_t DataGraph::TableOfEdge(uint32_t edge_id) const {
  auto it = std::upper_bound(base_->edge_offsets.begin(),
                             base_->edge_offsets.end(), edge_id);
  CLAKS_CHECK(it != base_->edge_offsets.begin());
  return static_cast<uint32_t>(it - base_->edge_offsets.begin()) - 1;
}

bool DataGraph::IsNode(uint32_t id) const {
  if (id >= node_id_bound()) return false;
  uint32_t t = TableOfNode(id);
  return id - base_->node_offsets[t] < table_slots_[t];
}

bool DataGraph::IsLiveNode(uint32_t id) const {
  if (id >= node_id_bound()) return false;
  uint32_t t = TableOfNode(id);
  uint32_t row = id - base_->node_offsets[t];
  return row < table_slots_[t] && !db_->table(t).IsDeleted(row);
}

bool DataGraph::IsLiveEdge(uint32_t id) const {
  if (id >= edge_id_bound()) return false;
  uint32_t t = TableOfEdge(id);
  uint32_t local = id - base_->edge_offsets[t];
  uint32_t dense = base_->edge_dense_offsets[t + 1] -
                   base_->edge_dense_offsets[t];
  if (local >= dense + appended_edges_[t].size()) return false;
  const DataEdge& e = local < dense
                          ? base_->edges[base_->edge_dense_offsets[t] + local]
                          : appended_edges_[t][local - dense];
  return !db_->table(e.from.table).IsDeleted(e.from.row);
}

uint32_t DataGraph::NodeOf(TupleId tuple) const {
  // Bounds come from the slot counts captured at build/derive time, not
  // the live database: a row inserted after the build must fail fast here,
  // not alias a gap id.
  CLAKS_CHECK_LT(static_cast<size_t>(tuple.table) + 1,
                 base_->node_offsets.size());
  CLAKS_CHECK_LT(tuple.row, table_slots_[tuple.table]);
  return base_->node_offsets[tuple.table] + tuple.row;
}

TupleId DataGraph::TupleOf(uint32_t node) const {
  CLAKS_CHECK_LT(node, node_id_bound());
  uint32_t t = TableOfNode(node);
  uint32_t row = node - base_->node_offsets[t];
  CLAKS_CHECK_LT(row, table_slots_[t]);
  return TupleId{t, row};
}

const DataEdge& DataGraph::edge(uint32_t edge_index) const {
  CLAKS_CHECK_LT(edge_index, edge_id_bound());
  uint32_t t = TableOfEdge(edge_index);
  uint32_t local = edge_index - base_->edge_offsets[t];
  uint32_t dense = base_->edge_dense_offsets[t + 1] -
                   base_->edge_dense_offsets[t];
  if (local < dense) {
    return base_->edges[base_->edge_dense_offsets[t] + local];
  }
  CLAKS_CHECK_LT(local - dense, appended_edges_[t].size());
  return appended_edges_[t][local - dense];
}

std::vector<uint32_t> DataGraph::EdgeIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(live_edges_);
  for (uint32_t t = 0; t < table_slots_.size(); ++t) {
    uint32_t dense = base_->edge_dense_offsets[t + 1] -
                     base_->edge_dense_offsets[t];
    for (uint32_t local = 0; local < dense; ++local) {
      const DataEdge& e = base_->edges[base_->edge_dense_offsets[t] + local];
      if (!db_->table(e.from.table).IsDeleted(e.from.row)) {
        ids.push_back(base_->edge_offsets[t] + local);
      }
    }
    for (uint32_t i = 0; i < appended_edges_[t].size(); ++i) {
      const DataEdge& e = appended_edges_[t][i];
      if (!db_->table(e.from.table).IsDeleted(e.from.row)) {
        ids.push_back(base_->edge_offsets[t] + dense + i);
      }
    }
  }
  return ids;
}

Span<DataAdjacency> DataGraph::Neighbors(uint32_t node) const {
  CLAKS_CHECK_LT(node, node_id_bound());
  if (!adj_overrides_.empty()) {
    auto it = adj_overrides_.find(node);
    if (it != adj_overrides_.end()) {
      return Span<DataAdjacency>(it->second.data(), it->second.size());
    }
  }
  return Span<DataAdjacency>(
      base_->adjacency.data() + base_->adjacency_offsets[node],
      base_->adjacency_offsets[node + 1] - base_->adjacency_offsets[node]);
}

Span<DataEdge> DataGraph::OutEdges(uint32_t node) const {
  CLAKS_CHECK_LT(node, node_id_bound());
  uint32_t t = TableOfNode(node);
  uint32_t row = node - base_->node_offsets[t];
  if (row < base_->base_slots[t]) {
    return Span<DataEdge>(
        base_->edges.data() + base_->out_edge_offsets[node],
        base_->out_edge_offsets[node + 1] - base_->out_edge_offsets[node]);
  }
  auto it = appended_out_.find(node);
  if (it == appended_out_.end()) return {};
  return Span<DataEdge>(appended_edges_[t].data() + it->second.first,
                        it->second.second);
}

uint32_t DataGraph::FirstOutEdge(uint32_t node) const {
  CLAKS_CHECK_LT(node, node_id_bound());
  uint32_t t = TableOfNode(node);
  uint32_t row = node - base_->node_offsets[t];
  if (row < base_->base_slots[t]) {
    return base_->edge_offsets[t] +
           (base_->out_edge_offsets[node] - base_->edge_dense_offsets[t]);
  }
  uint32_t dense = base_->edge_dense_offsets[t + 1] -
                   base_->edge_dense_offsets[t];
  auto it = appended_out_.find(node);
  uint32_t start = it == appended_out_.end()
                       ? static_cast<uint32_t>(appended_edges_[t].size())
                       : it->second.first;
  return base_->edge_offsets[t] + dense + start;
}

std::optional<uint32_t> DataGraph::OutEdge(uint32_t node,
                                           uint32_t fk_index) const {
  Span<DataEdge> out = OutEdges(node);
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].fk_index == fk_index) {
      return FirstOutEdge(node) + static_cast<uint32_t>(i);
    }
  }
  return std::nullopt;
}

bool DataGraph::IsCompact() const {
  if (!adj_overrides_.empty() || !appended_out_.empty()) return false;
  for (const auto& appended : appended_edges_) {
    if (!appended.empty()) return false;
  }
  return table_slots_.size() == base_->base_slots.size() &&
         std::equal(table_slots_.begin(), table_slots_.end(),
                    base_->base_slots.begin());
}

size_t DataGraph::MaxDegree() const {
  // Tombstoned nodes carry empty override lists and gap ids empty base
  // ranges, so the plain sweep counts live nodes only.
  size_t max_degree = 0;
  for (uint32_t n = 0; n < node_id_bound(); ++n) {
    max_degree = std::max(max_degree, Neighbors(n).size());
  }
  return max_degree;
}

double DataGraph::AvgDegree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes());
}

size_t DataGraph::CountConnectedComponents() const {
  std::vector<bool> seen(node_id_bound(), false);
  size_t components = 0;
  for (uint32_t start = 0; start < node_id_bound(); ++start) {
    if (seen[start] || !IsLiveNode(start)) continue;
    ++components;
    std::deque<uint32_t> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
      uint32_t cur = queue.front();
      queue.pop_front();
      for (const DataAdjacency& adj : Neighbors(cur)) {
        if (!seen[adj.neighbor]) {
          seen[adj.neighbor] = true;
          queue.push_back(adj.neighbor);
        }
      }
    }
  }
  return components;
}

std::string DataGraph::ToString(size_t max_edges) const {
  std::string out = StrFormat("DATA GRAPH: %zu nodes, %zu edges\n",
                              num_nodes(), num_edges());
  std::vector<uint32_t> ids = EdgeIds();
  size_t shown = std::min(max_edges, ids.size());
  for (size_t i = 0; i < shown; ++i) {
    const DataEdge& e = edge(ids[i]);
    out += "  " + db_->TupleLabel(e.from) + " -> " + db_->TupleLabel(e.to) +
           "\n";
  }
  if (shown < ids.size()) {
    out += StrFormat("  ... (%zu more edges)\n", ids.size() - shown);
  }
  return out;
}

std::vector<DataAdjacency>& DataGraph::MutableAdj(uint32_t node) {
  auto it = adj_overrides_.find(node);
  if (it != adj_overrides_.end()) return it->second;
  Span<DataAdjacency> current(
      base_->adjacency.data() + base_->adjacency_offsets[node],
      base_->adjacency_offsets[node + 1] - base_->adjacency_offsets[node]);
  return adj_overrides_
      .emplace(node,
               std::vector<DataAdjacency>(current.begin(), current.end()))
      .first->second;
}

void DataGraph::RemoveAdjEntry(uint32_t node, uint32_t edge_id,
                               bool along_fk) {
  std::vector<DataAdjacency>& list = MutableAdj(node);
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->edge_index == edge_id && it->along_fk == along_fk) {
      list.erase(it);
      return;
    }
  }
  CLAKS_CHECK(false);  // the edge being removed must be present
}

void DataGraph::InsertAdjEntry(uint32_t node, DataAdjacency entry) {
  std::vector<DataAdjacency>& list = MutableAdj(node);
  auto pos = std::lower_bound(
      list.begin(), list.end(), entry,
      [](const DataAdjacency& a, const DataAdjacency& b) {
        if (a.edge_index != b.edge_index) return a.edge_index < b.edge_index;
        return a.along_fk && !b.along_fk;  // referencing side first
      });
  list.insert(pos, entry);
}

}  // namespace claks
