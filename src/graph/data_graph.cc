// Copyright 2026 The claks Authors.

#include "graph/data_graph.h"

#include <deque>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

DataGraph::DataGraph(const Database* db) : db_(db) {
  CLAKS_CHECK(db_ != nullptr);
  // Dense node ids: table-major, row-minor.
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    for (uint32_t r = 0; r < db_->table(t).num_rows(); ++r) {
      TupleId id{t, r};
      tuple_to_node_.emplace(id.Pack(),
                             static_cast<uint32_t>(node_to_tuple_.size()));
      node_to_tuple_.push_back(id);
    }
  }
  adjacency_.resize(node_to_tuple_.size());
  for (const FkEdge& fk_edge : db_->ResolveAllFkEdges()) {
    uint32_t from_node = NodeOf(fk_edge.from);
    uint32_t to_node = NodeOf(fk_edge.to);
    uint32_t edge_index = static_cast<uint32_t>(edges_.size());
    edges_.push_back(DataEdge{fk_edge.from, fk_edge.to, fk_edge.fk_index});
    adjacency_[from_node].push_back(
        DataAdjacency{edge_index, to_node, true});
    adjacency_[to_node].push_back(
        DataAdjacency{edge_index, from_node, false});
  }
}

uint32_t DataGraph::NodeOf(TupleId tuple) const {
  auto it = tuple_to_node_.find(tuple.Pack());
  CLAKS_CHECK(it != tuple_to_node_.end());
  return it->second;
}

TupleId DataGraph::TupleOf(uint32_t node) const {
  CLAKS_CHECK_LT(node, node_to_tuple_.size());
  return node_to_tuple_[node];
}

const DataEdge& DataGraph::edge(uint32_t edge_index) const {
  CLAKS_CHECK_LT(edge_index, edges_.size());
  return edges_[edge_index];
}

const std::vector<DataAdjacency>& DataGraph::Neighbors(uint32_t node) const {
  CLAKS_CHECK_LT(node, adjacency_.size());
  return adjacency_[node];
}

size_t DataGraph::MaxDegree() const {
  size_t max_degree = 0;
  for (const auto& adj : adjacency_) {
    max_degree = std::max(max_degree, adj.size());
  }
  return max_degree;
}

double DataGraph::AvgDegree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(adjacency_.size());
}

size_t DataGraph::CountConnectedComponents() const {
  std::vector<bool> seen(num_nodes(), false);
  size_t components = 0;
  for (uint32_t start = 0; start < num_nodes(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::deque<uint32_t> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
      uint32_t cur = queue.front();
      queue.pop_front();
      for (const DataAdjacency& adj : adjacency_[cur]) {
        if (!seen[adj.neighbor]) {
          seen[adj.neighbor] = true;
          queue.push_back(adj.neighbor);
        }
      }
    }
  }
  return components;
}

std::string DataGraph::ToString(size_t max_edges) const {
  std::string out = StrFormat("DATA GRAPH: %zu nodes, %zu edges\n",
                              num_nodes(), num_edges());
  size_t shown = std::min(max_edges, edges_.size());
  for (size_t e = 0; e < shown; ++e) {
    out += "  " + db_->TupleLabel(edges_[e].from) + " -> " +
           db_->TupleLabel(edges_[e].to) + "\n";
  }
  if (shown < edges_.size()) {
    out += StrFormat("  ... (%zu more edges)\n", edges_.size() - shown);
  }
  return out;
}

}  // namespace claks
