// Copyright 2026 The claks Authors.
//
// BANKS-style backward expanding search [Aditya et al., VLDB'02]: answers
// are rooted trees connecting at least one tuple from every keyword set,
// found by running shortest-path expansions backwards from the keyword
// tuples and meeting at common roots. This is one of the two baselines the
// paper positions itself against (the other is DISCOVER's MTJNT,
// core/mtjnt.h).
//
// Entry point: BanksBackwardSearch, dispatched to by KeywordSearchEngine
// for SearchMethod::kBanks; the engine converts the returned AnswerTrees to
// TupleTrees and runs them through the same association analysis and
// ranking as every other method. Tuning knobs (top_k, edge-weight model,
// expansion radius) live in BanksOptions, embedded in SearchOptions.
// The expansions iterate the CSR adjacency spans of graph/data_graph.h
// with per-node entry weights precomputed once per search.

#ifndef CLAKS_GRAPH_BANKS_H_
#define CLAKS_GRAPH_BANKS_H_

#include <vector>

#include "graph/data_graph.h"

namespace claks {

/// Edge-weight models for the expansion.
enum class BanksWeightModel {
  /// Every edge costs 1 (pure hop count).
  kUniform,
  /// Edges into high-in-degree nodes cost more, BANKS-style:
  /// w = 1 + log(1 + degree(target)). Penalises hub tuples.
  kDegreePenalized,
};

struct BanksOptions {
  size_t top_k = 10;
  BanksWeightModel weight_model = BanksWeightModel::kUniform;
  /// Expansion radius: keyword tuples farther than this many edges from a
  /// candidate root never join its answer.
  size_t max_distance = 6;
};

/// One answer: a tree rooted at `root` spanning one tuple per keyword set.
struct AnswerTree {
  uint32_t root = 0;
  /// One entry per keyword set: the matched leaf node.
  std::vector<uint32_t> keyword_nodes;
  /// Edge indices (into DataGraph::edge) forming the tree, deduplicated.
  std::vector<uint32_t> edge_indices;
  /// Sum of root->keyword-node path weights (BANKS's tree cost proxy).
  double weight = 0.0;

  size_t size() const { return edge_indices.size() + 1; }
};

/// Work counters of one backward search, for comparing expansion effort
/// across search methods (KeywordSearchEngine surfaces visited_nodes as
/// SearchResult::expansions for SearchMethod::kBanks).
struct BanksSearchStats {
  /// Nodes settled across all per-keyword Dijkstra expansions (a node
  /// reached by every one of `k` expansions counts `k` times — each is a
  /// separate relaxation wave).
  size_t visited_nodes = 0;
};

/// Runs backward expanding search: one multi-source Dijkstra per keyword
/// set, then roots ranked by total distance. Returns at most
/// `options.top_k` trees, best (lightest) first. Empty keyword sets yield
/// no answers. `stats` (optional) receives the work counters.
std::vector<AnswerTree> BanksBackwardSearch(
    const DataGraph& graph,
    const std::vector<std::vector<uint32_t>>& keyword_node_sets,
    const BanksOptions& options = {}, BanksSearchStats* stats = nullptr);

}  // namespace claks

#endif  // CLAKS_GRAPH_BANKS_H_
