// Copyright 2026 The claks Authors.

#include "graph/steiner.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/macros.h"
#include "graph/traversal.h"

namespace claks {

std::vector<uint32_t> SteinerTree::Nodes(const DataGraph& graph) const {
  std::set<uint32_t> nodes(terminals.begin(), terminals.end());
  for (uint32_t e : edge_indices) {
    const DataEdge& edge = graph.edge(e);
    nodes.insert(graph.NodeOf(edge.from));
    nodes.insert(graph.NodeOf(edge.to));
  }
  return std::vector<uint32_t>(nodes.begin(), nodes.end());
}

std::optional<SteinerTree> ApproximateSteinerTree(
    const DataGraph& graph, const std::vector<uint32_t>& terminals) {
  if (terminals.empty()) return SteinerTree{};
  // Deduplicate terminals, keep deterministic order.
  std::vector<uint32_t> terms;
  for (uint32_t t : terminals) {
    if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
      terms.push_back(t);
    }
  }
  if (terms.size() == 1) return SteinerTree{{terms[0]}, {}, 0};

  // Metric closure: BFS from each terminal.
  std::vector<std::vector<size_t>> dist;
  dist.reserve(terms.size());
  for (uint32_t t : terms) {
    dist.push_back(BfsDistances(graph, t));
  }
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      if (dist[i][terms[j]] == SIZE_MAX) return std::nullopt;
    }
  }

  // Prim's MST over the closure.
  std::vector<bool> in_tree(terms.size(), false);
  std::vector<size_t> best(terms.size(), SIZE_MAX);
  std::vector<size_t> best_from(terms.size(), 0);
  in_tree[0] = true;
  for (size_t j = 1; j < terms.size(); ++j) {
    best[j] = dist[0][terms[j]];
    best_from[j] = 0;
  }
  std::vector<std::pair<size_t, size_t>> mst_edges;  // (terminal i, j)
  for (size_t added = 1; added < terms.size(); ++added) {
    size_t pick = SIZE_MAX;
    for (size_t j = 0; j < terms.size(); ++j) {
      if (!in_tree[j] && (pick == SIZE_MAX || best[j] < best[pick])) {
        pick = j;
      }
    }
    CLAKS_CHECK_NE(pick, SIZE_MAX);
    in_tree[pick] = true;
    mst_edges.emplace_back(best_from[pick], pick);
    for (size_t j = 0; j < terms.size(); ++j) {
      if (!in_tree[j] && dist[pick][terms[j]] < best[j]) {
        best[j] = dist[pick][terms[j]];
        best_from[j] = pick;
      }
    }
  }

  // Expand closure edges to graph shortest paths and collect edges.
  std::set<uint32_t> edges;
  for (const auto& [i, j] : mst_edges) {
    auto path = ShortestPath(graph, terms[i], terms[j]);
    CLAKS_CHECK(path.has_value());
    for (const DataAdjacency& step : path->steps) {
      edges.insert(step.edge_index);
    }
  }

  // Prune non-terminal leaves repeatedly (the union of paths may contain
  // redundant twigs).
  std::set<uint32_t> terminal_set(terms.begin(), terms.end());
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<uint32_t, std::vector<uint32_t>> incident;  // node -> edges
    for (uint32_t e : edges) {
      const DataEdge& edge = graph.edge(e);
      incident[graph.NodeOf(edge.from)].push_back(e);
      incident[graph.NodeOf(edge.to)].push_back(e);
    }
    for (const auto& [node, node_edges] : incident) {
      if (node_edges.size() == 1 && terminal_set.count(node) == 0) {
        edges.erase(node_edges[0]);
        changed = true;
      }
    }
  }

  SteinerTree tree;
  tree.terminals = terms;
  tree.edge_indices.assign(edges.begin(), edges.end());
  tree.weight = tree.edge_indices.size();
  return tree;
}

}  // namespace claks
