// Copyright 2026 The claks Authors.
//
// Traversal primitives over the data graph: BFS distances, shortest paths
// and bounded simple-path enumeration. The connection enumerator in
// core/enumerator.h is built on these.

#ifndef CLAKS_GRAPH_TRAVERSAL_H_
#define CLAKS_GRAPH_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "graph/data_graph.h"

namespace claks {

/// One traversal step: the adjacency entry taken. A node path of k+1 nodes
/// has k steps.
struct PathStep {
  DataAdjacency adjacency;
};

/// A simple path in the data graph: start node + steps.
struct NodePath {
  uint32_t start = 0;
  std::vector<DataAdjacency> steps;

  size_t length() const { return steps.size(); }

  /// All node ids along the path, start first.
  std::vector<uint32_t> Nodes() const;

  uint32_t End() const {
    return steps.empty() ? start : steps.back().neighbor;
  }
};

/// BFS distances (edge counts) from `source` to every node; SIZE_MAX when
/// unreachable.
std::vector<size_t> BfsDistances(const DataGraph& graph, uint32_t source);

/// Multi-source BFS: distance to the nearest of `sources`.
std::vector<size_t> BfsDistances(const DataGraph& graph,
                                 const std::vector<uint32_t>& sources);

/// One shortest path between two nodes (BFS tree), or nullopt when
/// disconnected.
std::optional<NodePath> ShortestPath(const DataGraph& graph, uint32_t from,
                                     uint32_t to);

/// Enumerates every simple path from `from` to `to` with at most
/// `max_edges` edges, shortest first. `max_results` caps the output
/// (0 = unlimited).
std::vector<NodePath> EnumerateSimplePaths(const DataGraph& graph,
                                           uint32_t from, uint32_t to,
                                           size_t max_edges,
                                           size_t max_results = 0);

/// Enumerates every simple path from a node in `sources` to a node in
/// `targets` (node-disjoint endpoints) with at most `max_edges` edges.
std::vector<NodePath> EnumerateSimplePathsBetweenSets(
    const DataGraph& graph, const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets, size_t max_edges,
    size_t max_results = 0);

/// The per-source body of EnumerateSimplePathsBetweenSets: appends every
/// simple path from `source` to a node of `targets` (DFS discovery
/// order, no sort) to `out`, stopping once `out` holds `max_results`
/// paths (0 = unlimited). Sources are independent of each other, which
/// is what lets the sharded engine enumerate them in parallel and
/// reassemble the exact serial output by concatenating per-source
/// results in source order before the final length sort.
void AppendSimplePathsFromSource(const DataGraph& graph, uint32_t source,
                                 const std::vector<uint32_t>& targets,
                                 size_t max_edges, size_t max_results,
                                 std::vector<NodePath>* out);

}  // namespace claks

#endif  // CLAKS_GRAPH_TRAVERSAL_H_
