// Copyright 2026 The claks Authors.

#include "graph/schema_graph.h"

#include <algorithm>
#include <deque>

#include "common/macros.h"

namespace claks {

SchemaGraph::SchemaGraph(const Database* db) : db_(db) {
  CLAKS_CHECK(db_ != nullptr);
  adjacency_.resize(db_->num_tables());
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    const auto& fks = db_->table(t).schema().foreign_keys();
    for (uint32_t f = 0; f < fks.size(); ++f) {
      auto target = db_->TableIndex(fks[f].referenced_table);
      if (!target.has_value()) continue;  // integrity checked elsewhere
      uint32_t edge_index = static_cast<uint32_t>(edges_.size());
      edges_.push_back(SchemaEdge{t, *target, f});
      adjacency_[t].push_back(SchemaAdjacency{edge_index, *target, true});
      adjacency_[*target].push_back(SchemaAdjacency{edge_index, t, false});
    }
  }
}

const std::vector<SchemaAdjacency>& SchemaGraph::Neighbors(
    uint32_t table) const {
  CLAKS_CHECK_LT(table, adjacency_.size());
  return adjacency_[table];
}

size_t SchemaGraph::Distance(uint32_t from, uint32_t to) const {
  CLAKS_CHECK_LT(from, adjacency_.size());
  CLAKS_CHECK_LT(to, adjacency_.size());
  if (from == to) return 0;
  std::vector<size_t> dist(adjacency_.size(), SIZE_MAX);
  std::deque<uint32_t> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop_front();
    for (const SchemaAdjacency& adj : adjacency_[cur]) {
      if (dist[adj.neighbor] != SIZE_MAX) continue;
      dist[adj.neighbor] = dist[cur] + 1;
      if (adj.neighbor == to) return dist[adj.neighbor];
      queue.push_back(adj.neighbor);
    }
  }
  return dist[to];
}

namespace {

void EnumerateTablePathsRec(
    const SchemaGraph& graph, uint32_t current, uint32_t goal,
    size_t max_edges, std::vector<SchemaAdjacency>* prefix,
    std::vector<bool>* visited,
    std::vector<std::vector<SchemaAdjacency>>* out) {
  if (current == goal && !prefix->empty()) {
    out->push_back(*prefix);
    // Do not return: longer paths revisiting goal are excluded anyway by
    // the visited set, but a path may pass through goal only at its end —
    // with simple paths, reaching goal ends the path.
    return;
  }
  if (prefix->size() >= max_edges) return;
  for (const SchemaAdjacency& adj : graph.Neighbors(current)) {
    if ((*visited)[adj.neighbor]) continue;
    (*visited)[adj.neighbor] = true;
    prefix->push_back(adj);
    EnumerateTablePathsRec(graph, adj.neighbor, goal, max_edges, prefix,
                           visited, out);
    prefix->pop_back();
    (*visited)[adj.neighbor] = false;
  }
}

}  // namespace

std::vector<std::vector<SchemaAdjacency>> SchemaGraph::EnumerateTablePaths(
    uint32_t from, uint32_t to, size_t max_edges) const {
  std::vector<std::vector<SchemaAdjacency>> out;
  std::vector<SchemaAdjacency> prefix;
  std::vector<bool> visited(adjacency_.size(), false);
  visited[from] = true;
  EnumerateTablePathsRec(*this, from, to, max_edges, &prefix, &visited,
                         &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  return out;
}

std::string SchemaGraph::ToString() const {
  std::string out = "SCHEMA GRAPH\n";
  for (const SchemaEdge& edge : edges_) {
    out += "  " + db_->table(edge.from_table).name() + " -> " +
           db_->table(edge.to_table).name() + " (fk " +
           std::to_string(edge.fk_index) + ")\n";
  }
  return out;
}

}  // namespace claks
