// Copyright 2026 The claks Authors.

#include "graph/banks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "common/macros.h"

namespace claks {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Expansion {
  std::vector<double> dist;
  std::vector<uint32_t> parent;        // predecessor node
  std::vector<uint32_t> parent_edge;   // edge used to reach node
  std::vector<uint32_t> source;        // which keyword node we came from
};

// Cost of entering each node, precomputed once per search so the Dijkstra
// inner loop over the CSR adjacency pays no log() per relaxation.
std::vector<double> NodeEntryWeights(const DataGraph& graph,
                                     BanksWeightModel model) {
  std::vector<double> weights(graph.node_id_bound(), 1.0);
  if (model == BanksWeightModel::kDegreePenalized) {
    for (uint32_t v = 0; v < graph.node_id_bound(); ++v) {
      weights[v] =
          1.0 + std::log(1.0 + static_cast<double>(graph.Degree(v)));
    }
  }
  return weights;
}

// Multi-source Dijkstra from every node of one keyword set. `visited`
// accumulates the number of settled pops (the expansion's work metric).
Expansion Expand(const DataGraph& graph, const std::vector<uint32_t>& set,
                 const std::vector<double>& entry_weights,
                 const BanksOptions& options, size_t* visited) {
  Expansion exp;
  exp.dist.assign(graph.node_id_bound(), kInf);
  exp.parent.assign(graph.node_id_bound(), UINT32_MAX);
  exp.parent_edge.assign(graph.node_id_bound(), UINT32_MAX);
  exp.source.assign(graph.node_id_bound(), UINT32_MAX);

  using Item = std::pair<double, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (uint32_t node : set) {
    CLAKS_CHECK_LT(node, graph.node_id_bound());
    if (exp.dist[node] > 0.0) {
      exp.dist[node] = 0.0;
      exp.source[node] = node;
      pq.emplace(0.0, node);
    }
  }
  double max_dist = static_cast<double>(options.max_distance);
  while (!pq.empty()) {
    auto [d, node] = pq.top();
    pq.pop();
    if (d > exp.dist[node]) continue;
    ++*visited;
    if (d >= max_dist) continue;
    for (const DataAdjacency& adj : graph.Neighbors(node)) {
      double nd = d + entry_weights[adj.neighbor];
      if (nd < exp.dist[adj.neighbor]) {
        exp.dist[adj.neighbor] = nd;
        exp.parent[adj.neighbor] = node;
        exp.parent_edge[adj.neighbor] = adj.edge_index;
        exp.source[adj.neighbor] = exp.source[node];
        pq.emplace(nd, adj.neighbor);
      }
    }
  }
  return exp;
}

}  // namespace

std::vector<AnswerTree> BanksBackwardSearch(
    const DataGraph& graph,
    const std::vector<std::vector<uint32_t>>& keyword_node_sets,
    const BanksOptions& options, BanksSearchStats* stats) {
  if (stats != nullptr) *stats = BanksSearchStats{};
  if (keyword_node_sets.empty()) return {};
  for (const auto& set : keyword_node_sets) {
    if (set.empty()) return {};
  }

  std::vector<double> entry_weights =
      NodeEntryWeights(graph, options.weight_model);
  std::vector<Expansion> expansions;
  expansions.reserve(keyword_node_sets.size());
  size_t visited = 0;
  for (const auto& set : keyword_node_sets) {
    expansions.push_back(Expand(graph, set, entry_weights, options,
                                &visited));
  }
  if (stats != nullptr) stats->visited_nodes = visited;

  // Candidate roots: reached by every expansion.
  std::vector<std::pair<double, uint32_t>> candidates;
  for (uint32_t v = 0; v < graph.node_id_bound(); ++v) {
    double total = 0.0;
    bool ok = true;
    for (const Expansion& exp : expansions) {
      if (exp.dist[v] == kInf) {
        ok = false;
        break;
      }
      total += exp.dist[v];
    }
    if (ok) candidates.emplace_back(total, v);
  }
  std::sort(candidates.begin(), candidates.end());

  std::vector<AnswerTree> answers;
  // Deduplicate answers that collapse to the same edge set: a root in the
  // middle of a path and its neighbour can describe the same tree.
  std::set<std::vector<uint32_t>> seen_edge_sets;
  for (const auto& [total, root] : candidates) {
    if (answers.size() >= options.top_k) break;
    AnswerTree tree;
    tree.root = root;
    tree.weight = total;
    std::set<uint32_t> edges;
    for (const Expansion& exp : expansions) {
      tree.keyword_nodes.push_back(exp.source[root]);
      uint32_t node = root;
      while (exp.parent[node] != UINT32_MAX) {
        edges.insert(exp.parent_edge[node]);
        node = exp.parent[node];
      }
    }
    tree.edge_indices.assign(edges.begin(), edges.end());
    if (!seen_edge_sets.insert(tree.edge_indices).second) continue;
    answers.push_back(std::move(tree));
  }
  return answers;
}

}  // namespace claks
