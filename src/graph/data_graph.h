// Copyright 2026 The claks Authors.
//
// Data graph: one node per tuple, one undirected edge per foreign-key
// instance link. Every "connection of tuples" the paper discusses is a
// subgraph of this graph.
//
// Storage is a compact CSR (compressed sparse row) with *slack-gapped*
// stable ids, split into a frozen base shared between engine generations
// and a per-generation overlay (the delta mutation path, core/engine.h):
//
//   - Node ids are table-major/row-minor over per-table id regions sized
//     rows + slack, so NodeOf stays pure arithmetic AND a row appended
//     after the freeze lands in its table's slack gap without renumbering
//     any other node. Ids are monotone in (table, row) — the tie-break
//     order every ranker observes — so a delta-derived graph orders nodes
//     exactly like a graph rebuilt from scratch.
//   - Edge ids likewise live in per-table regions (dense prefix + slack);
//     edges appended for inserted rows take ascending ids in the gap.
//   - The adjacency CSR and dense edge array freeze into the shared
//     GraphBase; a generation that mutates a node's neighborhood installs
//     a full replacement list in `adj_overrides_` (same canonical order),
//     and appended rows keep their out-edges in per-table append logs.
//
// Derive() applies a DatabaseDelta in O(delta · degree); when a table's
// slack is exhausted it signals the caller to compact — i.e. rebuild from
// scratch, which re-sizes every region from the current row counts and is
// byte-identical to a cold build over an equivalent database.
//
// Entry points: the engine builds one DataGraph per database and every
// search method (core/enumerator.h, core/mtjnt.h, core/topk.h,
// graph/banks.h, graph/steiner.h, graph/traversal.h) traverses it via
// Neighbors/OutEdges.

#ifndef CLAKS_GRAPH_DATA_GRAPH_H_
#define CLAKS_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_vector.h"
#include "common/result.h"
#include "common/span.h"
#include "relational/database.h"
#include "relational/delta.h"

namespace claks {

/// One FK instance edge. `from` is always the referencing (FK-owning)
/// tuple, `to` the referenced tuple; `fk_index` identifies the FK within
/// from's table.
struct DataEdge {
  TupleId from;
  TupleId to;
  uint32_t fk_index = 0;
};

/// Direction-aware adjacency entry as seen from one node.
struct DataAdjacency {
  uint32_t edge_index = 0;
  uint32_t neighbor = 0;  ///< node id of the other endpoint
  /// Nonzero when the traversal follows the FK (this node is the
  /// referencing side). Semantically a bool; stored as uint32_t so the
  /// struct has no padding bytes — its flat array is written verbatim
  /// into snapshots (storage/format.h), where indeterminate padding
  /// would break byte-level reproducibility.
  uint32_t along_fk = 1;
};

/// Slack-gapped stable-id view of a database's tuples and FK links.
class DataGraph {
 public:
  /// Builds the graph over all tuples of `db`, triggering the database's
  /// join-index build if it has not happened yet. The database must
  /// outlive the graph.
  explicit DataGraph(const Database* db);

  /// Derives the next generation's graph from `prev` plus the row delta,
  /// in O(delta · degree). `next_db`'s join indexes must already be
  /// derived (they resolve the inserted rows' FK targets). Returns a null
  /// graph — not an error — when a table's id slack is exhausted: the
  /// caller must compact by rebuilding from scratch.
  static Result<std::unique_ptr<DataGraph>> Derive(
      const DataGraph& prev, const Database* next_db,
      const DatabaseDelta& delta);

  const Database& database() const { return *db_; }

  /// Number of row slots (live + tombstoned); node ids are NOT dense in
  /// [0, num_nodes()) — iterate with node_id_bound() + IsNode().
  size_t num_nodes() const { return num_nodes_; }
  /// Number of live edges; same caveat — see edge_id_bound().
  size_t num_edges() const { return live_edges_; }

  /// Exclusive upper bound of node ids (includes slack gaps).
  uint32_t node_id_bound() const { return base_->node_offsets.back(); }
  /// Exclusive upper bound of edge ids (includes slack gaps).
  uint32_t edge_id_bound() const { return base_->edge_offsets.back(); }

  /// True when `id` addresses an existing row slot (possibly tombstoned).
  bool IsNode(uint32_t id) const;
  /// True when `id` addresses a live (non-tombstoned) row.
  bool IsLiveNode(uint32_t id) const;
  /// True when `id` addresses a live edge (one whose owning row lives).
  bool IsLiveEdge(uint32_t id) const;

  /// Node id of a tuple. Every row slot of the database has a node; O(1)
  /// arithmetic (no hashing). CLAKS_CHECKs bounds.
  uint32_t NodeOf(TupleId tuple) const;

  /// Tuple addressed by a node id.
  TupleId TupleOf(uint32_t node) const;

  const DataEdge& edge(uint32_t edge_index) const;

  /// Live edge ids in canonical ascending order — the delta-path
  /// replacement for iterating [0, num_edges()).
  std::vector<uint32_t> EdgeIds() const;

  /// Edges incident to `node`, both directions, deterministic order (by
  /// edge id; the referencing-side entry of a self-link comes first).
  /// Tombstoned nodes have no neighbors. The span is a view into the CSR
  /// array or this generation's override — valid as long as the graph.
  Span<DataAdjacency> Neighbors(uint32_t node) const;

  /// Edges leaving `node` as the referencing side, ascending fk order —
  /// its tuple's resolved foreign keys (NULL/dangling FKs absent). The
  /// edge id of entry i is FirstOutEdge(node) + i. A tombstoned node
  /// reports the out-edges it had while alive.
  Span<DataEdge> OutEdges(uint32_t node) const;
  uint32_t FirstOutEdge(uint32_t node) const;

  /// Index of the edge leaving `node` along FK `fk_index` of its table,
  /// or nullopt when that FK produced no edge (NULL or dangling).
  std::optional<uint32_t> OutEdge(uint32_t node, uint32_t fk_index) const;

  size_t Degree(uint32_t node) const { return Neighbors(node).size(); }

  /// True when this graph carries no overlay (fresh build or a derive
  /// chain that never mutated anything).
  bool IsCompact() const;

  /// Maximum and average live-node degree (graph shape diagnostics).
  size_t MaxDegree() const;
  double AvgDegree() const;

  /// Number of connected components over live nodes.
  size_t CountConnectedComponents() const;

  std::string ToString(size_t max_edges = 50) const;

 private:
  /// Extra id head-room reserved per table region at (re)build time.
  static uint32_t Slack(uint32_t n) { return n / 8 + 8; }

  /// Frozen at build time, shared across derived generations. The
  /// arrays are FlatVectors: owned when built in memory, zero-copy
  /// views into the mapped file when the generation was loaded from a
  /// snapshot (storage/snapshot.h installs them via StorageCodec).
  struct GraphBase {
    /// First node id per table (+ final bound); region t is sized
    /// base_slots[t] + Slack(base_slots[t]).
    FlatVector<uint32_t> node_offsets;
    FlatVector<uint32_t> base_slots;  ///< row slots per table at freeze
    /// Dense edge array, canonical (table, row, fk) order, live at freeze.
    FlatVector<DataEdge> edges;
    FlatVector<uint32_t> edge_dense_offsets;  ///< per-table slice of edges
    /// First edge id per table (+ bound); region sized dense + slack
    /// (zero for tables without foreign keys).
    FlatVector<uint32_t> edge_offsets;
    // CSR over node ids (gap ids have empty ranges). out_edge_offsets
    // holds dense indexes into `edges`; adjacency entries hold edge ids.
    FlatVector<uint32_t> out_edge_offsets;
    FlatVector<uint32_t> adjacency_offsets;
    FlatVector<DataAdjacency> adjacency;
  };

  DataGraph() = default;

  /// Snapshot save/load (storage/snapshot.cc) reads and installs the
  /// frozen base and per-generation fields directly.
  friend class StorageCodec;

  uint32_t TableOfNode(uint32_t node) const;
  uint32_t TableOfEdge(uint32_t edge_id) const;
  /// The mutable adjacency list of `node`, materializing a copy of its
  /// frozen base list on first touch.
  std::vector<DataAdjacency>& MutableAdj(uint32_t node);
  void RemoveAdjEntry(uint32_t node, uint32_t edge_id, bool along_fk);
  void InsertAdjEntry(uint32_t node, DataAdjacency entry);

  const Database* db_ = nullptr;
  std::shared_ptr<const GraphBase> base_;
  // Per-generation state (copied on derive, O(overlay)):
  std::vector<uint32_t> table_slots_;  ///< current row slots per table
  size_t num_nodes_ = 0;
  size_t live_edges_ = 0;
  /// Edges appended since the freeze, per table, ascending (row, fk); the
  /// edge with per-table append index i has id
  /// edge_offsets[t] + dense_count(t) + i. Entries are never removed — a
  /// dead appended edge keeps its slot so later ids stay stable.
  std::vector<std::vector<DataEdge>> appended_edges_;
  /// Out-edge slice (start, len) into appended_edges_[table] for rows
  /// appended since the freeze.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> appended_out_;
  /// Full replacement adjacency lists (canonical order) for nodes whose
  /// neighborhood changed since the freeze.
  std::unordered_map<uint32_t, std::vector<DataAdjacency>> adj_overrides_;
};

}  // namespace claks

#endif  // CLAKS_GRAPH_DATA_GRAPH_H_
