// Copyright 2026 The claks Authors.
//
// Data graph: one node per tuple, one undirected edge per foreign-key
// instance link. Every "connection of tuples" the paper discusses is a
// subgraph of this graph.
//
// Storage is a compact CSR (compressed sparse row): node ids are dense
// uint32_t assigned table-major/row-minor, so NodeOf is pure arithmetic
// over per-table offsets, and adjacency lists are ranges of one flat
// array — cache-friendly iteration with no per-node allocations. Edges
// come from the Database's cached FK-edge list (Database::ResolveAllFkEdges,
// built once by the join-index step), so constructing the graph never
// rescans tables.
//
// Entry points: the engine builds one DataGraph per database and every
// search method (core/enumerator.h, core/mtjnt.h, core/topk.h,
// graph/banks.h, graph/steiner.h, graph/traversal.h) traverses it via
// Neighbors/OutEdges.

#ifndef CLAKS_GRAPH_DATA_GRAPH_H_
#define CLAKS_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/span.h"
#include "relational/database.h"

namespace claks {

/// One FK instance edge. `from` is always the referencing (FK-owning)
/// tuple, `to` the referenced tuple; `fk_index` identifies the FK within
/// from's table.
struct DataEdge {
  TupleId from;
  TupleId to;
  uint32_t fk_index = 0;
};

/// Direction-aware adjacency entry as seen from one node.
struct DataAdjacency {
  uint32_t edge_index = 0;
  uint32_t neighbor = 0;  ///< node id of the other endpoint
  /// True when the traversal follows the FK (this node is the referencing
  /// side).
  bool along_fk = true;
};

/// Dense-node-id view of a database's tuples and FK links.
class DataGraph {
 public:
  /// Builds the graph over all tuples of `db`, triggering the database's
  /// join-index build if it has not happened yet. The database must
  /// outlive the graph.
  explicit DataGraph(const Database* db);

  const Database& database() const { return *db_; }

  size_t num_nodes() const { return node_to_tuple_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Node id of a tuple. Every tuple of the database has a node; O(1)
  /// arithmetic (no hashing). CLAKS_CHECKs bounds.
  uint32_t NodeOf(TupleId tuple) const;

  /// Tuple addressed by a node id.
  TupleId TupleOf(uint32_t node) const;

  const DataEdge& edge(uint32_t edge_index) const;

  /// Edges incident to `node`, both directions, deterministic order (by
  /// edge index; the referencing-side entry of a self-link comes first).
  /// The span is a view into the CSR array — valid as long as the graph.
  Span<DataAdjacency> Neighbors(uint32_t node) const;

  /// Edges leaving `node` as the referencing side, ascending fk order —
  /// its tuple's resolved foreign keys (NULL/dangling FKs absent). The
  /// span views the contiguous slice of the edge array; the edge index of
  /// entry i is FirstOutEdge(node) + i.
  Span<DataEdge> OutEdges(uint32_t node) const;
  uint32_t FirstOutEdge(uint32_t node) const;

  /// Index of the edge leaving `node` along FK `fk_index` of its table,
  /// or nullopt when that FK produced no edge (NULL or dangling).
  std::optional<uint32_t> OutEdge(uint32_t node, uint32_t fk_index) const;

  size_t Degree(uint32_t node) const { return Neighbors(node).size(); }

  /// Maximum and average node degree (graph shape diagnostics).
  size_t MaxDegree() const;
  double AvgDegree() const;

  /// Number of connected components.
  size_t CountConnectedComponents() const;

  std::string ToString(size_t max_edges = 50) const;

 private:
  const Database* db_;
  std::vector<TupleId> node_to_tuple_;
  std::vector<uint32_t> table_offsets_;  ///< first node id per table, +1
  std::vector<DataEdge> edges_;
  // CSR adjacency: neighbors of node n are
  // adjacency_[adjacency_offsets_[n] .. adjacency_offsets_[n+1]).
  std::vector<uint32_t> adjacency_offsets_;
  std::vector<DataAdjacency> adjacency_;
  // Edges with `from` == node n occupy the contiguous slice
  // edges_[out_edge_offsets_[n] .. out_edge_offsets_[n+1]) (edge order is
  // table-major/row-minor/fk, matching node-id order).
  std::vector<uint32_t> out_edge_offsets_;
};

}  // namespace claks

#endif  // CLAKS_GRAPH_DATA_GRAPH_H_
