// Copyright 2026 The claks Authors.
//
// Data graph: one node per tuple, one undirected edge per foreign-key
// instance link. Every "connection of tuples" the paper discusses is a
// subgraph of this graph.

#ifndef CLAKS_GRAPH_DATA_GRAPH_H_
#define CLAKS_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/database.h"

namespace claks {

/// One FK instance edge. `from` is always the referencing (FK-owning)
/// tuple, `to` the referenced tuple; `fk_index` identifies the FK within
/// from's table.
struct DataEdge {
  TupleId from;
  TupleId to;
  uint32_t fk_index = 0;
};

/// Direction-aware adjacency entry as seen from one node.
struct DataAdjacency {
  uint32_t edge_index = 0;
  uint32_t neighbor = 0;  ///< node id of the other endpoint
  /// True when the traversal follows the FK (this node is the referencing
  /// side).
  bool along_fk = true;
};

/// Dense-node-id view of a database's tuples and FK links.
class DataGraph {
 public:
  /// Builds the graph over all tuples of `db`. The database must outlive
  /// the graph.
  explicit DataGraph(const Database* db);

  const Database& database() const { return *db_; }

  size_t num_nodes() const { return node_to_tuple_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Node id of a tuple. Every tuple of the database has a node.
  uint32_t NodeOf(TupleId tuple) const;

  /// Tuple addressed by a node id.
  TupleId TupleOf(uint32_t node) const;

  const DataEdge& edge(uint32_t edge_index) const;

  /// Edges incident to `node`, both directions, deterministic order.
  const std::vector<DataAdjacency>& Neighbors(uint32_t node) const;

  size_t Degree(uint32_t node) const { return Neighbors(node).size(); }

  /// Maximum and average node degree (graph shape diagnostics).
  size_t MaxDegree() const;
  double AvgDegree() const;

  /// Number of connected components.
  size_t CountConnectedComponents() const;

  std::string ToString(size_t max_edges = 50) const;

 private:
  const Database* db_;
  std::vector<TupleId> node_to_tuple_;
  std::unordered_map<uint64_t, uint32_t> tuple_to_node_;
  std::vector<DataEdge> edges_;
  std::vector<std::vector<DataAdjacency>> adjacency_;
};

}  // namespace claks

#endif  // CLAKS_GRAPH_DATA_GRAPH_H_
