// Copyright 2026 The claks Authors.

#include "text/inverted_index.h"

#include <algorithm>
#include <set>

#include "common/macros.h"

namespace claks {

namespace {

const std::vector<Posting> kEmptyPostings;

// Canonical posting order: (table, row, attribute). Build emits postings
// in this order naturally; the delta path inserts at lower_bound to keep
// it, so overlay lists and rebuilt lists compare equal.
bool PostingBefore(const Posting& p, const Posting& q) {
  if (p.tuple.table != q.tuple.table) return p.tuple.table < q.tuple.table;
  if (p.tuple.row != q.tuple.row) return p.tuple.row < q.tuple.row;
  return p.attribute_index < q.attribute_index;
}

std::vector<uint32_t> TextAttrs(const TableSchema& schema) {
  std::vector<uint32_t> text_attrs;
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    const AttributeDef& attr = schema.attribute(a);
    if (attr.searchable && attr.type == ValueType::kString) {
      text_attrs.push_back(a);
    }
  }
  return text_attrs;
}

}  // namespace

InvertedIndex::InvertedIndex(const Database* db, Tokenizer tokenizer)
    : db_(db), tokenizer_(std::move(tokenizer)) {
  CLAKS_CHECK(db_ != nullptr);
  Build();
}

void InvertedIndex::Build() {
  auto base = std::make_shared<BaseIndex>();
  stats_ = IndexStats{};
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    const Table& table = db_->table(t);
    std::vector<uint32_t> text_attrs = TextAttrs(table.schema());
    if (text_attrs.empty()) continue;
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      if (table.IsDeleted(r)) continue;
      const Row& row = table.row(r);
      for (uint32_t a : text_attrs) {
        if (row[a].is_null()) continue;
        auto tokens = tokenizer_.Tokenize(row[a].AsString());
        if (tokens.empty()) continue;
        ++stats_.total_documents;
        stats_.total_tokens += tokens.size();
        std::unordered_map<std::string, uint32_t> tf;
        for (const auto& token : tokens) ++tf[token];
        for (const auto& [token, count] : tf) {
          base->postings[token].push_back(Posting{TupleId{t, r}, a, count});
        }
      }
    }
  }
  // Document frequencies: distinct tuples per token.
  for (const auto& [token, plist] : base->postings) {
    std::set<uint64_t> tuples;
    for (const Posting& p : plist) tuples.insert(p.tuple.Pack());
    base->document_frequency[token] = tuples.size();
  }
  if (stats_.total_documents > 0) {
    stats_.avg_document_length =
        static_cast<double>(stats_.total_tokens) /
        static_cast<double>(stats_.total_documents);
  }
  vocab_size_ = base->postings.size();
  overlay_postings_.clear();
  overlay_df_.clear();
  base_ = std::move(base);
}

std::vector<Posting>& InvertedIndex::MutablePostings(
    const std::string& token) {
  auto it = overlay_postings_.find(token);
  if (it != overlay_postings_.end()) return it->second;
  auto base_it = base_->postings.find(token);
  std::vector<Posting> copy;
  if (base_it != base_->postings.end()) {
    copy = base_it->second;
    overlay_df_.emplace(token, base_->document_frequency.at(token));
  } else {
    overlay_df_.emplace(token, 0);
  }
  return overlay_postings_.emplace(token, std::move(copy)).first->second;
}

void InvertedIndex::ApplyRow(uint32_t table, uint32_t row, int sign) {
  const Table& tab = db_->table(table);
  std::vector<uint32_t> text_attrs = TextAttrs(tab.schema());
  if (text_attrs.empty()) return;
  const Row& values = tab.row(row);
  for (uint32_t a : text_attrs) {
    if (values[a].is_null()) continue;
    auto tokens = tokenizer_.Tokenize(values[a].AsString());
    if (tokens.empty()) continue;
    if (sign > 0) {
      ++stats_.total_documents;
      stats_.total_tokens += tokens.size();
    } else {
      CLAKS_CHECK_GE(stats_.total_documents, 1u);
      CLAKS_CHECK_GE(stats_.total_tokens, tokens.size());
      --stats_.total_documents;
      stats_.total_tokens -= tokens.size();
    }
    std::unordered_map<std::string, uint32_t> tf;
    for (const auto& token : tokens) ++tf[token];
    for (const auto& [token, count] : tf) {
      std::vector<Posting>& list = MutablePostings(token);
      bool was_empty = list.empty();
      Posting posting{TupleId{table, row}, a, count};
      auto pos =
          std::lower_bound(list.begin(), list.end(), posting, PostingBefore);
      if (sign > 0) {
        // df counts distinct tuples: only the tuple's first attribute with
        // this token bumps it.
        bool tuple_present = false;
        for (const Posting& p : list) {
          if (p.tuple.table == table && p.tuple.row == row) {
            tuple_present = true;
            break;
          }
        }
        list.insert(pos, posting);
        if (!tuple_present) ++overlay_df_[token];
        if (was_empty) ++vocab_size_;
      } else {
        CLAKS_CHECK(pos != list.end() && pos->tuple.table == table &&
                    pos->tuple.row == row && pos->attribute_index == a);
        list.erase(pos);
        bool tuple_remains = false;
        for (const Posting& p : list) {
          if (p.tuple.table == table && p.tuple.row == row) {
            tuple_remains = true;
            break;
          }
        }
        if (!tuple_remains) --overlay_df_[token];
        if (list.empty()) --vocab_size_;
      }
    }
  }
}

std::unique_ptr<InvertedIndex> InvertedIndex::Derive(
    const InvertedIndex& prev, const Database* next_db,
    const DatabaseDelta& delta) {
  CLAKS_CHECK(next_db != nullptr);
  CLAKS_CHECK(!delta.schema_changed);
  std::unique_ptr<InvertedIndex> index(new InvertedIndex(prev));
  index->db_ = next_db;
  for (const DeltaOp& op : delta.deletes) {
    index->ApplyRow(op.table, op.row, -1);
  }
  for (const DeltaOp& op : delta.inserts) {
    index->ApplyRow(op.table, op.row, +1);
  }
  if (index->stats_.total_documents > 0) {
    index->stats_.avg_document_length =
        static_cast<double>(index->stats_.total_tokens) /
        static_cast<double>(index->stats_.total_documents);
  } else {
    index->stats_.avg_document_length = 0.0;
  }
  return index;
}

void InvertedIndex::Compact() {
  if (IsCompact()) return;
  auto next = std::make_shared<BaseIndex>();
  next->postings = base_->postings;
  next->document_frequency = base_->document_frequency;
  for (auto& [token, list] : overlay_postings_) {
    if (list.empty()) {
      next->postings.erase(token);
      next->document_frequency.erase(token);
    } else {
      next->postings[token] = std::move(list);
      next->document_frequency[token] = overlay_df_.at(token);
    }
  }
  overlay_postings_.clear();
  overlay_df_.clear();
  base_ = std::move(next);
  CLAKS_CHECK_EQ(vocab_size_, base_->postings.size());
}

const std::vector<Posting>& InvertedIndex::Lookup(
    const std::string& token) const {
  if (!overlay_postings_.empty()) {
    auto it = overlay_postings_.find(token);
    if (it != overlay_postings_.end()) return it->second;
  }
  auto it = base_->postings.find(token);
  return it == base_->postings.end() ? kEmptyPostings : it->second;
}

const std::vector<Posting>& InvertedIndex::LookupKeyword(
    const std::string& keyword) const {
  return Lookup(tokenizer_.NormalizeToken(keyword));
}

size_t InvertedIndex::DocumentFrequency(const std::string& token) const {
  if (!overlay_df_.empty()) {
    auto it = overlay_df_.find(token);
    if (it != overlay_df_.end()) return it->second;
  }
  auto it = base_->document_frequency.find(token);
  return it == base_->document_frequency.end() ? 0 : it->second;
}

}  // namespace claks
