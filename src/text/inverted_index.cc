// Copyright 2026 The claks Authors.

#include "text/inverted_index.h"

#include <set>

#include "common/macros.h"

namespace claks {

namespace {
const std::vector<Posting> kEmptyPostings;
}  // namespace

InvertedIndex::InvertedIndex(const Database* db, Tokenizer tokenizer)
    : db_(db), tokenizer_(std::move(tokenizer)) {
  CLAKS_CHECK(db_ != nullptr);
  Build();
}

void InvertedIndex::Build() {
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    const Table& table = db_->table(t);
    const TableSchema& schema = table.schema();
    std::vector<uint32_t> text_attrs;
    for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
      const AttributeDef& attr = schema.attribute(a);
      if (attr.searchable && attr.type == ValueType::kString) {
        text_attrs.push_back(a);
      }
    }
    if (text_attrs.empty()) continue;
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      const Row& row = table.row(r);
      for (uint32_t a : text_attrs) {
        if (row[a].is_null()) continue;
        auto tokens = tokenizer_.Tokenize(row[a].AsString());
        if (tokens.empty()) continue;
        ++stats_.total_documents;
        stats_.total_tokens += tokens.size();
        std::unordered_map<std::string, uint32_t> tf;
        for (const auto& token : tokens) ++tf[token];
        for (const auto& [token, count] : tf) {
          postings_[token].push_back(Posting{TupleId{t, r}, a, count});
        }
      }
    }
  }
  // Document frequencies: distinct tuples per token.
  for (const auto& [token, plist] : postings_) {
    std::set<uint64_t> tuples;
    for (const Posting& p : plist) tuples.insert(p.tuple.Pack());
    document_frequency_[token] = tuples.size();
  }
  if (stats_.total_documents > 0) {
    stats_.avg_document_length =
        static_cast<double>(stats_.total_tokens) /
        static_cast<double>(stats_.total_documents);
  }
}

const std::vector<Posting>& InvertedIndex::Lookup(
    const std::string& token) const {
  auto it = postings_.find(token);
  return it == postings_.end() ? kEmptyPostings : it->second;
}

const std::vector<Posting>& InvertedIndex::LookupKeyword(
    const std::string& keyword) const {
  return Lookup(tokenizer_.NormalizeToken(keyword));
}

size_t InvertedIndex::DocumentFrequency(const std::string& token) const {
  auto it = document_frequency_.find(token);
  return it == document_frequency_.end() ? 0 : it->second;
}

}  // namespace claks
