// Copyright 2026 The claks Authors.
//
// Keyword query parsing and keyword-to-tuple matching. For a query
// "Smith XML" the matcher produces, per keyword, the set of tuples whose
// searchable text contains that keyword — the inputs of connection search.
//
// Entry points: ParseKeywordQuery (normalises through the index's
// tokenizer, collapses duplicates) then MatchKeywords against the
// inverted index (text/inverted_index.h). KeywordSearchEngine::Search
// calls both on every query and feeds the KeywordMatches to the chosen
// search method; core/mtjnt.h folds them into per-tuple keyword masks
// (DISCOVER's R^S partition semantics), and text/scoring.h turns the
// per-attribute hit counts into the text component of ranking. Keywords
// with no matches yield empty entries — AND/OR semantics stay with the
// caller (SearchOptions::require_all_keywords).

#ifndef CLAKS_TEXT_MATCHER_H_
#define CLAKS_TEXT_MATCHER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/inverted_index.h"

namespace claks {

/// A parsed keyword query.
struct KeywordQuery {
  std::vector<std::string> keywords;  ///< normalised, in query order

  std::string ToString() const;
};

/// Parses whitespace-separated keywords and normalises them with the index
/// tokenizer. Duplicate keywords collapse.
KeywordQuery ParseKeywordQuery(const std::string& text,
                               const Tokenizer& tokenizer);

/// Where and how often one keyword matched one tuple.
struct TupleMatch {
  TupleId tuple;
  /// attribute index -> term frequency within that attribute.
  std::map<uint32_t, uint32_t> attribute_hits;

  uint32_t TotalFrequency() const;
};

/// All matches of one keyword.
struct KeywordMatches {
  std::string keyword;
  std::vector<TupleMatch> matches;  ///< sorted by TupleId

  bool empty() const { return matches.empty(); }
  std::set<TupleId> TupleSet() const;
};

/// Runs a query against the index: one KeywordMatches per query keyword.
/// Keywords with no matches yield an empty entry (the caller decides
/// AND/OR semantics).
std::vector<KeywordMatches> MatchKeywords(const InvertedIndex& index,
                                          const KeywordQuery& query);

/// True if every keyword matched at least one tuple.
bool AllKeywordsMatched(const std::vector<KeywordMatches>& matches);

}  // namespace claks

#endif  // CLAKS_TEXT_MATCHER_H_
