// Copyright 2026 The claks Authors.

#include "text/matcher.h"

#include <algorithm>

#include "common/string_util.h"

namespace claks {

std::string KeywordQuery::ToString() const { return Join(keywords, " "); }

KeywordQuery ParseKeywordQuery(const std::string& text,
                               const Tokenizer& tokenizer) {
  KeywordQuery query;
  for (const auto& raw : SplitWhitespace(text)) {
    std::string normalised = tokenizer.NormalizeToken(raw);
    if (normalised.empty()) continue;
    if (std::find(query.keywords.begin(), query.keywords.end(),
                  normalised) == query.keywords.end()) {
      query.keywords.push_back(std::move(normalised));
    }
  }
  return query;
}

uint32_t TupleMatch::TotalFrequency() const {
  uint32_t total = 0;
  for (const auto& [attr, tf] : attribute_hits) total += tf;
  return total;
}

std::set<TupleId> KeywordMatches::TupleSet() const {
  std::set<TupleId> out;
  for (const TupleMatch& m : matches) out.insert(m.tuple);
  return out;
}

std::vector<KeywordMatches> MatchKeywords(const InvertedIndex& index,
                                          const KeywordQuery& query) {
  std::vector<KeywordMatches> out;
  out.reserve(query.keywords.size());
  for (const std::string& keyword : query.keywords) {
    KeywordMatches km;
    km.keyword = keyword;
    std::map<TupleId, TupleMatch> by_tuple;
    for (const Posting& posting : index.Lookup(keyword)) {
      TupleMatch& match = by_tuple[posting.tuple];
      match.tuple = posting.tuple;
      match.attribute_hits[posting.attribute_index] +=
          posting.term_frequency;
    }
    km.matches.reserve(by_tuple.size());
    for (auto& [tuple, match] : by_tuple) {
      km.matches.push_back(std::move(match));
    }
    out.push_back(std::move(km));
  }
  return out;
}

bool AllKeywordsMatched(const std::vector<KeywordMatches>& matches) {
  for (const auto& km : matches) {
    if (km.empty()) return false;
  }
  return !matches.empty();
}

}  // namespace claks
