// Copyright 2026 The claks Authors.
//
// Text relevance scoring: tf-idf / BM25-lite over the inverted index. Used
// as the content component of connection ranking (the paper combines text
// scores with structural scores; see core/ranking.h).
//
// Entry points: ScoreTupleMatch (the engine sums the best match per keyword
// over a hit's tuples to fill SearchHit::text_score, which flows into
// RankInput), ScoreMatches (the same best-per-keyword total over a match
// set), and InverseDocumentFrequency. Term and document statistics come
// from text/inverted_index.h; defaults in ScoringOptions disable length
// normalisation because tuple text is short.

#ifndef CLAKS_TEXT_SCORING_H_
#define CLAKS_TEXT_SCORING_H_

#include "text/matcher.h"

namespace claks {

/// Scoring parameters (BM25-style saturation).
struct ScoringOptions {
  double k1 = 1.2;  ///< term-frequency saturation
  double b = 0.0;   ///< length normalisation (0: off; tuple text is short)
};

/// Computes idf for a keyword: ln(1 + (N - df + 0.5) / (df + 0.5)).
double InverseDocumentFrequency(const InvertedIndex& index,
                                const std::string& keyword);

/// Score of one keyword match in one tuple: idf * saturated tf, summed over
/// the matched attributes.
double ScoreTupleMatch(const InvertedIndex& index, const std::string& keyword,
                       const TupleMatch& match,
                       const ScoringOptions& options = {});

/// Total text score of a set of keyword matches for one tuple set (sums the
/// best match per keyword). Used to score the keyword tuples of a
/// connection.
double ScoreMatches(const InvertedIndex& index,
                    const std::vector<KeywordMatches>& matches,
                    const ScoringOptions& options = {});

}  // namespace claks

#endif  // CLAKS_TEXT_SCORING_H_
