// Copyright 2026 The claks Authors.

#include "text/scoring.h"

#include <algorithm>
#include <cmath>

namespace claks {

double InverseDocumentFrequency(const InvertedIndex& index,
                                const std::string& keyword) {
  double n = static_cast<double>(index.stats().total_documents);
  double df = static_cast<double>(index.DocumentFrequency(keyword));
  if (n <= 0.0) return 0.0;
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double ScoreTupleMatch(const InvertedIndex& index, const std::string& keyword,
                       const TupleMatch& match,
                       const ScoringOptions& options) {
  double idf = InverseDocumentFrequency(index, keyword);
  double score = 0.0;
  for (const auto& [attr, tf] : match.attribute_hits) {
    double tfd = static_cast<double>(tf);
    score += idf * (tfd * (options.k1 + 1.0)) / (tfd + options.k1);
  }
  return score;
}

double ScoreMatches(const InvertedIndex& index,
                    const std::vector<KeywordMatches>& matches,
                    const ScoringOptions& options) {
  double total = 0.0;
  for (const KeywordMatches& km : matches) {
    double best = 0.0;
    for (const TupleMatch& match : km.matches) {
      best = std::max(best,
                      ScoreTupleMatch(index, km.keyword, match, options));
    }
    total += best;
  }
  return total;
}

}  // namespace claks
