// Copyright 2026 The claks Authors.

#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace claks {

const std::unordered_set<std::string>& DefaultStopwords() {
  static const std::unordered_set<std::string>* kStopwords =
      new std::unordered_set<std::string>{
          "a",   "an",  "and", "are", "as",   "at",   "be",  "by",
          "for", "in",  "is",  "it",  "of",   "on",   "or",  "the",
          "to",  "was", "with"};
  return *kStopwords;
}

Tokenizer::Tokenizer(TokenizerOptions options)
    : options_(std::move(options)) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string token;
  auto flush = [&] {
    if (token.size() >= options_.min_token_length &&
        options_.stopwords.find(token) == options_.stopwords.end()) {
      out.push_back(token);
    }
    token.clear();
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      token += options_.lowercase
                   ? static_cast<char>(
                         std::tolower(static_cast<unsigned char>(c)))
                   : c;
    } else if (!token.empty()) {
      flush();
    }
  }
  if (!token.empty()) flush();
  return out;
}

std::string Tokenizer::NormalizeToken(std::string_view token) const {
  std::string out;
  for (char c : token) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += options_.lowercase
                 ? static_cast<char>(
                       std::tolower(static_cast<unsigned char>(c)))
                 : c;
    }
  }
  return out;
}

}  // namespace claks
