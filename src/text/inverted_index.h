// Copyright 2026 The claks Authors.
//
// Inverted index over the searchable string attributes of a Database:
// token -> postings of (tuple, attribute, term frequency).
//
// Like the other warmed structures, storage splits into a frozen base
// shared between engine generations and a per-generation overlay: tokens
// whose posting lists changed since the freeze carry full replacement
// lists (still in canonical (table, row, attribute) order), so Derive()
// applies a row delta in O(tokens touched) while readers of the previous
// generation keep the old lists. Compact() folds the overlay into a fresh
// base equal to a from-scratch build over the same rows.

#ifndef CLAKS_TEXT_INVERTED_INDEX_H_
#define CLAKS_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/database.h"
#include "relational/delta.h"
#include "text/tokenizer.h"

namespace claks {

/// One posting: token occurs `term_frequency` times in attribute
/// `attribute_index` of tuple `tuple`.
struct Posting {
  TupleId tuple;
  uint32_t attribute_index = 0;
  uint32_t term_frequency = 0;
};

/// Index statistics needed by tf-idf scoring. The totals are integers
/// maintained exactly under deltas; the average is always derived from
/// them, so a delta-maintained index and a rebuilt one agree bit-for-bit.
struct IndexStats {
  size_t total_documents = 0;  ///< indexed (tuple, attribute) pairs
  size_t total_tokens = 0;
  double avg_document_length = 0.0;
};

class InvertedIndex {
 public:
  /// Builds the index over every searchable string attribute of `db`
  /// (tombstoned rows excluded). The database must outlive the index.
  InvertedIndex(const Database* db, Tokenizer tokenizer = Tokenizer());

  /// Derives the next generation's index from `prev` plus the row delta:
  /// shares the frozen base, re-tokenizes only the delta rows. Tombstoned
  /// rows keep their values, so deletes un-index exactly what inserts
  /// indexed.
  static std::unique_ptr<InvertedIndex> Derive(const InvertedIndex& prev,
                                               const Database* next_db,
                                               const DatabaseDelta& delta);

  /// Postings for a (normalised) token; empty vector if absent. Canonical
  /// (table, row, attribute) order, base or overlay alike.
  const std::vector<Posting>& Lookup(const std::string& token) const;

  /// Normalises `keyword` and looks it up.
  const std::vector<Posting>& LookupKeyword(const std::string& keyword) const;

  /// Number of distinct tokens with at least one live posting.
  size_t vocabulary_size() const { return vocab_size_; }

  /// Document frequency of a token: number of distinct tuples containing it.
  size_t DocumentFrequency(const std::string& token) const;

  /// Folds the overlay into a fresh frozen base (equal to a from-scratch
  /// build over the same live rows); tokens whose lists emptied vanish.
  void Compact();

  /// True when this index carries no overlay.
  bool IsCompact() const {
    return overlay_postings_.empty() && overlay_df_.empty();
  }

  const IndexStats& stats() const { return stats_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const Database& database() const { return *db_; }

 private:
  /// Immutable once published (shared across generations).
  struct BaseIndex {
    std::unordered_map<std::string, std::vector<Posting>> postings;
    std::unordered_map<std::string, size_t> document_frequency;
  };

  InvertedIndex() = default;

  /// Snapshot save/load (storage/snapshot.cc) serializes the frozen base
  /// and installs a loaded one (plus stats/vocab) directly.
  friend class StorageCodec;

  void Build();
  /// Adds (sign +1) or removes (sign -1) one row's postings via the
  /// overlay maps.
  void ApplyRow(uint32_t table, uint32_t row, int sign);
  /// The mutable posting list of `token`, materializing a copy of the
  /// frozen base list (and its df) on first touch.
  std::vector<Posting>& MutablePostings(const std::string& token);

  const Database* db_ = nullptr;
  Tokenizer tokenizer_;
  std::shared_ptr<const BaseIndex> base_;
  // Per-generation overlay: full replacement lists / counts for tokens
  // touched since the freeze. An empty replacement list masks a base
  // token entirely.
  std::unordered_map<std::string, std::vector<Posting>> overlay_postings_;
  std::unordered_map<std::string, size_t> overlay_df_;
  size_t vocab_size_ = 0;
  IndexStats stats_;
};

}  // namespace claks

#endif  // CLAKS_TEXT_INVERTED_INDEX_H_
