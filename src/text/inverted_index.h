// Copyright 2026 The claks Authors.
//
// Inverted index over the searchable string attributes of a Database:
// token -> postings of (tuple, attribute, term frequency).

#ifndef CLAKS_TEXT_INVERTED_INDEX_H_
#define CLAKS_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/database.h"
#include "text/tokenizer.h"

namespace claks {

/// One posting: token occurs `term_frequency` times in attribute
/// `attribute_index` of tuple `tuple`.
struct Posting {
  TupleId tuple;
  uint32_t attribute_index = 0;
  uint32_t term_frequency = 0;
};

/// Index statistics needed by tf-idf scoring.
struct IndexStats {
  size_t total_documents = 0;  ///< indexed (tuple, attribute) pairs
  size_t total_tokens = 0;
  double avg_document_length = 0.0;
};

class InvertedIndex {
 public:
  /// Builds the index over every searchable string attribute of `db`.
  /// The database must outlive the index.
  InvertedIndex(const Database* db, Tokenizer tokenizer = Tokenizer());

  /// Postings for a (normalised) token; empty vector if absent.
  const std::vector<Posting>& Lookup(const std::string& token) const;

  /// Normalises `keyword` and looks it up.
  const std::vector<Posting>& LookupKeyword(const std::string& keyword) const;

  /// Number of distinct tokens.
  size_t vocabulary_size() const { return postings_.size(); }

  /// Document frequency of a token: number of distinct tuples containing it.
  size_t DocumentFrequency(const std::string& token) const;

  const IndexStats& stats() const { return stats_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const Database& database() const { return *db_; }

 private:
  void Build();

  const Database* db_;
  Tokenizer tokenizer_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<std::string, size_t> document_frequency_;
  IndexStats stats_;
};

}  // namespace claks

#endif  // CLAKS_TEXT_INVERTED_INDEX_H_
