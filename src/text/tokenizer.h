// Copyright 2026 The claks Authors.
//
// Tokenization and normalisation of attribute text. A keyword "may match the
// whole attribute value or a word in a text attribute" (paper §3); the
// tokenizer provides the word view.

#ifndef CLAKS_TEXT_TOKENIZER_H_
#define CLAKS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace claks {

/// Tokenizer options.
struct TokenizerOptions {
  /// Lowercase all tokens (keyword matching in the paper is
  /// case-insensitive: "Smith" matches "Smith", "XML" matches "XML.").
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
  /// Tokens to drop entirely (already lowercased when lowercase is set).
  std::unordered_set<std::string> stopwords;
};

/// Returns a conservative English stopword list ("the", "of", "and", ...).
const std::unordered_set<std::string>& DefaultStopwords();

/// Splits text into alphanumeric word tokens; every non-alphanumeric
/// character is a separator, so "XML." tokenizes to "xml" and
/// "DB-project" to "db", "project".
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Normalises a single keyword the same way tokens are normalised.
  std::string NormalizeToken(std::string_view token) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace claks

#endif  // CLAKS_TEXT_TOKENIZER_H_
