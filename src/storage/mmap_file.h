// Copyright 2026 The claks Authors.
//
// Read-only memory mapping of a snapshot file. The mapping is shared —
// a FlatVector view into the file holds the MmapFile alive through its
// keepalive shared_ptr, so the bytes outlive every engine generation
// that still references them (mmap lifetime == last reader, exactly
// like the RCU snapshot lifetime it feeds).

#ifndef CLAKS_STORAGE_MMAP_FILE_H_
#define CLAKS_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace claks {

class MmapFile {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_PRIVATE). NotFound when the
  /// file cannot be opened, Internal on a mapping failure.
  static Result<std::shared_ptr<const MmapFile>> Open(
      const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const {
    return static_cast<const uint8_t*>(mapped_);
  }
  size_t size() const { return size_; }

 private:
  MmapFile(void* mapped, size_t size) : mapped_(mapped), size_(size) {}

  // Kept non-const because munmap takes void*; all access is const.
  void* mapped_ = nullptr;
  size_t size_ = 0;
};

}  // namespace claks

#endif  // CLAKS_STORAGE_MMAP_FILE_H_
