// Copyright 2026 The claks Authors.
//
// On-disk snapshot format of a warmed engine generation (the claks
// storage engine, src/storage/snapshot.h). One page-aligned file:
//
//   +--------------------------------+  offset 0
//   | StoredHeader                   |  magic, version, checksums
//   +--------------------------------+
//   | StoredSection[section_count]   |  per-section offset table
//   +--------------------------------+  page-aligned
//   | section payload ...            |  one per SectionKind
//   +--------------------------------+  page-aligned
//   | ...                            |
//   +--------------------------------+  total_file_size
//
// Integrity: `header_checksum` covers the header (with the field itself
// zeroed) plus the section table; `file_checksum` covers every byte
// after the section table; each StoredSection additionally carries the
// FNV-1a of its own payload. Together they make any single bit flip or
// truncation anywhere in the file a deterministic load failure — the
// guarantee tests/storage_fuzz_test.cc asserts.
//
// Layout discipline (enforced by the `storage-format` claks_lint rule):
// every on-disk struct is defined in this file, is trivially copyable,
// and pins its exact size and alignment with static_asserts. Flat
// arrays of engine PODs (DataEdge, DataAdjacency, Posting, FkEdge,
// uint32_t) are stored in their exact in-memory layout so the loader
// maps them zero-copy (common/flat_vector.h views); their sizes are
// pinned below too, so an accidental field addition breaks the build,
// not the format.
//
// Endianness and padding: multi-byte integers are written in host byte
// order with an endianness marker in the header (a foreign-endian file
// is rejected, not byte-swapped), and none of the stored structs or
// mapped PODs contain padding bytes — every file byte is meaningful,
// which is what makes whole-file checksumming reproducible.

#ifndef CLAKS_STORAGE_FORMAT_H_
#define CLAKS_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "graph/data_graph.h"
#include "relational/database.h"
#include "text/inverted_index.h"

namespace claks {

/// File magic: "CLKSNAP1" (8 bytes, no terminator).
inline constexpr char kSnapshotMagic[8] = {'C', 'L', 'K', 'S',
                                           'N', 'A', 'P', '1'};
/// Written as a native uint32_t; reads back as 0x04030201 on a
/// foreign-endian host, which the loader rejects.
inline constexpr uint32_t kSnapshotEndianMarker = 0x01020304;
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr uint32_t kSnapshotPageSize = 4096;

/// Section payloads, in file order. Values are part of the format —
/// never renumber, only append.
enum class SectionKind : uint32_t {
  kCatalog = 1,     ///< relational catalog text (relational/catalog_io.h)
  kErModel = 2,     ///< ER schema + relational mapping (binary records)
  kTables = 3,      ///< row values, tombstones, tombstone logs
  kJoinIndexes = 4, ///< per-FK dense parent + children CSR + FK edge list
  kGraph = 5,       ///< data-graph CSR (graph/data_graph.h GraphBase)
  kTextIndex = 6,   ///< inverted index: term table, token arena, postings
  kStatistics = 7,  ///< instance statistics records
};
inline constexpr uint32_t kSnapshotSectionCount = 7;

struct StoredHeader {
  char magic[8];
  uint32_t endian;
  uint32_t format_version;
  uint32_t page_size;
  uint32_t section_count;
  uint64_t total_file_size;
  uint64_t file_checksum;    ///< FNV-1a of [body_start, total_file_size)
  uint64_t header_checksum;  ///< FNV-1a of header (field zeroed) + table
};
static_assert(sizeof(StoredHeader) == 48, "on-disk layout is frozen");
static_assert(alignof(StoredHeader) == 8, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredHeader>::value,
              "on-disk structs are mapped, not parsed");

/// One entry of the section table that directly follows the header.
struct StoredSection {
  uint32_t kind;  ///< SectionKind
  uint32_t reserved;
  uint64_t offset;  ///< absolute, page-aligned
  uint64_t size;    ///< payload bytes (excluding alignment padding)
  uint64_t checksum;
};
static_assert(sizeof(StoredSection) == 32, "on-disk layout is frozen");
static_assert(alignof(StoredSection) == 8, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredSection>::value,
              "on-disk structs are mapped, not parsed");

/// kGraph section prologue.
struct StoredGraphInfo {
  uint64_t num_nodes;
  uint64_t live_edges;
  uint32_t num_tables;
  uint32_t reserved;
};
static_assert(sizeof(StoredGraphInfo) == 24, "on-disk layout is frozen");
static_assert(alignof(StoredGraphInfo) == 8, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredGraphInfo>::value,
              "on-disk structs are mapped, not parsed");

/// One FK join index in the kJoinIndexes section.
struct StoredJoinIndexInfo {
  uint32_t table;
  uint32_t fk_index;
  uint32_t referenced_table;
  uint32_t valid;
};
static_assert(sizeof(StoredJoinIndexInfo) == 16,
              "on-disk layout is frozen");
static_assert(alignof(StoredJoinIndexInfo) == 4,
              "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredJoinIndexInfo>::value,
              "on-disk structs are mapped, not parsed");

/// kTextIndex section prologue.
struct StoredTextIndexInfo {
  uint64_t vocabulary_size;
  uint64_t total_documents;
  uint64_t total_tokens;
  uint64_t distinct_tokens;  ///< term-table entries
};
static_assert(sizeof(StoredTextIndexInfo) == 32,
              "on-disk layout is frozen");
static_assert(alignof(StoredTextIndexInfo) == 8,
              "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredTextIndexInfo>::value,
              "on-disk structs are mapped, not parsed");

/// One distinct token of the inverted index: its text (in the token
/// arena), document frequency, and posting slice (in the flat posting
/// array).
struct StoredTermInfo {
  uint64_t token_offset;  ///< byte offset into the token arena
  uint64_t document_frequency;
  uint64_t posting_offset;  ///< element offset into the posting array
  uint64_t posting_count;
  uint32_t token_length;
  uint32_t reserved;
};
static_assert(sizeof(StoredTermInfo) == 40, "on-disk layout is frozen");
static_assert(alignof(StoredTermInfo) == 8, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredTermInfo>::value,
              "on-disk structs are mapped, not parsed");

/// One RelationshipStats record in the kStatistics section; the
/// relationship name lives in the section's string arena.
struct StoredStatsRecord {
  uint64_t link_count;
  uint64_t left_participants;
  uint64_t right_participants;
  uint64_t left_total;
  uint64_t right_total;
  uint64_t name_offset;
  uint32_t name_length;
  uint32_t reserved;
};
static_assert(sizeof(StoredStatsRecord) == 56, "on-disk layout is frozen");
static_assert(alignof(StoredStatsRecord) == 8, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable<StoredStatsRecord>::value,
              "on-disk structs are mapped, not parsed");

// The engine PODs whose flat arrays are mapped zero-copy. Their layout
// is part of the format: a new field (or reordered member) changes the
// file format and must bump kSnapshotFormatVersion.
static_assert(sizeof(TupleId) == 8 && alignof(TupleId) == 4,
              "TupleId layout is part of the snapshot format");
static_assert(sizeof(DataEdge) == 20 && alignof(DataEdge) == 4,
              "DataEdge layout is part of the snapshot format");
static_assert(sizeof(DataAdjacency) == 12 && alignof(DataAdjacency) == 4,
              "DataAdjacency layout is part of the snapshot format "
              "(along_fk is uint32_t so there are no padding bytes)");
static_assert(sizeof(FkEdge) == 20 && alignof(FkEdge) == 4,
              "FkEdge layout is part of the snapshot format");
static_assert(sizeof(Posting) == 16 && alignof(Posting) == 4,
              "Posting layout is part of the snapshot format");
static_assert(std::is_trivially_copyable<TupleId>::value &&
                  std::is_trivially_copyable<DataEdge>::value &&
                  std::is_trivially_copyable<DataAdjacency>::value &&
                  std::is_trivially_copyable<FkEdge>::value &&
                  std::is_trivially_copyable<Posting>::value,
              "mapped PODs must be trivially copyable");

/// The format's only checksum: FNV-style xor-multiply folding applied
/// 64 bits at a time across four independent lanes (32 bytes per step),
/// with a byte-at-a-time FNV-1a tail. Each lane update is a bijection
/// of the lane state for any fixed input word AND a bijection of the
/// word for any fixed state (xor, then multiply by an odd constant),
/// and the final combine is a bijection of every lane — so corrupting
/// any single word (in particular flipping any single bit) provably
/// changes the checksum, the property the corruption tests lean on.
/// Word-wise folding hashes an order of magnitude faster than the
/// classic byte loop, keeping validation off the mmap cold-start
/// critical path.
inline uint64_t SnapshotChecksum64(const void* data, size_t size,
                                   uint64_t seed = 14695981039346656037ULL) {
  constexpr uint64_t kPrime = 1099511628211ULL;  // 64-bit FNV prime
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h0 = seed;
  uint64_t h1 = seed ^ 0x9e3779b97f4a7c15ULL;
  uint64_t h2 = seed ^ 0xc2b2ae3d27d4eb4fULL;
  uint64_t h3 = seed ^ 0x165667b19e3779f9ULL;
  size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    uint64_t w0;
    uint64_t w1;
    uint64_t w2;
    uint64_t w3;
    std::memcpy(&w0, bytes + i, 8);
    std::memcpy(&w1, bytes + i + 8, 8);
    std::memcpy(&w2, bytes + i + 16, 8);
    std::memcpy(&w3, bytes + i + 24, 8);
    h0 = (h0 ^ w0) * kPrime;
    h1 = (h1 ^ w1) * kPrime;
    h2 = (h2 ^ w2) * kPrime;
    h3 = (h3 ^ w3) * kPrime;
  }
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, bytes + i, 8);
    h0 = (h0 ^ w) * kPrime;
  }
  uint64_t hash =
      (((h1 * kPrime ^ h2) * kPrime ^ h3) * kPrime ^ h0) * kPrime;
  for (; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

}  // namespace claks

#endif  // CLAKS_STORAGE_FORMAT_H_
