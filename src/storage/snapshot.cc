// Copyright 2026 The claks Authors.
//
// Snapshot writer + loader (see storage/snapshot.h and storage/format.h
// for the contract). StorageCodec is the single friend the engine's
// frozen structures open up to: Save reads the built bases through
// public accessors where possible and the friend door where not; Load
// *installs* — it never replays mutations. In particular the table
// loader builds each BaseSegment's pk_index from live rows only
// (mirroring Table::Rebase), because naive insert-replay would trip the
// duplicate-primary-key check the moment a snapshot contains a deleted
// key that was later reinserted into a different slot.

#include "storage/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/shard.h"
#include "er/er_to_relational.h"
#include "graph/schema_graph.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "relational/catalog_io.h"
#include "storage/format.h"
#include "storage/mmap_file.h"

namespace claks {

// Storage-engine metrics (catalog: docs/OBSERVABILITY.md).
CLAKS_METRIC_COUNTER(g_storage_saves, "claks_storage_saves_total",
                     "Engine snapshots serialized to disk");
CLAKS_METRIC_COUNTER(g_storage_loads, "claks_storage_loads_total",
                     "Engine snapshots loaded from disk");
CLAKS_METRIC_COUNTER(g_storage_load_failures,
                     "claks_storage_load_failures_total",
                     "Snapshot loads rejected (corruption, bad format)");
CLAKS_METRIC_HISTOGRAM(g_storage_save_us, "claks_storage_save_duration_us",
                       "Wall time of SaveEngineSnapshot");
CLAKS_METRIC_HISTOGRAM(g_storage_load_us, "claks_storage_load_duration_us",
                       "Wall time of LoadEngineSnapshot");
CLAKS_METRIC_HISTOGRAM(g_storage_file_bytes, "claks_storage_snapshot_bytes",
                       "Size of written snapshot files");

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

constexpr size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

Status TruncatedError(const std::string& what) {
  return MakeStorageError(StorageError::kTruncated, what);
}

Status MalformedError(const std::string& what) {
  return MakeStorageError(StorageError::kMalformed, what);
}

Status ChecksumError(const std::string& what) {
  return MakeStorageError(StorageError::kChecksumMismatch, what);
}

// ---------------------------------------------------------------------------
// Section buffers
// ---------------------------------------------------------------------------

/// Append-only byte buffer for one section payload. Multi-byte writes
/// go through memcpy (no alignment assumptions); arrays are 8-aligned
/// within the section so the loader can map them in place (sections
/// start page-aligned, so section-relative alignment is absolute
/// alignment).
class SectionWriter {
 public:
  void Align8() { buf_.resize(AlignUp(buf_.size(), 8), '\0'); }

  void PutRaw(const void* data, size_t size) {
    if (size == 0) return;  // empty vectors may hand us nullptr
    buf_.append(static_cast<const char*>(data), size);
  }
  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    PutRaw(&value, sizeof(T));
  }
  void PutU8(uint8_t v) { Put(v); }
  void PutU32(uint32_t v) { Put(v); }
  void PutU64(uint64_t v) { Put(v); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  /// u64 count, 8-aligned element data.
  template <typename T>
  void PutArray(const T* data, size_t count) {
    PutU64(count);
    Align8();
    PutRaw(data, count * sizeof(T));
  }

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over one mapped section payload. Every overrun
/// or impossible count is a typed kMalformed error, never UB — the
/// checksums upstream make these unreachable for honest files, but the
/// loader must hold up even if they are bypassed.
class SectionReader {
 public:
  SectionReader(const uint8_t* data, size_t size, const char* name)
      : data_(data), size_(size), name_(name) {}

  Status Align8() {
    pos_ = AlignUp(pos_, 8);
    if (pos_ > size_) return Overrun();
    return Status::OK();
  }
  Status GetRaw(void* out, size_t size) {
    CLAKS_RETURN_NOT_OK(Need(size));
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return Status::OK();
  }
  template <typename T>
  Status Get(T* out) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    return GetRaw(out, sizeof(T));
  }
  Status GetU8(uint8_t* out) { return Get(out); }
  Status GetU32(uint32_t* out) { return Get(out); }
  Status GetU64(uint64_t* out) { return Get(out); }
  Status GetString(std::string* out) {
    uint32_t length = 0;
    CLAKS_RETURN_NOT_OK(GetU32(&length));
    CLAKS_RETURN_NOT_OK(Need(length));
    out->assign(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return Status::OK();
  }
  /// Borrows `size` raw bytes in place (no copy).
  Status GetRawView(const uint8_t** out, size_t size) {
    CLAKS_RETURN_NOT_OK(Need(size));
    *out = data_ + pos_;
    pos_ += size;
    return Status::OK();
  }
  /// Zero-copy array view: u64 count, 8-aligned element data, pointer
  /// into the mapping.
  template <typename T>
  Status GetArray(const T** out, uint64_t* count) {
    CLAKS_RETURN_NOT_OK(GetU64(count));
    CLAKS_RETURN_NOT_OK(Align8());
    if (*count > (size_ - pos_) / sizeof(T)) return Overrun();
    *out = reinterpret_cast<const T*>(data_ + pos_);
    pos_ += *count * sizeof(T);
    return Status::OK();
  }

 private:
  Status Need(size_t size) {
    if (size > size_ - pos_) return Overrun();
    return Status::OK();
  }
  Status Overrun() const {
    return MalformedError(std::string("section ") + name_ +
                          " ends mid-record");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  const char* name_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Error typing
// ---------------------------------------------------------------------------

const char* StorageErrorName(StorageError code) {
  switch (code) {
    case StorageError::kNone: return "none";
    case StorageError::kTruncated: return "truncated";
    case StorageError::kBadMagic: return "bad-magic";
    case StorageError::kBadVersion: return "bad-version";
    case StorageError::kBadEndianness: return "bad-endianness";
    case StorageError::kChecksumMismatch: return "checksum-mismatch";
    case StorageError::kMalformed: return "malformed";
  }
  return "unknown";
}

Status MakeStorageError(StorageError code, const std::string& message) {
  std::string full = std::string("snapshot[") + StorageErrorName(code) +
                     "]: " + message;
  if (code == StorageError::kChecksumMismatch) {
    return Status::IntegrityViolation(full);
  }
  return Status::ParseError(full);
}

StorageError StorageErrorOf(const Status& status) {
  if (status.ok()) return StorageError::kNone;
  const std::string& message = status.message();
  constexpr StorageError kAll[] = {
      StorageError::kTruncated,      StorageError::kBadMagic,
      StorageError::kBadVersion,     StorageError::kBadEndianness,
      StorageError::kChecksumMismatch, StorageError::kMalformed,
  };
  for (StorageError code : kAll) {
    std::string prefix = std::string("snapshot[") + StorageErrorName(code) +
                         "]:";
    if (message.compare(0, prefix.size(), prefix) == 0) return code;
  }
  return StorageError::kNone;
}

// ---------------------------------------------------------------------------
// StorageCodec
// ---------------------------------------------------------------------------

/// The one class the engine's frozen structures befriend. All state is
/// per-call; the methods are static.
class StorageCodec {
 public:
  static Status Save(const KeywordSearchEngine& engine,
                     const std::string& path);
  static Result<LoadedEngine> Load(const std::string& path);

 private:
  // Save-side section builders.
  static void WriteErModel(const ERSchema& er,
                           const ErRelationalMapping& mapping,
                           SectionWriter* w);
  static void WriteTables(const Database& db, SectionWriter* w);
  static void WriteJoinIndexes(const Database& db, SectionWriter* w);
  static void WriteGraph(const DataGraph& graph, SectionWriter* w);
  static void WriteTextIndex(const InvertedIndex& index, SectionWriter* w);
  static void WriteStatistics(const InstanceStatistics& stats,
                              SectionWriter* w);

  // Load-side section installers. `keepalive` is the mapped file every
  // zero-copy FlatVector view pins.
  static Status ReadErModel(SectionReader* r, ERSchema* er,
                            ErRelationalMapping* mapping);
  static Status ReadTables(SectionReader* r, Database* db);
  static Status ReadOneTable(SectionReader* r, Table* table);
  static Status ReadJoinIndexes(SectionReader* r, Database* db,
                                std::shared_ptr<const void> keepalive);
  static Result<std::unique_ptr<DataGraph>> ReadGraph(
      SectionReader* r, const Database* db,
      std::shared_ptr<const void> keepalive);
  static Result<std::unique_ptr<InvertedIndex>> ReadTextIndex(
      SectionReader* r, const Database* db);
  static Result<std::unique_ptr<InstanceStatistics>> ReadStatistics(
      SectionReader* r);
};

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

namespace {

void WriteErAttributes(const std::vector<ErAttribute>& attributes,
                       SectionWriter* w) {
  w->PutU32(static_cast<uint32_t>(attributes.size()));
  for (const ErAttribute& attr : attributes) {
    w->PutString(attr.name);
    w->PutU32(static_cast<uint32_t>(attr.type));
    uint32_t flags = (attr.is_key ? 1u : 0u) |
                     (attr.searchable ? 2u : 0u) |
                     (attr.nullable ? 4u : 0u);
    w->PutU32(flags);
  }
}

Status ReadErAttributes(SectionReader* r,
                        std::vector<ErAttribute>* attributes) {
  uint32_t count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&count));
  attributes->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ErAttribute attr;
    CLAKS_RETURN_NOT_OK(r->GetString(&attr.name));
    uint32_t type = 0;
    uint32_t flags = 0;
    CLAKS_RETURN_NOT_OK(r->GetU32(&type));
    CLAKS_RETURN_NOT_OK(r->GetU32(&flags));
    if (type > static_cast<uint32_t>(ValueType::kString)) {
      return MalformedError("ER attribute with unknown value type");
    }
    attr.type = static_cast<ValueType>(type);
    attr.is_key = (flags & 1u) != 0;
    attr.searchable = (flags & 2u) != 0;
    attr.nullable = (flags & 4u) != 0;
    attributes->push_back(std::move(attr));
  }
  return Status::OK();
}

}  // namespace

void StorageCodec::WriteErModel(const ERSchema& er,
                                const ErRelationalMapping& mapping,
                                SectionWriter* w) {
  w->PutU32(static_cast<uint32_t>(er.entity_types().size()));
  for (const EntityType& entity : er.entity_types()) {
    w->PutString(entity.name);
    WriteErAttributes(entity.attributes, w);
  }
  w->PutU32(static_cast<uint32_t>(er.relationships().size()));
  for (const RelationshipType& rel : er.relationships()) {
    w->PutString(rel.name);
    w->PutString(rel.left_entity);
    w->PutString(rel.right_entity);
    w->PutU32(static_cast<uint32_t>(rel.cardinality));
    WriteErAttributes(rel.attributes, w);
  }
  w->PutU32(static_cast<uint32_t>(mapping.tables.size()));
  for (const auto& [table_name, info] : mapping.tables) {
    w->PutString(table_name);
    w->PutU32(info.is_middle_relation ? 1u : 0u);
    w->PutString(info.er_name);
  }
  w->PutU32(static_cast<uint32_t>(mapping.foreign_keys.size()));
  for (const auto& [key, info] : mapping.foreign_keys) {
    w->PutString(key.first);
    w->PutU64(key.second);
    w->PutString(info.relationship);
    w->PutU32(info.references_left ? 1u : 0u);
  }
}

Status StorageCodec::ReadErModel(SectionReader* r, ERSchema* er,
                                 ErRelationalMapping* mapping) {
  uint32_t entity_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&entity_count));
  for (uint32_t i = 0; i < entity_count; ++i) {
    EntityType entity;
    CLAKS_RETURN_NOT_OK(r->GetString(&entity.name));
    CLAKS_RETURN_NOT_OK(ReadErAttributes(r, &entity.attributes));
    CLAKS_RETURN_NOT_OK(er->AddEntityType(std::move(entity)));
  }
  uint32_t rel_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&rel_count));
  for (uint32_t i = 0; i < rel_count; ++i) {
    RelationshipType rel;
    CLAKS_RETURN_NOT_OK(r->GetString(&rel.name));
    CLAKS_RETURN_NOT_OK(r->GetString(&rel.left_entity));
    CLAKS_RETURN_NOT_OK(r->GetString(&rel.right_entity));
    uint32_t cardinality = 0;
    CLAKS_RETURN_NOT_OK(r->GetU32(&cardinality));
    if (cardinality > static_cast<uint32_t>(Cardinality::kNM)) {
      return MalformedError("relationship with unknown cardinality");
    }
    rel.cardinality = static_cast<Cardinality>(cardinality);
    CLAKS_RETURN_NOT_OK(ReadErAttributes(r, &rel.attributes));
    CLAKS_RETURN_NOT_OK(er->AddRelationship(std::move(rel)));
  }
  uint32_t table_map_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&table_map_count));
  for (uint32_t i = 0; i < table_map_count; ++i) {
    std::string table_name;
    TableErInfo info;
    uint32_t is_middle = 0;
    CLAKS_RETURN_NOT_OK(r->GetString(&table_name));
    CLAKS_RETURN_NOT_OK(r->GetU32(&is_middle));
    CLAKS_RETURN_NOT_OK(r->GetString(&info.er_name));
    info.is_middle_relation = is_middle != 0;
    mapping->tables.emplace(std::move(table_name), std::move(info));
  }
  uint32_t fk_map_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&fk_map_count));
  for (uint32_t i = 0; i < fk_map_count; ++i) {
    std::string table_name;
    uint64_t fk_index = 0;
    FkErInfo info;
    uint32_t references_left = 0;
    CLAKS_RETURN_NOT_OK(r->GetString(&table_name));
    CLAKS_RETURN_NOT_OK(r->GetU64(&fk_index));
    CLAKS_RETURN_NOT_OK(r->GetString(&info.relationship));
    CLAKS_RETURN_NOT_OK(r->GetU32(&references_left));
    info.references_left = references_left != 0;
    mapping->foreign_keys.emplace(
        std::make_pair(std::move(table_name),
                       static_cast<size_t>(fk_index)),
        std::move(info));
  }
  return Status::OK();
}

void StorageCodec::WriteTables(const Database& db, SectionWriter* w) {
  w->PutU32(static_cast<uint32_t>(db.num_tables()));
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    const TableSchema& schema = table.schema();
    size_t slots = table.num_rows();
    // Each table's encoding is length-prefixed (and 8-aligned, so array
    // alignment inside the body holds absolutely) — the loader slices
    // the section into per-table extents without parsing them and hands
    // whole tables to parallel decode workers.
    SectionWriter body;
    body.PutU64(slots);
    // Tombstone flags (effective state: base prefix + overlay), as one
    // flat array for a single bulk read.
    std::vector<uint8_t> flags(slots, 0);
    for (size_t rowi = 0; rowi < slots; ++rowi) {
      if (table.IsDeleted(rowi)) flags[rowi] = 1;
    }
    body.PutArray(flags.data(), flags.size());
    // Deletion log, in deletion order (the delta path diffs it).
    std::vector<uint32_t> tombstones(table.tombstone_count());
    for (size_t i = 0; i < tombstones.size(); ++i) {
      tombstones[i] = table.Tombstone(i);
    }
    body.PutArray(tombstones.data(), tombstones.size());
    // Row values. Tombstoned slots keep their values (delta maintenance
    // un-indexes them), so every slot serializes in full.
    for (size_t rowi = 0; rowi < slots; ++rowi) {
      const Row& row = table.row(rowi);
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        const Value& value = row[a];
        body.PutU8(static_cast<uint8_t>(value.type()));
        switch (value.type()) {
          case ValueType::kNull:
            break;
          case ValueType::kInt64: {
            int64_t v = value.AsInt64();
            body.Put(v);
            break;
          }
          case ValueType::kDouble: {
            double v = value.AsDouble();
            body.Put(v);
            break;
          }
          case ValueType::kBool:
            body.PutU8(value.AsBool() ? 1 : 0);
            break;
          case ValueType::kString:
            body.PutString(value.AsString());
            break;
        }
      }
    }
    w->PutU64(body.bytes().size());
    w->Align8();
    w->PutRaw(body.bytes().data(), body.bytes().size());
  }
}

Status StorageCodec::ReadOneTable(SectionReader* r, Table* table) {
  const TableSchema& schema = table->schema();
  uint64_t slots = 0;
  CLAKS_RETURN_NOT_OK(r->GetU64(&slots));
  auto segment = std::make_shared<Table::BaseSegment>();

  const uint8_t* flags = nullptr;
  uint64_t flag_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&flags, &flag_count));
  if (flag_count != slots) {
    return MalformedError("tombstone flags do not cover every slot");
  }
  segment->deleted.assign(slots, false);
  for (uint64_t rowi = 0; rowi < slots; ++rowi) {
    if (flags[rowi] != 0) {
      segment->deleted[rowi] = true;
      ++segment->deleted_count;
    }
  }

  const uint32_t* tombstones = nullptr;
  uint64_t log = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&tombstones, &log));
  segment->tombstone_log.assign(tombstones, tombstones + log);

  segment->rows.reserve(slots);
  for (uint64_t rowi = 0; rowi < slots; ++rowi) {
    Row row;
    row.reserve(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      uint8_t tag = 0;
      CLAKS_RETURN_NOT_OK(r->GetU8(&tag));
      if (tag > static_cast<uint8_t>(ValueType::kString)) {
        return MalformedError("row value with unknown type tag");
      }
      switch (static_cast<ValueType>(tag)) {
        case ValueType::kNull:
          row.push_back(Value::Null());
          break;
        case ValueType::kInt64: {
          int64_t v = 0;
          CLAKS_RETURN_NOT_OK(r->Get(&v));
          row.push_back(Value::Int64(v));
          break;
        }
        case ValueType::kDouble: {
          double v = 0.0;
          CLAKS_RETURN_NOT_OK(r->Get(&v));
          row.push_back(Value::Double(v));
          break;
        }
        case ValueType::kBool: {
          uint8_t v = 0;
          CLAKS_RETURN_NOT_OK(r->GetU8(&v));
          row.push_back(Value::Bool(v != 0));
          break;
        }
        case ValueType::kString: {
          std::string v;
          CLAKS_RETURN_NOT_OK(r->GetString(&v));
          row.push_back(Value::String(std::move(v)));
          break;
        }
      }
    }
    segment->rows.push_back(std::move(row));
  }
  // pk_index over *live* rows only, like Table::Rebase: a deleted key
  // may have been legally reinserted into a later slot, so replaying
  // inserts would fail where installing cannot.
  segment->pk_index.reserve(slots - segment->deleted_count);
  for (size_t rowi = 0; rowi < segment->rows.size(); ++rowi) {
    if (segment->deleted[rowi]) continue;
    segment->pk_index.emplace(table->KeyOfRow(segment->rows[rowi]), rowi);
  }
  table->base_ = std::move(segment);
  return Status::OK();
}

Status StorageCodec::ReadTables(SectionReader* r, Database* db) {
  uint32_t table_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&table_count));
  if (table_count != db->num_tables()) {
    return MalformedError("table section does not match the catalog");
  }

  // Slice the length-prefixed per-table extents without parsing them.
  struct TableSlice {
    const uint8_t* data = nullptr;
    size_t size = 0;
  };
  std::vector<TableSlice> slices(table_count);
  size_t total_bytes = 0;
  for (uint32_t t = 0; t < table_count; ++t) {
    uint64_t length = 0;
    CLAKS_RETURN_NOT_OK(r->GetU64(&length));
    CLAKS_RETURN_NOT_OK(r->Align8());
    CLAKS_RETURN_NOT_OK(r->GetRawView(&slices[t].data, length));
    slices[t].size = length;
    total_bytes += length;
  }

  // Row materialization is the one load stage that cannot be zero-copy
  // (rows own their values), so it is the one stage worth fanning out:
  // whole tables go to workers — disjoint Table objects, no shared
  // mutable state, deterministic output. Tiny sections decode serially;
  // thread spawn would cost more than the rows.
  constexpr size_t kParallelDecodeBytes = 256 << 10;
  size_t workers = std::min<size_t>(
      table_count, std::thread::hardware_concurrency() > 0
                       ? std::thread::hardware_concurrency()
                       : 1);
  std::vector<Status> statuses(table_count, Status::OK());
  auto decode = [&](uint32_t t) {
    SectionReader body(slices[t].data, slices[t].size, "tables");
    statuses[t] = ReadOneTable(&body, db->mutable_table(t));
  };
  if (workers <= 1 || total_bytes < kParallelDecodeBytes) {
    for (uint32_t t = 0; t < table_count; ++t) decode(t);
  } else {
    ThreadPool pool(workers, table_count);
    for (uint32_t t = 0; t < table_count; ++t) {
      pool.Submit([&decode, t] { decode(t); });
    }
    pool.Drain();
  }
  for (const Status& status : statuses) {
    CLAKS_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

void StorageCodec::WriteJoinIndexes(const Database& db, SectionWriter* w) {
  // ResolveAllFkEdges also guarantees the canonical edge list is fresh
  // before it is serialized below.
  const std::vector<FkEdge>& fk_edges = db.ResolveAllFkEdges();
  w->PutU32(static_cast<uint32_t>(db.num_tables()));
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    const auto& fks = db.table(t).schema().foreign_keys();
    w->PutU32(static_cast<uint32_t>(fks.size()));
    for (uint32_t f = 0; f < fks.size(); ++f) {
      const FkJoinIndex& index = db.JoinIndex(t, f);
      StoredJoinIndexInfo info;
      info.table = index.table;
      info.fk_index = index.fk_index;
      info.referenced_table = index.referenced_table;
      info.valid = index.valid ? 1 : 0;
      w->Align8();
      w->Put(info);
      w->PutArray(index.base->parent_row.data(),
                  index.base->parent_row.size());
      w->PutArray(index.base->child_offsets.data(),
                  index.base->child_offsets.size());
      w->PutArray(index.base->child_rows.data(),
                  index.base->child_rows.size());
    }
  }
  w->PutArray(fk_edges.data(), fk_edges.size());
}

Status StorageCodec::ReadJoinIndexes(SectionReader* r, Database* db,
                                     std::shared_ptr<const void> keepalive) {
  uint32_t table_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetU32(&table_count));
  if (table_count != db->num_tables()) {
    return MalformedError("join-index section does not match the catalog");
  }
  MutexLock lock(&db->join_index_mutex_);
  db->join_indexes_.assign(table_count, {});
  db->indexed_row_counts_.resize(table_count);
  db->indexed_tombstone_counts_.resize(table_count);
  for (uint32_t t = 0; t < table_count; ++t) {
    const Table& table = db->table(t);
    db->indexed_row_counts_[t] = table.num_rows();
    db->indexed_tombstone_counts_[t] = table.tombstone_count();
    uint32_t fk_count = 0;
    CLAKS_RETURN_NOT_OK(r->GetU32(&fk_count));
    if (fk_count != table.schema().foreign_keys().size()) {
      return MalformedError("join-index FK count does not match schema");
    }
    db->join_indexes_[t].resize(fk_count);
    for (uint32_t f = 0; f < fk_count; ++f) {
      StoredJoinIndexInfo info;
      CLAKS_RETURN_NOT_OK(r->Align8());
      CLAKS_RETURN_NOT_OK(r->Get(&info));
      if (info.table != t || info.fk_index != f ||
          (info.valid != 0 && info.referenced_table >= table_count)) {
        return MalformedError("join-index record out of order");
      }
      FkJoinIndex& index = db->join_indexes_[t][f];
      index.table = t;
      index.fk_index = f;
      index.referenced_table = info.referenced_table;
      index.valid = info.valid != 0;
      const uint32_t* parent_row = nullptr;
      const uint32_t* child_offsets = nullptr;
      const uint32_t* child_rows = nullptr;
      uint64_t parents = 0;
      uint64_t offsets = 0;
      uint64_t children = 0;
      CLAKS_RETURN_NOT_OK(r->GetArray(&parent_row, &parents));
      CLAKS_RETURN_NOT_OK(r->GetArray(&child_offsets, &offsets));
      CLAKS_RETURN_NOT_OK(r->GetArray(&child_rows, &children));
      auto base = std::make_shared<FkJoinIndex::Base>();
      base->parent_row =
          FlatVector<uint32_t>::View(parent_row, parents, keepalive);
      base->child_offsets =
          FlatVector<uint32_t>::View(child_offsets, offsets, keepalive);
      base->child_rows =
          FlatVector<uint32_t>::View(child_rows, children, keepalive);
      index.base = std::move(base);
    }
  }
  const FkEdge* edges = nullptr;
  uint64_t edge_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&edges, &edge_count));
  db->all_fk_edges_.assign(edges, edges + edge_count);
  db->fk_edges_built_.store(true, std::memory_order_release);
  db->join_indexes_built_.store(true, std::memory_order_release);
  return Status::OK();
}

void StorageCodec::WriteGraph(const DataGraph& graph, SectionWriter* w) {
  const auto& base = *graph.base_;
  StoredGraphInfo info;
  info.num_nodes = graph.num_nodes_;
  info.live_edges = graph.live_edges_;
  info.num_tables = static_cast<uint32_t>(graph.table_slots_.size());
  info.reserved = 0;
  w->Align8();
  w->Put(info);
  w->PutArray(graph.table_slots_.data(), graph.table_slots_.size());
  w->PutArray(base.node_offsets.data(), base.node_offsets.size());
  w->PutArray(base.base_slots.data(), base.base_slots.size());
  w->PutArray(base.edges.data(), base.edges.size());
  w->PutArray(base.edge_dense_offsets.data(), base.edge_dense_offsets.size());
  w->PutArray(base.edge_offsets.data(), base.edge_offsets.size());
  w->PutArray(base.out_edge_offsets.data(), base.out_edge_offsets.size());
  w->PutArray(base.adjacency_offsets.data(), base.adjacency_offsets.size());
  w->PutArray(base.adjacency.data(), base.adjacency.size());
}

Result<std::unique_ptr<DataGraph>> StorageCodec::ReadGraph(
    SectionReader* r, const Database* db,
    std::shared_ptr<const void> keepalive) {
  StoredGraphInfo info;
  CLAKS_RETURN_NOT_OK(r->Align8());
  CLAKS_RETURN_NOT_OK(r->Get(&info));
  if (info.num_tables != db->num_tables()) {
    return MalformedError("graph section does not match the catalog");
  }
  // NOLINTNEXTLINE(modernize-make-unique): private constructor.
  std::unique_ptr<DataGraph> graph(new DataGraph());
  graph->db_ = db;
  graph->num_nodes_ = info.num_nodes;
  graph->live_edges_ = info.live_edges;

  const uint32_t* table_slots = nullptr;
  uint64_t table_slot_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&table_slots, &table_slot_count));
  if (table_slot_count != info.num_tables) {
    return MalformedError("graph table_slots arity mismatch");
  }
  graph->table_slots_.assign(table_slots, table_slots + table_slot_count);

  auto base = std::make_shared<DataGraph::GraphBase>();
  auto read_u32 = [&](FlatVector<uint32_t>* out, size_t expect_count,
                      const char* what) -> Status {
    const uint32_t* data = nullptr;
    uint64_t count = 0;
    CLAKS_RETURN_NOT_OK(r->GetArray(&data, &count));
    if (expect_count != 0 && count != expect_count) {
      return MalformedError(std::string("graph array arity mismatch: ") +
                            what);
    }
    *out = FlatVector<uint32_t>::View(data, count, keepalive);
    return Status::OK();
  };
  size_t tables_plus_1 = static_cast<size_t>(info.num_tables) + 1;
  CLAKS_RETURN_NOT_OK(
      read_u32(&base->node_offsets, tables_plus_1, "node_offsets"));
  CLAKS_RETURN_NOT_OK(
      read_u32(&base->base_slots, info.num_tables, "base_slots"));

  const DataEdge* edges = nullptr;
  uint64_t edge_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&edges, &edge_count));
  base->edges = FlatVector<DataEdge>::View(edges, edge_count, keepalive);

  CLAKS_RETURN_NOT_OK(read_u32(&base->edge_dense_offsets, tables_plus_1,
                               "edge_dense_offsets"));
  CLAKS_RETURN_NOT_OK(
      read_u32(&base->edge_offsets, tables_plus_1, "edge_offsets"));
  CLAKS_RETURN_NOT_OK(read_u32(&base->out_edge_offsets, 0,
                               "out_edge_offsets"));
  CLAKS_RETURN_NOT_OK(read_u32(&base->adjacency_offsets, 0,
                               "adjacency_offsets"));

  const DataAdjacency* adjacency = nullptr;
  uint64_t adjacency_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&adjacency, &adjacency_count));
  base->adjacency =
      FlatVector<DataAdjacency>::View(adjacency, adjacency_count, keepalive);

  const DataGraph::GraphBase& built = *base;
  if (built.node_offsets.empty() ||
      built.out_edge_offsets.size() !=
          static_cast<size_t>(built.node_offsets.back()) + 1 ||
      built.adjacency_offsets.size() != built.out_edge_offsets.size() ||
      built.adjacency_offsets.back() != adjacency_count) {
    return MalformedError("graph CSR arrays are inconsistent");
  }
  graph->base_ = std::move(base);
  graph->appended_edges_.assign(info.num_tables, {});
  return graph;
}

void StorageCodec::WriteTextIndex(const InvertedIndex& index,
                                  SectionWriter* w) {
  const auto& base = *index.base_;
  // Deterministic term order (unordered_map iteration is not): sort the
  // vocabulary so identical engines serialize to identical bytes.
  std::vector<const std::pair<const std::string, std::vector<Posting>>*>
      terms;
  terms.reserve(base.postings.size());
  for (const auto& entry : base.postings) terms.push_back(&entry);
  std::sort(terms.begin(), terms.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  StoredTextIndexInfo info;
  info.vocabulary_size = index.vocab_size_;
  info.total_documents = index.stats_.total_documents;
  info.total_tokens = index.stats_.total_tokens;
  info.distinct_tokens = terms.size();
  w->Align8();
  w->Put(info);

  std::string token_arena;
  std::vector<Posting> flat_postings;
  std::vector<StoredTermInfo> term_table;
  term_table.reserve(terms.size());
  for (const auto* term : terms) {
    StoredTermInfo entry;
    entry.token_offset = token_arena.size();
    entry.token_length = static_cast<uint32_t>(term->first.size());
    auto df = base.document_frequency.find(term->first);
    entry.document_frequency =
        df == base.document_frequency.end() ? 0 : df->second;
    entry.posting_offset = flat_postings.size();
    entry.posting_count = term->second.size();
    entry.reserved = 0;
    token_arena += term->first;
    flat_postings.insert(flat_postings.end(), term->second.begin(),
                         term->second.end());
    term_table.push_back(entry);
  }
  w->PutArray(term_table.data(), term_table.size());
  w->PutArray(flat_postings.data(), flat_postings.size());
  w->PutU64(token_arena.size());
  w->Align8();
  w->PutRaw(token_arena.data(), token_arena.size());
}

Result<std::unique_ptr<InvertedIndex>> StorageCodec::ReadTextIndex(
    SectionReader* r, const Database* db) {
  StoredTextIndexInfo info;
  CLAKS_RETURN_NOT_OK(r->Align8());
  CLAKS_RETURN_NOT_OK(r->Get(&info));

  const StoredTermInfo* terms = nullptr;
  uint64_t term_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&terms, &term_count));
  if (term_count != info.distinct_tokens) {
    return MalformedError("text-index term table arity mismatch");
  }
  const Posting* postings = nullptr;
  uint64_t posting_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&postings, &posting_count));
  uint64_t arena_size = 0;
  CLAKS_RETURN_NOT_OK(r->GetU64(&arena_size));
  CLAKS_RETURN_NOT_OK(r->Align8());
  const uint8_t* arena_bytes = nullptr;
  CLAKS_RETURN_NOT_OK(r->GetRawView(&arena_bytes, arena_size));
  const char* arena = reinterpret_cast<const char*>(arena_bytes);

  // NOLINTNEXTLINE(modernize-make-unique): private constructor.
  std::unique_ptr<InvertedIndex> index(new InvertedIndex());
  index->db_ = db;
  auto base = std::make_shared<InvertedIndex::BaseIndex>();
  base->postings.reserve(term_count);
  base->document_frequency.reserve(term_count);
  for (uint64_t i = 0; i < term_count; ++i) {
    const StoredTermInfo& entry = terms[i];
    if (entry.token_offset > arena_size ||
        entry.token_length > arena_size - entry.token_offset ||
        entry.posting_offset > posting_count ||
        entry.posting_count > posting_count - entry.posting_offset) {
      return MalformedError("text-index term slice out of bounds");
    }
    std::string token(arena + entry.token_offset, entry.token_length);
    std::vector<Posting> list(postings + entry.posting_offset,
                              postings + entry.posting_offset +
                                  entry.posting_count);
    base->document_frequency.emplace(token, entry.document_frequency);
    base->postings.emplace(std::move(token), std::move(list));
  }
  index->base_ = std::move(base);
  index->vocab_size_ = info.vocabulary_size;
  index->stats_.total_documents = info.total_documents;
  index->stats_.total_tokens = info.total_tokens;
  index->stats_.avg_document_length =
      info.total_documents > 0
          ? static_cast<double>(info.total_tokens) /
                static_cast<double>(info.total_documents)
          : 0.0;
  return index;
}

void StorageCodec::WriteStatistics(const InstanceStatistics& stats,
                                   SectionWriter* w) {
  std::string name_arena;
  std::vector<StoredStatsRecord> records;
  records.reserve(stats.all().size());
  for (const auto& [name, rs] : stats.all()) {
    StoredStatsRecord record;
    record.link_count = rs.link_count;
    record.left_participants = rs.left_participants;
    record.right_participants = rs.right_participants;
    record.left_total = rs.left_total;
    record.right_total = rs.right_total;
    record.name_offset = name_arena.size();
    record.name_length = static_cast<uint32_t>(name.size());
    record.reserved = 0;
    name_arena += name;
    records.push_back(record);
  }
  w->PutArray(records.data(), records.size());
  w->PutU64(name_arena.size());
  w->Align8();
  w->PutRaw(name_arena.data(), name_arena.size());
}

Result<std::unique_ptr<InstanceStatistics>> StorageCodec::ReadStatistics(
    SectionReader* r) {
  const StoredStatsRecord* records = nullptr;
  uint64_t record_count = 0;
  CLAKS_RETURN_NOT_OK(r->GetArray(&records, &record_count));
  uint64_t arena_size = 0;
  CLAKS_RETURN_NOT_OK(r->GetU64(&arena_size));
  CLAKS_RETURN_NOT_OK(r->Align8());
  const uint8_t* arena = nullptr;
  CLAKS_RETURN_NOT_OK(r->GetRawView(&arena, arena_size));

  // NOLINTNEXTLINE(modernize-make-unique): private constructor.
  std::unique_ptr<InstanceStatistics> stats(new InstanceStatistics());
  for (uint64_t i = 0; i < record_count; ++i) {
    const StoredStatsRecord& record = records[i];
    if (record.name_offset > arena_size ||
        record.name_length > arena_size - record.name_offset) {
      return MalformedError("statistics name slice out of bounds");
    }
    RelationshipStats rs;
    rs.relationship.assign(
        reinterpret_cast<const char*>(arena + record.name_offset),
        record.name_length);
    rs.link_count = record.link_count;
    rs.left_participants = record.left_participants;
    rs.right_participants = record.right_participants;
    rs.left_total = record.left_total;
    rs.right_total = record.right_total;
    std::string key = rs.relationship;
    stats->stats_.emplace(std::move(key), std::move(rs));
  }
  return stats;
}

// ---------------------------------------------------------------------------
// File assembly / validation
// ---------------------------------------------------------------------------

Status StorageCodec::Save(const KeywordSearchEngine& engine,
                          const std::string& path) {
  TraceSpan span("storage.save");
  auto start = std::chrono::steady_clock::now();
  const Database& db = engine.database();
  if (!engine.Warm()) {
    return Status::InvalidArgument(
        "SaveSnapshot requires a warm engine (call Warmup first)");
  }
  if (!engine.data_graph_->IsCompact() || !engine.index_->IsCompact() ||
      !db.JoinIndexesCompact()) {
    return Status::InvalidArgument(
        "SaveSnapshot requires a compact generation (derive overlays "
        "present; compact before saving)");
  }

  struct SectionBuf {
    SectionKind kind;
    SectionWriter writer;
  };
  std::vector<SectionBuf> sections(kSnapshotSectionCount);
  sections[0].kind = SectionKind::kCatalog;
  {
    std::string catalog = SerializeCatalog(db);
    sections[0].writer.PutRaw(catalog.data(), catalog.size());
  }
  sections[1].kind = SectionKind::kErModel;
  WriteErModel(engine.er_schema(), engine.mapping(), &sections[1].writer);
  sections[2].kind = SectionKind::kTables;
  WriteTables(db, &sections[2].writer);
  sections[3].kind = SectionKind::kJoinIndexes;
  WriteJoinIndexes(db, &sections[3].writer);
  sections[4].kind = SectionKind::kGraph;
  WriteGraph(*engine.data_graph_, &sections[4].writer);
  sections[5].kind = SectionKind::kTextIndex;
  WriteTextIndex(*engine.index_, &sections[5].writer);
  sections[6].kind = SectionKind::kStatistics;
  WriteStatistics(*engine.statistics_, &sections[6].writer);

  size_t table_end = sizeof(StoredHeader) +
                     sections.size() * sizeof(StoredSection);
  size_t cursor = AlignUp(table_end, kSnapshotPageSize);
  std::vector<StoredSection> table(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    const std::string& payload = sections[i].writer.bytes();
    table[i].kind = static_cast<uint32_t>(sections[i].kind);
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].size = payload.size();
    table[i].checksum = SnapshotChecksum64(payload.data(), payload.size());
    cursor = AlignUp(cursor + payload.size(), kSnapshotPageSize);
  }
  size_t total = cursor;

  std::string file(total, '\0');
  StoredHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.endian = kSnapshotEndianMarker;
  header.format_version = kSnapshotFormatVersion;
  header.page_size = kSnapshotPageSize;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.total_file_size = total;
  for (size_t i = 0; i < sections.size(); ++i) {
    const std::string& payload = sections[i].writer.bytes();
    std::memcpy(&file[table[i].offset], payload.data(), payload.size());
  }
  header.file_checksum =
      SnapshotChecksum64(file.data() + table_end, total - table_end);
  header.header_checksum = 0;
  std::memcpy(&file[sizeof(StoredHeader)], table.data(),
              table.size() * sizeof(StoredSection));
  uint64_t header_hash = SnapshotChecksum64(&header, sizeof(header));
  header.header_checksum =
      SnapshotChecksum64(file.data() + sizeof(StoredHeader),
              table.size() * sizeof(StoredSection), header_hash);
  std::memcpy(&file[0], &header, sizeof(header));

  // Atomic publish: write a sibling temp file, then rename over `path`.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot write '" + tmp + "'");
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!out.good()) {
      return Status::Internal("write failed for '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed for '" + path + "'");
  }
  g_storage_saves.Inc();
  g_storage_file_bytes.Observe(total);
  g_storage_save_us.Observe(ElapsedUs(start));
  return Status::OK();
}



Result<LoadedEngine> StorageCodec::Load(const std::string& path) {
  TraceSpan span("storage.load");
  auto start = std::chrono::steady_clock::now();
  CLAKS_ASSIGN_OR_RETURN(std::shared_ptr<const MmapFile> file,
                         MmapFile::Open(path));
  const uint8_t* data = file->data();
  size_t size = file->size();

  // --- Header validation (every branch is a typed rejection) ---
  if (size < sizeof(StoredHeader)) {
    return TruncatedError("file smaller than the header");
  }
  StoredHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return MakeStorageError(StorageError::kBadMagic,
                            "not a claks snapshot file");
  }
  if (header.endian != kSnapshotEndianMarker) {
    if (header.endian == 0x04030201u) {
      return MakeStorageError(
          StorageError::kBadEndianness,
          "snapshot was written on a foreign-endian host");
    }
    return MalformedError("unrecognized endianness marker");
  }
  if (header.format_version != kSnapshotFormatVersion) {
    return MakeStorageError(
        StorageError::kBadVersion,
        "snapshot format version " +
            std::to_string(header.format_version) +
            " (this build reads " +
            std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (header.page_size != kSnapshotPageSize ||
      header.section_count != kSnapshotSectionCount) {
    return MalformedError("unexpected page size or section count");
  }
  if (header.total_file_size != size) {
    return TruncatedError("file size does not match the header");
  }
  size_t table_end = sizeof(StoredHeader) +
                     header.section_count * sizeof(StoredSection);
  if (size < table_end) {
    return TruncatedError("file smaller than the section table");
  }
  StoredHeader zeroed = header;
  zeroed.header_checksum = 0;
  uint64_t header_hash = SnapshotChecksum64(&zeroed, sizeof(zeroed));
  header_hash = SnapshotChecksum64(data + sizeof(StoredHeader),
                        table_end - sizeof(StoredHeader), header_hash);
  if (header_hash != header.header_checksum) {
    return ChecksumError("header checksum mismatch");
  }
  if (SnapshotChecksum64(data + table_end, size - table_end) !=
      header.file_checksum) {
    return ChecksumError("file checksum mismatch");
  }

  std::vector<StoredSection> table(header.section_count);
  std::memcpy(table.data(), data + sizeof(StoredHeader),
              header.section_count * sizeof(StoredSection));
  const StoredSection* by_kind[kSnapshotSectionCount + 1] = {nullptr};
  for (const StoredSection& section : table) {
    if (section.kind == 0 || section.kind > kSnapshotSectionCount) {
      return MalformedError("unknown section kind");
    }
    if (by_kind[section.kind] != nullptr) {
      return MalformedError("duplicate section kind");
    }
    if (section.offset % kSnapshotPageSize != 0 ||
        section.offset > size || section.size > size - section.offset) {
      return TruncatedError("section extends past end of file");
    }
    // No per-section hash pass here: the file checksum above already
    // covers every section byte (and the inter-section padding), so a
    // second sweep would only re-hash the same bytes. The per-section
    // checksums stay in the format for offline tooling to localize
    // corruption once the file-level check has failed.
    by_kind[section.kind] = &section;
  }
  for (uint32_t kind = 1; kind <= kSnapshotSectionCount; ++kind) {
    if (by_kind[kind] == nullptr) {
      return MalformedError("missing section kind " + std::to_string(kind));
    }
  }
  auto reader_for = [&](SectionKind kind, const char* name) {
    const StoredSection* section = by_kind[static_cast<uint32_t>(kind)];
    return SectionReader(data + section->offset, section->size, name);
  };

  // --- Install, section by section ---
  LoadedEngine loaded;
  {
    const StoredSection* section =
        by_kind[static_cast<uint32_t>(SectionKind::kCatalog)];
    std::string catalog(
        reinterpret_cast<const char*>(data + section->offset),
        section->size);
    Result<std::vector<TableSchema>> schemas = ParseCatalog(catalog);
    if (!schemas.ok()) {
      return MalformedError("catalog section: " +
                            schemas.status().message());
    }
    std::vector<TableSchema> parsed = std::move(schemas).ValueUnsafe();
    loaded.db = std::make_unique<Database>();
    for (TableSchema& schema : parsed) {
      Result<Table*> added = loaded.db->AddTable(std::move(schema));
      if (!added.ok()) {
        return MalformedError("catalog section: " +
                              added.status().message());
      }
    }
  }
  ERSchema er_schema;
  ErRelationalMapping mapping;
  {
    SectionReader r = reader_for(SectionKind::kErModel, "er-model");
    CLAKS_RETURN_NOT_OK(ReadErModel(&r, &er_schema, &mapping));
  }
  {
    SectionReader r = reader_for(SectionKind::kTables, "tables");
    CLAKS_RETURN_NOT_OK(ReadTables(&r, loaded.db.get()));
  }
  {
    SectionReader r = reader_for(SectionKind::kJoinIndexes, "join-indexes");
    CLAKS_RETURN_NOT_OK(ReadJoinIndexes(&r, loaded.db.get(), file));
  }
  // NOLINTNEXTLINE(modernize-make-unique): private constructor.
  auto engine =
      std::unique_ptr<KeywordSearchEngine>(new KeywordSearchEngine());
  engine->db_ = loaded.db.get();
  engine->er_schema_ = std::make_unique<ERSchema>(std::move(er_schema));
  engine->mapping_ =
      std::make_unique<ErRelationalMapping>(std::move(mapping));
  {
    SectionReader r = reader_for(SectionKind::kGraph, "graph");
    CLAKS_ASSIGN_OR_RETURN(engine->data_graph_,
                           ReadGraph(&r, loaded.db.get(), file));
  }
  {
    SectionReader r = reader_for(SectionKind::kTextIndex, "text-index");
    CLAKS_ASSIGN_OR_RETURN(engine->index_,
                           ReadTextIndex(&r, loaded.db.get()));
  }
  {
    SectionReader r = reader_for(SectionKind::kStatistics, "statistics");
    CLAKS_ASSIGN_OR_RETURN(engine->statistics_, ReadStatistics(&r));
  }
  // Schema-sized structures are cheaper to rebuild than to serialize
  // (engine Derive does the same).
  engine->schema_graph_ = std::make_unique<SchemaGraph>(loaded.db.get());
  engine->analyzer_ = std::make_unique<AssociationAnalyzer>(
      loaded.db.get(), engine->er_schema_.get(), engine->mapping_.get(),
      engine->data_graph_.get());
  engine->overlay_ops_ = 0;
  loaded.engine = std::move(engine);

  g_storage_loads.Inc();
  g_storage_load_us.Observe(ElapsedUs(start));
  return loaded;
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Status SaveEngineSnapshot(const KeywordSearchEngine& engine,
                          const std::string& path) {
  return StorageCodec::Save(engine, path);
}

Result<LoadedEngine> LoadEngineSnapshot(const std::string& path) {
  Result<LoadedEngine> loaded = StorageCodec::Load(path);
  if (!loaded.ok()) g_storage_load_failures.Inc();
  return loaded;
}

Status KeywordSearchEngine::SaveSnapshot(const std::string& path) const {
  return SaveEngineSnapshot(*this, path);
}

Result<LoadedEngine> KeywordSearchEngine::LoadSnapshot(
    const std::string& path) {
  return LoadEngineSnapshot(path);
}

}  // namespace claks
