// Copyright 2026 The claks Authors.
//
// The claks storage engine: serialize a fully-warmed, compact engine
// generation into one page-aligned snapshot file (storage/format.h) and
// load it back with zero-copy views over the flat index and graph
// arrays (common/flat_vector.h over an mmap'd file, storage/
// mmap_file.h). Load cost is O(sections + rows-of-table-values +
// distinct-tokens), never O(postings) or O(edges): the big arrays — the
// data-graph CSR, the FK join indexes, the posting lists' flat storage —
// are served straight from the mapping.
//
// Lifetime: every FlatVector view holds the MmapFile alive, so the
// mapping lives exactly as long as the last engine generation sharing a
// frozen base that points into it — the same discipline as the in-memory
// RCU snapshots. Delta derivation on a loaded engine shares the mmap'd
// bases; the first compaction rebuilds owned arrays and drops the file.
//
// Save requires a compact generation (graph, join indexes and inverted
// index without overlays; InvalidArgument otherwise). Table tails are
// fine: tables serialize their effective row state. The service layer
// compacts before saving (SearchService::SaveSnapshot).

#ifndef CLAKS_STORAGE_SNAPSHOT_H_
#define CLAKS_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/engine.h"

namespace claks {

/// Typed classification of snapshot-load failures. Every loader error
/// Status carries one of these (recover it with StorageErrorOf); the
/// loader never crashes and never returns a partially-built engine on a
/// damaged file.
enum class StorageError {
  kNone = 0,        ///< the Status is OK or not a storage error
  kTruncated,       ///< file shorter than the header/sections claim
  kBadMagic,        ///< not a claks snapshot
  kBadVersion,      ///< format version this build cannot read
  kBadEndianness,   ///< written on a foreign-endian host
  kChecksumMismatch,///< header/section/file checksum failed
  kMalformed,       ///< structurally invalid section contents
};

/// Status factory: the code is encoded in the message prefix
/// ("snapshot[<code>]: ..."), the StatusCode is kParseError (structural)
/// or kIntegrityViolation (checksums).
Status MakeStorageError(StorageError code, const std::string& message);

/// The StorageError behind a loader Status (kNone for OK / foreign
/// statuses).
StorageError StorageErrorOf(const Status& status);
const char* StorageErrorName(StorageError code);

/// A loaded generation: the engine plus the database it reads. The
/// database must outlive the engine (keep the pair together; the service
/// stores both in its EngineSnapshot).
struct LoadedEngine {
  std::unique_ptr<Database> db;
  std::unique_ptr<KeywordSearchEngine> engine;
};

/// Serializes `engine`'s generation to `path` (atomic: written to a
/// temp file, then renamed). The engine must be warm and compact —
/// InvalidArgument otherwise (callers compact first; see
/// SearchService::SaveSnapshot).
Status SaveEngineSnapshot(const KeywordSearchEngine& engine,
                          const std::string& path);

/// Loads a snapshot written by SaveEngineSnapshot. Every query result on
/// the loaded engine is byte-identical to the saved one
/// (tests/differential_test.cc SnapshotRoundTrip* proves it).
Result<LoadedEngine> LoadEngineSnapshot(const std::string& path);

}  // namespace claks

#endif  // CLAKS_STORAGE_SNAPSHOT_H_
