// Copyright 2026 The claks Authors.

#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace claks {

Result<std::shared_ptr<const MmapFile>> MmapFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(hicpp-vararg)
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed for '" + path +
                            "': " + std::strerror(errno));
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::ParseError("snapshot '" + path + "' is empty");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents; the descriptor is not needed
  // afterwards.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return Status::Internal("mmap failed for '" + path +
                            "': " + std::strerror(errno));
  }
  return std::shared_ptr<const MmapFile>(new MmapFile(mapped, size));
}

MmapFile::~MmapFile() {
  if (mapped_ != nullptr) ::munmap(mapped_, size_);
}

}  // namespace claks
