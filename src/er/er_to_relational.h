// Copyright 2026 The claks Authors.
//
// ER -> relational mapping, following the textbook rules the paper states in
// §3: one relation per entity type; a foreign key on the N-side for each
// 1:N (and 1:1) relationship; a *middle relation* holding both foreign keys
// for each N:M relationship.
//
// The produced ErRelationalMapping is the bridge the core library uses to
// compute conceptual (ER) lengths and to annotate data-graph edges with
// cardinalities.

#ifndef CLAKS_ER_ER_TO_RELATIONAL_H_
#define CLAKS_ER_ER_TO_RELATIONAL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "er/er_model.h"
#include "relational/schema.h"

namespace claks {

/// How a relational table relates back to the ER schema.
struct TableErInfo {
  /// True if the table materialises an N:M relationship (a middle relation);
  /// false if it materialises an entity type.
  bool is_middle_relation = false;
  /// The entity-type name (entity tables) or relationship name (middle
  /// relations).
  std::string er_name;
};

/// How a foreign key relates back to the ER schema.
struct FkErInfo {
  /// The relationship this FK (or FK pair, for middle relations)
  /// implements.
  std::string relationship;
  /// For middle-relation FKs: true if this FK points at the relationship's
  /// *left* entity. For entity-table FKs: true if the referencing table is
  /// the relationship's left entity... i.e. records orientation. For an
  /// entity-table FK implementing "LEFT 1:N RIGHT", the FK lives on RIGHT
  /// and points at LEFT, so `references_left` is true.
  bool references_left = true;
};

/// The bidirectional bookkeeping between a relational schema and its ER
/// origin. Keys are table names (and FK index within the table).
struct ErRelationalMapping {
  std::map<std::string, TableErInfo> tables;
  std::map<std::pair<std::string, size_t>, FkErInfo> foreign_keys;

  /// True if `table_name` is a middle relation.
  bool IsMiddleRelation(const std::string& table_name) const;

  /// Entity-type name for an entity table; empty for middle relations.
  std::string EntityOf(const std::string& table_name) const;

  /// Relationship implemented by FK `fk_index` of `table_name`; empty if
  /// unknown.
  std::string RelationshipOf(const std::string& table_name,
                             size_t fk_index) const;

  const FkErInfo* FindFk(const std::string& table_name,
                         size_t fk_index) const;
};

/// Options controlling generated names.
struct ErToRelationalOptions {
  /// Overrides the generated FK attribute names for a relationship. For
  /// entity-side FKs, one name per key attribute of the referenced entity;
  /// for N:M, use "<rel>.left" / "<rel>.right" keys.
  std::map<std::string, std::vector<std::string>> fk_attribute_names;
};

/// Result of the forward mapping: table schemas (entities first, then middle
/// relations, both in declaration order) plus the mapping.
struct GeneratedRelationalSchema {
  std::vector<TableSchema> tables;
  ErRelationalMapping mapping;
};

/// Applies the mapping rules to `schema`.
Result<GeneratedRelationalSchema> GenerateRelationalSchema(
    const ERSchema& schema, const ErToRelationalOptions& options = {});

}  // namespace claks

#endif  // CLAKS_ER_ER_TO_RELATIONAL_H_
