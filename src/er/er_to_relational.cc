// Copyright 2026 The claks Authors.

#include "er/er_to_relational.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

bool ErRelationalMapping::IsMiddleRelation(
    const std::string& table_name) const {
  auto it = tables.find(table_name);
  return it != tables.end() && it->second.is_middle_relation;
}

std::string ErRelationalMapping::EntityOf(
    const std::string& table_name) const {
  auto it = tables.find(table_name);
  if (it == tables.end() || it->second.is_middle_relation) return "";
  return it->second.er_name;
}

std::string ErRelationalMapping::RelationshipOf(const std::string& table_name,
                                                size_t fk_index) const {
  const FkErInfo* info = FindFk(table_name, fk_index);
  return info != nullptr ? info->relationship : "";
}

const FkErInfo* ErRelationalMapping::FindFk(const std::string& table_name,
                                            size_t fk_index) const {
  auto it = foreign_keys.find({table_name, fk_index});
  return it == foreign_keys.end() ? nullptr : &it->second;
}

namespace {

AttributeDef ToAttributeDef(const ErAttribute& attr) {
  AttributeDef out;
  out.name = attr.name;
  out.type = attr.type;
  out.nullable = attr.nullable;
  out.searchable = attr.searchable;
  return out;
}

// Key attributes (name + type) of an entity, used to type FK columns.
std::vector<ErAttribute> KeyAttributes(const EntityType& entity) {
  std::vector<ErAttribute> out;
  for (const auto& attr : entity.attributes) {
    if (attr.is_key) out.push_back(attr);
  }
  return out;
}

// Default generated FK attribute name: "<entity>_<key>" lowercased entity
// prefix keeps generated schemas readable.
std::string DefaultFkName(const EntityType& entity,
                          const ErAttribute& key_attr) {
  return entity.name + "_" + key_attr.name;
}

}  // namespace

Result<GeneratedRelationalSchema> GenerateRelationalSchema(
    const ERSchema& schema, const ErToRelationalOptions& options) {
  CLAKS_RETURN_NOT_OK(schema.Validate());
  GeneratedRelationalSchema out;

  struct TableDraft {
    std::vector<AttributeDef> attributes;
    std::vector<std::string> primary_key;
    std::vector<ForeignKeyDef> foreign_keys;
    std::vector<std::string> fk_relationships;  // parallel to foreign_keys
    std::vector<bool> fk_references_left;
  };
  std::map<std::string, TableDraft> drafts;  // entity tables by entity name

  // Pass 1: entity tables.
  for (const EntityType& entity : schema.entity_types()) {
    TableDraft draft;
    for (const auto& attr : entity.attributes) {
      draft.attributes.push_back(ToAttributeDef(attr));
      if (attr.is_key) draft.primary_key.push_back(attr.name);
    }
    drafts.emplace(entity.name, std::move(draft));
  }

  auto fk_names_for = [&](const std::string& key,
                          const EntityType& referenced)
      -> std::vector<std::string> {
    auto it = options.fk_attribute_names.find(key);
    std::vector<ErAttribute> keys = KeyAttributes(referenced);
    std::vector<std::string> names;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (it != options.fk_attribute_names.end() &&
          i < it->second.size()) {
        names.push_back(it->second[i]);
      } else {
        names.push_back(DefaultFkName(referenced, keys[i]));
      }
    }
    return names;
  };

  // Pass 2: 1:1 and 1:N relationships add FKs to the N-side (right side for
  // 1:1); relationship attributes ride along.
  std::vector<const RelationshipType*> many_to_many;
  for (const RelationshipType& rel : schema.relationships()) {
    if (rel.cardinality == Cardinality::kNM) {
      many_to_many.push_back(&rel);
      continue;
    }
    // Determine the "one" side (referenced) and the "many" side (owner of
    // the FK). For 1:1 the right side owns the FK by convention.
    const bool left_is_one = LeftIsOne(rel.cardinality);
    const std::string& one_entity =
        left_is_one ? rel.left_entity : rel.right_entity;
    const std::string& many_entity =
        left_is_one ? rel.right_entity : rel.left_entity;
    if (one_entity == many_entity) {
      return Status::InvalidArgument(
          "self 1:N relationship '" + rel.name +
          "' is not supported by the generator (add an explicit FK)");
    }
    const EntityType* referenced = schema.FindEntity(one_entity);
    CLAKS_CHECK(referenced != nullptr);
    TableDraft& owner = drafts.at(many_entity);

    std::vector<std::string> fk_attrs = fk_names_for(rel.name, *referenced);
    std::vector<ErAttribute> ref_keys = KeyAttributes(*referenced);
    CLAKS_CHECK_EQ(fk_attrs.size(), ref_keys.size());
    for (size_t i = 0; i < fk_attrs.size(); ++i) {
      AttributeDef def;
      def.name = fk_attrs[i];
      def.type = ref_keys[i].type;
      def.nullable = false;
      def.searchable = false;  // key references carry no text semantics
      owner.attributes.push_back(def);
    }
    for (const auto& rel_attr : rel.attributes) {
      owner.attributes.push_back(ToAttributeDef(rel_attr));
    }
    ForeignKeyDef fk;
    fk.constraint_name = rel.name;
    fk.local_attributes = fk_attrs;
    fk.referenced_table = one_entity;
    fk.referenced_attributes = referenced->KeyAttributeNames();
    owner.foreign_keys.push_back(std::move(fk));
    owner.fk_relationships.push_back(rel.name);
    // The FK points at the "one" entity. references_left is true iff the
    // referenced (one) side is the relationship's left entity.
    owner.fk_references_left.push_back(one_entity == rel.left_entity);
  }

  // Emit entity tables in declaration order.
  for (const EntityType& entity : schema.entity_types()) {
    TableDraft& draft = drafts.at(entity.name);
    out.tables.emplace_back(entity.name, draft.attributes,
                            draft.primary_key, draft.foreign_keys);
    out.mapping.tables[entity.name] = TableErInfo{false, entity.name};
    for (size_t f = 0; f < draft.fk_relationships.size(); ++f) {
      out.mapping.foreign_keys[{entity.name, f}] =
          FkErInfo{draft.fk_relationships[f], draft.fk_references_left[f]};
    }
  }

  // Pass 3: middle relations for N:M relationships.
  for (const RelationshipType* rel : many_to_many) {
    const EntityType* left = schema.FindEntity(rel->left_entity);
    const EntityType* right = schema.FindEntity(rel->right_entity);
    CLAKS_CHECK(left != nullptr && right != nullptr);

    std::vector<std::string> left_attrs =
        fk_names_for(rel->name + ".left", *left);
    std::vector<std::string> right_attrs =
        fk_names_for(rel->name + ".right", *right);
    if (rel->left_entity == rel->right_entity && left_attrs == right_attrs) {
      // Self N:M: disambiguate the generated column names.
      for (auto& name : right_attrs) name += "_2";
    }

    std::vector<AttributeDef> attributes;
    std::vector<std::string> primary_key;
    std::vector<ErAttribute> left_keys = KeyAttributes(*left);
    std::vector<ErAttribute> right_keys = KeyAttributes(*right);
    for (size_t i = 0; i < left_attrs.size(); ++i) {
      AttributeDef def;
      def.name = left_attrs[i];
      def.type = left_keys[i].type;
      def.searchable = false;
      attributes.push_back(def);
      primary_key.push_back(left_attrs[i]);
    }
    for (size_t i = 0; i < right_attrs.size(); ++i) {
      AttributeDef def;
      def.name = right_attrs[i];
      def.type = right_keys[i].type;
      def.searchable = false;
      attributes.push_back(def);
      primary_key.push_back(right_attrs[i]);
    }
    for (const auto& rel_attr : rel->attributes) {
      attributes.push_back(ToAttributeDef(rel_attr));
    }

    std::vector<ForeignKeyDef> fks;
    ForeignKeyDef left_fk;
    left_fk.constraint_name = rel->name + "_left";
    left_fk.local_attributes = left_attrs;
    left_fk.referenced_table = rel->left_entity;
    left_fk.referenced_attributes = left->KeyAttributeNames();
    fks.push_back(std::move(left_fk));
    ForeignKeyDef right_fk;
    right_fk.constraint_name = rel->name + "_right";
    right_fk.local_attributes = right_attrs;
    right_fk.referenced_table = rel->right_entity;
    right_fk.referenced_attributes = right->KeyAttributeNames();
    fks.push_back(std::move(right_fk));

    out.tables.emplace_back(rel->name, attributes, primary_key, fks);
    out.mapping.tables[rel->name] = TableErInfo{true, rel->name};
    out.mapping.foreign_keys[{rel->name, 0}] = FkErInfo{rel->name, true};
    out.mapping.foreign_keys[{rel->name, 1}] = FkErInfo{rel->name, false};
  }

  for (const TableSchema& table : out.tables) {
    CLAKS_RETURN_NOT_OK(table.Validate().WithContext(
        "generated schema for '" + table.name() + "'"));
  }
  return out;
}

}  // namespace claks
