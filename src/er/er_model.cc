// Copyright 2026 The claks Authors.

#include "er/er_model.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

std::vector<std::string> EntityType::KeyAttributeNames() const {
  std::vector<std::string> out;
  for (const auto& attr : attributes) {
    if (attr.is_key) out.push_back(attr.name);
  }
  return out;
}

std::string RelationshipType::ToString() const {
  return left_entity + " " + CardinalityToString(cardinality) + " " +
         right_entity + " (" + name + ")";
}

ErPath::ErPath(const ERSchema* schema, std::string start_entity,
               std::vector<ErStep> steps)
    : schema_(schema),
      start_entity_(std::move(start_entity)),
      steps_(std::move(steps)) {
  CLAKS_CHECK(schema_ != nullptr);
}

std::vector<std::string> ErPath::EntitySequence() const {
  std::vector<std::string> out;
  out.push_back(start_entity_);
  for (const ErStep& step : steps_) {
    out.push_back(schema_->StepTarget(step));
  }
  return out;
}

std::string ErPath::EndEntity() const {
  return steps_.empty() ? start_entity_
                        : schema_->StepTarget(steps_.back());
}

std::vector<Cardinality> ErPath::CardinalitySequence() const {
  std::vector<Cardinality> out;
  out.reserve(steps_.size());
  for (const ErStep& step : steps_) {
    out.push_back(schema_->StepCardinality(step));
  }
  return out;
}

std::string ErPath::ToString() const {
  std::string out = ToLower(start_entity_);
  for (const ErStep& step : steps_) {
    out += " ";
    out += CardinalityToString(schema_->StepCardinality(step));
    out += " ";
    out += ToLower(schema_->StepTarget(step));
  }
  return out;
}

Status ERSchema::AddEntityType(EntityType entity) {
  if (entity.name.empty()) {
    return Status::InvalidArgument("entity type with empty name");
  }
  if (EntityIndex(entity.name).has_value()) {
    return Status::AlreadyExists("entity type '" + entity.name + "'");
  }
  entity_types_.push_back(std::move(entity));
  return Status::OK();
}

Status ERSchema::AddRelationship(RelationshipType relationship) {
  if (relationship.name.empty()) {
    return Status::InvalidArgument("relationship with empty name");
  }
  if (RelationshipIndex(relationship.name).has_value()) {
    return Status::AlreadyExists("relationship '" + relationship.name + "'");
  }
  if (!EntityIndex(relationship.left_entity).has_value()) {
    return Status::NotFound("entity '" + relationship.left_entity +
                            "' (left endpoint of '" + relationship.name +
                            "')");
  }
  if (!EntityIndex(relationship.right_entity).has_value()) {
    return Status::NotFound("entity '" + relationship.right_entity +
                            "' (right endpoint of '" + relationship.name +
                            "')");
  }
  relationships_.push_back(std::move(relationship));
  return Status::OK();
}

Status ERSchema::AddRelationship(const std::string& name,
                                 const std::string& left_entity,
                                 const std::string& cardinality,
                                 const std::string& right_entity,
                                 std::vector<ErAttribute> attributes) {
  CLAKS_ASSIGN_OR_RETURN(Cardinality c, ParseCardinality(cardinality));
  RelationshipType rel;
  rel.name = name;
  rel.left_entity = left_entity;
  rel.right_entity = right_entity;
  rel.cardinality = c;
  rel.attributes = std::move(attributes);
  return AddRelationship(std::move(rel));
}

std::optional<size_t> ERSchema::EntityIndex(const std::string& name) const {
  for (size_t i = 0; i < entity_types_.size(); ++i) {
    if (entity_types_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<size_t> ERSchema::RelationshipIndex(
    const std::string& name) const {
  for (size_t i = 0; i < relationships_.size(); ++i) {
    if (relationships_[i].name == name) return i;
  }
  return std::nullopt;
}

const EntityType* ERSchema::FindEntity(const std::string& name) const {
  auto idx = EntityIndex(name);
  return idx.has_value() ? &entity_types_[*idx] : nullptr;
}

const RelationshipType* ERSchema::FindRelationship(
    const std::string& name) const {
  auto idx = RelationshipIndex(name);
  return idx.has_value() ? &relationships_[*idx] : nullptr;
}

std::vector<ErStep> ERSchema::StepsFrom(const std::string& entity) const {
  std::vector<ErStep> out;
  for (size_t i = 0; i < relationships_.size(); ++i) {
    if (relationships_[i].left_entity == entity) {
      out.push_back(ErStep{i, /*forward=*/true});
    }
    if (relationships_[i].right_entity == entity) {
      out.push_back(ErStep{i, /*forward=*/false});
    }
  }
  return out;
}

const std::string& ERSchema::StepTarget(const ErStep& step) const {
  CLAKS_CHECK_LT(step.relationship_index, relationships_.size());
  const RelationshipType& rel = relationships_[step.relationship_index];
  return step.forward ? rel.right_entity : rel.left_entity;
}

Cardinality ERSchema::StepCardinality(const ErStep& step) const {
  CLAKS_CHECK_LT(step.relationship_index, relationships_.size());
  const RelationshipType& rel = relationships_[step.relationship_index];
  return step.forward ? rel.cardinality : Inverse(rel.cardinality);
}

std::vector<ErPath> ERSchema::EnumeratePaths(const std::string& from,
                                             const std::string& to,
                                             size_t max_steps) const {
  std::vector<ErPath> out;
  std::vector<ErStep> prefix;
  std::vector<std::string> visited{from};
  EnumerateRec(from, to, max_steps, &prefix, &visited, from, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const ErPath& a, const ErPath& b) {
                     return a.length() < b.length();
                   });
  return out;
}

std::vector<ErPath> ERSchema::EnumeratePathsFrom(const std::string& from,
                                                 size_t max_steps) const {
  std::vector<ErPath> out;
  std::vector<ErStep> prefix;
  std::vector<std::string> visited{from};
  EnumerateRec(from, std::nullopt, max_steps, &prefix, &visited, from, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const ErPath& a, const ErPath& b) {
                     return a.length() < b.length();
                   });
  return out;
}

void ERSchema::EnumerateRec(const std::string& current,
                            const std::optional<std::string>& goal,
                            size_t max_steps, std::vector<ErStep>* prefix,
                            std::vector<std::string>* visited,
                            const std::string& start,
                            std::vector<ErPath>* out) const {
  if (!prefix->empty()) {
    if (!goal.has_value() || current == *goal) {
      out->push_back(ErPath(this, start, *prefix));
    }
  }
  if (prefix->size() >= max_steps) return;
  for (const ErStep& step : StepsFrom(current)) {
    const std::string& next = StepTarget(step);
    if (std::find(visited->begin(), visited->end(), next) !=
        visited->end()) {
      continue;  // simple paths only
    }
    prefix->push_back(step);
    visited->push_back(next);
    EnumerateRec(next, goal, max_steps, prefix, visited, start, out);
    visited->pop_back();
    prefix->pop_back();
  }
}

Status ERSchema::Validate() const {
  for (const auto& entity : entity_types_) {
    if (entity.KeyAttributeNames().empty()) {
      return Status::InvalidArgument("entity type '" + entity.name +
                                     "' has no key attribute");
    }
  }
  for (const auto& rel : relationships_) {
    if (!EntityIndex(rel.left_entity).has_value() ||
        !EntityIndex(rel.right_entity).has_value()) {
      return Status::InvalidArgument("relationship '" + rel.name +
                                     "' has an unknown endpoint");
    }
  }
  return Status::OK();
}

std::string ERSchema::ToString() const {
  std::string out = "ER SCHEMA\n  entities:\n";
  for (const auto& entity : entity_types_) {
    out += "    " + entity.name + "(";
    for (size_t i = 0; i < entity.attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += entity.attributes[i].name;
      if (entity.attributes[i].is_key) out += "*";
    }
    out += ")\n";
  }
  out += "  relationships:\n";
  for (const auto& rel : relationships_) {
    out += "    " + rel.ToString() + "\n";
  }
  return out;
}

}  // namespace claks
