// Copyright 2026 The claks Authors.

#include "er/transitive.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

const char* AssociationKindToString(AssociationKind kind) {
  switch (kind) {
    case AssociationKind::kImmediate:
      return "Immediate";
    case AssociationKind::kTransitiveFunctional:
      return "TransitiveFunctional";
    case AssociationKind::kTransitiveNM:
      return "TransitiveNM";
    case AssociationKind::kMixedLoose:
      return "MixedLoose";
  }
  return "?";
}

bool GuaranteesCloseAssociation(AssociationKind kind) {
  return kind == AssociationKind::kImmediate ||
         kind == AssociationKind::kTransitiveFunctional;
}

bool AdmitsLooseAssociation(AssociationKind kind) {
  return !GuaranteesCloseAssociation(kind);
}

AssociationKind ClassifyCardinalitySequence(
    const std::vector<Cardinality>& steps) {
  CLAKS_CHECK(!steps.empty());
  if (steps.size() == 1) return AssociationKind::kImmediate;
  if (IsFunctionalSequence(steps)) {
    return AssociationKind::kTransitiveFunctional;
  }
  if (IsTransitiveNM(steps)) return AssociationKind::kTransitiveNM;
  return AssociationKind::kMixedLoose;
}

RelationshipAnalysis AnalyzePath(const ErPath& path) {
  RelationshipAnalysis out{path, path.CardinalitySequence()};
  out.kind = ClassifyCardinalitySequence(out.steps);
  out.endpoint = ComposeCardinality(out.steps);
  out.loose_points = CountLoosePoints(out.steps);
  return out;
}

std::vector<RelationshipAnalysis> AnalyzePathsBetween(
    const ERSchema& schema, const std::string& from, const std::string& to,
    size_t max_steps) {
  std::vector<RelationshipAnalysis> out;
  for (const ErPath& path : schema.EnumeratePaths(from, to, max_steps)) {
    out.push_back(AnalyzePath(path));
  }
  return out;
}

std::string RelationshipAnalysis::Describe() const {
  std::string entities;
  auto seq = path.EntitySequence();
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) entities += " - ";
    entities += ToLower(seq[i]);
  }
  return entities + " | " + path.ToString() + " | " +
         AssociationKindToString(kind) +
         StrFormat(" (endpoint %s, loose points %zu)",
                   CardinalityToString(endpoint), loose_points);
}

}  // namespace claks
