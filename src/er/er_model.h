// Copyright 2026 The claks Authors.
//
// The ER model: entity types with attributes, binary relationship types
// with cardinality constraints, and paths over the schema (the paper's
// "transitive relationships").

#ifndef CLAKS_ER_ER_MODEL_H_
#define CLAKS_ER_ER_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "er/cardinality.h"
#include "relational/value.h"

namespace claks {

/// An attribute of an entity type (or of a relationship type).
struct ErAttribute {
  std::string name;
  ValueType type = ValueType::kString;
  bool is_key = false;      ///< part of the entity key
  bool searchable = true;   ///< participates in keyword matching
  bool nullable = false;
};

/// An entity type, e.g. EMPLOYEE.
struct EntityType {
  std::string name;
  std::vector<ErAttribute> attributes;

  /// Names of the key attributes, in declaration order.
  std::vector<std::string> KeyAttributeNames() const;
};

/// A binary relationship type with a cardinality constraint, read
/// left-to-right: left `cardinality` right (e.g. DEPARTMENT 1:N EMPLOYEE).
struct RelationshipType {
  std::string name;
  std::string left_entity;
  std::string right_entity;
  Cardinality cardinality = Cardinality::kOneN;
  /// Attributes owned by the relationship itself (e.g. HOURS on WORKS_ON).
  std::vector<ErAttribute> attributes;

  /// "DEPARTMENT 1:N EMPLOYEE (WORKS_FOR)".
  std::string ToString() const;
};

/// One step of an ER path: a relationship traversed either left-to-right
/// (forward) or right-to-left.
struct ErStep {
  size_t relationship_index = 0;
  bool forward = true;

  bool operator==(const ErStep& other) const {
    return relationship_index == other.relationship_index &&
           forward == other.forward;
  }
};

class ERSchema;

/// A path through the ER schema: start entity + steps. The paper's
/// "transitive relationship" is exactly a path of length >= 2.
class ErPath {
 public:
  ErPath(const ERSchema* schema, std::string start_entity,
         std::vector<ErStep> steps);

  const std::string& start_entity() const { return start_entity_; }
  const std::vector<ErStep>& steps() const { return steps_; }
  size_t length() const { return steps_.size(); }

  /// Entity names along the path, start first (steps()+1 entries).
  std::vector<std::string> EntitySequence() const;

  /// The end entity of the path.
  std::string EndEntity() const;

  /// Cardinality of each step, oriented in travel direction.
  std::vector<Cardinality> CardinalitySequence() const;

  /// "department 1:N employee 1:N dependent" (paper Table 1 style).
  std::string ToString() const;

 private:
  const ERSchema* schema_;
  std::string start_entity_;
  std::vector<ErStep> steps_;
};

/// A complete ER schema.
class ERSchema {
 public:
  ERSchema() = default;

  /// Registers an entity type; fails on duplicate name.
  Status AddEntityType(EntityType entity);

  /// Registers a relationship; fails if an endpoint entity is unknown or
  /// the name duplicates another relationship.
  Status AddRelationship(RelationshipType relationship);

  /// Convenience wrapper parsing the cardinality from text.
  Status AddRelationship(const std::string& name,
                         const std::string& left_entity,
                         const std::string& cardinality,
                         const std::string& right_entity,
                         std::vector<ErAttribute> attributes = {});

  const std::vector<EntityType>& entity_types() const {
    return entity_types_;
  }
  const std::vector<RelationshipType>& relationships() const {
    return relationships_;
  }

  std::optional<size_t> EntityIndex(const std::string& name) const;
  std::optional<size_t> RelationshipIndex(const std::string& name) const;
  const EntityType* FindEntity(const std::string& name) const;
  const RelationshipType* FindRelationship(const std::string& name) const;

  /// Relationship steps leaving `entity` (each relationship contributes a
  /// forward step if entity is its left endpoint and a backward step if it
  /// is its right endpoint; self-relationships contribute both).
  std::vector<ErStep> StepsFrom(const std::string& entity) const;

  /// The entity reached by taking `step` (its far endpoint).
  const std::string& StepTarget(const ErStep& step) const;

  /// Cardinality of `step` oriented in travel direction.
  Cardinality StepCardinality(const ErStep& step) const;

  /// Enumerates all simple (no repeated entity) paths from `from` to `to`
  /// with at most `max_steps` steps, in order of increasing length.
  std::vector<ErPath> EnumeratePaths(const std::string& from,
                                     const std::string& to,
                                     size_t max_steps) const;

  /// Enumerates all simple paths starting at `from` of 1..max_steps steps.
  std::vector<ErPath> EnumeratePathsFrom(const std::string& from,
                                         size_t max_steps) const;

  Status Validate() const;

  std::string ToString() const;

 private:
  void EnumerateRec(const std::string& current,
                    const std::optional<std::string>& goal, size_t max_steps,
                    std::vector<ErStep>* prefix,
                    std::vector<std::string>* visited,
                    const std::string& start,
                    std::vector<ErPath>* out) const;

  std::vector<EntityType> entity_types_;
  std::vector<RelationshipType> relationships_;
};

}  // namespace claks

#endif  // CLAKS_ER_ER_MODEL_H_
