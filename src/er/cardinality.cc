// Copyright 2026 The claks Authors.

#include "er/cardinality.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

const char* CardinalityToString(Cardinality c) {
  switch (c) {
    case Cardinality::kOneOne:
      return "1:1";
    case Cardinality::kOneN:
      return "1:N";
    case Cardinality::kNOne:
      return "N:1";
    case Cardinality::kNM:
      return "N:M";
  }
  return "?";
}

Result<Cardinality> ParseCardinality(const std::string& text) {
  std::string t = ToLower(std::string(Trim(text)));
  auto is_many = [](const std::string& s) { return s == "n" || s == "m"; };
  auto parts = Split(t, ':');
  if (parts.size() != 2) {
    return Status::ParseError("bad cardinality '" + text + "'");
  }
  bool left_one = parts[0] == "1";
  bool right_one = parts[1] == "1";
  if (!left_one && !is_many(parts[0])) {
    return Status::ParseError("bad cardinality side '" + parts[0] + "'");
  }
  if (!right_one && !is_many(parts[1])) {
    return Status::ParseError("bad cardinality side '" + parts[1] + "'");
  }
  if (left_one && right_one) return Cardinality::kOneOne;
  if (left_one) return Cardinality::kOneN;
  if (right_one) return Cardinality::kNOne;
  return Cardinality::kNM;
}

Cardinality Inverse(Cardinality c) {
  switch (c) {
    case Cardinality::kOneN:
      return Cardinality::kNOne;
    case Cardinality::kNOne:
      return Cardinality::kOneN;
    case Cardinality::kOneOne:
    case Cardinality::kNM:
      return c;
  }
  return c;
}

bool LeftIsOne(Cardinality c) {
  return c == Cardinality::kOneOne || c == Cardinality::kOneN;
}

bool RightIsOne(Cardinality c) {
  return c == Cardinality::kOneOne || c == Cardinality::kNOne;
}

bool ForwardFunctional(Cardinality c) { return RightIsOne(c); }

bool BackwardFunctional(Cardinality c) { return LeftIsOne(c); }

Cardinality ComposeCardinality(Cardinality a, Cardinality b) {
  bool forward = ForwardFunctional(a) && ForwardFunctional(b);
  bool backward = BackwardFunctional(a) && BackwardFunctional(b);
  if (forward && backward) return Cardinality::kOneOne;
  if (backward) return Cardinality::kOneN;
  if (forward) return Cardinality::kNOne;
  return Cardinality::kNM;
}

Cardinality ComposeCardinality(const std::vector<Cardinality>& steps) {
  CLAKS_CHECK(!steps.empty());
  Cardinality acc = steps[0];
  for (size_t i = 1; i < steps.size(); ++i) {
    acc = ComposeCardinality(acc, steps[i]);
  }
  return acc;
}

bool IsFunctionalSequence(const std::vector<Cardinality>& steps) {
  if (steps.empty()) return true;
  bool all_left_one = true;
  bool all_right_one = true;
  for (Cardinality c : steps) {
    all_left_one = all_left_one && LeftIsOne(c);
    all_right_one = all_right_one && RightIsOne(c);
  }
  return all_left_one || all_right_one;
}

bool IsTransitiveNM(const std::vector<Cardinality>& steps) {
  if (steps.size() < 2) return false;
  return !LeftIsOne(steps.front()) && !RightIsOne(steps.back());
}

size_t CountNMSteps(const std::vector<Cardinality>& steps) {
  size_t count = 0;
  for (Cardinality c : steps) {
    if (c == Cardinality::kNM) ++count;
  }
  return count;
}

size_t CountHubPatterns(const std::vector<Cardinality>& steps) {
  size_t count = 0;
  for (size_t i = 0; i + 1 < steps.size(); ++i) {
    if (!LeftIsOne(steps[i]) && RightIsOne(steps[i]) &&
        LeftIsOne(steps[i + 1]) && !RightIsOne(steps[i + 1])) {
      ++count;
    }
  }
  return count;
}

size_t CountLoosePoints(const std::vector<Cardinality>& steps) {
  return CountNMSteps(steps) + CountHubPatterns(steps);
}

std::string StepsToString(const std::vector<Cardinality>& steps) {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " ";
    out += CardinalityToString(steps[i]);
  }
  return out;
}

}  // namespace claks
