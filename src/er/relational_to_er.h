// Copyright 2026 The claks Authors.
//
// Reverse engineering a relational schema into an ER schema, recovering the
// conceptual view the paper reasons over. The key step is *middle-relation
// detection*: a relation that exists only to materialise an N:M relationship
// "should not be taken into account when calculating the length of a
// connection" (paper §3).
//
// Entry point: ReverseEngineerEr, called by KeywordSearchEngine::Create(db)
// when no conceptual schema is supplied. The inverse of
// er/er_to_relational.h's GenerateRelationalSchema; the round trip
// (generate, then reverse) recovers the same shape and is covered by
// er_mapping_test and fuzz_roundtrip_test.

#ifndef CLAKS_ER_RELATIONAL_TO_ER_H_
#define CLAKS_ER_RELATIONAL_TO_ER_H_

#include "common/result.h"
#include "er/er_to_relational.h"
#include "relational/database.h"

namespace claks {

/// Result of reverse engineering: the recovered conceptual schema plus the
/// table/FK mapping (same structure as the forward direction produces).
struct RecoveredErSchema {
  ERSchema schema;
  ErRelationalMapping mapping;
};

/// Heuristics for classifying a table as a middle relation. A table is a
/// middle relation iff all of:
///   * it declares exactly two foreign keys;
///   * every primary-key attribute belongs to some foreign key (the table
///     has no identity of its own beyond the pair it connects);
///   * no other table references it.
/// Entity tables become entity types. Each FK between entity tables E_many
/// -> E_one becomes a relationship "E_one 1:N E_many"; each middle relation
/// becomes an N:M relationship between its two referenced tables, carrying
/// the middle relation's non-FK attributes.
Result<RecoveredErSchema> ReverseEngineerEr(const Database& db);

/// True under the middle-relation heuristic above. Exposed for tests and
/// for the schema-graph builder.
bool LooksLikeMiddleRelation(const Database& db, size_t table_index);

}  // namespace claks

#endif  // CLAKS_ER_RELATIONAL_TO_ER_H_
