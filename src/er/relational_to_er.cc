// Copyright 2026 The claks Authors.

#include "er/relational_to_er.h"

#include <unordered_set>

#include "common/macros.h"

namespace claks {

bool LooksLikeMiddleRelation(const Database& db, size_t table_index) {
  const Table& table = db.table(table_index);
  const TableSchema& schema = table.schema();
  if (schema.foreign_keys().size() != 2) return false;

  // Every primary-key attribute must be covered by some FK.
  for (const std::string& pk : schema.primary_key()) {
    if (!schema.IsForeignKeyAttribute(pk)) return false;
  }

  // No other table may reference this one.
  for (size_t t = 0; t < db.num_tables(); ++t) {
    if (t == table_index) continue;
    for (const auto& fk : db.table(t).schema().foreign_keys()) {
      if (fk.referenced_table == schema.name()) return false;
    }
  }
  return true;
}

Result<RecoveredErSchema> ReverseEngineerEr(const Database& db) {
  RecoveredErSchema out;

  std::vector<bool> is_middle(db.num_tables(), false);
  for (size_t t = 0; t < db.num_tables(); ++t) {
    is_middle[t] = LooksLikeMiddleRelation(db, t);
  }

  // Pass 1: entity types from entity tables.
  for (size_t t = 0; t < db.num_tables(); ++t) {
    if (is_middle[t]) continue;
    const TableSchema& schema = db.table(t).schema();
    EntityType entity;
    entity.name = schema.name();
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const AttributeDef& attr = schema.attribute(i);
      // FK attributes belong to the relationship, not the entity.
      if (schema.IsForeignKeyAttribute(attr.name) &&
          !schema.IsPrimaryKeyAttribute(attr.name)) {
        continue;
      }
      ErAttribute er_attr;
      er_attr.name = attr.name;
      er_attr.type = attr.type;
      er_attr.is_key = schema.IsPrimaryKeyAttribute(attr.name);
      er_attr.searchable = attr.searchable;
      er_attr.nullable = attr.nullable;
      entity.attributes.push_back(std::move(er_attr));
    }
    CLAKS_RETURN_NOT_OK(out.schema.AddEntityType(std::move(entity)));
    out.mapping.tables[schema.name()] = TableErInfo{false, schema.name()};
  }

  std::unordered_set<std::string> used_names;

  auto unique_name = [&](std::string base) {
    std::string name = base;
    int suffix = 2;
    while (!used_names.insert(name).second) {
      name = base + "_" + std::to_string(suffix++);
    }
    return name;
  };

  // Pass 2: 1:N relationships from FKs of entity tables.
  for (size_t t = 0; t < db.num_tables(); ++t) {
    if (is_middle[t]) continue;
    const TableSchema& schema = db.table(t).schema();
    for (size_t f = 0; f < schema.foreign_keys().size(); ++f) {
      const ForeignKeyDef& fk = schema.foreign_keys()[f];
      auto ref_index = db.TableIndex(fk.referenced_table);
      if (!ref_index.has_value()) {
        return Status::IntegrityViolation("table '" + schema.name() +
                                          "' references missing table '" +
                                          fk.referenced_table + "'");
      }
      if (is_middle[*ref_index]) {
        return Status::InvalidArgument(
            "table '" + schema.name() + "' references middle relation '" +
            fk.referenced_table + "'; run with it reclassified as entity");
      }
      RelationshipType rel;
      rel.name = unique_name(!fk.constraint_name.empty()
                                 ? fk.constraint_name
                                 : schema.name() + "_" + fk.referenced_table);
      // FK from A to B means: B 1:N A (one referenced B row, many
      // referencing A rows).
      rel.left_entity = fk.referenced_table;
      rel.right_entity = schema.name();
      rel.cardinality = Cardinality::kOneN;
      CLAKS_RETURN_NOT_OK(out.schema.AddRelationship(rel));
      // The FK points at the referenced table == the relationship's left
      // entity.
      out.mapping.foreign_keys[{schema.name(), f}] =
          FkErInfo{rel.name, /*references_left=*/true};
    }
  }

  // Pass 3: N:M relationships from middle relations.
  for (size_t t = 0; t < db.num_tables(); ++t) {
    if (!is_middle[t]) continue;
    const TableSchema& schema = db.table(t).schema();
    const ForeignKeyDef& left_fk = schema.foreign_keys()[0];
    const ForeignKeyDef& right_fk = schema.foreign_keys()[1];
    RelationshipType rel;
    rel.name = unique_name(schema.name());
    rel.left_entity = left_fk.referenced_table;
    rel.right_entity = right_fk.referenced_table;
    rel.cardinality = Cardinality::kNM;
    // Non-FK attributes of the middle relation become relationship
    // attributes.
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const AttributeDef& attr = schema.attribute(i);
      if (schema.IsForeignKeyAttribute(attr.name)) continue;
      ErAttribute er_attr;
      er_attr.name = attr.name;
      er_attr.type = attr.type;
      er_attr.searchable = attr.searchable;
      er_attr.nullable = attr.nullable;
      rel.attributes.push_back(std::move(er_attr));
    }
    CLAKS_RETURN_NOT_OK(out.schema.AddRelationship(rel));
    out.mapping.tables[schema.name()] = TableErInfo{true, rel.name};
    out.mapping.foreign_keys[{schema.name(), 0}] = FkErInfo{rel.name, true};
    out.mapping.foreign_keys[{schema.name(), 1}] = FkErInfo{rel.name, false};
  }

  return out;
}

}  // namespace claks
