// Copyright 2026 The claks Authors.
//
// Cardinality constraints of binary ER relationships and the algebra the
// paper builds on them (§2): inversion, composition along a chain of
// relationships, and functionality tests.
//
// We write a constraint as X:Y between a *left* and a *right* entity type,
// paper-style: "DEPARTMENT 1:N EMPLOYEE" means one department relates to
// many employees and each employee to (at most) one department.

#ifndef CLAKS_ER_CARDINALITY_H_
#define CLAKS_ER_CARDINALITY_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace claks {

enum class Cardinality {
  kOneOne,  ///< 1:1
  kOneN,    ///< 1:N  (left determines right-side fan-out)
  kNOne,    ///< N:1
  kNM,      ///< N:M
};

/// "1:1", "1:N", "N:1", "N:M".
const char* CardinalityToString(Cardinality c);

/// Parses the paper's notation (case-insensitive, 'M' and 'N' both accepted
/// on many-sides: "N:M" == "M:N").
Result<Cardinality> ParseCardinality(const std::string& text);

/// The same constraint read right-to-left: 1:N <-> N:1.
Cardinality Inverse(Cardinality c);

/// True iff the left / right side of the constraint is "1".
bool LeftIsOne(Cardinality c);
bool RightIsOne(Cardinality c);

/// True iff each left entity relates to at most one right entity
/// (constraint is N:1 or 1:1) — the relationship is a partial function
/// left -> right.
bool ForwardFunctional(Cardinality c);

/// True iff each right entity relates to at most one left entity
/// (constraint is 1:N or 1:1).
bool BackwardFunctional(Cardinality c);

/// Endpoint-to-endpoint multiplicity of the chain A -c1- B -c2- C:
/// functional in a direction iff every step is. E.g. 1:N . 1:N = 1:N,
/// N:1 . 1:N = N:M, 1:1 . c = c.
Cardinality ComposeCardinality(Cardinality a, Cardinality b);

/// Folds ComposeCardinality over a whole step sequence. CLAKS_CHECKs that
/// `steps` is non-empty.
Cardinality ComposeCardinality(const std::vector<Cardinality>& steps);

/// Paper §2 definition: a transitive relationship with steps X1:Y1..Xn:Yn is
/// *functional* iff (for all i, Xi = 1) or (for all i, Yi = 1); 1:1 steps
/// satisfy both sides. Equivalent to: the endpoint composition is not N:M.
bool IsFunctionalSequence(const std::vector<Cardinality>& steps);

/// Paper §2 definition: the sequence is *transitive N:M* iff X1 != 1 and
/// Yn != 1 (after at least two steps). Note this is narrower than "endpoint
/// composition is N:M": e.g. 1:N . N:M composes to N:M but is not
/// endpoint-N:M because X1 = 1.
bool IsTransitiveNM(const std::vector<Cardinality>& steps);

/// Number of explicit N:M steps in the sequence.
size_t CountNMSteps(const std::vector<Cardinality>& steps);

/// Number of N:1 -> 1:N "hub" patterns between consecutive steps: the
/// middle entity is on the 1-side of both neighbours, so many left entities
/// meet many right entities through it (paper's relationship 5, PROJECT N:1
/// DEPARTMENT 1:N EMPLOYEE). These are the paper's "transitive N:M
/// relationships in a connection" (§4), the sharpest looseness signal.
size_t CountHubPatterns(const std::vector<Cardinality>& steps);

/// Total loose points: CountNMSteps + CountHubPatterns. The paper's §4
/// suggests counts like these as ranking criteria.
size_t CountLoosePoints(const std::vector<Cardinality>& steps);

/// Renders "1:N N:M ..." for diagnostics.
std::string StepsToString(const std::vector<Cardinality>& steps);

}  // namespace claks

#endif  // CLAKS_ER_CARDINALITY_H_
