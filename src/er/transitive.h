// Copyright 2026 The claks Authors.
//
// The paper's §2 contribution: classifying (transitive) relationships by
// their cardinality-constraint sequence into those that guarantee *close*
// associations and those that admit *loose* ones.

#ifndef CLAKS_ER_TRANSITIVE_H_
#define CLAKS_ER_TRANSITIVE_H_

#include <string>
#include <vector>

#include "er/er_model.h"

namespace claks {

/// Classification of a relationship (immediate or transitive) per paper §2.
enum class AssociationKind {
  /// One relationship: "there is no ambiguity in the semantics of the
  /// connections" — always close.
  kImmediate,
  /// Transitive and functional: (for all i, Xi = 1) or (for all i, Yi = 1).
  /// Determines a close connection at the extensional level.
  kTransitiveFunctional,
  /// Transitive N:M per the paper's definition (X1 != 1 and Yn != 1):
  /// several start entities meet several end entities through a middle
  /// entity; admits loose connections.
  kTransitiveNM,
  /// Neither functional nor endpoint-N:M but contains an N:M step or an
  /// embedded transitive-N:M hub (the paper's relationships 4 and 6);
  /// admits loose connections.
  kMixedLoose,
};

const char* AssociationKindToString(AssociationKind kind);

/// True for kinds that guarantee a close association at the extensional
/// level (immediate and transitive functional).
bool GuaranteesCloseAssociation(AssociationKind kind);

/// True for kinds that admit loose connections.
bool AdmitsLooseAssociation(AssociationKind kind);

/// Classifies a cardinality-step sequence. CLAKS_CHECKs non-empty.
AssociationKind ClassifyCardinalitySequence(
    const std::vector<Cardinality>& steps);

/// Full analysis of one ER path — one row of the paper's Table 1.
struct RelationshipAnalysis {
  ErPath path;
  std::vector<Cardinality> steps;
  AssociationKind kind = AssociationKind::kImmediate;
  /// Endpoint-to-endpoint composition of the steps.
  Cardinality endpoint = Cardinality::kOneOne;
  /// Number of loose points (N:M steps + N:1->1:N hubs), the §4 ranking
  /// criterion.
  size_t loose_points = 0;

  /// "department - employee - dependent | department 1:N employee 1:N
  /// dependent | TransitiveFunctional".
  std::string Describe() const;
};

/// Analyzes one path.
RelationshipAnalysis AnalyzePath(const ErPath& path);

/// Analyzes every simple path between two entity types up to `max_steps`
/// steps — i.e. regenerates the rows of Table 1 for that entity pair.
std::vector<RelationshipAnalysis> AnalyzePathsBetween(
    const ERSchema& schema, const std::string& from, const std::string& to,
    size_t max_steps);

}  // namespace claks

#endif  // CLAKS_ER_TRANSITIVE_H_
