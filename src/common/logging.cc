// Copyright 2026 The claks Authors.

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace claks {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Guards the sink pointer and every emission: one CLAKS_LOG statement is
// one critical section, so concurrent statements produce whole,
// non-interleaved lines in the sink.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

LogSink& Sink() {
  static LogSink* sink = new LogSink;
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sink() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (Sink()) {
    Sink()(level_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace internal
}  // namespace claks
