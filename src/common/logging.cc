// Copyright 2026 The claks Authors.

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace claks {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// The sink and the mutex guarding it, as one annotated object so clang's
// thread-safety analysis proves every emission path locks: one CLAKS_LOG
// statement is one critical section, so concurrent statements produce
// whole, non-interleaved lines in the sink.
class LogRegistry {
 public:
  void SetSink(LogSink sink) CLAKS_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    sink_ = std::move(sink);
  }

  void Emit(LogLevel level, const std::string& line)
      CLAKS_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (sink_) {
      sink_(level, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  /// Leaky singleton: never destroyed, so logging from static
  /// destructors of any translation unit stays safe.
  static LogRegistry& Instance() {
    static LogRegistry* registry = new LogRegistry;
    return *registry;
  }

 private:
  Mutex mutex_;
  LogSink sink_ CLAKS_GUARDED_BY(mutex_);
};

// A field value needs quoting when a bare `key=value` token would not
// round-trip through whitespace splitting: spaces, quotes, '=' or an
// empty value. Quotes and backslashes inside a quoted value are escaped.
bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '\t' || c == '"' || c == '=' || c == '\\') {
      return true;
    }
  }
  return false;
}

void AppendFieldValue(std::string* out, const std::string& value) {
  if (!NeedsQuoting(value)) {
    *out += value;
    return;
  }
  *out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  LogRegistry::Instance().SetSink(std::move(sink));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::string line = stream_.str();
  for (const auto& [key, value] : fields_) {
    line += ' ';
    line += key;
    line += '=';
    AppendFieldValue(&line, value);
  }
  LogRegistry::Instance().Emit(level_, line);
}

}  // namespace internal
}  // namespace claks
