// Copyright 2026 The claks Authors.
//
// Clang thread-safety-analysis annotations (CLAKS_GUARDED_BY and friends).
// Under clang the macros expand to the `capability`-family attributes and
// `-Wthread-safety` turns the locking discipline they describe into
// compile errors; under every other compiler they expand to nothing, so
// annotated code stays portable. The annotated lock types these attach to
// live in common/mutex.h (libstdc++'s std::mutex carries no annotations,
// so the analysis needs our wrapper to see acquires and releases).
//
// Discipline (enforced by tools/claks_lint.py): every Mutex member names
// the fields it protects via CLAKS_GUARDED_BY, functions that expect the
// caller to hold a lock say so with CLAKS_REQUIRES, and functions that
// take a lock themselves advertise CLAKS_EXCLUDES so the analysis can
// prove the absence of self-deadlock.

#ifndef CLAKS_COMMON_THREAD_ANNOTATIONS_H_
#define CLAKS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CLAKS_THREAD_ANNOTATIONS_ENABLED 1
#endif
#endif

#ifndef CLAKS_THREAD_ANNOTATIONS_ENABLED
#define CLAKS_THREAD_ANNOTATIONS_ENABLED 0
#endif

#if CLAKS_THREAD_ANNOTATIONS_ENABLED
#define CLAKS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CLAKS_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a type to be a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define CLAKS_CAPABILITY(x) CLAKS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (common/mutex.h MutexLock).
#define CLAKS_SCOPED_CAPABILITY CLAKS_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define CLAKS_GUARDED_BY(x) CLAKS_THREAD_ANNOTATION_(guarded_by(x))

/// The data *pointed to* by the annotated pointer/smart-pointer field may
/// only be dereferenced while holding `x` (the pointer itself is free).
#define CLAKS_PT_GUARDED_BY(x) CLAKS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function may only be called while holding the named
/// capabilities exclusively; it does not acquire or release them.
#define CLAKS_REQUIRES(...) \
  CLAKS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) flavour of CLAKS_REQUIRES.
#define CLAKS_REQUIRES_SHARED(...) \
  CLAKS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the named capabilities and holds them
/// when it returns (constructor of MutexLock, Mutex::Lock).
#define CLAKS_ACQUIRE(...) \
  CLAKS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define CLAKS_ACQUIRE_SHARED(...) \
  CLAKS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the named capabilities (destructor of
/// MutexLock, Mutex::Unlock).
#define CLAKS_RELEASE(...) \
  CLAKS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define CLAKS_RELEASE_SHARED(...) \
  CLAKS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability and returns
/// `result` (a bool constant) on success.
#define CLAKS_TRY_ACQUIRE(...) \
  CLAKS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the named capabilities: the function acquires
/// them itself (documents "locks internally" and proves non-reentrance).
#define CLAKS_EXCLUDES(...) \
  CLAKS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at analysis level (not runtime) that the capability is held.
#define CLAKS_ASSERT_CAPABILITY(x) \
  CLAKS_THREAD_ANNOTATION_(assert_capability(x))

/// The annotated function returns a reference to the named capability.
#define CLAKS_RETURN_CAPABILITY(x) CLAKS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only for
/// double-checked publication patterns the analysis cannot express, and
/// say why in a comment at the use site.
#define CLAKS_NO_THREAD_SAFETY_ANALYSIS \
  CLAKS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CLAKS_COMMON_THREAD_ANNOTATIONS_H_
