// Copyright 2026 The claks Authors.
//
// Minimal leveled logger. Off by default above WARNING so library users are
// not spammed; benches flip the level to INFO.
//
// Thread-safety: the logger is safe to use from any number of threads.
// Each CLAKS_LOG statement buffers its message privately and emits it as
// one atomic line — the sink (stderr by default, or the function installed
// with SetLogSink) is invoked under a global mutex, so concurrent
// statements never interleave characters within a line. SetLogLevel /
// GetLogLevel are atomic.

#ifndef CLAKS_COMMON_LOGGING_H_
#define CLAKS_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace claks {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives one complete log line (without trailing newline) per emitted
/// CLAKS_LOG statement. Called under the logger's mutex: implementations
/// need no synchronization of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the stderr sink (pass nullptr to restore it). Intended for
/// tests and embedders; swapping sinks while other threads log is safe.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace claks

#define CLAKS_LOG(level)                                                \
  ::claks::internal::LogMessage(::claks::LogLevel::k##level, __FILE__,  \
                                __LINE__)                               \
      .stream()

#endif  // CLAKS_COMMON_LOGGING_H_
