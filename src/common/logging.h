// Copyright 2026 The claks Authors.
//
// Minimal leveled logger. Off by default above WARNING so library users are
// not spammed; benches flip the level to INFO.
//
// Thread-safety: the logger is safe to use from any number of threads.
// Each CLAKS_LOG statement buffers its message privately and emits it as
// one atomic line — the sink (stderr by default, or the function installed
// with SetLogSink) is invoked under a global mutex, so concurrent
// statements never interleave characters within a line. SetLogLevel /
// GetLogLevel are atomic.
//
// Structured fields: a statement may chain WithField(key, value) calls
// before (or between) streaming — the fields render machine-parseably at
// the end of the same single line as ` key=value`, values quoted when
// they contain spaces/quotes/'=' (or are empty):
//   CLAKS_LOG(Warning).WithField("query", text).WithField("ms", 41)
//       << "slow query";
// Fields ride the statement's private buffer, so the line-integrity
// guarantee above is unchanged.

#ifndef CLAKS_COMMON_LOGGING_H_
#define CLAKS_COMMON_LOGGING_H_

#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace claks {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives one complete log line (without trailing newline) per emitted
/// CLAKS_LOG statement. Called under the logger's mutex: implementations
/// need no synchronization of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the stderr sink (pass nullptr to restore it). Intended for
/// tests and embedders; swapping sinks while other threads log is safe.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log sink; emits on destruction. The CLAKS_LOG macro
/// yields the message itself (not a raw ostream) so statements can chain
/// WithField before streaming; operator<< forwards to the private buffer
/// and keeps returning the message.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// Attaches one structured `key=value` field to this line; fields
  /// render in attachment order after the streamed message. Any
  /// streamable value works (it is formatted through the same buffer
  /// mechanics as operator<<).
  template <typename V>
  LogMessage& WithField(const std::string& key, const V& value) {
    std::ostringstream formatted;
    formatted << value;
    fields_.emplace_back(key, formatted.str());
    return *this;
  }

  template <typename V>
  LogMessage& operator<<(const V& value) {
    stream_ << value;
    return *this;
  }
  /// Manipulator overload (std::endl and friends) — a template cannot
  /// deduce through the overload set of a function name.
  LogMessage& operator<<(std::ostream& (*manip)(std::ostream&)) {
    stream_ << manip;
    return *this;
  }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace internal
}  // namespace claks

#define CLAKS_LOG(level)                                                \
  ::claks::internal::LogMessage(::claks::LogLevel::k##level, __FILE__,  \
                                __LINE__)

#endif  // CLAKS_COMMON_LOGGING_H_
