// Copyright 2026 The claks Authors.
//
// Minimal leveled logger. Off by default above WARNING so library users are
// not spammed; benches flip the level to INFO.

#ifndef CLAKS_COMMON_LOGGING_H_
#define CLAKS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace claks {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace claks

#define CLAKS_LOG(level)                                                \
  ::claks::internal::LogMessage(::claks::LogLevel::k##level, __FILE__,  \
                                __LINE__)                               \
      .stream()

#endif  // CLAKS_COMMON_LOGGING_H_
