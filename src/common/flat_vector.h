// Copyright 2026 The claks Authors.
//
// FlatVector<T>: a contiguous array that is either *owned* (a plain
// std::vector, the construction / compaction phase) or a *view* over
// memory someone else keeps alive (the mmap'd snapshot-load phase,
// src/storage/snapshot.h). The frozen base structures of the engine
// (DataGraph::GraphBase, FkJoinIndex::Base) hold their flat arrays
// through this type so a loaded generation can serve queries directly
// out of the snapshot file — zero copies, O(1) per array — while a
// built generation keeps exactly the std::vector semantics it had.
//
// The owned mode supports the mutating subset of std::vector the build
// paths use (reserve/push_back/assign/resize/insert-at-end/operator[]);
// a view is strictly read-only and CLAKS_CHECKs on any mutation.
// Copying always materializes an owned deep copy: generation derivation
// copies a frozen base array precisely when it is about to mutate the
// copy (e.g. Database::CompactJoinIndexes), so a copy that stayed a
// view would defeat the point. Views are only created explicitly via
// View() and propagate through moves.

#ifndef CLAKS_COMMON_FLAT_VECTOR_H_
#define CLAKS_COMMON_FLAT_VECTOR_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace claks {

template <typename T>
class FlatVector {
 public:
  FlatVector() = default;

  /// A read-only view of `size` elements at `data`. `keepalive` owns the
  /// underlying memory (typically the mmap'd snapshot file); the view
  /// holds a reference so the mapping outlives every generation that
  /// still shares this array.
  static FlatVector View(const T* data, size_t size,
                         std::shared_ptr<const void> keepalive) {
    FlatVector v;
    v.view_data_ = data;
    v.view_size_ = size;
    v.keepalive_ = std::move(keepalive);
    v.is_view_ = true;
    return v;
  }

  /// Deep copy: the result is always owned (see file comment).
  FlatVector(const FlatVector& other)
      : owned_(other.begin(), other.end()) {}
  FlatVector& operator=(const FlatVector& other) {
    if (this != &other) {
      owned_.assign(other.begin(), other.end());
      view_data_ = nullptr;
      view_size_ = 0;
      keepalive_.reset();
      is_view_ = false;
    }
    return *this;
  }

  FlatVector(FlatVector&&) noexcept = default;
  FlatVector& operator=(FlatVector&&) noexcept = default;

  bool is_view() const { return is_view_; }

  size_t size() const { return is_view_ ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return is_view_ ? view_data_ : owned_.data(); }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  const T& operator[](size_t i) const { return data()[i]; }
  const T& back() const {
    CLAKS_CHECK(!empty());
    return data()[size() - 1];
  }

  // --- Owned-mode mutation (CLAKS_CHECKs in view mode) ---

  T& operator[](size_t i) {
    CLAKS_CHECK(!is_view_);
    return owned_[i];
  }
  T& back() {
    CLAKS_CHECK(!is_view_);
    return owned_.back();
  }
  void reserve(size_t n) {
    CLAKS_CHECK(!is_view_);
    owned_.reserve(n);
  }
  void push_back(const T& value) {
    CLAKS_CHECK(!is_view_);
    owned_.push_back(value);
  }
  void push_back(T&& value) {
    CLAKS_CHECK(!is_view_);
    owned_.push_back(std::move(value));
  }
  void resize(size_t n) {
    CLAKS_CHECK(!is_view_);
    owned_.resize(n);
  }
  void resize(size_t n, const T& value) {
    CLAKS_CHECK(!is_view_);
    owned_.resize(n, value);
  }
  void assign(size_t n, const T& value) {
    CLAKS_CHECK(!is_view_);
    owned_.assign(n, value);
  }
  void clear() {
    CLAKS_CHECK(!is_view_);
    owned_.clear();
  }
  /// Append-only insert (the one shape the build paths use); `pos` must
  /// be end().
  template <typename It>
  void insert(const T* pos, It first, It last) {
    CLAKS_CHECK(!is_view_);
    CLAKS_CHECK(pos == end());
    owned_.insert(owned_.end(), first, last);
  }

 private:
  std::vector<T> owned_;
  const T* view_data_ = nullptr;
  size_t view_size_ = 0;
  std::shared_ptr<const void> keepalive_;
  bool is_view_ = false;
};

}  // namespace claks

#endif  // CLAKS_COMMON_FLAT_VECTOR_H_
