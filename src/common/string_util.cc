// Copyright 2026 The claks Authors.

#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace claks {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string PadLeft(std::string_view text, size_t width) {
  std::string out;
  if (text.size() < width) out.append(width - text.size(), ' ');
  out.append(text);
  return out;
}

}  // namespace claks
