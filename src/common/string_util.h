// Copyright 2026 The claks Authors.
//
// Small string helpers shared across modules.

#ifndef CLAKS_COMMON_STRING_UTIL_H_
#define CLAKS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace claks {

/// Splits `text` on `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if `haystack` contains `needle` as a case-insensitive substring.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// True if the two strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left/right pads `text` with spaces to at least `width` characters.
std::string PadRight(std::string_view text, size_t width);
std::string PadLeft(std::string_view text, size_t width);

}  // namespace claks

#endif  // CLAKS_COMMON_STRING_UTIL_H_
