// Copyright 2026 The claks Authors.

#include "common/status.h"

namespace claks {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Status::AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Status::IntegrityViolation(std::string message) {
  return Status(StatusCode::kIntegrityViolation, std::move(message));
}
Status Status::ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status Status::Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->message);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace claks
