// Copyright 2026 The claks Authors.
//
// Fixed-size worker thread pool with a bounded submission queue. Two
// consumers share it: the concurrent query service uses one as its
// admission-control front (service/search_service.h), and the intra-query
// sharding layer runs per-shard scatter tasks on one (core/shard.h).
// Submit blocks (never drops) once `queue_capacity` tasks are waiting, so
// a burst of work exerts backpressure on the producer instead of growing
// memory without bound; the worker count bounds CPU concurrency the same
// way. Lived in src/service/ until the sharded engine needed it below the
// service layer; service/thread_pool.h forwards here.

#ifndef CLAKS_COMMON_THREAD_POOL_H_
#define CLAKS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace claks {

/// A fixed set of worker threads draining one bounded FIFO task queue.
///
/// Thread-safety: Submit and the accessors may be called from any thread.
/// The destructor completes every task already submitted (it does not
/// cancel), then joins the workers; submitting from a task is allowed but
/// may deadlock when the queue is full, and submitting after destruction
/// has begun is a programming error.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1 enforced) over a queue holding at
  /// most `queue_capacity` waiting tasks (>= 1 enforced).
  ThreadPool(size_t num_threads, size_t queue_capacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Blocks while the queue is at capacity — bounded
  /// admission: callers feel backpressure, tasks are never dropped.
  void Submit(std::function<void()> task) CLAKS_EXCLUDES(mutex_);

  /// Non-blocking Submit: false (task untouched) when the queue is full.
  bool TrySubmit(std::function<void()>& task) CLAKS_EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished executing.
  void Drain() CLAKS_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return capacity_; }

  /// Tasks waiting in the queue (excludes tasks currently executing).
  size_t pending() const CLAKS_EXCLUDES(mutex_);

 private:
  void WorkerLoop() CLAKS_EXCLUDES(mutex_);

  const size_t capacity_;
  mutable Mutex mutex_;
  std::condition_variable not_empty_;   // signalled on enqueue
  std::condition_variable not_full_;    // signalled on dequeue
  std::condition_variable all_idle_;    // signalled when work may be done
  std::deque<std::function<void()>> queue_ CLAKS_GUARDED_BY(mutex_);
  size_t executing_ CLAKS_GUARDED_BY(mutex_) = 0;  ///< popped, unfinished
  bool stopping_ CLAKS_GUARDED_BY(mutex_) = false;
  /// Started in the constructor, joined in the destructor; the vector
  /// itself is immutable in between (num_threads reads its size).
  std::vector<std::thread> workers_;
};

}  // namespace claks

#endif  // CLAKS_COMMON_THREAD_POOL_H_
