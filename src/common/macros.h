// Copyright 2026 The claks Authors.
//
// Assertion and convenience macros used across the library.

#ifndef CLAKS_COMMON_MACROS_H_
#define CLAKS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `condition` does not hold. Used for programming
/// errors (invariant violations) as opposed to data errors, which are
/// reported through Status.
#define CLAKS_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "CLAKS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CLAKS_CHECK_EQ(a, b) CLAKS_CHECK((a) == (b))
#define CLAKS_CHECK_NE(a, b) CLAKS_CHECK((a) != (b))
#define CLAKS_CHECK_LT(a, b) CLAKS_CHECK((a) < (b))
#define CLAKS_CHECK_LE(a, b) CLAKS_CHECK((a) <= (b))
#define CLAKS_CHECK_GT(a, b) CLAKS_CHECK((a) > (b))
#define CLAKS_CHECK_GE(a, b) CLAKS_CHECK((a) >= (b))

/// Evaluates an expression returning Status and propagates failure.
#define CLAKS_RETURN_NOT_OK(expr)                       \
  do {                                                  \
    ::claks::Status _st = (expr);                       \
    if (!_st.ok()) return _st;                          \
  } while (0)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs`, on failure propagates the status.
#define CLAKS_ASSIGN_OR_RETURN(lhs, expr)               \
  CLAKS_ASSIGN_OR_RETURN_IMPL_(                         \
      CLAKS_CONCAT_(_claks_result_, __LINE__), lhs, expr)

#define CLAKS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)    \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueUnsafe();

#define CLAKS_CONCAT_(a, b) CLAKS_CONCAT_IMPL_(a, b)
#define CLAKS_CONCAT_IMPL_(a, b) a##b

#endif  // CLAKS_COMMON_MACROS_H_
