// Copyright 2026 The claks Authors.
//
// Arrow-style Status type. Library functions that can fail on *data* (as
// opposed to programming errors, which use CLAKS_CHECK) return Status or
// Result<T>.

#ifndef CLAKS_COMMON_STATUS_H_
#define CLAKS_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace claks {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIntegrityViolation,  ///< primary/foreign-key or schema constraint violated
  kParseError,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to return in the success case (a single
/// null pointer); carries a code and message otherwise.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  Status(StatusCode code, std::string message);

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message);
  static Status NotFound(std::string message);
  static Status AlreadyExists(std::string message);
  static Status OutOfRange(std::string message);
  static Status IntegrityViolation(std::string message);
  static Status ParseError(std::string message);
  static Status Unimplemented(std::string message);
  static Status Internal(std::string message);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIntegrityViolation() const {
    return code() == StatusCode::kIntegrityViolation;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Appends contextual detail to the error message; no-op on OK.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK; shared so Status is cheap to copy.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace claks

#endif  // CLAKS_COMMON_STATUS_H_
