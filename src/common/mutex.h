// Copyright 2026 The claks Authors.
//
// Annotated mutex wrapper. libstdc++'s std::mutex and std::lock_guard
// carry no thread-safety attributes, so clang's `-Wthread-safety`
// analysis cannot see their acquires and releases; claks::Mutex and
// claks::MutexLock are the thinnest possible wrappers (zero overhead:
// every method is an inline forward) that do carry the attributes, which
// lets CLAKS_GUARDED_BY fields be compile-time enforced on clang builds.
//
// Condition variables: MutexLock::native() exposes the underlying
// std::unique_lock for std::condition_variable::wait. wait() unlocks and
// relocks internally, which the analysis does not model — it reasons at
// scope granularity, and the lock is held again whenever wait returns, so
// guarded reads inside a wait loop stay sound. Write wait loops as
// explicit `while (!cond) cv.wait(lock.native());` so the condition reads
// happen in the annotated scope (a predicate lambda would be analysed as
// an unannotated function).

#ifndef CLAKS_COMMON_MUTEX_H_
#define CLAKS_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace claks {

/// std::mutex with capability annotations. Prefer MutexLock over manual
/// Lock/Unlock pairs; the manual form exists for the rare non-scoped
/// protocol and keeps the analysis exact via CLAKS_ACQUIRE/RELEASE.
class CLAKS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CLAKS_ACQUIRE() { mu_.lock(); }
  void Unlock() CLAKS_RELEASE() { mu_.unlock(); }
  bool TryLock() CLAKS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a claks::Mutex (the annotated std::lock_guard). Holds
/// the capability from construction to scope exit.
class CLAKS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CLAKS_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() CLAKS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying lock, for std::condition_variable::wait only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace claks

#endif  // CLAKS_COMMON_MUTEX_H_
