// Copyright 2026 The claks Authors.

#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace claks {

namespace {
// splitmix64, used to expand the seed into the xorshift state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  state_[0] = SplitMix64(&s);
  state_[1] = SplitMix64(&s);
  if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t x = state_[0];
  const uint64_t y = state_[1];
  state_[0] = y;
  x ^= x << 23;
  state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return state_[1] + y;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  CLAKS_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Index(size_t size) {
  CLAKS_CHECK_GT(size, 0u);
  return static_cast<size_t>(Next() % size);
}

size_t Rng::Zipf(size_t n, double s) {
  CLAKS_CHECK_GT(n, 0u);
  CLAKS_CHECK_GT(s, 0.0);
  // Inverse-CDF over the harmonic weights. n is at most a few million in our
  // generators; an O(n) scan per draw would be too slow, so use the classic
  // rejection method of Devroye instead.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    double u = NextDouble();
    double v = NextDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<size_t>(x) - 1;
    }
  }
}

}  // namespace claks
