// Copyright 2026 The claks Authors.
//
// Span<T>: a non-owning read-only view over a contiguous array. The CSR
// structures (relational join indexes, data-graph adjacency) hand out
// ranges of their flat arrays without copying; Span is the currency.

#ifndef CLAKS_COMMON_SPAN_H_
#define CLAKS_COMMON_SPAN_H_

#include <cstddef>

namespace claks {

/// Read-only view of `size` consecutive elements starting at `data`.
/// Supports range-for, indexing and the usual size queries. The viewed
/// array must outlive the span (spans into an index/graph are invalidated
/// by a rebuild, like iterators into a vector).
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t index) const { return data_[index]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace claks

#endif  // CLAKS_COMMON_SPAN_H_
