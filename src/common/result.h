// Copyright 2026 The claks Authors.
//
// Result<T>: a value or a Status, Arrow-style.

#ifndef CLAKS_COMMON_RESULT_H_
#define CLAKS_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace claks {

/// Holds either a successfully computed `T` or the Status explaining why the
/// computation failed. Use with CLAKS_ASSIGN_OR_RETURN for propagation.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CLAKS_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CLAKS_CHECK(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    CLAKS_CHECK(ok());
    return *value_;
  }
  T ValueOrDie() && {
    CLAKS_CHECK(ok());
    return std::move(*value_);
  }

  /// Returns the value without checking; used by CLAKS_ASSIGN_OR_RETURN
  /// after an explicit ok() test.
  T ValueUnsafe() && { return std::move(*value_); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace claks

#endif  // CLAKS_COMMON_RESULT_H_
