// Copyright 2026 The claks Authors.

#include "common/thread_pool.h"

#include <chrono>
#include <utility>

#include "common/macros.h"
#include "observability/metrics.h"

namespace claks {

namespace {

// Pool health metrics, aggregated over every pool in the process (the
// service admission pool and the engines' intra-query shard pools).
// The queue-depth gauge tracks enqueue/dequeue exactly while recording
// is on; toggling recording mid-flight (the bench's A/B switch) can
// skew its level until the queues next drain.
CLAKS_METRIC_GAUGE(g_pool_queue_depth, "claks_pool_queue_depth",
                   "Tasks currently queued across all pools");
CLAKS_METRIC_COUNTER(g_pool_tasks, "claks_pool_tasks_total",
                     "Tasks accepted by Submit/TrySubmit");
CLAKS_METRIC_COUNTER(g_pool_backpressure_waits,
                     "claks_pool_backpressure_waits_total",
                     "Submit calls that blocked on a full queue");
CLAKS_METRIC_HISTOGRAM(g_pool_backpressure_us,
                       "claks_pool_backpressure_wait_us",
                       "Time Submit spent blocked on a full queue");

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  CLAKS_CHECK(task != nullptr);
  {
    MutexLock lock(&mutex_);
    if (queue_.size() >= capacity_ && !stopping_) {
      // Backpressure: the bounded queue is full, the caller blocks. The
      // wait is already a slow path, so the metric's clock reads cost
      // nothing measurable.
      g_pool_backpressure_waits.Inc();
      auto wait_start = std::chrono::steady_clock::now();
      while (queue_.size() >= capacity_ && !stopping_) {
        not_full_.wait(lock.native());
      }
      g_pool_backpressure_us.Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count()));
    }
    CLAKS_CHECK(!stopping_);  // submitting to a destructing pool
    queue_.push_back(std::move(task));
    g_pool_tasks.Inc();
    g_pool_queue_depth.Add(1);
  }
  not_empty_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()>& task) {
  CLAKS_CHECK(task != nullptr);
  {
    MutexLock lock(&mutex_);
    CLAKS_CHECK(!stopping_);
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    g_pool_tasks.Inc();
    g_pool_queue_depth.Add(1);
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  MutexLock lock(&mutex_);
  while (!queue_.empty() || executing_ != 0) {
    all_idle_.wait(lock.native());
  }
}

size_t ThreadPool::pending() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (queue_.empty() && !stopping_) {
        not_empty_.wait(lock.native());
      }
      // Drain-before-exit: shutdown completes queued work, it never
      // cancels it (Submit callers hold futures on these tasks).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      g_pool_queue_depth.Add(-1);
      ++executing_;
    }
    not_full_.notify_one();
    task();
    {
      MutexLock lock(&mutex_);
      --executing_;
      if (queue_.empty() && executing_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace claks
