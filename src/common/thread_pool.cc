// Copyright 2026 The claks Authors.

#include "common/thread_pool.h"

#include <utility>

#include "common/macros.h"

namespace claks {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  CLAKS_CHECK(task != nullptr);
  {
    MutexLock lock(&mutex_);
    while (queue_.size() >= capacity_ && !stopping_) {
      not_full_.wait(lock.native());
    }
    CLAKS_CHECK(!stopping_);  // submitting to a destructing pool
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()>& task) {
  CLAKS_CHECK(task != nullptr);
  {
    MutexLock lock(&mutex_);
    CLAKS_CHECK(!stopping_);
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  MutexLock lock(&mutex_);
  while (!queue_.empty() || executing_ != 0) {
    all_idle_.wait(lock.native());
  }
}

size_t ThreadPool::pending() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (queue_.empty() && !stopping_) {
        not_empty_.wait(lock.native());
      }
      // Drain-before-exit: shutdown completes queued work, it never
      // cancels it (Submit callers hold futures on these tasks).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }
    not_full_.notify_one();
    task();
    {
      MutexLock lock(&mutex_);
      --executing_;
      if (queue_.empty() && executing_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace claks
