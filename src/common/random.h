// Copyright 2026 The claks Authors.
//
// Deterministic random utilities for the synthetic dataset generators and
// benchmarks. A fixed seed always reproduces the same database.

#ifndef CLAKS_COMMON_RANDOM_H_
#define CLAKS_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace claks {

/// xorshift128+ generator: fast, deterministic across platforms (unlike
/// std::mt19937 distribution wrappers, whose output is not guaranteed to be
/// identical across standard library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Picks an index in [0, size) — convenience for vector element choice.
  size_t Index(size_t size);

  /// Zipf-distributed value in [0, n) with exponent `s` (s > 0); rank 0 is
  /// the most likely. Uses the rejection-free inverse-CDF over precomputed
  /// weights for small n and rejection sampling otherwise.
  size_t Zipf(size_t n, double s);

 private:
  uint64_t state_[2];
};

/// Deterministically shuffles `values` in place using `rng`.
template <typename T>
void Shuffle(std::vector<T>* values, Rng* rng) {
  for (size_t i = values->size(); i > 1; --i) {
    size_t j = rng->Index(i);
    std::swap((*values)[i - 1], (*values)[j]);
  }
}

}  // namespace claks

#endif  // CLAKS_COMMON_RANDOM_H_
