// Copyright 2026 The claks Authors.
//
// Tuple identity and row storage. A TupleId addresses any tuple in a
// Database as (table index, row index); the data graph, inverted index and
// connection model all speak TupleIds.

#ifndef CLAKS_RELATIONAL_TUPLE_H_
#define CLAKS_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace claks {

/// A row: one Value per attribute, in schema order.
using Row = std::vector<Value>;

/// Globally unique tuple address within one Database.
struct TupleId {
  uint32_t table = 0;
  uint32_t row = 0;

  bool operator==(const TupleId& other) const {
    return table == other.table && row == other.row;
  }
  bool operator!=(const TupleId& other) const { return !(*this == other); }
  bool operator<(const TupleId& other) const {
    return table != other.table ? table < other.table : row < other.row;
  }

  /// Packs into one 64-bit key (table in high bits).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(table) << 32) | row;
  }
  static TupleId Unpack(uint64_t packed) {
    return TupleId{static_cast<uint32_t>(packed >> 32),
                   static_cast<uint32_t>(packed & 0xffffffffULL)};
  }

  std::string ToString() const;
};

struct TupleIdHash {
  size_t operator()(const TupleId& id) const {
    return std::hash<uint64_t>{}(id.Pack());
  }
};

/// Builds a canonical string key from a subset of row values (used for
/// hash-indexing primary keys and foreign keys). Values are rendered with a
/// type tag and separator so distinct value lists never collide.
std::string MakeKey(const Row& row, const std::vector<size_t>& indices);

}  // namespace claks

#endif  // CLAKS_RELATIONAL_TUPLE_H_
