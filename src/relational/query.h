// Copyright 2026 The claks Authors.
//
// A small relational-algebra evaluator: selection, projection, hash
// equi-join. This is not a SQL engine; it exists so that joining networks of
// tuples (MTJNT evaluation, examples, tests) can be expressed and verified
// against a straightforward implementation.

#ifndef CLAKS_RELATIONAL_QUERY_H_
#define CLAKS_RELATIONAL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace claks {

/// Comparison operators for selection predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

/// A simple attribute-vs-constant predicate.
struct Predicate {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// Evaluates `pred` against one row of `schema`.
Result<bool> EvalPredicate(const TableSchema& schema, const Row& row,
                           const Predicate& pred);

/// An intermediate query result: named, typed columns and value rows.
/// Column names are qualified "<table>.<attribute>" to keep joins
/// unambiguous.
class Relation {
 public:
  struct Column {
    std::string name;
    ValueType type;
  };

  Relation() = default;
  Relation(std::vector<Column> columns, std::vector<Row> rows);

  /// Builds a relation from a whole table (qualified column names).
  static Relation FromTable(const Table& table);

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Rows satisfying attribute-level predicate on qualified column `name`.
  Result<Relation> Select(const std::string& column, CompareOp op,
                          const Value& constant) const;

  /// Keeps only the named columns (in the given order).
  Result<Relation> Project(const std::vector<std::string>& names) const;

  /// Hash equi-join with `right` on `left_column` == `right_column`.
  /// The result contains all columns of both inputs.
  Result<Relation> Join(const Relation& right, const std::string& left_column,
                        const std::string& right_column) const;

  /// Removes duplicate rows (value equality across all columns).
  Relation Distinct() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

/// Evaluates a chain of FK joins along table names: joins table[0] to
/// table[1] to ... following any declared FK between consecutive tables (in
/// either direction). Used to validate joining networks of tuples.
Result<Relation> JoinAlongPath(const Database& db,
                               const std::vector<std::string>& tables);

}  // namespace claks

#endif  // CLAKS_RELATIONAL_QUERY_H_
