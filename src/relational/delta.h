// Copyright 2026 The claks Authors.
//
// Delta extraction: what changed in a Database between two points in time.
//
// The service mutation path (service/search_service.h) snapshots a
// watermark (per-table slot and tombstone counts — both monotone, thanks to
// Table's append-only slots and append-only tombstone log), runs the user's
// mutation batch, and diffs the watermark against the mutated clone. The
// resulting DatabaseDelta drives O(delta) derivation of the next engine
// generation (core/engine.h) instead of a full rebuild.
//
// A row inserted and deleted within the same batch appears in neither list:
// no warmed structure ever saw it, so no structure needs to forget it.

#ifndef CLAKS_RELATIONAL_DELTA_H_
#define CLAKS_RELATIONAL_DELTA_H_

#include <cstdint>
#include <vector>

#include "relational/database.h"

namespace claks {

/// One row-level change: row slot `row` of table `table`.
struct DeltaOp {
  uint32_t table = 0;
  uint32_t row = 0;
};

/// Net row changes between two watermarks, in canonical (table, row)
/// ascending order within each list.
struct DatabaseDelta {
  std::vector<DeltaOp> inserts;
  std::vector<DeltaOp> deletes;
  /// Tables were added (or the count otherwise drifted): the delta path
  /// cannot describe this and the caller must fall back to a full rebuild.
  bool schema_changed = false;

  bool empty() const {
    return !schema_changed && inserts.empty() && deletes.empty();
  }
  size_t num_ops() const { return inserts.size() + deletes.size(); }
};

/// Per-table progress markers captured before a mutation batch.
struct DatabaseWatermark {
  std::vector<size_t> slot_counts;       ///< Table::num_rows per table
  std::vector<size_t> tombstone_counts;  ///< Table::tombstone_count per table
};

/// Captures the current watermark of `db`.
DatabaseWatermark TakeWatermark(const Database& db);

/// Diffs `after` against a watermark taken from an earlier state of the
/// same database (or a clone sharing its history). Rows both inserted and
/// deleted since the watermark are dropped from both lists.
DatabaseDelta ComputeDelta(const DatabaseWatermark& before,
                           const Database& after);

}  // namespace claks

#endif  // CLAKS_RELATIONAL_DELTA_H_
