// Copyright 2026 The claks Authors.

#include "relational/table.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

Table::Table(TableSchema schema)
    : schema_(std::move(schema)),
      base_(std::make_shared<const BaseSegment>()) {
  CLAKS_CHECK(schema_.Validate().ok());
  pk_indices_ = schema_.PrimaryKeyIndices();
}

const Row& Table::row(size_t index) const {
  CLAKS_CHECK_LT(index, num_rows());
  if (index < base_->rows.size()) return base_->rows[index];
  return tail_rows_[index - base_->rows.size()];
}

bool Table::IsDeleted(size_t index) const {
  CLAKS_CHECK_LT(index, num_rows());
  if (overlay_deleted_.count(static_cast<uint32_t>(index)) != 0) return true;
  return index < base_->deleted.size() && base_->deleted[index];
}

std::string Table::KeyOfRow(const Row& row) const {
  return MakeKey(row, pk_indices_);
}

Result<size_t> Table::Insert(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': expected %zu values, got %zu",
                  name().c_str(), schema_.num_attributes(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const AttributeDef& attr = schema_.attribute(i);
    if (row[i].is_null()) {
      if (!attr.nullable) {
        return Status::IntegrityViolation("NULL in non-nullable attribute '" +
                                          attr.name + "' of table '" +
                                          name() + "'");
      }
      continue;
    }
    if (row[i].type() != attr.type) {
      return Status::InvalidArgument(
          StrFormat("table '%s', attribute '%s': expected %s, got %s",
                    name().c_str(), attr.name.c_str(),
                    ValueTypeToString(attr.type),
                    ValueTypeToString(row[i].type())));
    }
  }
  std::string key = KeyOfRow(row);
  bool base_live = overlay_removed_keys_.count(key) == 0 &&
                   base_->pk_index.count(key) != 0;
  if (base_live || tail_pk_.count(key) != 0) {
    return Status::IntegrityViolation("duplicate primary key in table '" +
                                      name() + "'");
  }
  size_t slot = num_rows();
  tail_pk_.emplace(std::move(key), slot);
  tail_rows_.push_back(std::move(row));
  return slot;
}

Status Table::Delete(size_t row_index) {
  if (row_index >= num_rows()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': delete of row %zu out of range (%zu rows)",
                  name().c_str(), row_index, num_rows()));
  }
  if (IsDeleted(row_index)) {
    return Status::InvalidArgument(
        StrFormat("table '%s': row %zu already deleted", name().c_str(),
                  row_index));
  }
  std::string key = KeyOfRow(row(row_index));
  if (row_index < base_->rows.size()) {
    // Mask the frozen pk entry; the shared base stays untouched.
    overlay_removed_keys_.insert(std::move(key));
  } else {
    tail_pk_.erase(key);
  }
  overlay_deleted_.insert(static_cast<uint32_t>(row_index));
  tail_tombstone_log_.push_back(static_cast<uint32_t>(row_index));
  return Status::OK();
}

Status Table::DeleteByPrimaryKey(const Row& key_values) {
  std::optional<size_t> slot = FindByPrimaryKey(key_values);
  if (!slot.has_value()) {
    return Status::NotFound(
        StrFormat("table '%s': no live row with that primary key",
                  name().c_str()));
  }
  return Delete(*slot);
}

std::optional<size_t> Table::FindByPrimaryKey(const Row& key_values) const {
  if (key_values.size() != pk_indices_.size()) return std::nullopt;
  std::vector<size_t> identity(key_values.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  std::string key = MakeKey(key_values, identity);
  auto tail_it = tail_pk_.find(key);
  if (tail_it != tail_pk_.end()) return tail_it->second;
  if (overlay_removed_keys_.count(key) != 0) return std::nullopt;
  auto it = base_->pk_index.find(key);
  if (it == base_->pk_index.end()) return std::nullopt;
  return it->second;
}

std::vector<size_t> Table::FindRows(const std::vector<size_t>& attr_indices,
                                    const Row& values) const {
  CLAKS_CHECK_EQ(attr_indices.size(), values.size());
  std::vector<size_t> out;
  for (size_t r = 0; r < num_rows(); ++r) {
    if (IsDeleted(r)) continue;
    const Row& candidate = row(r);
    bool match = true;
    for (size_t i = 0; i < attr_indices.size(); ++i) {
      if (candidate[attr_indices[i]] != values[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(r);
  }
  return out;
}

const Value& Table::at(size_t row_index, size_t attr_index) const {
  CLAKS_CHECK_LT(row_index, num_rows());
  CLAKS_CHECK_LT(attr_index, schema_.num_attributes());
  return row(row_index)[attr_index];
}

uint32_t Table::Tombstone(size_t i) const {
  CLAKS_CHECK_LT(i, tombstone_count());
  if (i < base_->tombstone_log.size()) return base_->tombstone_log[i];
  return tail_tombstone_log_[i - base_->tombstone_log.size()];
}

void Table::Rebase() {
  if (tail_rows_.empty() && overlay_deleted_.empty()) return;
  auto next = std::make_shared<BaseSegment>();
  next->rows.reserve(num_rows());
  next->rows = base_->rows;
  next->rows.insert(next->rows.end(), tail_rows_.begin(), tail_rows_.end());
  next->deleted.assign(next->rows.size(), false);
  for (size_t r = 0; r < base_->deleted.size(); ++r) {
    if (base_->deleted[r]) next->deleted[r] = true;
  }
  for (uint32_t r : overlay_deleted_) next->deleted[r] = true;
  next->deleted_count = base_->deleted_count + overlay_deleted_.size();
  next->tombstone_log = base_->tombstone_log;
  next->tombstone_log.insert(next->tombstone_log.end(),
                             tail_tombstone_log_.begin(),
                             tail_tombstone_log_.end());
  next->pk_index.reserve(next->rows.size() - next->deleted_count);
  for (size_t r = 0; r < next->rows.size(); ++r) {
    if (next->deleted[r]) continue;
    next->pk_index.emplace(KeyOfRow(next->rows[r]), r);
  }
  base_ = std::move(next);
  tail_rows_.clear();
  tail_pk_.clear();
  overlay_deleted_.clear();
  overlay_removed_keys_.clear();
  tail_tombstone_log_.clear();
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.num_attributes());
  for (size_t i = 0; i < widths.size(); ++i) {
    widths[i] = schema_.attribute(i).name.size();
  }
  std::vector<size_t> shown_rows;
  for (size_t r = 0; r < num_rows() && shown_rows.size() < max_rows; ++r) {
    if (!IsDeleted(r)) shown_rows.push_back(r);
  }
  for (size_t r : shown_rows) {
    for (size_t i = 0; i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row(r)[i].ToString().size());
    }
  }
  std::string out = name() + "\n";
  for (size_t i = 0; i < widths.size(); ++i) {
    out += PadRight(schema_.attribute(i).name, widths[i] + 2);
  }
  out += "\n";
  for (size_t r : shown_rows) {
    for (size_t i = 0; i < widths.size(); ++i) {
      out += PadRight(row(r)[i].ToString(), widths[i] + 2);
    }
    out += "\n";
  }
  if (shown_rows.size() < live_rows()) {
    out += StrFormat("... (%zu more rows)\n", live_rows() - shown_rows.size());
  }
  return out;
}

}  // namespace claks
