// Copyright 2026 The claks Authors.

#include "relational/table.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  CLAKS_CHECK(schema_.Validate().ok());
  pk_indices_ = schema_.PrimaryKeyIndices();
}

const Row& Table::row(size_t index) const {
  CLAKS_CHECK_LT(index, rows_.size());
  return rows_[index];
}

Result<size_t> Table::Insert(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': expected %zu values, got %zu",
                  name().c_str(), schema_.num_attributes(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const AttributeDef& attr = schema_.attribute(i);
    if (row[i].is_null()) {
      if (!attr.nullable) {
        return Status::IntegrityViolation("NULL in non-nullable attribute '" +
                                          attr.name + "' of table '" +
                                          name() + "'");
      }
      continue;
    }
    if (row[i].type() != attr.type) {
      return Status::InvalidArgument(
          StrFormat("table '%s', attribute '%s': expected %s, got %s",
                    name().c_str(), attr.name.c_str(),
                    ValueTypeToString(attr.type),
                    ValueTypeToString(row[i].type())));
    }
  }
  std::string key = MakeKey(row, pk_indices_);
  auto [it, inserted] = pk_index_.emplace(std::move(key), rows_.size());
  if (!inserted) {
    return Status::IntegrityViolation("duplicate primary key in table '" +
                                      name() + "'");
  }
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

std::optional<size_t> Table::FindByPrimaryKey(const Row& key_values) const {
  if (key_values.size() != pk_indices_.size()) return std::nullopt;
  std::vector<size_t> identity(key_values.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  auto it = pk_index_.find(MakeKey(key_values, identity));
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<size_t> Table::FindRows(const std::vector<size_t>& attr_indices,
                                    const Row& values) const {
  CLAKS_CHECK_EQ(attr_indices.size(), values.size());
  std::vector<size_t> out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    bool match = true;
    for (size_t i = 0; i < attr_indices.size(); ++i) {
      if (rows_[r][attr_indices[i]] != values[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(r);
  }
  return out;
}

const Value& Table::at(size_t row_index, size_t attr_index) const {
  CLAKS_CHECK_LT(row_index, rows_.size());
  CLAKS_CHECK_LT(attr_index, schema_.num_attributes());
  return rows_[row_index][attr_index];
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.num_attributes());
  for (size_t i = 0; i < widths.size(); ++i) {
    widths[i] = schema_.attribute(i).name.size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], rows_[r][i].ToString().size());
    }
  }
  std::string out = name() + "\n";
  for (size_t i = 0; i < widths.size(); ++i) {
    out += PadRight(schema_.attribute(i).name, widths[i] + 2);
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < widths.size(); ++i) {
      out += PadRight(rows_[r][i].ToString(), widths[i] + 2);
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

}  // namespace claks
