// Copyright 2026 The claks Authors.

#include "relational/csv.h"

#include "common/string_util.h"

namespace claks {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char sep) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (field_started && !field.empty()) {
        return Status::ParseError(
            StrFormat("unexpected quote mid-field at offset %zu", i));
      }
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      end_field();
    } else if (c == '\r') {
      // Swallow; the following \n (if any) ends the record.
    } else if (c == '\n') {
      end_record();
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  // Final record without trailing newline.
  if (field_started || !record.empty() || !field.empty()) end_record();
  return records;
}

Status LoadCsvInto(Table* table, const std::string& text, bool has_header,
                   char sep) {
  CLAKS_ASSIGN_OR_RETURN(auto records, ParseCsv(text, sep));
  size_t start = 0;
  const TableSchema& schema = table->schema();
  if (has_header) {
    if (records.empty()) return Status::ParseError("missing CSV header");
    if (records[0].size() != schema.num_attributes()) {
      return Status::ParseError(StrFormat(
          "CSV header has %zu fields, schema '%s' has %zu attributes",
          records[0].size(), schema.name().c_str(),
          schema.num_attributes()));
    }
    for (size_t i = 0; i < records[0].size(); ++i) {
      if (records[0][i] != schema.attribute(i).name) {
        return Status::ParseError("CSV header field '" + records[0][i] +
                                  "' does not match attribute '" +
                                  schema.attribute(i).name + "'");
      }
    }
    start = 1;
  }
  for (size_t r = start; r < records.size(); ++r) {
    const auto& record = records[r];
    if (record.size() != schema.num_attributes()) {
      return Status::ParseError(
          StrFormat("CSV record %zu has %zu fields, expected %zu", r,
                    record.size(), schema.num_attributes()));
    }
    Row row;
    row.reserve(record.size());
    for (size_t i = 0; i < record.size(); ++i) {
      // CSV cannot distinguish NULL from the empty string; by convention an
      // empty field in a *nullable* column is NULL (non-nullable string
      // columns keep "" as a value).
      if (record[i].empty() && schema.attribute(i).nullable) {
        row.push_back(Value::Null());
        continue;
      }
      CLAKS_ASSIGN_OR_RETURN(
          Value v, Value::Parse(record[i], schema.attribute(i).type));
      row.push_back(std::move(v));
    }
    CLAKS_RETURN_NOT_OK(table->Insert(std::move(row)).status().WithContext(
        StrFormat("CSV record %zu", r)));
  }
  return Status::OK();
}

std::string CsvEscape(const std::string& field, char sep) {
  bool needs_quotes = field.find(sep) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string TableToCsv(const Table& table, char sep) {
  std::string out;
  const TableSchema& schema = table.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += sep;
    out += CsvEscape(schema.attribute(i).name, sep);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (table.IsDeleted(r)) continue;
    const Row& row = table.row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += sep;
      out += CsvEscape(row[i].ToString(), sep);
    }
    out += '\n';
  }
  return out;
}

}  // namespace claks
