// Copyright 2026 The claks Authors.

#include "relational/database.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "relational/delta.h"

namespace claks {

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>();
  copy->tables_.reserve(tables_.size());
  for (const auto& table : tables_) {
    copy->tables_.push_back(std::make_unique<Table>(*table));
  }
  copy->name_to_index_ = name_to_index_;
  return copy;
}

Result<Table*> Database::AddTable(TableSchema schema) {
  CLAKS_RETURN_NOT_OK(schema.Validate());
  if (name_to_index_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "'");
  }
  name_to_index_.emplace(schema.name(),
                         static_cast<uint32_t>(tables_.size()));
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return tables_.back().get();
}

const Table& Database::table(size_t index) const {
  CLAKS_CHECK_LT(index, tables_.size());
  return *tables_[index];
}

Table* Database::mutable_table(size_t index) {
  CLAKS_CHECK_LT(index, tables_.size());
  return tables_[index].get();
}

std::optional<uint32_t> Database::TableIndex(const std::string& name) const {
  auto it = name_to_index_.find(name);
  if (it == name_to_index_.end()) return std::nullopt;
  return it->second;
}

const Table* Database::FindTable(const std::string& name) const {
  auto idx = TableIndex(name);
  return idx.has_value() ? tables_[*idx].get() : nullptr;
}

Table* Database::FindMutableTable(const std::string& name) {
  auto idx = TableIndex(name);
  return idx.has_value() ? tables_[*idx].get() : nullptr;
}

Result<const Table*> Database::RequireTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table '" + name + "'");
  return t;
}

const Row& Database::RowOf(TupleId id) const {
  return table(id.table).row(id.row);
}

const TableSchema& Database::SchemaOf(TupleId id) const {
  return table(id.table).schema();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

namespace {

// Resolves one FK of one row; returns the referenced row index or nullopt
// when any FK value is NULL. `ref_pk_indices` are the referenced table's
// positions for the referenced attributes.
std::optional<size_t> ResolveOneFk(const Row& row,
                                   const std::vector<size_t>& local_indices,
                                   const Table& referenced) {
  Row key;
  key.reserve(local_indices.size());
  for (size_t idx : local_indices) {
    if (row[idx].is_null()) return std::nullopt;
    key.push_back(row[idx]);
  }
  return referenced.FindByPrimaryKey(key);
}

}  // namespace

Status Database::CheckReferentialIntegrity() const {
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = *tables_[t];
    const auto& fks = tab.schema().foreign_keys();
    for (size_t f = 0; f < fks.size(); ++f) {
      const ForeignKeyDef& fk = fks[f];
      const Table* referenced = FindTable(fk.referenced_table);
      if (referenced == nullptr) {
        return Status::IntegrityViolation(
            "table '" + tab.name() + "' references missing table '" +
            fk.referenced_table + "'");
      }
      // The referenced attributes must be exactly the referenced table's
      // primary key (we only support key-based references, as does the
      // paper's model).
      if (fk.referenced_attributes != referenced->schema().primary_key()) {
        return Status::IntegrityViolation(
            "foreign key of '" + tab.name() + "' does not reference the "
            "primary key of '" + fk.referenced_table + "'");
      }
      std::vector<size_t> local_indices;
      for (const auto& attr : fk.local_attributes) {
        auto idx = tab.schema().AttributeIndex(attr);
        CLAKS_CHECK(idx.has_value());
        local_indices.push_back(*idx);
      }
      for (size_t r = 0; r < tab.num_rows(); ++r) {
        if (tab.IsDeleted(r)) continue;
        const Row& row = tab.row(r);
        bool any_null = false;
        for (size_t idx : local_indices) {
          if (row[idx].is_null()) any_null = true;
        }
        if (any_null) continue;
        if (!ResolveOneFk(row, local_indices, *referenced).has_value()) {
          return Status::IntegrityViolation(StrFormat(
              "dangling foreign key: %s row %zu -> %s", tab.name().c_str(),
              r, fk.referenced_table.c_str()));
        }
      }
    }
  }
  return Status::OK();
}

bool Database::JoinIndexesFreshLocked() const {
  if (indexed_row_counts_.size() != tables_.size()) return false;
  if (indexed_tombstone_counts_.size() != tables_.size()) return false;
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (indexed_row_counts_[t] != tables_[t]->num_rows()) return false;
    if (indexed_tombstone_counts_[t] != tables_[t]->tombstone_count()) {
      return false;
    }
  }
  return true;
}

// Lock-free read of the published cache: the acquire pairs with the
// release store at the end of the build — a reader that sees the flag
// also sees the fully-built cache and the row counts it was built
// against. Stale counts (a mutation happened) can only be observed when
// mutation has stopped racing with readers, per the class contract. The
// analysis cannot express release/acquire publication, hence the opt-out.
bool Database::JoinIndexesFresh() const CLAKS_NO_THREAD_SAFETY_ANALYSIS {
  if (!join_indexes_built_.load(std::memory_order_acquire)) return false;
  return JoinIndexesFreshLocked();
}

void Database::BuildJoinIndexes() const {
  if (JoinIndexesFresh()) return;  // lock-free fast path
  MutexLock lock(&join_index_mutex_);
  // Double-check under the lock: another thread may have finished the
  // build while this one waited.
  if (join_indexes_built_.load(std::memory_order_relaxed) &&
      JoinIndexesFreshLocked()) {
    return;
  }
  join_indexes_.assign(tables_.size(), {});
  indexed_row_counts_.resize(tables_.size());
  indexed_tombstone_counts_.resize(tables_.size());

  for (uint32_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = *tables_[t];
    indexed_row_counts_[t] = tab.num_rows();
    indexed_tombstone_counts_[t] = tab.tombstone_count();
    const auto& fks = tab.schema().foreign_keys();
    join_indexes_[t].resize(fks.size());
    for (uint32_t f = 0; f < fks.size(); ++f) {
      const ForeignKeyDef& fk = fks[f];
      FkJoinIndex& index = join_indexes_[t][f];
      index.table = t;
      index.fk_index = f;
      auto base = std::make_shared<FkJoinIndex::Base>();
      base->parent_row.assign(tab.num_rows(), FkJoinIndex::kNoParent);

      auto ref_index = TableIndex(fk.referenced_table);
      std::vector<size_t> local_indices;
      local_indices.reserve(fk.local_attributes.size());
      bool resolved_attrs = true;
      for (const auto& attr : fk.local_attributes) {
        auto idx = tab.schema().AttributeIndex(attr);
        if (!idx.has_value()) {
          resolved_attrs = false;
          break;
        }
        local_indices.push_back(*idx);
      }
      if (!ref_index.has_value() || !resolved_attrs) {
        index.base = std::move(base);
        continue;
      }
      index.referenced_table = *ref_index;
      index.valid = true;
      const Table& referenced = *tables_[*ref_index];

      // Child->parent: one hash probe per live row (tombstoned child rows
      // keep kNoParent — no edges out of the dead).
      for (uint32_t r = 0; r < tab.num_rows(); ++r) {
        if (tab.IsDeleted(r)) continue;
        auto target = ResolveOneFk(tab.row(r), local_indices, referenced);
        if (target.has_value()) {
          base->parent_row[r] = static_cast<uint32_t>(*target);
        }
      }

      // Parent->children CSR: count, prefix-sum, fill (rows ascending).
      base->child_offsets.assign(referenced.num_rows() + 1, 0);
      for (uint32_t parent : base->parent_row) {
        if (parent != FkJoinIndex::kNoParent) {
          ++base->child_offsets[parent + 1];
        }
      }
      for (size_t p = 1; p < base->child_offsets.size(); ++p) {
        base->child_offsets[p] += base->child_offsets[p - 1];
      }
      base->child_rows.resize(base->child_offsets.back());
      std::vector<uint32_t> cursor(base->child_offsets.begin(),
                                   base->child_offsets.end() - 1);
      for (uint32_t r = 0; r < base->parent_row.size(); ++r) {
        uint32_t parent = base->parent_row[r];
        if (parent != FkJoinIndex::kNoParent) {
          base->child_rows[cursor[parent]++] = r;
        }
      }
      index.base = std::move(base);
    }
  }

  RebuildFkEdgesLocked();
  fk_edges_built_.store(true, std::memory_order_release);
  join_indexes_built_.store(true, std::memory_order_release);
}

void Database::RebuildFkEdgesLocked() const {
  // Canonical (table, row, fk) order; tombstoned rows have no parents so
  // the Parent() == kNoParent test covers them.
  all_fk_edges_.clear();
  for (uint32_t t = 0; t < tables_.size(); ++t) {
    const auto& indexes = join_indexes_[t];
    for (uint32_t r = 0; r < tables_[t]->num_rows(); ++r) {
      for (uint32_t f = 0; f < indexes.size(); ++f) {
        const FkJoinIndex& index = indexes[f];
        uint32_t parent = index.Parent(r);
        if (!index.valid || parent == FkJoinIndex::kNoParent) continue;
        all_fk_edges_.push_back(
            FkEdge{TupleId{t, r}, TupleId{index.referenced_table, parent},
                   f});
      }
    }
  }
}

Status Database::DeriveJoinIndexes(const Database& prev,
                                   const DatabaseDelta& delta) const {
  CLAKS_CHECK(!delta.schema_changed);
  CLAKS_CHECK(prev.JoinIndexesFresh());
  // Lock order: prev before this. Derives never run in both directions
  // at once (SearchService serializes mutations), and prev is a frozen
  // generation, so its lock is uncontended — taken here only to make the
  // read of prev's cache provable to the analysis.
  MutexLock prev_lock(&prev.join_index_mutex_);
  MutexLock lock(&join_index_mutex_);
  join_indexes_built_.store(false, std::memory_order_relaxed);
  fk_edges_built_.store(false, std::memory_order_relaxed);
  join_indexes_ = prev.join_indexes_;  // shares bases, copies overlays

  // Deletes: un-link the dead child from its parent on every FK it owns.
  for (const DeltaOp& op : delta.deletes) {
    for (FkJoinIndex& index : join_indexes_[op.table]) {
      if (!index.valid) continue;
      uint32_t parent = index.Parent(op.row);
      if (parent == FkJoinIndex::kNoParent) continue;
      auto it = index.children_overrides.find(parent);
      if (it == index.children_overrides.end()) {
        Span<uint32_t> kids = index.Children(parent);
        it = index.children_overrides
                 .emplace(parent,
                          std::vector<uint32_t>(kids.begin(), kids.end()))
                 .first;
      }
      auto pos = std::lower_bound(it->second.begin(), it->second.end(),
                                  op.row);
      if (pos != it->second.end() && *pos == op.row) it->second.erase(pos);
      if (op.row < index.base->parent_row.size()) {
        index.parent_overrides[op.row] = FkJoinIndex::kNoParent;
      } else {
        index.tail_parent_row[op.row - index.base->parent_row.size()] =
            FkJoinIndex::kNoParent;
      }
    }
  }

  // Inserts, ascending (table, row): resolve each FK against this (the
  // post-batch) state. A non-NULL FK that resolves to nothing is dangling.
  for (const DeltaOp& op : delta.inserts) {
    const Table& tab = *tables_[op.table];
    const Row& row = tab.row(op.row);
    const auto& fks = tab.schema().foreign_keys();
    for (uint32_t f = 0; f < fks.size(); ++f) {
      FkJoinIndex& index = join_indexes_[op.table][f];
      // Grow the child->parent tail up to this slot (kNoParent padding
      // covers same-batch insert+delete slots skipped by the delta).
      while (index.child_slots() <= op.row) {
        index.tail_parent_row.push_back(FkJoinIndex::kNoParent);
      }
      if (!index.valid) continue;
      std::vector<size_t> local_indices;
      local_indices.reserve(fks[f].local_attributes.size());
      for (const auto& attr : fks[f].local_attributes) {
        auto idx = tab.schema().AttributeIndex(attr);
        CLAKS_CHECK(idx.has_value());
        local_indices.push_back(*idx);
      }
      bool any_null = false;
      for (size_t idx : local_indices) {
        if (row[idx].is_null()) any_null = true;
      }
      if (any_null) continue;
      const Table& referenced = *tables_[index.referenced_table];
      auto target = ResolveOneFk(row, local_indices, referenced);
      if (!target.has_value()) {
        return Status::IntegrityViolation(StrFormat(
            "dangling foreign key: %s row %u -> %s", tab.name().c_str(),
            op.row, fks[f].referenced_table.c_str()));
      }
      uint32_t parent = static_cast<uint32_t>(*target);
      if (op.row < index.base->parent_row.size()) {
        index.parent_overrides[op.row] = parent;
      } else {
        index.tail_parent_row[op.row - index.base->parent_row.size()] =
            parent;
      }
      auto it = index.children_overrides.find(parent);
      if (it == index.children_overrides.end()) {
        Span<uint32_t> kids = index.Children(parent);
        it = index.children_overrides
                 .emplace(parent,
                          std::vector<uint32_t>(kids.begin(), kids.end()))
                 .first;
      }
      auto pos = std::lower_bound(it->second.begin(), it->second.end(),
                                  op.row);
      it->second.insert(pos, op.row);
    }
  }

  // RESTRICT: after the whole batch, no live child may still reference a
  // deleted row (same-batch child deletions were already unlinked above).
  for (const DeltaOp& op : delta.deletes) {
    for (const auto& per_table : join_indexes_) {
      for (const FkJoinIndex& index : per_table) {
        if (!index.valid || index.referenced_table != op.table) continue;
        if (!index.Children(op.row).empty()) {
          return Status::IntegrityViolation(StrFormat(
              "cannot delete %s row %u: still referenced by %s",
              tables_[op.table]->name().c_str(), op.row,
              tables_[index.table]->name().c_str()));
        }
      }
    }
  }

  indexed_row_counts_.resize(tables_.size());
  indexed_tombstone_counts_.resize(tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    indexed_row_counts_[t] = tables_[t]->num_rows();
    indexed_tombstone_counts_[t] = tables_[t]->tombstone_count();
  }
  join_indexes_built_.store(true, std::memory_order_release);
  return Status::OK();
}

void Database::CompactJoinIndexes() const {
  MutexLock lock(&join_index_mutex_);
  if (!join_indexes_built_.load(std::memory_order_relaxed)) return;
  for (auto& per_table : join_indexes_) {
    for (FkJoinIndex& index : per_table) {
      if (index.IsCompact()) continue;
      auto next = std::make_shared<FkJoinIndex::Base>();
      // Fold child->parent: base + overrides + tail, pure array work.
      next->parent_row = index.base->parent_row;
      for (const auto& [child, parent] : index.parent_overrides) {
        next->parent_row[child] = parent;
      }
      next->parent_row.insert(next->parent_row.end(),
                              index.tail_parent_row.begin(),
                              index.tail_parent_row.end());
      if (!index.valid) {
        // Build leaves the CSR empty for unresolvable FKs; match it.
        index.base = std::move(next);
        index.tail_parent_row.clear();
        index.parent_overrides.clear();
        index.children_overrides.clear();
        continue;
      }
      // Re-derive the CSR exactly as BuildJoinIndexes does.
      next->child_offsets.assign(
          tables_[index.referenced_table]->num_rows() + 1, 0);
      for (uint32_t parent : next->parent_row) {
        if (parent != FkJoinIndex::kNoParent) {
          ++next->child_offsets[parent + 1];
        }
      }
      for (size_t p = 1; p < next->child_offsets.size(); ++p) {
        next->child_offsets[p] += next->child_offsets[p - 1];
      }
      next->child_rows.resize(next->child_offsets.back());
      std::vector<uint32_t> cursor(next->child_offsets.begin(),
                                   next->child_offsets.end() - 1);
      for (uint32_t r = 0; r < next->parent_row.size(); ++r) {
        uint32_t parent = next->parent_row[r];
        if (parent != FkJoinIndex::kNoParent) {
          next->child_rows[cursor[parent]++] = r;
        }
      }
      index.base = std::move(next);
      index.tail_parent_row.clear();
      index.parent_overrides.clear();
      index.children_overrides.clear();
    }
  }
}

bool Database::JoinIndexesCompact() const {
  if (!join_indexes_built_.load(std::memory_order_acquire)) return true;
  // Cold path (compaction policy, tests): the lock is cheaper than an
  // analysis opt-out here.
  MutexLock lock(&join_index_mutex_);
  for (const auto& per_table : join_indexes_) {
    for (const FkJoinIndex& index : per_table) {
      if (!index.IsCompact()) return false;
    }
  }
  return true;
}

size_t Database::JoinOverlayOps() const {
  if (!join_indexes_built_.load(std::memory_order_acquire)) return 0;
  MutexLock lock(&join_index_mutex_);
  size_t ops = 0;
  for (const auto& per_table : join_indexes_) {
    for (const FkJoinIndex& index : per_table) ops += index.OverlayOps();
  }
  return ops;
}

void Database::CompactStorage() {
  for (auto& table : tables_) table->Rebase();
}

// Hot path (every join probe): reads the cache lock-free after the
// acquire-published build — taking the mutex here would serialize all
// concurrent queries. Soundness is the Warmup contract: once warm, the
// cache is immutable until mutation, and mutation never races readers.
const FkJoinIndex& Database::JoinIndex(uint32_t table_index,
                                       uint32_t fk_index) const
    CLAKS_NO_THREAD_SAFETY_ANALYSIS {
  BuildJoinIndexes();
  CLAKS_CHECK_LT(table_index, join_indexes_.size());
  CLAKS_CHECK_LT(fk_index, join_indexes_[table_index].size());
  return join_indexes_[table_index][fk_index];
}

std::optional<TupleId> Database::JoinParent(TupleId child,
                                            uint32_t fk_index) const {
  const FkJoinIndex& index = JoinIndex(child.table, fk_index);
  CLAKS_CHECK_LT(child.row, index.child_slots());
  uint32_t parent = index.Parent(child.row);
  if (!index.valid || parent == FkJoinIndex::kNoParent) return std::nullopt;
  return TupleId{index.referenced_table, parent};
}

Span<uint32_t> Database::JoinChildren(uint32_t child_table,
                                      uint32_t fk_index,
                                      TupleId parent) const {
  const FkJoinIndex& index = JoinIndex(child_table, fk_index);
  if (!index.valid || parent.table != index.referenced_table) return {};
  return index.Children(parent.row);
}

// Same publication pattern as JoinIndex: the returned reference is read
// lock-free after the acquire load of fk_edges_built_, valid until the
// next mutation per the class contract.
const std::vector<FkEdge>& Database::ResolveAllFkEdges() const
    CLAKS_NO_THREAD_SAFETY_ANALYSIS {
  BuildJoinIndexes();
  // The delta derive path leaves the canonical list stale; regenerate it
  // on first demand from the (fresh) overlay indexes.
  if (!fk_edges_built_.load(std::memory_order_acquire)) {
    MutexLock lock(&join_index_mutex_);
    if (!fk_edges_built_.load(std::memory_order_relaxed)) {
      RebuildFkEdgesLocked();
      fk_edges_built_.store(true, std::memory_order_release);
    }
  }
  return all_fk_edges_;
}

std::vector<FkEdge> Database::ScanAllFkEdges() const {
  std::vector<FkEdge> edges;
  for (uint32_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = *tables_[t];
    for (uint32_t r = 0; r < tab.num_rows(); ++r) {
      if (tab.IsDeleted(r)) continue;
      auto row_edges = ResolveFkEdgesFrom(TupleId{t, r});
      edges.insert(edges.end(), row_edges.begin(), row_edges.end());
    }
  }
  return edges;
}

std::vector<FkEdge> Database::ResolveFkEdgesFrom(TupleId id) const {
  std::vector<FkEdge> edges;
  const Table& tab = table(id.table);
  const Row& row = tab.row(id.row);
  const auto& fks = tab.schema().foreign_keys();
  for (uint32_t f = 0; f < fks.size(); ++f) {
    const ForeignKeyDef& fk = fks[f];
    const Table* referenced = FindTable(fk.referenced_table);
    if (referenced == nullptr) continue;
    std::vector<size_t> local_indices;
    local_indices.reserve(fk.local_attributes.size());
    bool resolved_attrs = true;
    for (const auto& attr : fk.local_attributes) {
      auto idx = tab.schema().AttributeIndex(attr);
      if (!idx.has_value()) {
        resolved_attrs = false;
        break;
      }
      local_indices.push_back(*idx);
    }
    if (!resolved_attrs) continue;
    auto target_row = ResolveOneFk(row, local_indices, *referenced);
    if (!target_row.has_value()) continue;
    auto ref_index = TableIndex(fk.referenced_table);
    CLAKS_CHECK(ref_index.has_value());
    edges.push_back(FkEdge{
        id, TupleId{*ref_index, static_cast<uint32_t>(*target_row)}, f});
  }
  return edges;
}

std::string Database::TupleLabel(TupleId id) const {
  const Table& tab = table(id.table);
  std::string out = tab.name() + ":";
  const auto pk_indices = tab.schema().PrimaryKeyIndices();
  for (size_t i = 0; i < pk_indices.size(); ++i) {
    if (i > 0) out += ",";
    out += tab.row(id.row)[pk_indices[i]].ToString();
  }
  return out;
}

std::string Database::TupleSummary(TupleId id, size_t max_chars) const {
  const Table& tab = table(id.table);
  const Row& row = tab.row(id.row);
  std::string out;
  for (size_t i = 0; i < row.size() && out.size() < max_chars; ++i) {
    if (i > 0) out += " ";
    out += tab.schema().attribute(i).name + "=" + row[i].ToString();
  }
  if (out.size() > max_chars) {
    out.resize(max_chars);
    out += "...";
  }
  return out;
}

}  // namespace claks
