// Copyright 2026 The claks Authors.

#include "relational/database.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>();
  copy->tables_.reserve(tables_.size());
  for (const auto& table : tables_) {
    copy->tables_.push_back(std::make_unique<Table>(*table));
  }
  copy->name_to_index_ = name_to_index_;
  return copy;
}

Result<Table*> Database::AddTable(TableSchema schema) {
  CLAKS_RETURN_NOT_OK(schema.Validate());
  if (name_to_index_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "'");
  }
  name_to_index_.emplace(schema.name(),
                         static_cast<uint32_t>(tables_.size()));
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return tables_.back().get();
}

const Table& Database::table(size_t index) const {
  CLAKS_CHECK_LT(index, tables_.size());
  return *tables_[index];
}

Table* Database::mutable_table(size_t index) {
  CLAKS_CHECK_LT(index, tables_.size());
  return tables_[index].get();
}

std::optional<uint32_t> Database::TableIndex(const std::string& name) const {
  auto it = name_to_index_.find(name);
  if (it == name_to_index_.end()) return std::nullopt;
  return it->second;
}

const Table* Database::FindTable(const std::string& name) const {
  auto idx = TableIndex(name);
  return idx.has_value() ? tables_[*idx].get() : nullptr;
}

Table* Database::FindMutableTable(const std::string& name) {
  auto idx = TableIndex(name);
  return idx.has_value() ? tables_[*idx].get() : nullptr;
}

Result<const Table*> Database::RequireTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table '" + name + "'");
  return t;
}

const Row& Database::RowOf(TupleId id) const {
  return table(id.table).row(id.row);
}

const TableSchema& Database::SchemaOf(TupleId id) const {
  return table(id.table).schema();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

namespace {

// Resolves one FK of one row; returns the referenced row index or nullopt
// when any FK value is NULL. `ref_pk_indices` are the referenced table's
// positions for the referenced attributes.
std::optional<size_t> ResolveOneFk(const Row& row,
                                   const std::vector<size_t>& local_indices,
                                   const Table& referenced) {
  Row key;
  key.reserve(local_indices.size());
  for (size_t idx : local_indices) {
    if (row[idx].is_null()) return std::nullopt;
    key.push_back(row[idx]);
  }
  return referenced.FindByPrimaryKey(key);
}

}  // namespace

Status Database::CheckReferentialIntegrity() const {
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = *tables_[t];
    const auto& fks = tab.schema().foreign_keys();
    for (size_t f = 0; f < fks.size(); ++f) {
      const ForeignKeyDef& fk = fks[f];
      const Table* referenced = FindTable(fk.referenced_table);
      if (referenced == nullptr) {
        return Status::IntegrityViolation(
            "table '" + tab.name() + "' references missing table '" +
            fk.referenced_table + "'");
      }
      // The referenced attributes must be exactly the referenced table's
      // primary key (we only support key-based references, as does the
      // paper's model).
      if (fk.referenced_attributes != referenced->schema().primary_key()) {
        return Status::IntegrityViolation(
            "foreign key of '" + tab.name() + "' does not reference the "
            "primary key of '" + fk.referenced_table + "'");
      }
      std::vector<size_t> local_indices;
      for (const auto& attr : fk.local_attributes) {
        auto idx = tab.schema().AttributeIndex(attr);
        CLAKS_CHECK(idx.has_value());
        local_indices.push_back(*idx);
      }
      for (size_t r = 0; r < tab.num_rows(); ++r) {
        const Row& row = tab.row(r);
        bool any_null = false;
        for (size_t idx : local_indices) {
          if (row[idx].is_null()) any_null = true;
        }
        if (any_null) continue;
        if (!ResolveOneFk(row, local_indices, *referenced).has_value()) {
          return Status::IntegrityViolation(StrFormat(
              "dangling foreign key: %s row %zu -> %s", tab.name().c_str(),
              r, fk.referenced_table.c_str()));
        }
      }
    }
  }
  return Status::OK();
}

bool Database::JoinIndexesFreshLocked() const {
  if (indexed_row_counts_.size() != tables_.size()) return false;
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (indexed_row_counts_[t] != tables_[t]->num_rows()) return false;
  }
  return true;
}

bool Database::JoinIndexesFresh() const {
  // Acquire pairs with the release store at the end of the build: a reader
  // that sees the flag also sees the fully-built cache and the row counts
  // it was built against. Stale counts (a mutation happened) can only be
  // observed when mutation has stopped racing with readers, per the class
  // contract.
  if (!join_indexes_built_.load(std::memory_order_acquire)) return false;
  return JoinIndexesFreshLocked();
}

void Database::BuildJoinIndexes() const {
  if (JoinIndexesFresh()) return;  // lock-free fast path
  std::lock_guard<std::mutex> lock(join_index_mutex_);
  // Double-check under the lock: another thread may have finished the
  // build while this one waited.
  if (join_indexes_built_.load(std::memory_order_relaxed) &&
      JoinIndexesFreshLocked()) {
    return;
  }
  join_indexes_.assign(tables_.size(), {});
  indexed_row_counts_.resize(tables_.size());

  for (uint32_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = *tables_[t];
    indexed_row_counts_[t] = tab.num_rows();
    const auto& fks = tab.schema().foreign_keys();
    join_indexes_[t].resize(fks.size());
    for (uint32_t f = 0; f < fks.size(); ++f) {
      const ForeignKeyDef& fk = fks[f];
      FkJoinIndex& index = join_indexes_[t][f];
      index.table = t;
      index.fk_index = f;
      index.parent_row.assign(tab.num_rows(), FkJoinIndex::kNoParent);

      auto ref_index = TableIndex(fk.referenced_table);
      std::vector<size_t> local_indices;
      local_indices.reserve(fk.local_attributes.size());
      bool resolved_attrs = true;
      for (const auto& attr : fk.local_attributes) {
        auto idx = tab.schema().AttributeIndex(attr);
        if (!idx.has_value()) {
          resolved_attrs = false;
          break;
        }
        local_indices.push_back(*idx);
      }
      if (!ref_index.has_value() || !resolved_attrs) continue;
      index.referenced_table = *ref_index;
      index.valid = true;
      const Table& referenced = *tables_[*ref_index];

      // Child->parent: one hash probe per row.
      for (uint32_t r = 0; r < tab.num_rows(); ++r) {
        auto target = ResolveOneFk(tab.row(r), local_indices, referenced);
        if (target.has_value()) {
          index.parent_row[r] = static_cast<uint32_t>(*target);
        }
      }

      // Parent->children CSR: count, prefix-sum, fill (rows ascending).
      index.child_offsets.assign(referenced.num_rows() + 1, 0);
      for (uint32_t parent : index.parent_row) {
        if (parent != FkJoinIndex::kNoParent) {
          ++index.child_offsets[parent + 1];
        }
      }
      for (size_t p = 1; p < index.child_offsets.size(); ++p) {
        index.child_offsets[p] += index.child_offsets[p - 1];
      }
      index.child_rows.resize(index.child_offsets.back());
      std::vector<uint32_t> cursor(index.child_offsets.begin(),
                                   index.child_offsets.end() - 1);
      for (uint32_t r = 0; r < index.parent_row.size(); ++r) {
        uint32_t parent = index.parent_row[r];
        if (parent != FkJoinIndex::kNoParent) {
          index.child_rows[cursor[parent]++] = r;
        }
      }
    }
  }

  // Cached edge list in the canonical (table, row, fk) order.
  all_fk_edges_.clear();
  for (uint32_t t = 0; t < tables_.size(); ++t) {
    const auto& indexes = join_indexes_[t];
    for (uint32_t r = 0; r < tables_[t]->num_rows(); ++r) {
      for (uint32_t f = 0; f < indexes.size(); ++f) {
        const FkJoinIndex& index = indexes[f];
        if (!index.valid || index.parent_row[r] == FkJoinIndex::kNoParent) {
          continue;
        }
        all_fk_edges_.push_back(
            FkEdge{TupleId{t, r},
                   TupleId{index.referenced_table, index.parent_row[r]}, f});
      }
    }
  }
  join_indexes_built_.store(true, std::memory_order_release);
}

const FkJoinIndex& Database::JoinIndex(uint32_t table_index,
                                       uint32_t fk_index) const {
  BuildJoinIndexes();
  CLAKS_CHECK_LT(table_index, join_indexes_.size());
  CLAKS_CHECK_LT(fk_index, join_indexes_[table_index].size());
  return join_indexes_[table_index][fk_index];
}

std::optional<TupleId> Database::JoinParent(TupleId child,
                                            uint32_t fk_index) const {
  const FkJoinIndex& index = JoinIndex(child.table, fk_index);
  CLAKS_CHECK_LT(child.row, index.parent_row.size());
  uint32_t parent = index.parent_row[child.row];
  if (!index.valid || parent == FkJoinIndex::kNoParent) return std::nullopt;
  return TupleId{index.referenced_table, parent};
}

Span<uint32_t> Database::JoinChildren(uint32_t child_table,
                                      uint32_t fk_index,
                                      TupleId parent) const {
  const FkJoinIndex& index = JoinIndex(child_table, fk_index);
  if (!index.valid || parent.table != index.referenced_table) return {};
  return index.Children(parent.row);
}

const std::vector<FkEdge>& Database::ResolveAllFkEdges() const {
  BuildJoinIndexes();
  return all_fk_edges_;
}

std::vector<FkEdge> Database::ScanAllFkEdges() const {
  std::vector<FkEdge> edges;
  for (uint32_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = *tables_[t];
    for (uint32_t r = 0; r < tab.num_rows(); ++r) {
      auto row_edges = ResolveFkEdgesFrom(TupleId{t, r});
      edges.insert(edges.end(), row_edges.begin(), row_edges.end());
    }
  }
  return edges;
}

std::vector<FkEdge> Database::ResolveFkEdgesFrom(TupleId id) const {
  std::vector<FkEdge> edges;
  const Table& tab = table(id.table);
  const Row& row = tab.row(id.row);
  const auto& fks = tab.schema().foreign_keys();
  for (uint32_t f = 0; f < fks.size(); ++f) {
    const ForeignKeyDef& fk = fks[f];
    const Table* referenced = FindTable(fk.referenced_table);
    if (referenced == nullptr) continue;
    std::vector<size_t> local_indices;
    local_indices.reserve(fk.local_attributes.size());
    bool resolved_attrs = true;
    for (const auto& attr : fk.local_attributes) {
      auto idx = tab.schema().AttributeIndex(attr);
      if (!idx.has_value()) {
        resolved_attrs = false;
        break;
      }
      local_indices.push_back(*idx);
    }
    if (!resolved_attrs) continue;
    auto target_row = ResolveOneFk(row, local_indices, *referenced);
    if (!target_row.has_value()) continue;
    auto ref_index = TableIndex(fk.referenced_table);
    CLAKS_CHECK(ref_index.has_value());
    edges.push_back(FkEdge{
        id, TupleId{*ref_index, static_cast<uint32_t>(*target_row)}, f});
  }
  return edges;
}

std::string Database::TupleLabel(TupleId id) const {
  const Table& tab = table(id.table);
  std::string out = tab.name() + ":";
  const auto pk_indices = tab.schema().PrimaryKeyIndices();
  for (size_t i = 0; i < pk_indices.size(); ++i) {
    if (i > 0) out += ",";
    out += tab.row(id.row)[pk_indices[i]].ToString();
  }
  return out;
}

std::string Database::TupleSummary(TupleId id, size_t max_chars) const {
  const Table& tab = table(id.table);
  const Row& row = tab.row(id.row);
  std::string out;
  for (size_t i = 0; i < row.size() && out.size() < max_chars; ++i) {
    if (i > 0) out += " ";
    out += tab.schema().attribute(i).name + "=" + row[i].ToString();
  }
  if (out.size() > max_chars) {
    out.resize(max_chars);
    out += "...";
  }
  return out;
}

}  // namespace claks
