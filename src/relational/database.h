// Copyright 2026 The claks Authors.
//
// Database: a catalog of tables plus referential-integrity checking and
// resolution of foreign-key instance edges (the raw material of the data
// graph).

#ifndef CLAKS_RELATIONAL_DATABASE_H_
#define CLAKS_RELATIONAL_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace claks {

/// One resolved foreign-key instance edge: tuple `from` (the referencing,
/// N-side tuple) points at tuple `to` (the referenced, 1-side tuple) through
/// foreign key `fk_index` of table `from.table`.
struct FkEdge {
  TupleId from;
  TupleId to;
  uint32_t fk_index = 0;
};

/// An in-memory relational database.
class Database {
 public:
  Database() = default;

  /// Registers a new table. Fails if the name already exists or the schema
  /// is invalid.
  Result<Table*> AddTable(TableSchema schema);

  size_t num_tables() const { return tables_.size(); }
  const Table& table(size_t index) const;
  Table* mutable_table(size_t index);

  /// Index of the table named `name`, or nullopt.
  std::optional<uint32_t> TableIndex(const std::string& name) const;

  /// Table pointer by name, nullptr if absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  /// Fails if any table lacks one, same as FindTable but Status-reporting.
  Result<const Table*> RequireTable(const std::string& name) const;

  /// The row a TupleId addresses. CLAKS_CHECKs bounds.
  const Row& RowOf(TupleId id) const;
  const TableSchema& SchemaOf(TupleId id) const;

  /// Total number of tuples across all tables.
  size_t TotalRows() const;

  /// Verifies every foreign-key value resolves to an existing referenced
  /// row (NULL FK values are allowed and simply produce no edge).
  Status CheckReferentialIntegrity() const;

  /// Materialises every foreign-key instance edge in the database. Order is
  /// deterministic: by table, by row, by fk declaration order.
  std::vector<FkEdge> ResolveAllFkEdges() const;

  /// Resolves the FK edges leaving one tuple (following each FK of its
  /// table). NULL-valued FKs yield no edge.
  std::vector<FkEdge> ResolveFkEdgesFrom(TupleId id) const;

  /// Human-readable label for a tuple: "<table>:<pk values>".
  std::string TupleLabel(TupleId id) const;

  /// Short content summary of a tuple: "name=SMITH ssn=e1 ...".
  std::string TupleSummary(TupleId id, size_t max_chars = 60) const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, uint32_t> name_to_index_;
};

}  // namespace claks

#endif  // CLAKS_RELATIONAL_DATABASE_H_
