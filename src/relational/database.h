// Copyright 2026 The claks Authors.
//
// Database: a catalog of tables plus referential-integrity checking and
// resolution of foreign-key instance edges (the raw material of the data
// graph). Per-FK hash join indexes — built once, served from cache — give
// O(1) child->parent and parent->children navigation so that query
// evaluation never rescans tables.

#ifndef CLAKS_RELATIONAL_DATABASE_H_
#define CLAKS_RELATIONAL_DATABASE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_vector.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/span.h"
#include "common/thread_annotations.h"
#include "relational/table.h"

namespace claks {

struct DatabaseDelta;  // relational/delta.h

/// One resolved foreign-key instance edge: tuple `from` (the referencing,
/// N-side tuple) points at tuple `to` (the referenced, 1-side tuple) through
/// foreign key `fk_index` of table `from.table`.
struct FkEdge {
  TupleId from;
  TupleId to;
  uint32_t fk_index = 0;
};

/// Precomputed join structure for one foreign key: both directions of the
/// FK resolved once over the whole instance.
///
/// Storage is a frozen dense base shared between engine generations plus a
/// per-generation overlay, mirroring Table's segment/overlay split:
///
///   base->parent_row      dense child->parent (kNoParent = NULL/dangling/
///                         tombstoned child), one slot per child row that
///                         existed when the base froze
///   base->child_offsets/  parent->children CSR over the referenced table's
///   base->child_rows      frozen rows (children ascending per parent)
///   tail_parent_row       parents of child slots appended since the freeze
///   parent_overrides      base child slots re-pointed since the freeze
///                         (today always to kNoParent: the child died)
///   children_overrides    full replacement child lists (still ascending)
///                         for parents whose children changed
///
/// Use Parent()/Children(); they merge base and overlay. Compact() folds the
/// overlay into a fresh base bit-identical to a from-scratch build.
struct FkJoinIndex {
  static constexpr uint32_t kNoParent = UINT32_MAX;

  uint32_t table = 0;             ///< referencing (child) table index
  uint32_t fk_index = 0;          ///< FK position within `table`'s schema
  uint32_t referenced_table = 0;  ///< parent table index
  /// False when the FK declaration cannot be resolved (missing referenced
  /// table or attribute); such an index yields no parents and no children.
  bool valid = false;

  /// Immutable once published (shared across generations). FlatVectors:
  /// owned when built in memory, zero-copy views into the mapped file
  /// when the generation was loaded from a snapshot (storage/snapshot.h).
  struct Base {
    FlatVector<uint32_t> parent_row;     ///< one slot per child row
    FlatVector<uint32_t> child_offsets;  ///< parent rows + 1 entries
    FlatVector<uint32_t> child_rows;     ///< grouped by parent, ascending
  };
  std::shared_ptr<const Base> base;
  // Per-generation overlay (empty right after a build or Compact):
  std::vector<uint32_t> tail_parent_row;
  std::unordered_map<uint32_t, uint32_t> parent_overrides;
  std::unordered_map<uint32_t, std::vector<uint32_t>> children_overrides;

  /// Number of child-table row slots this index covers.
  size_t child_slots() const {
    return (base ? base->parent_row.size() : 0) + tail_parent_row.size();
  }

  bool IsCompact() const {
    return tail_parent_row.empty() && parent_overrides.empty() &&
           children_overrides.empty();
  }

  /// Total overlay entries (compaction-policy input).
  size_t OverlayOps() const {
    return tail_parent_row.size() + parent_overrides.size() +
           children_overrides.size();
  }

  /// Parent row referenced by child slot `child`, kNoParent when the FK is
  /// NULL, dangling, or the child is tombstoned. Out-of-range -> kNoParent.
  uint32_t Parent(size_t child) const {
    if (!valid || base == nullptr) return kNoParent;
    if (child >= base->parent_row.size()) {
      size_t tail = child - base->parent_row.size();
      return tail < tail_parent_row.size() ? tail_parent_row[tail]
                                           : kNoParent;
    }
    if (!parent_overrides.empty()) {
      auto it = parent_overrides.find(static_cast<uint32_t>(child));
      if (it != parent_overrides.end()) return it->second;
    }
    return base->parent_row[child];
  }

  /// Child rows referencing parent row `parent` (empty when out of range).
  /// Ascending; the span stays valid as long as this generation's index.
  Span<uint32_t> Children(size_t parent) const {
    if (!valid || base == nullptr) return {};
    if (!children_overrides.empty()) {
      auto it = children_overrides.find(static_cast<uint32_t>(parent));
      if (it != children_overrides.end()) {
        return Span<uint32_t>(it->second.data(), it->second.size());
      }
    }
    if (parent + 1 >= base->child_offsets.size()) return {};
    return Span<uint32_t>(
        base->child_rows.data() + base->child_offsets[parent],
        base->child_offsets[parent + 1] - base->child_offsets[parent]);
  }
};

/// An in-memory relational database.
///
/// Thread-safety contract: all mutation (AddTable, Insert through
/// mutable_table / FindMutableTable) must happen-before any concurrent use,
/// and no reader may run while a mutator does. Once the instance is frozen,
/// every const member — including the lazily-built join-index accessors —
/// is safe to call from any number of threads concurrently: the first lazy
/// build is serialized behind a mutex and published with release/acquire
/// ordering, so racing const readers agree on one fully-built cache.
/// One sharp edge: a mutation *invalidates* a previously-built cache, and
/// the invalidation is observed by polling row counts, so the mutator must
/// call Warmup() (or any join-index accessor) once — while it still has
/// exclusivity — before concurrent reads resume; otherwise one reader's
/// rebuild races another's freshness check. The service layer never hits
/// this: it clones, mutates the clone, and warms it before publication
/// (see service/search_service.h).
class Database {
 public:
  Database() = default;

  /// Deep copy of schema and rows (not the join-index cache; the copy
  /// rebuilds it on Warmup/first use). The service layer clones the
  /// current database, applies a mutation batch, and warms the copy into
  /// a fresh snapshot while readers continue on the original.
  std::unique_ptr<Database> Clone() const;

  /// Registers a new table. Fails if the name already exists or the schema
  /// is invalid.
  Result<Table*> AddTable(TableSchema schema);

  size_t num_tables() const { return tables_.size(); }
  const Table& table(size_t index) const;
  Table* mutable_table(size_t index);

  /// Index of the table named `name`, or nullopt.
  std::optional<uint32_t> TableIndex(const std::string& name) const;

  /// Table pointer by name, nullptr if absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  /// Fails if any table lacks one, same as FindTable but Status-reporting.
  Result<const Table*> RequireTable(const std::string& name) const;

  /// The row a TupleId addresses. CLAKS_CHECKs bounds.
  const Row& RowOf(TupleId id) const;
  const TableSchema& SchemaOf(TupleId id) const;

  /// Total number of tuples across all tables.
  size_t TotalRows() const;

  /// Verifies every foreign-key value resolves to an existing referenced
  /// row (NULL FK values are allowed and simply produce no edge).
  Status CheckReferentialIntegrity() const;

  /// Builds (or refreshes) every per-FK join index and the cached FK edge
  /// list. Idempotent while the instance is unchanged; the accessors below
  /// call it lazily, and inserting/deleting rows or adding tables
  /// invalidates the build (row and tombstone counts are compared on
  /// access). Cost: one hash lookup per (row, FK) pair, paid once instead
  /// of per query.
  void BuildJoinIndexes() const CLAKS_EXCLUDES(join_index_mutex_);

  /// Derives this database's join indexes from `prev`'s (which must be
  /// warm) plus the row delta separating them: shares the frozen bases and
  /// applies `delta` as overlay entries — O(delta · fanout) instead of
  /// O(dataset). Also validates the delta's referential integrity: a
  /// dangling FK on an inserted row, or a delete of a row that live
  /// children still reference (RESTRICT), fails with IntegrityViolation
  /// and leaves this cache unbuilt. `delta.schema_changed` must be false.
  Status DeriveJoinIndexes(const Database& prev, const DatabaseDelta& delta)
      const CLAKS_EXCLUDES(join_index_mutex_);

  /// Folds every join-index overlay into a fresh frozen base, bit-identical
  /// to what BuildJoinIndexes would produce from scratch — pure array folds,
  /// no hash probes. No-op when already compact.
  void CompactJoinIndexes() const CLAKS_EXCLUDES(join_index_mutex_);

  /// True when every built join index has an empty overlay.
  bool JoinIndexesCompact() const;

  /// Total overlay entries across all join indexes (compaction policy).
  size_t JoinOverlayOps() const;

  /// Rebase()s every table so subsequent Clone() calls are O(1) until new
  /// mutations accumulate. Logical content unchanged.
  void CompactStorage();

  /// Eagerly materializes every derived structure of this database (today:
  /// the per-FK join indexes and the cached FK edge list) so that all
  /// subsequent const access is read-only. Call once before sharing a
  /// const Database across threads; synonym of BuildJoinIndexes kept as
  /// the stable name of the "make const access race-free" step.
  void Warmup() const { BuildJoinIndexes(); }

  /// True when the join indexes are built and match the current instance.
  bool JoinIndexesFresh() const;

  /// Join index of FK `fk_index` of table `table_index`. Builds lazily.
  const FkJoinIndex& JoinIndex(uint32_t table_index,
                               uint32_t fk_index) const;

  /// Parent tuple referenced by `child` through FK `fk_index` of its
  /// table; nullopt when the FK is NULL or dangling.
  std::optional<TupleId> JoinParent(TupleId child, uint32_t fk_index) const;

  /// Rows of `child_table` whose FK `fk_index` references `parent`. Empty
  /// when `parent` is not a row of that FK's referenced table.
  Span<uint32_t> JoinChildren(uint32_t child_table, uint32_t fk_index,
                              TupleId parent) const;

  /// Every foreign-key instance edge in the database, served from the
  /// join-index cache (built lazily). Order is deterministic: by table, by
  /// row, by fk declaration order. The reference remains valid until the
  /// instance is mutated.
  const std::vector<FkEdge>& ResolveAllFkEdges() const;

  /// Uncached reference implementation of ResolveAllFkEdges: re-resolves
  /// every FK by per-row hash probes. Kept for equivalence tests and as
  /// the seed baseline in benchmarks; use ResolveAllFkEdges on hot paths.
  std::vector<FkEdge> ScanAllFkEdges() const;

  /// Resolves the FK edges leaving one tuple (following each FK of its
  /// table). NULL-valued FKs yield no edge.
  std::vector<FkEdge> ResolveFkEdgesFrom(TupleId id) const;

  /// Human-readable label for a tuple: "<table>:<pk values>".
  std::string TupleLabel(TupleId id) const;

  /// Short content summary of a tuple: "name=SMITH ssn=e1 ...".
  std::string TupleSummary(TupleId id, size_t max_chars = 60) const;

 private:
  /// Snapshot save/load (storage/snapshot.cc) serializes the join-index
  /// cache and installs a loaded one (with freshness counters) directly.
  friend class StorageCodec;

  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, uint32_t> name_to_index_;

  // True when the built cache still matches the current row counts.
  bool JoinIndexesFreshLocked() const CLAKS_REQUIRES(join_index_mutex_);

  // Join-index cache. Mutable: building is a logically-const operation
  // (tables are append-only; the cache tracks the indexed row counts and
  // rebuilds when they drift). Racing const readers serialize the lazy
  // build on join_index_mutex_; join_indexes_built_ is the lock-free fast
  // path flag (release store after the build, acquire load before use).
  // Post-warm readers (JoinIndex and friends) go through that acquire
  // load instead of the mutex — they carry
  // CLAKS_NO_THREAD_SAFETY_ANALYSIS individually, with the publication
  // argument at each definition.
  mutable Mutex join_index_mutex_;
  mutable std::vector<std::vector<FkJoinIndex>> join_indexes_
      CLAKS_GUARDED_BY(join_index_mutex_);  // [table][fk]
  mutable std::vector<FkEdge> all_fk_edges_
      CLAKS_GUARDED_BY(join_index_mutex_);
  mutable std::vector<size_t> indexed_row_counts_
      CLAKS_GUARDED_BY(join_index_mutex_);
  mutable std::vector<size_t> indexed_tombstone_counts_
      CLAKS_GUARDED_BY(join_index_mutex_);
  mutable std::atomic<bool> join_indexes_built_{false};
  // The canonical edge list is regenerated lazily after a derive (the
  // delta path leaves it stale rather than paying O(E) per generation).
  mutable std::atomic<bool> fk_edges_built_{false};

  // Rebuilds all_fk_edges_ from the (fresh) join indexes.
  void RebuildFkEdgesLocked() const CLAKS_REQUIRES(join_index_mutex_);
};

}  // namespace claks

#endif  // CLAKS_RELATIONAL_DATABASE_H_
