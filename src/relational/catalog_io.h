// Copyright 2026 The claks Authors.
//
// Catalog and database persistence: schemas serialise to a small
// line-oriented text format, instances to CSV (one file per table), so any
// dataset can be exported, versioned and reloaded.
//
// Catalog format (one statement per line, "#" comments allowed):
//
//   TABLE EMPLOYEE
//   ATTR SSN STRING notnull key nosearch
//   ATTR L_NAME STRING notnull searchable
//   ATTR D_ID STRING notnull nosearch
//   PK SSN
//   FK WORKS_FOR D_ID REFERENCES DEPARTMENT ID
//   END

#ifndef CLAKS_RELATIONAL_CATALOG_IO_H_
#define CLAKS_RELATIONAL_CATALOG_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace claks {

/// Serialises every table schema of `db`.
std::string SerializeCatalog(const Database& db);

/// Parses a catalog back into table schemas (declaration order preserved).
Result<std::vector<TableSchema>> ParseCatalog(const std::string& text);

/// Writes `dir/catalog.txt` plus one `<table>.csv` per table. Creates the
/// directory when missing.
Status SaveDatabase(const Database& db, const std::string& dir);

/// Loads a database previously written by SaveDatabase and verifies
/// referential integrity.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir);

}  // namespace claks

#endif  // CLAKS_RELATIONAL_CATALOG_IO_H_
