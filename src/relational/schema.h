// Copyright 2026 The claks Authors.
//
// Table schemas: attributes, primary keys and foreign keys. Foreign keys are
// the structural backbone of keyword search over relational data — every
// connection the paper discusses is a chain of FK instance edges.

#ifndef CLAKS_RELATIONAL_SCHEMA_H_
#define CLAKS_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace claks {

/// One attribute (column) of a table.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = false;
  /// Text attributes participate in keyword matching; id-like attributes
  /// usually should not (the paper matches descriptions and names).
  bool searchable = true;
};

/// A (possibly composite) foreign-key constraint: `local_attributes` of this
/// table reference `referenced_attributes` (the primary key) of
/// `referenced_table`.
struct ForeignKeyDef {
  std::string constraint_name;
  std::vector<std::string> local_attributes;
  std::string referenced_table;
  std::vector<std::string> referenced_attributes;
};

/// Schema of one table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<AttributeDef> attributes,
              std::vector<std::string> primary_key,
              std::vector<ForeignKeyDef> foreign_keys = {});

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  size_t num_attributes() const { return attributes_.size(); }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

  /// As above but returns an error Status naming the table.
  Result<size_t> RequireAttributeIndex(const std::string& name) const;

  const AttributeDef& attribute(size_t index) const;

  /// True if `name` is part of the primary key.
  bool IsPrimaryKeyAttribute(const std::string& name) const;

  /// True if `name` participates in any foreign key.
  bool IsForeignKeyAttribute(const std::string& name) const;

  /// Indices (into attributes()) of the primary-key attributes, in key order.
  std::vector<size_t> PrimaryKeyIndices() const;

  /// Validates internal consistency: attribute names unique, PK/FK attribute
  /// names resolve, FK arity matches.
  Status Validate() const;

  /// CREATE TABLE–style rendering for debugging and docs.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

}  // namespace claks

#endif  // CLAKS_RELATIONAL_SCHEMA_H_
