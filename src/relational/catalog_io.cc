// Copyright 2026 The claks Authors.

#include "relational/catalog_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "relational/csv.h"

namespace claks {

namespace {

Result<ValueType> ParseValueType(const std::string& text) {
  if (text == "STRING") return ValueType::kString;
  if (text == "INT64") return ValueType::kInt64;
  if (text == "DOUBLE") return ValueType::kDouble;
  if (text == "BOOL") return ValueType::kBool;
  return Status::ParseError("unknown type '" + text + "'");
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot write '" + path + "'");
  out << content;
  if (!out.good()) return Status::Internal("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace

std::string SerializeCatalog(const Database& db) {
  std::string out = "# claks catalog\n";
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const TableSchema& schema = db.table(t).schema();
    out += "TABLE " + schema.name() + "\n";
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttributeDef& attr = schema.attribute(a);
      out += StrFormat("ATTR %s %s %s %s\n", attr.name.c_str(),
                       ValueTypeToString(attr.type),
                       attr.nullable ? "nullable" : "notnull",
                       attr.searchable ? "searchable" : "nosearch");
    }
    out += "PK " + Join(schema.primary_key(), " ") + "\n";
    for (const ForeignKeyDef& fk : schema.foreign_keys()) {
      out += "FK " + fk.constraint_name + " " +
             Join(fk.local_attributes, " ") + " REFERENCES " +
             fk.referenced_table + " " +
             Join(fk.referenced_attributes, " ") + "\n";
    }
    out += "END\n";
  }
  return out;
}

Result<std::vector<TableSchema>> ParseCatalog(const std::string& text) {
  std::vector<TableSchema> out;

  std::string table_name;
  std::vector<AttributeDef> attributes;
  std::vector<std::string> primary_key;
  std::vector<ForeignKeyDef> foreign_keys;
  bool in_table = false;
  size_t line_no = 0;

  auto error = [&](const std::string& message) {
    return Status::ParseError(
        StrFormat("catalog line %zu: %s", line_no, message.c_str()));
  };

  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    auto tokens = SplitWhitespace(line);
    const std::string& keyword = tokens[0];

    if (keyword == "TABLE") {
      if (in_table) return error("nested TABLE");
      if (tokens.size() != 2) return error("TABLE needs a name");
      in_table = true;
      table_name = tokens[1];
      attributes.clear();
      primary_key.clear();
      foreign_keys.clear();
    } else if (keyword == "ATTR") {
      if (!in_table) return error("ATTR outside TABLE");
      if (tokens.size() != 5) {
        return error("ATTR needs: name type null-mode search-mode");
      }
      AttributeDef attr;
      attr.name = tokens[1];
      CLAKS_ASSIGN_OR_RETURN(attr.type, ParseValueType(tokens[2]));
      if (tokens[3] == "nullable") attr.nullable = true;
      else if (tokens[3] == "notnull") attr.nullable = false;
      else return error("bad null-mode '" + tokens[3] + "'");
      if (tokens[4] == "searchable") attr.searchable = true;
      else if (tokens[4] == "nosearch") attr.searchable = false;
      else return error("bad search-mode '" + tokens[4] + "'");
      attributes.push_back(std::move(attr));
    } else if (keyword == "PK") {
      if (!in_table) return error("PK outside TABLE");
      primary_key.assign(tokens.begin() + 1, tokens.end());
    } else if (keyword == "FK") {
      if (!in_table) return error("FK outside TABLE");
      // FK <name> <local...> REFERENCES <table> <ref...>
      auto references = std::find(tokens.begin(), tokens.end(),
                                  std::string("REFERENCES"));
      // Before REFERENCES: FK, name, >=1 local attr. After: table,
      // >=1 referenced attr.
      if (references == tokens.end() || references - tokens.begin() < 3 ||
          tokens.end() - references < 3) {
        return error("bad FK syntax");
      }
      ForeignKeyDef fk;
      fk.constraint_name = tokens[1];
      fk.local_attributes.assign(tokens.begin() + 2, references);
      fk.referenced_table = *(references + 1);
      fk.referenced_attributes.assign(references + 2, tokens.end());
      if (fk.local_attributes.empty() ||
          fk.local_attributes.size() != fk.referenced_attributes.size()) {
        return error("FK arity mismatch");
      }
      foreign_keys.push_back(std::move(fk));
    } else if (keyword == "END") {
      if (!in_table) return error("END outside TABLE");
      TableSchema schema(table_name, attributes, primary_key, foreign_keys);
      CLAKS_RETURN_NOT_OK(schema.Validate().WithContext(
          StrFormat("catalog line %zu", line_no)));
      out.push_back(std::move(schema));
      in_table = false;
    } else {
      return error("unknown keyword '" + keyword + "'");
    }
  }
  if (in_table) {
    return Status::ParseError("catalog ended inside TABLE '" + table_name +
                              "'");
  }
  return out;
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create '" + dir + "'");
  CLAKS_RETURN_NOT_OK(
      WriteFile(dir + "/catalog.txt", SerializeCatalog(db)));
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    CLAKS_RETURN_NOT_OK(WriteFile(dir + "/" + table.name() + ".csv",
                                  TableToCsv(table)));
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir) {
  CLAKS_ASSIGN_OR_RETURN(std::string catalog,
                         ReadFile(dir + "/catalog.txt"));
  CLAKS_ASSIGN_OR_RETURN(auto schemas, ParseCatalog(catalog));
  auto db = std::make_unique<Database>();
  for (TableSchema& schema : schemas) {
    std::string name = schema.name();
    CLAKS_ASSIGN_OR_RETURN(Table * table, db->AddTable(std::move(schema)));
    CLAKS_ASSIGN_OR_RETURN(std::string csv,
                           ReadFile(dir + "/" + name + ".csv"));
    CLAKS_RETURN_NOT_OK(
        LoadCsvInto(table, csv).WithContext("table '" + name + "'"));
  }
  CLAKS_RETURN_NOT_OK(db->CheckReferentialIntegrity());
  return db;
}

}  // namespace claks
