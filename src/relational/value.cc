// Copyright 2026 The claks Authors.

#include "relational/value.h"

#include <cerrno>
#include <cstdlib>
#include <functional>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

int64_t Value::AsInt64() const {
  CLAKS_CHECK(type() == ValueType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  CLAKS_CHECK(type() == ValueType::kDouble);
  return std::get<double>(data_);
}

bool Value::AsBool() const {
  CLAKS_CHECK(type() == ValueType::kBool);
  return std::get<bool>(data_);
}

const std::string& Value::AsString() const {
  CLAKS_CHECK(type() == ValueType::kString);
  return std::get<std::string>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      std::string out = StrFormat("%.6g", std::get<double>(data_));
      return out;
    }
    case ValueType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "";
}

Result<Value> Value::Parse(const std::string& text, ValueType type) {
  if (text.empty() && type != ValueType::kString) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("not an INT64: '" + text + "'");
      }
      return Value::Int64(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("not a DOUBLE: '" + text + "'");
      }
      return Value::Double(v);
    }
    case ValueType::kBool: {
      if (EqualsIgnoreCase(text, "true") || text == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(text, "false") || text == "0") {
        return Value::Bool(false);
      }
      return Status::ParseError("not a BOOL: '" + text + "'");
    }
    case ValueType::kString:
      return Value::String(text);
  }
  return Status::Internal("unreachable");
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  return data_ < other.data_;
}

size_t Value::Hash() const {
  size_t seed = data_.index();
  size_t h = 0;
  switch (type()) {
    case ValueType::kNull:
      h = 0;
      break;
    case ValueType::kInt64:
      h = std::hash<int64_t>{}(std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      h = std::hash<double>{}(std::get<double>(data_));
      break;
    case ValueType::kBool:
      h = std::hash<bool>{}(std::get<bool>(data_));
      break;
    case ValueType::kString:
      h = std::hash<std::string>{}(std::get<std::string>(data_));
      break;
  }
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace claks
