// Copyright 2026 The claks Authors.
//
// RFC-4180-flavoured CSV parsing and serialisation so datasets can be
// round-tripped as text.

#ifndef CLAKS_RELATIONAL_CSV_H_
#define CLAKS_RELATIONAL_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace claks {

/// Parses CSV text into rows of raw string fields. Handles quoted fields,
/// embedded separators, escaped quotes ("") and both \n and \r\n line ends.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char sep = ',');

/// Loads CSV rows into `table`, converting each field to the attribute type.
/// When `has_header` is true the first record must list the attribute names
/// in schema order (a safety check against column drift). NULL convention:
/// an empty field is NULL in nullable columns (of any type) and in
/// non-string columns; a non-nullable string column keeps "" as a value.
Status LoadCsvInto(Table* table, const std::string& text,
                   bool has_header = true, char sep = ',');

/// Serialises the table (with a header record) to CSV text.
std::string TableToCsv(const Table& table, char sep = ',');

/// Quotes a single field if it needs quoting.
std::string CsvEscape(const std::string& field, char sep = ',');

}  // namespace claks

#endif  // CLAKS_RELATIONAL_CSV_H_
