// Copyright 2026 The claks Authors.
//
// A table: schema + rows + primary-key hash index.
//
// Storage is segmented for cheap generation cloning (the delta mutation
// path, service/search_service.h): a frozen base segment shared between
// generations via shared_ptr, plus a per-generation tail of rows appended
// since the base froze and a tombstone overlay of rows deleted since.
// Copying a Table copies only the tail and the overlay — O(delta since
// the last Rebase) — while the base rows, base primary-key map and frozen
// tombstone prefix are shared read-only. Rebase() folds tail + overlay
// into a fresh base (the table-level compaction step).
//
// Deletes are tombstones: the row slot (and therefore every TupleId and
// data-graph node id) stays stable forever; the slot keeps its values so
// delta maintenance can un-index the deleted row's tokens and FK edges.
// A deleted primary key may be reinserted (the new row gets a new slot).

#ifndef CLAKS_RELATIONAL_TABLE_H_
#define CLAKS_RELATIONAL_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace claks {

/// Row-store table with uniqueness enforcement on the primary key and typed
/// inserts. Rows are append-only slots; Delete tombstones a slot without
/// renumbering the rest (keyword search is a read-mostly workload and every
/// warmed structure indexes rows by slot).
class Table {
 public:
  explicit Table(TableSchema schema);

  /// The default copy shares the frozen base segment and copies only the
  /// tail + tombstone overlay: O(rows changed since the last Rebase).
  Table(const Table&) = default;
  Table& operator=(const Table&) = default;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Number of row *slots*, including tombstoned ones. Slot indices are
  /// stable: they never shift on delete.
  size_t num_rows() const { return base_->rows.size() + tail_rows_.size(); }

  /// Slots minus tombstones.
  size_t live_rows() const { return num_rows() - num_deleted(); }
  size_t num_deleted() const {
    return base_->deleted_count + overlay_deleted_.size();
  }

  /// The row at a slot (tombstoned slots keep their values; check
  /// IsDeleted when iterating). CLAKS_CHECKs bounds.
  const Row& row(size_t index) const;

  /// True when slot `index` has been tombstoned.
  bool IsDeleted(size_t index) const;

  /// Appends a row. Fails on arity mismatch, type mismatch, NULL in a
  /// non-nullable attribute, or duplicate *live* primary key (a deleted
  /// key may be reused). Returns the new row slot.
  Result<size_t> Insert(Row row);

  /// Convenience: inserts values given per-attribute in schema order.
  Result<size_t> InsertValues(std::vector<Value> values) {
    return Insert(Row(std::move(values)));
  }

  /// Tombstones a slot. Fails when the slot is out of range or already
  /// deleted. Referential integrity is the Database/engine layer's
  /// responsibility (the delta path enforces RESTRICT semantics).
  Status Delete(size_t row_index);

  /// Convenience: Delete by primary-key values. NotFound when no live row
  /// has that key.
  Status DeleteByPrimaryKey(const Row& key_values);

  /// Looks up a *live* row slot by primary-key values (in primary-key
  /// order). Tombstoned rows are not found.
  std::optional<size_t> FindByPrimaryKey(const Row& key_values) const;

  /// Looks up live rows whose attributes `attr_indices` equal `values`.
  /// Linear scan; use Database secondary indexes for hot paths.
  std::vector<size_t> FindRows(const std::vector<size_t>& attr_indices,
                               const Row& values) const;

  /// Value of attribute `attr` of slot `row_index`.
  const Value& at(size_t row_index, size_t attr_index) const;

  /// Number of tombstones ever recorded (frozen prefix + overlay); with
  /// Tombstone(i) this is the append-only deletion log the delta
  /// extraction diffs (relational/delta.h).
  size_t tombstone_count() const {
    return base_->tombstone_log.size() + tail_tombstone_log_.size();
  }
  /// The slot deleted `i`-th (deletion order). CLAKS_CHECKs bounds.
  uint32_t Tombstone(size_t i) const;

  /// First slot index of the current tail segment (== base slot count).
  /// Rows at or past this index are copied, not shared, by the copy ctor.
  size_t base_rows() const { return base_->rows.size(); }

  /// Folds tail rows and the tombstone overlay into a fresh frozen base.
  /// O(live slots); afterwards copies of this table are O(1) until the
  /// next mutations accumulate. Slot indices are unchanged.
  void Rebase();

  /// Pretty-prints up to `max_rows` live rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  /// Immutable once published (shared across generations).
  struct BaseSegment {
    std::vector<Row> rows;
    /// Live keys at freeze time -> slot.
    std::unordered_map<std::string, size_t> pk_index;
    std::vector<bool> deleted;  ///< per base slot
    size_t deleted_count = 0;
    std::vector<uint32_t> tombstone_log;  ///< deletion order, frozen prefix
  };

  /// Snapshot save/load (storage/snapshot.cc) serializes the effective
  /// row state and installs a freshly-built BaseSegment directly.
  friend class StorageCodec;

  std::string KeyOfRow(const Row& row) const;

  TableSchema schema_;
  std::vector<size_t> pk_indices_;
  std::shared_ptr<const BaseSegment> base_;
  // Per-generation deltas over base_:
  std::vector<Row> tail_rows_;  ///< slots [base_rows(), num_rows())
  std::unordered_map<std::string, size_t> tail_pk_;  ///< live tail keys
  std::unordered_set<uint32_t> overlay_deleted_;     ///< slots, any segment
  std::unordered_set<std::string> overlay_removed_keys_;  ///< masks base_pk
  std::vector<uint32_t> tail_tombstone_log_;  ///< deletions since freeze
};

}  // namespace claks

#endif  // CLAKS_RELATIONAL_TABLE_H_
