// Copyright 2026 The claks Authors.
//
// A table: schema + rows + primary-key hash index.

#ifndef CLAKS_RELATIONAL_TABLE_H_
#define CLAKS_RELATIONAL_TABLE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace claks {

/// Row-store table with uniqueness enforcement on the primary key and typed
/// inserts. Rows are append-only (keyword search is a read-mostly workload;
/// the paper does not discuss updates).
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t index) const;
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row. Fails on arity mismatch, type mismatch, NULL in a
  /// non-nullable attribute, or duplicate primary key. Returns the new row
  /// index.
  Result<size_t> Insert(Row row);

  /// Convenience: inserts values given per-attribute in schema order.
  Result<size_t> InsertValues(std::vector<Value> values) {
    return Insert(Row(std::move(values)));
  }

  /// Looks up a row index by primary-key values (in primary-key order).
  std::optional<size_t> FindByPrimaryKey(const Row& key_values) const;

  /// Looks up rows whose attributes `attr_indices` equal `values`. Linear
  /// scan; use Database secondary indexes for hot paths.
  std::vector<size_t> FindRows(const std::vector<size_t>& attr_indices,
                               const Row& values) const;

  /// Value of attribute `attr` of row `row_index`.
  const Value& at(size_t row_index, size_t attr_index) const;

  /// Pretty-prints up to `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<size_t> pk_indices_;
  std::unordered_map<std::string, size_t> pk_index_;  // key -> row index
};

}  // namespace claks

#endif  // CLAKS_RELATIONAL_TABLE_H_
