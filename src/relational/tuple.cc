// Copyright 2026 The claks Authors.

#include "relational/tuple.h"

#include "common/macros.h"

namespace claks {

std::string TupleId::ToString() const {
  return "t(" + std::to_string(table) + "," + std::to_string(row) + ")";
}

std::string MakeKey(const Row& row, const std::vector<size_t>& indices) {
  std::string key;
  for (size_t idx : indices) {
    CLAKS_CHECK_LT(idx, row.size());
    const Value& v = row[idx];
    key += static_cast<char>('0' + static_cast<int>(v.type()));
    std::string text = v.ToString();
    key += std::to_string(text.size());
    key += ':';
    key += text;
    key += '\x1f';
  }
  return key;
}

}  // namespace claks
