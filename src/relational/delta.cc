// Copyright 2026 The claks Authors.

#include "relational/delta.h"

#include <algorithm>

namespace claks {

DatabaseWatermark TakeWatermark(const Database& db) {
  DatabaseWatermark mark;
  mark.slot_counts.reserve(db.num_tables());
  mark.tombstone_counts.reserve(db.num_tables());
  for (size_t t = 0; t < db.num_tables(); ++t) {
    mark.slot_counts.push_back(db.table(t).num_rows());
    mark.tombstone_counts.push_back(db.table(t).tombstone_count());
  }
  return mark;
}

DatabaseDelta ComputeDelta(const DatabaseWatermark& before,
                           const Database& after) {
  DatabaseDelta delta;
  if (after.num_tables() != before.slot_counts.size()) {
    delta.schema_changed = true;
    return delta;
  }
  for (uint32_t t = 0; t < after.num_tables(); ++t) {
    const Table& tab = after.table(t);
    // New slots that are still live. A slot born and tombstoned inside the
    // batch never reached any reader-visible structure: skip it entirely.
    for (size_t r = before.slot_counts[t]; r < tab.num_rows(); ++r) {
      if (!tab.IsDeleted(r)) {
        delta.inserts.push_back(DeltaOp{t, static_cast<uint32_t>(r)});
      }
    }
    // New tombstones on pre-batch slots, ascending by slot (the log is in
    // deletion order, which need not be).
    std::vector<uint32_t> dead;
    for (size_t i = before.tombstone_counts[t]; i < tab.tombstone_count();
         ++i) {
      uint32_t slot = tab.Tombstone(i);
      if (slot < before.slot_counts[t]) dead.push_back(slot);
    }
    std::sort(dead.begin(), dead.end());
    for (uint32_t slot : dead) delta.deletes.push_back(DeltaOp{t, slot});
  }
  return delta;
}

}  // namespace claks
