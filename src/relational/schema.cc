// Copyright 2026 The claks Authors.

#include "relational/schema.h"

#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

TableSchema::TableSchema(std::string name,
                         std::vector<AttributeDef> attributes,
                         std::vector<std::string> primary_key,
                         std::vector<ForeignKeyDef> foreign_keys)
    : name_(std::move(name)),
      attributes_(std::move(attributes)),
      primary_key_(std::move(primary_key)),
      foreign_keys_(std::move(foreign_keys)) {}

std::optional<size_t> TableSchema::AttributeIndex(
    const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> TableSchema::RequireAttributeIndex(
    const std::string& name) const {
  auto idx = AttributeIndex(name);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + name + "' not in table '" +
                            name_ + "'");
  }
  return *idx;
}

const AttributeDef& TableSchema::attribute(size_t index) const {
  CLAKS_CHECK_LT(index, attributes_.size());
  return attributes_[index];
}

bool TableSchema::IsPrimaryKeyAttribute(const std::string& name) const {
  for (const auto& pk : primary_key_) {
    if (pk == name) return true;
  }
  return false;
}

bool TableSchema::IsForeignKeyAttribute(const std::string& name) const {
  for (const auto& fk : foreign_keys_) {
    for (const auto& attr : fk.local_attributes) {
      if (attr == name) return true;
    }
  }
  return false;
}

std::vector<size_t> TableSchema::PrimaryKeyIndices() const {
  std::vector<size_t> out;
  out.reserve(primary_key_.size());
  for (const auto& pk : primary_key_) {
    auto idx = AttributeIndex(pk);
    CLAKS_CHECK(idx.has_value());
    out.push_back(*idx);
  }
  return out;
}

Status TableSchema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("table name empty");
  if (attributes_.empty()) {
    return Status::InvalidArgument("table '" + name_ + "' has no attributes");
  }
  std::unordered_set<std::string> seen;
  for (const auto& attr : attributes_) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("table '" + name_ +
                                     "' has an unnamed attribute");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + attr.name +
                                     "' in table '" + name_ + "'");
    }
  }
  if (primary_key_.empty()) {
    return Status::InvalidArgument("table '" + name_ +
                                   "' has no primary key");
  }
  for (const auto& pk : primary_key_) {
    if (!AttributeIndex(pk).has_value()) {
      return Status::InvalidArgument("primary-key attribute '" + pk +
                                     "' not in table '" + name_ + "'");
    }
  }
  for (const auto& fk : foreign_keys_) {
    if (fk.local_attributes.empty()) {
      return Status::InvalidArgument("foreign key in table '" + name_ +
                                     "' has no local attributes");
    }
    if (fk.local_attributes.size() != fk.referenced_attributes.size()) {
      return Status::InvalidArgument(
          "foreign key arity mismatch in table '" + name_ + "' -> '" +
          fk.referenced_table + "'");
    }
    for (const auto& attr : fk.local_attributes) {
      if (!AttributeIndex(attr).has_value()) {
        return Status::InvalidArgument("foreign-key attribute '" + attr +
                                       "' not in table '" + name_ + "'");
      }
    }
  }
  return Status::OK();
}

std::string TableSchema::ToString() const {
  std::string out = "TABLE " + name_ + " (";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += " ";
    out += ValueTypeToString(attributes_[i].type);
    if (!attributes_[i].nullable) out += " NOT NULL";
  }
  out += "; PRIMARY KEY (" + Join(primary_key_, ", ") + ")";
  for (const auto& fk : foreign_keys_) {
    out += "; FOREIGN KEY (" + Join(fk.local_attributes, ", ") +
           ") REFERENCES " + fk.referenced_table + "(" +
           Join(fk.referenced_attributes, ", ") + ")";
  }
  out += ")";
  return out;
}

}  // namespace claks
