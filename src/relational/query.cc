// Copyright 2026 The claks Authors.

#include "relational/query.h"

#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace claks {

Result<bool> EvalPredicate(const TableSchema& schema, const Row& row,
                           const Predicate& pred) {
  CLAKS_ASSIGN_OR_RETURN(size_t idx,
                         schema.RequireAttributeIndex(pred.attribute));
  const Value& v = row[idx];
  if (v.is_null()) return false;
  switch (pred.op) {
    case CompareOp::kEq:
      return v == pred.constant;
    case CompareOp::kNe:
      return v != pred.constant;
    case CompareOp::kLt:
      return v < pred.constant;
    case CompareOp::kLe:
      return v < pred.constant || v == pred.constant;
    case CompareOp::kGt:
      return pred.constant < v;
    case CompareOp::kGe:
      return pred.constant < v || v == pred.constant;
    case CompareOp::kContains:
      if (v.type() != ValueType::kString ||
          pred.constant.type() != ValueType::kString) {
        return Status::InvalidArgument("CONTAINS requires string operands");
      }
      return ContainsIgnoreCase(v.AsString(), pred.constant.AsString());
  }
  return Status::Internal("unreachable");
}

Relation::Relation(std::vector<Column> columns, std::vector<Row> rows)
    : columns_(std::move(columns)), rows_(std::move(rows)) {}

Relation Relation::FromTable(const Table& table) {
  std::vector<Column> columns;
  columns.reserve(table.schema().num_attributes());
  for (size_t i = 0; i < table.schema().num_attributes(); ++i) {
    const AttributeDef& attr = table.schema().attribute(i);
    columns.push_back(Column{table.name() + "." + attr.name, attr.type});
  }
  std::vector<Row> rows;
  rows.reserve(table.live_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!table.IsDeleted(r)) rows.push_back(table.row(r));
  }
  return Relation(std::move(columns), std::move(rows));
}

Result<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Allow unqualified names when unambiguous.
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EndsWith(columns_[i].name, "." + name)) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" + name + "'");
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("column '" + name + "'");
  }
  return *found;
}

Result<Relation> Relation::Select(const std::string& column, CompareOp op,
                                  const Value& constant) const {
  CLAKS_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  std::vector<Row> out;
  for (const Row& row : rows_) {
    const Value& v = row[idx];
    if (v.is_null()) continue;
    bool keep = false;
    switch (op) {
      case CompareOp::kEq:
        keep = v == constant;
        break;
      case CompareOp::kNe:
        keep = v != constant;
        break;
      case CompareOp::kLt:
        keep = v < constant;
        break;
      case CompareOp::kLe:
        keep = v < constant || v == constant;
        break;
      case CompareOp::kGt:
        keep = constant < v;
        break;
      case CompareOp::kGe:
        keep = constant < v || v == constant;
        break;
      case CompareOp::kContains:
        if (v.type() != ValueType::kString ||
            constant.type() != ValueType::kString) {
          return Status::InvalidArgument("CONTAINS requires string operands");
        }
        keep = ContainsIgnoreCase(v.AsString(), constant.AsString());
        break;
    }
    if (keep) out.push_back(row);
  }
  return Relation(columns_, std::move(out));
}

Result<Relation> Relation::Project(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  std::vector<Column> columns;
  for (const auto& name : names) {
    CLAKS_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
    indices.push_back(idx);
    columns.push_back(columns_[idx]);
  }
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.push_back(std::move(projected));
  }
  return Relation(std::move(columns), std::move(out));
}

Result<Relation> Relation::Join(const Relation& right,
                                const std::string& left_column,
                                const std::string& right_column) const {
  CLAKS_ASSIGN_OR_RETURN(size_t li, ColumnIndex(left_column));
  CLAKS_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(right_column));

  std::unordered_multimap<size_t, size_t> hash;  // value hash -> right row
  for (size_t r = 0; r < right.rows_.size(); ++r) {
    const Value& v = right.rows_[r][ri];
    if (v.is_null()) continue;
    hash.emplace(v.Hash(), r);
  }

  std::vector<Column> columns = columns_;
  columns.insert(columns.end(), right.columns_.begin(),
                 right.columns_.end());

  std::vector<Row> out;
  for (const Row& lrow : rows_) {
    const Value& lv = lrow[li];
    if (lv.is_null()) continue;
    auto range = hash.equal_range(lv.Hash());
    for (auto it = range.first; it != range.second; ++it) {
      const Row& rrow = right.rows_[it->second];
      if (rrow[ri] != lv) continue;  // hash collision guard
      Row joined = lrow;
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.push_back(std::move(joined));
    }
  }
  return Relation(std::move(columns), std::move(out));
}

Relation Relation::Distinct() const {
  std::unordered_set<std::string> seen;
  std::vector<Row> out;
  std::vector<size_t> all(columns_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (const Row& row : rows_) {
    std::string key = MakeKey(row, all);
    if (seen.insert(std::move(key)).second) out.push_back(row);
  }
  return Relation(columns_, std::move(out));
}

std::string Relation::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].name.size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      widths[i] = std::max(widths[i], rows_[r][i].ToString().size());
    }
  }
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    out += PadRight(columns_[i].name, widths[i] + 2);
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      out += PadRight(rows_[r][i].ToString(), widths[i] + 2);
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

namespace {

// Finds an FK between `a` and `b` (either direction). Returns (fk, owner is
// a?) or NotFound.
struct FkBetween {
  const ForeignKeyDef* fk;
  bool owned_by_left;
};

Result<FkBetween> FindFkBetween(const Table& a, const Table& b) {
  for (const auto& fk : a.schema().foreign_keys()) {
    if (fk.referenced_table == b.name()) return FkBetween{&fk, true};
  }
  for (const auto& fk : b.schema().foreign_keys()) {
    if (fk.referenced_table == a.name()) return FkBetween{&fk, false};
  }
  return Status::NotFound("no foreign key between '" + a.name() + "' and '" +
                          b.name() + "'");
}

}  // namespace

Result<Relation> JoinAlongPath(const Database& db,
                               const std::vector<std::string>& tables) {
  if (tables.empty()) return Status::InvalidArgument("empty join path");
  CLAKS_ASSIGN_OR_RETURN(const Table* first, db.RequireTable(tables[0]));
  Relation acc = Relation::FromTable(*first);
  for (size_t i = 1; i < tables.size(); ++i) {
    CLAKS_ASSIGN_OR_RETURN(const Table* prev, db.RequireTable(tables[i - 1]));
    CLAKS_ASSIGN_OR_RETURN(const Table* next, db.RequireTable(tables[i]));
    CLAKS_ASSIGN_OR_RETURN(FkBetween fk, FindFkBetween(*prev, *next));
    Relation right = Relation::FromTable(*next);
    // Join on the first FK attribute pair (composite keys join on each pair
    // in sequence).
    Relation joined = acc;
    const auto& local = fk.fk->local_attributes;
    const auto& referenced = fk.fk->referenced_attributes;
    for (size_t k = 0; k < local.size(); ++k) {
      std::string left_col, right_col;
      if (fk.owned_by_left) {
        left_col = prev->name() + "." + local[k];
        right_col = next->name() + "." + referenced[k];
      } else {
        left_col = prev->name() + "." + referenced[k];
        right_col = next->name() + "." + local[k];
      }
      if (k == 0) {
        CLAKS_ASSIGN_OR_RETURN(joined, acc.Join(right, left_col, right_col));
      } else {
        // Filter composite-key mismatches post-join.
        CLAKS_ASSIGN_OR_RETURN(size_t li, joined.ColumnIndex(left_col));
        CLAKS_ASSIGN_OR_RETURN(size_t ri, joined.ColumnIndex(right_col));
        std::vector<Row> filtered;
        for (const Row& row : joined.rows()) {
          if (row[li] == row[ri]) filtered.push_back(row);
        }
        joined = Relation(
            std::vector<Relation::Column>(joined.columns()),
            std::move(filtered));
      }
    }
    acc = std::move(joined);
  }
  return acc;
}

}  // namespace claks
