// Copyright 2026 The claks Authors.
//
// Typed attribute values. The engine supports NULL, 64-bit integers,
// doubles, booleans and strings — enough to represent every schema in the
// paper and in realistic keyword-search workloads.

#ifndef CLAKS_RELATIONAL_VALUE_H_
#define CLAKS_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace claks {

enum class ValueType { kNull = 0, kInt64, kDouble, kBool, kString };

/// Human-readable type name ("INT64", "STRING", ...).
const char* ValueTypeToString(ValueType type);

/// A single attribute value. Small, copyable, hashable, totally ordered
/// within one type (cross-type comparison orders by type tag).
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; CLAKS_CHECK on type mismatch.
  int64_t AsInt64() const;
  double AsDouble() const;
  bool AsBool() const;
  const std::string& AsString() const;

  /// Renders for display and for CSV round-tripping. NULL renders as "".
  std::string ToString() const;

  /// Parses a textual field into a value of `type`. Empty text yields NULL
  /// for nullable contexts; callers enforce nullability separately.
  static Result<Value> Parse(const std::string& text, ValueType type);

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  /// Stable hash, suitable for unordered containers.
  size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, bool,
                            std::string>;
  explicit Value(Repr data) : data_(std::move(data)) {}

  Repr data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace claks

#endif  // CLAKS_RELATIONAL_VALUE_H_
