// Copyright 2026 The claks Authors.

#include "service/result_cache.h"

#include <functional>

#include "common/macros.h"
#include "observability/metrics.h"

namespace claks {

namespace {

// Process-wide cache counters (all ResultCache instances). The exact
// per-instance counts behind ResultCacheStats stay on the cache shards;
// these feed the global metrics page.
CLAKS_METRIC_COUNTER(g_cache_hits, "claks_cache_hits_total",
                     "Result-cache lookups served from cache");
CLAKS_METRIC_COUNTER(g_cache_misses, "claks_cache_misses_total",
                     "Result-cache lookups that missed");
CLAKS_METRIC_COUNTER(g_cache_evictions, "claks_cache_evictions_total",
                     "Result-cache LRU evictions");

}  // namespace

ResultCache::ResultCache(size_t capacity, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  if (capacity == 0) capacity = num_shards;
  // Never shard below one slot; round the budget up so total capacity is
  // at least the requested one.
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const SearchResult> ResultCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    g_cache_misses.Inc();
    return nullptr;
  }
  ++shard.hits;
  g_cache_hits.Inc();
  // Refresh recency: splice the node to the front without reallocating.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const SearchResult> value) {
  CLAKS_CHECK(value != nullptr);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    g_cache_evictions.Inc();
  }
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index.emplace(key, shard.lru.begin());
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.capacity = capacity();
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace claks
