// Copyright 2026 The claks Authors.
//
// Forwarding header: ThreadPool moved to common/thread_pool.h when the
// intra-query sharding layer (core/shard.h) started running per-shard
// work on it — the class now sits below both consumers. Kept so existing
// service-side includes keep compiling unchanged.

#ifndef CLAKS_SERVICE_THREAD_POOL_H_
#define CLAKS_SERVICE_THREAD_POOL_H_

#include "common/thread_pool.h"  // IWYU pragma: export

#endif  // CLAKS_SERVICE_THREAD_POOL_H_
