// Copyright 2026 The claks Authors.
//
// The service wire types: a versioned QueryRequest/QueryResponse pair for
// incremental result consumption over SearchService. A client Prepares a
// request (validation + matching happen once, a server-side cursor is
// registered, the response carries its id), then Fetches pages of ranked
// hits until `drained`. The api_version field lets future revisions change
// either struct without silently misreading old callers: a service rejects
// versions it does not speak with StatusCode::kUnimplemented.
//
// Pages are cache-key-compatible with the whole-result cache
// (service/result_cache.h): cursor server state is keyed by the same
// canonical CacheKey the Submit path uses, so (a) preparing a query whose
// full result is already cached opens a zero-work materialized cursor, and
// (b) a cursor drained to the end populates the whole-result cache for
// future Submit calls. See SearchService for the endpoint contracts.

#ifndef CLAKS_SERVICE_QUERY_API_H_
#define CLAKS_SERVICE_QUERY_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace claks {

/// The query-api revision this build speaks.
inline constexpr uint32_t kQueryApiVersion = 1;

/// What a client sends to SearchService::Prepare. Options are validated
/// strictly (QuerySpec::Create): nonsensical combinations come back as
/// InvalidArgument naming each QuerySpecError instead of executing.
struct QueryRequest {
  uint32_t api_version = kQueryApiVersion;
  std::string query_text;
  SearchOptions options;
};

/// What Prepare and Fetch return. Prepare responses carry the cursor id
/// and the match metadata with an empty hit page; every Fetch response is
/// the next page of the ranked hit sequence.
struct QueryResponse {
  uint32_t api_version = kQueryApiVersion;
  /// Handle for Fetch/Close. Ids are never reused within a service.
  uint64_t cursor_id = 0;
  /// The engine snapshot this cursor reads. Pinned: the generation stays
  /// alive (and the sequence stays frozen) until the cursor is closed,
  /// even across Mutate calls.
  uint64_t snapshot_version = 0;

  /// Normalized keywords (after AND/OR resolution) and the number of
  /// matched tuples per keyword, parallel arrays.
  KeywordQuery query;
  std::vector<size_t> match_counts;

  /// Rank position of hits.front() in the full sequence (== the number of
  /// hits this cursor handed out before this page).
  size_t offset = 0;
  std::vector<SearchHit> hits;  ///< empty for Prepare responses
  /// True when every hit of the sequence has been handed out to this
  /// cursor (a Prepare response is drained only for empty results).
  bool drained = false;
  /// Work metric so far (SearchResult::expansions semantics), cumulative
  /// across the pages pulled through this cursor's shared server state —
  /// for a lazy kStream cursor it grows page by page.
  size_t expansions = 0;
};

}  // namespace claks

#endif  // CLAKS_SERVICE_QUERY_API_H_
