// Copyright 2026 The claks Authors.
//
// Sharded LRU cache of search results keyed by the canonical normalized
// query form (service/search_service.h builds the keys). Identical queries
// hitting the service pay the full search cost once per snapshot; the
// shards keep lock contention at N threads from serializing every lookup.

#ifndef CLAKS_SERVICE_RESULT_CACHE_H_
#define CLAKS_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"

namespace claks {

/// Exact counters across all shards. hits + misses equals the number of
/// Get calls that have completed; evictions counts LRU displacements only
/// (Clear and same-key overwrites are not evictions).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Fixed-capacity, sharded, mutex-per-shard LRU mapping cache keys to
/// immutable shared SearchResults.
///
/// Thread-safety: every member is safe to call concurrently; each
/// operation locks exactly one shard (stats() locks them in turn, giving a
/// sum over per-shard-consistent snapshots). Returned shared_ptrs stay
/// valid after eviction — eviction drops the cache's reference, never the
/// caller's.
class ResultCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` shards (each shard gets at least one slot).
  explicit ResultCache(size_t capacity, size_t num_shards = 8);

  /// The cached result for `key`, refreshing its recency; nullptr (and a
  /// counted miss) when absent.
  std::shared_ptr<const SearchResult> Get(const std::string& key);

  /// Inserts or overwrites `key`, making it most recent; evicts the least
  /// recent entry of the key's shard when that shard is at capacity.
  void Put(const std::string& key,
           std::shared_ptr<const SearchResult> value);

  /// Drops every entry; counters keep accumulating (entries resets).
  void Clear();

  ResultCacheStats stats() const;

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const SearchResult> value;
  };
  struct Shard {
    Mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru CLAKS_GUARDED_BY(mutex);
    /// key (owned by the list node) -> node. std::list iterators survive
    /// splices, so refreshing recency never invalidates the map.
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        CLAKS_GUARDED_BY(mutex);
    uint64_t hits CLAKS_GUARDED_BY(mutex) = 0;
    uint64_t misses CLAKS_GUARDED_BY(mutex) = 0;
    uint64_t evictions CLAKS_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace claks

#endif  // CLAKS_SERVICE_RESULT_CACHE_H_
