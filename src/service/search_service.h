// Copyright 2026 The claks Authors.
//
// SearchService: the concurrent query front of the engine. One service
// owns (a) an immutable, fully-warmed KeywordSearchEngine snapshot shared
// RCU-style behind a std::shared_ptr, (b) a fixed worker pool with a
// bounded submission queue (service/thread_pool.h), and (c) a sharded LRU
// result cache keyed by the canonical normalized query form
// (service/result_cache.h). Queries are submitted from any thread and
// resolve through per-query futures; mutations clone the database, build
// and warm a fresh snapshot off to the side, and swap it in atomically
// while in-flight queries finish on the old snapshot.

#ifndef CLAKS_SERVICE_SEARCH_SERVICE_H_
#define CLAKS_SERVICE_SEARCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/engine.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace claks {

/// One immutable generation of the data + engine: the database frozen at
/// snapshot-build time and a warmed engine over it. Readers hold the whole
/// snapshot via shared_ptr, so a generation stays alive exactly as long as
/// any in-flight query (or the service) references it.
struct EngineSnapshot {
  /// Monotonically increasing, starting at 1; part of every cache key, so
  /// results cached against an old generation can never serve a new one.
  uint64_t version = 0;
  std::unique_ptr<Database> db;
  std::unique_ptr<KeywordSearchEngine> engine;  ///< warmed, reads db
};

struct ServiceOptions {
  /// Worker threads executing searches.
  size_t num_threads = 4;
  /// Bounded submission queue: Submit blocks (backpressure, no drops)
  /// while this many tasks wait.
  size_t queue_capacity = 64;
  /// Total result-cache entries across shards; 0 disables caching.
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
};

/// Point-in-time service counters. Exact: hits + misses counts executed
/// lookups, completed counts fulfilled futures.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  uint64_t snapshot_version = 0;
};

/// Thread-safety: every public member may be called from any thread.
/// Submit is wait-free past admission (it blocks only on the bounded
/// queue); Mutate serializes with other Mutate calls but never blocks
/// queries — they keep resolving against the previous snapshot until the
/// swap. Destruction completes all admitted queries first.
class SearchService {
 public:
  /// Takes ownership of `db`, reverse-engineers the conceptual schema,
  /// and publishes snapshot version 1. Fails when the engine cannot be
  /// built (e.g. referential-integrity violations).
  static Result<std::unique_ptr<SearchService>> Create(
      std::unique_ptr<Database> db, ServiceOptions options = {});

  /// Same with a known conceptual schema + mapping; both are retained and
  /// reused for every future snapshot rebuild (row mutations do not change
  /// the schema).
  static Result<std::unique_ptr<SearchService>> Create(
      std::unique_ptr<Database> db, ERSchema er_schema,
      ErRelationalMapping mapping, ServiceOptions options = {});

  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Enqueues one query; the future resolves to exactly what
  /// KeywordSearchEngine::Search would return serially on the snapshot
  /// current at execution time (cache hits return a copy of that same
  /// result). Blocks while the submission queue is full.
  std::future<Result<SearchResult>> Submit(std::string query_text,
                                           SearchOptions options = {});

  /// Convenience: Submit + wait.
  Result<SearchResult> SearchNow(const std::string& query_text,
                                 const SearchOptions& options = {});

  /// Clones the current database, applies `mutation` to the clone, builds
  /// and warms a fresh engine over it, and atomically publishes it as the
  /// next snapshot version. Queries already executing (or cache entries
  /// keyed to older versions) are untouched; queries picking a snapshot
  /// after the swap see the new data. On mutation failure nothing is
  /// published. Mutations serialize with each other.
  Status Mutate(const std::function<Status(Database*)>& mutation);

  /// The current snapshot (RCU read side): callers may search it directly
  /// and hold it as long as they like.
  std::shared_ptr<const EngineSnapshot> snapshot() const;

  /// Blocks until every query submitted so far has resolved.
  void Drain();

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// The canonical cache key of a query against one snapshot version: the
  /// tokenizer-normalized keyword sequence (so "Smith XML", "smith xml"
  /// and " SMITH  xml. " coincide) plus every option that can change the
  /// result — method, ranker, top_k, AND/OR semantics, depth/tmax bounds,
  /// instance-check settings, per-endpoint grouping and the BANKS
  /// parameters — plus the snapshot version itself.
  static std::string CacheKey(const KeywordSearchEngine& engine,
                              uint64_t version,
                              const std::string& query_text,
                              const SearchOptions& options);

 private:
  SearchService(ServiceOptions options,
                std::optional<std::pair<ERSchema, ErRelationalMapping>>
                    schema_and_mapping);

  /// Builds a warmed snapshot of `db` at `version` using the retained
  /// schema/mapping when present (reverse-engineering otherwise).
  Result<std::shared_ptr<const EngineSnapshot>> BuildSnapshot(
      std::unique_ptr<Database> db, uint64_t version) const;

  /// The worker-side execution path: snapshot pick, cache lookup, search,
  /// cache fill.
  Result<SearchResult> Execute(const std::string& query_text,
                               const SearchOptions& options);

  const ServiceOptions options_;
  /// Schema + mapping reused across snapshot rebuilds (nullopt: recover
  /// from the catalog each time).
  const std::optional<std::pair<ERSchema, ErRelationalMapping>>
      schema_and_mapping_;

  /// RCU-style published snapshot: readers atomic_load a shared_ptr copy,
  /// Mutate atomic_stores the replacement. Never null after Create.
  std::shared_ptr<const EngineSnapshot> snapshot_;
  /// Serializes Mutate calls (clone + rebuild happen outside any lock the
  /// read side takes).
  std::mutex mutate_mutex_;

  std::unique_ptr<ResultCache> cache_;  ///< null when caching is disabled
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};

  /// Declared last: destroyed first, so workers finish (they reference
  /// snapshot_/cache_/counters) before the rest of the service tears down.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace claks

#endif  // CLAKS_SERVICE_SEARCH_SERVICE_H_
