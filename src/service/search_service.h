// Copyright 2026 The claks Authors.
//
// SearchService: the concurrent query front of the engine. One service
// owns (a) an immutable, fully-warmed KeywordSearchEngine snapshot shared
// RCU-style behind a std::shared_ptr, (b) a fixed worker pool with a
// bounded submission queue (service/thread_pool.h), and (c) a sharded LRU
// result cache keyed by the canonical normalized query form
// (service/result_cache.h). Queries are submitted from any thread and
// resolve through per-query futures; mutations clone the database, build
// and warm a fresh snapshot off to the side, and swap it in atomically
// while in-flight queries finish on the old snapshot.
//
// Two consumption shapes: Submit/SearchNow execute a whole query and
// resolve a future with the full SearchResult; Prepare/Fetch (the
// versioned query_api.h pair) open a server-side cursor and pull the
// ranked sequence page by page — lazy methods (kStream) only do the
// expansion work the fetched pages require, open cursors pin their
// snapshot generation across mutations, and cursor state is shared by
// canonical cache key so identical concurrent browsing sessions pay the
// search once.

#ifndef CLAKS_SERVICE_SEARCH_SERVICE_H_
#define CLAKS_SERVICE_SEARCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/cursor.h"
#include "core/engine.h"
#include "core/query_spec.h"
#include "observability/metrics.h"
#include "service/query_api.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace claks {

/// One immutable generation of the data + engine: the database frozen at
/// snapshot-build time and a warmed engine over it. Readers hold the whole
/// snapshot via shared_ptr, so a generation stays alive exactly as long as
/// any in-flight query (or the service) references it.
///
/// The snapshot also owns this generation's shard set: the engine holds
/// the intra-query ShardContext (core/shard.h) and every per-shard
/// stream a sharded query builds reads this generation's data graph, so
/// a Prepare/Fetch cursor paging from a merged per-shard stream pins the
/// whole shard set — pool, streams, graph — across Mutate swaps simply
/// by holding its snapshot.
struct EngineSnapshot {
  /// Monotonically increasing, starting at 1; part of every cache key, so
  /// results cached against an old generation can never serve a new one.
  uint64_t version = 0;
  std::unique_ptr<Database> db;
  std::unique_ptr<KeywordSearchEngine> engine;  ///< warmed, reads db
};

struct ServiceOptions {
  /// Worker threads executing searches.
  size_t num_threads = 4;
  /// Bounded submission queue: Submit blocks (backpressure, no drops)
  /// while this many tasks wait.
  size_t queue_capacity = 64;
  /// Total result-cache entries across shards; 0 disables caching.
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  /// Cap on simultaneously open client cursors (Prepare fails with
  /// OutOfRange beyond it; Close frees slots). Each open cursor pins its
  /// engine snapshot, so the cap bounds how many old generations
  /// straggling readers can keep alive.
  size_t max_open_cursors = 1024;
  /// When a delta-derived snapshot folds its overlays (core/engine.h).
  DeltaPolicy delta_policy;
  /// Queries slower than this log one WARNING line with their
  /// QueryProfile summary as structured fields (the service forces
  /// profiling internally; callers that did not ask for a profile still
  /// get — and cache — profile-free results). 0 disables slow-query
  /// logging entirely.
  uint64_t slow_query_ms = 0;
};

/// Point-in-time service counters, re-derived from the service's own
/// MetricsRegistry snapshot (one read pass per stats() call — every
/// counter is read at the same point of the same sweep, unlike scattered
/// per-field atomic loads). Exact while metrics recording is on (the
/// default): hits + misses counts executed lookups, completed counts
/// fulfilled futures. MetricsRegistry::SetRecording(false) freezes these
/// counters along with every other metric in the process.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  uint64_t snapshot_version = 0;
  /// Cursor endpoints (query_api.h): cursors Prepared / pages Fetched
  /// since construction, and the currently open (not yet Closed) cursors.
  uint64_t cursors_prepared = 0;
  uint64_t pages_fetched = 0;
  size_t open_cursors = 0;
  /// Mutation-path counters: batches published through O(delta) engine
  /// derivation, through a full rebuild (schema change or derive
  /// fallback), and batches that changed nothing (no snapshot published).
  /// `compactions` counts derived snapshots that folded their overlays.
  uint64_t delta_mutations = 0;
  uint64_t rebuild_mutations = 0;
  uint64_t noop_mutations = 0;
  uint64_t compactions = 0;

  /// Human-readable stats page (the future /stats endpoint's text body):
  /// one aligned `name value` line per counter above.
  std::string RenderText() const;
};

/// Thread-safety: every public member may be called from any thread.
/// Submit is wait-free past admission (it blocks only on the bounded
/// queue); Mutate serializes with other Mutate calls but never blocks
/// queries — they keep resolving against the previous snapshot until the
/// swap. Destruction completes all admitted queries first.
class SearchService {
 public:
  /// Takes ownership of `db`, reverse-engineers the conceptual schema,
  /// and publishes snapshot version 1. Fails when the engine cannot be
  /// built (e.g. referential-integrity violations).
  static Result<std::unique_ptr<SearchService>> Create(
      std::unique_ptr<Database> db, ServiceOptions options = {});

  /// Same with a known conceptual schema + mapping; both are retained and
  /// reused for every future snapshot rebuild (row mutations do not change
  /// the schema).
  static Result<std::unique_ptr<SearchService>> Create(
      std::unique_ptr<Database> db, ERSchema er_schema,
      ErRelationalMapping mapping, ServiceOptions options = {});

  /// Cold start from a snapshot file (storage/snapshot.h): the loaded
  /// generation — flat graph/index arrays served zero-copy out of the
  /// mmap'd file — becomes snapshot version 1, with no index build, graph
  /// construction, tokenization or integrity re-check. The loaded
  /// engine's ER schema + mapping are retained for future rebuilds, and
  /// subsequent Mutate calls delta-derive on top of the frozen mmap'd
  /// base exactly as they would over a built one (compaction folds the
  /// overlays into fresh owned arrays; the mapping is unpinned when the
  /// last generation viewing it dies). Fails with the loader's typed
  /// StorageError status on a corrupt or truncated file.
  static Result<std::unique_ptr<SearchService>> CreateFromSnapshot(
      const std::string& path, ServiceOptions options = {});

  /// Serializes the current generation to `path` (atomic tmp + rename).
  /// A generation carrying derive overlays cannot be serialized directly;
  /// this first publishes a compacted rebuild as the next snapshot
  /// version (result-identical — the differential suite proves derived ==
  /// rebuilt) and saves that, so the call always writes the service's
  /// current logical state. Serializes with Mutate.
  Status SaveSnapshot(const std::string& path)
      CLAKS_EXCLUDES(mutate_mutex_);

  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Enqueues one query; the future resolves to exactly what
  /// KeywordSearchEngine::Search would return serially on the snapshot
  /// current at execution time (cache hits return a copy of that same
  /// result). Blocks while the submission queue is full.
  std::future<Result<SearchResult>> Submit(std::string query_text,
                                           SearchOptions options = {});

  /// Convenience: Submit + wait.
  Result<SearchResult> SearchNow(const std::string& query_text,
                                 const SearchOptions& options = {});

  /// Opens a server-side cursor for incremental consumption (the
  /// prepared-query shape of query_api.h). Validates request.options
  /// strictly (QuerySpec::Create — InvalidArgument naming each
  /// QuerySpecError), rejects api_versions this build does not speak
  /// (Unimplemented), and fails with OutOfRange at max_open_cursors. The
  /// cursor pins the snapshot current at Prepare time: Fetch pages stay
  /// frozen on that generation across Mutate calls. Cursor server state
  /// is shared by canonical cache key — concurrent clients preparing the
  /// same query on the same snapshot pull from one engine cursor, and a
  /// query whose full result already sits in the result cache opens a
  /// zero-work materialized cursor.
  Result<QueryResponse> Prepare(const QueryRequest& request)
      CLAKS_EXCLUDES(cursors_mutex_);

  /// Returns the next `page_size` hits of the cursor's ranked sequence
  /// (fewer on the last page; `drained` set once the sequence ends).
  /// Lazy methods do the expansion work here, not in Prepare; a cursor
  /// fetched to the end populates the whole-result cache for future
  /// Submit calls of the same query. NotFound for unknown/closed ids.
  ///
  /// Thread-safety: any thread; Fetches on the same cursor_id serialize
  /// and hand out disjoint consecutive pages.
  Result<QueryResponse> Fetch(uint64_t cursor_id, size_t page_size)
      CLAKS_EXCLUDES(cursors_mutex_);

  /// Fetch through the worker pool: the future resolves to exactly what
  /// Fetch(cursor_id, page_size) would return. Blocks while the
  /// submission queue is full, like Submit.
  std::future<Result<QueryResponse>> SubmitFetch(uint64_t cursor_id,
                                                 size_t page_size);

  /// Releases a cursor (and, when it held the last reference, the shared
  /// server state plus its snapshot pin). NotFound for unknown ids.
  Status Close(uint64_t cursor_id) CLAKS_EXCLUDES(cursors_mutex_);

  /// Clones the current database (O(rows changed since the last
  /// compaction) — tables share frozen segments), applies `mutation` to
  /// the clone, diffs watermarks into a row delta, and derives the next
  /// snapshot from the current one in O(delta) (core/engine.h Derive):
  /// the new generation shares every frozen base with the old, readers of
  /// which are untouched. Atomically publishes the result as the next
  /// snapshot version.
  ///
  /// Special cases: a batch that changes nothing publishes nothing (the
  /// snapshot pointer and version are unchanged and no engine is built);
  /// a batch violating referential integrity (dangling FK, delete of a
  /// still-referenced row) fails with IntegrityViolation and publishes
  /// nothing; a schema change (AddTable) or an unexpected derive failure
  /// falls back to the full rebuild path. Mutations serialize with each
  /// other and never block queries.
  Status Mutate(const std::function<Status(Database*)>& mutation)
      CLAKS_EXCLUDES(mutate_mutex_);

  /// The current snapshot (RCU read side): callers may search it directly
  /// and hold it as long as they like.
  std::shared_ptr<const EngineSnapshot> snapshot() const;

  /// Blocks until every query submitted so far has resolved.
  void Drain();

  ServiceStats stats() const CLAKS_EXCLUDES(cursors_mutex_);
  const ServiceOptions& options() const { return options_; }

  /// This service's own metrics registry — the structured source stats()
  /// snapshots; RenderText/RenderJson on it are the exposition pages a
  /// future /stats endpoint serves per service.
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The canonical cache key of a query against one snapshot version: the
  /// tokenizer-normalized keyword sequence (so "Smith XML", "smith xml"
  /// and " SMITH  xml. " coincide) plus every option that can change the
  /// result — method, ranker, top_k, AND/OR semantics, depth/tmax bounds,
  /// instance-check settings, per-endpoint grouping, the effective shard
  /// count (hits are shard-invariant, but the cached work counters are
  /// not), the BANKS parameters and the profile flag (a profiled result
  /// carries its QueryProfile; an unprofiled one must not) — plus the
  /// snapshot version itself.
  static std::string CacheKey(const KeywordSearchEngine& engine,
                              uint64_t version,
                              const std::string& query_text,
                              const SearchOptions& options);

 private:
  /// Server-side cursor state, shared among every client cursor whose
  /// (snapshot, query, options) canonical key coincides: one engine
  /// cursor feeds an append-only materialized prefix all clients slice
  /// pages from, so identical concurrent browsing sessions pay the
  /// search work once. Holding the snapshot shared_ptr pins the
  /// generation for the state's lifetime.
  struct CursorState {
    Mutex mutex;
    /// Immutable after construction (set before the state is published
    /// into active_states_): snapshot pin, canonical key, the prepared
    /// query, and the query echo fields.
    std::shared_ptr<const EngineSnapshot> snapshot;
    std::string key;  ///< canonical cache key (CacheKey)
    /// Heap-pinned: open cursors reference the PreparedQuery internals,
    /// so it must keep a stable address for the state's lifetime. Null
    /// when the state was built from a cached whole result.
    std::unique_ptr<PreparedQuery> prepared;
    /// Cache-backed source: the shared whole result, sliced directly (no
    /// per-session copy). Null on the live-cursor path, where `prefix`
    /// accumulates instead.
    std::shared_ptr<const SearchResult> whole;
    KeywordQuery query;
    std::vector<size_t> match_counts;
    /// The live engine cursor and everything it feeds, advanced by
    /// Fetch under `mutex`.
    std::unique_ptr<ResultCursor> cursor
        CLAKS_GUARDED_BY(mutex);  ///< null when cache-backed
    std::vector<SearchHit> prefix
        CLAKS_GUARDED_BY(mutex);  ///< materialized so far (live path)
    size_t expansions CLAKS_GUARDED_BY(mutex) = 0;
    bool drained CLAKS_GUARDED_BY(mutex) = false;
  };

  /// One client's handle: a shared state plus this client's position.
  struct ClientCursor {
    Mutex mutex;  ///< serializes Fetches on this id
    /// Immutable after construction.
    std::shared_ptr<CursorState> state;
    size_t offset CLAKS_GUARDED_BY(mutex) = 0;
  };

  SearchService(ServiceOptions options,
                std::optional<std::pair<ERSchema, ErRelationalMapping>>
                    schema_and_mapping);

  /// Finds or builds the shared CursorState for `request` against the
  /// current snapshot.
  Result<std::shared_ptr<CursorState>> StateForRequest(
      const QueryRequest& request, QuerySpec spec)
      CLAKS_EXCLUDES(cursors_mutex_);

  /// Builds a warmed snapshot of `db` at `version` using the retained
  /// schema/mapping when present (reverse-engineering otherwise).
  Result<std::shared_ptr<const EngineSnapshot>> BuildSnapshot(
      std::unique_ptr<Database> db, uint64_t version) const;

  /// The worker-side execution path: snapshot pick, cache lookup, search,
  /// cache fill.
  Result<SearchResult> Execute(const std::string& query_text,
                               const SearchOptions& options);

  const ServiceOptions options_;
  /// Schema + mapping reused across snapshot rebuilds (nullopt: recover
  /// from the catalog each time).
  const std::optional<std::pair<ERSchema, ErRelationalMapping>>
      schema_and_mapping_;

  /// RCU-style published snapshot: readers atomic_load a shared_ptr copy,
  /// Mutate atomic_stores the replacement. Never null after Create. Not
  /// mutex-guarded — the atomic free functions are the whole protocol.
  std::shared_ptr<const EngineSnapshot> snapshot_;
  /// Serializes Mutate calls (clone + rebuild happen outside any lock the
  /// read side takes). Guards the mutate critical section, not a field:
  /// the snapshot swap itself is the atomic_store above.
  Mutex mutate_mutex_;

  std::unique_ptr<ResultCache> cache_;  ///< null when caching is disabled

  /// Per-service metrics registry: the single source of truth stats()
  /// re-derives ServiceStats from in one snapshot pass. The counters
  /// below are bound once at construction (instance registrations are
  /// exempt from the metric-naming lint's namespace-scope rule); every
  /// bump dual-writes the process-wide claks_service_* twin so the
  /// global metrics page aggregates all services in the process.
  MetricsRegistry metrics_;
  Counter* submitted_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* delta_mutations_ = nullptr;
  Counter* rebuild_mutations_ = nullptr;
  Counter* noop_mutations_ = nullptr;
  Counter* compactions_ = nullptr;
  Counter* cursors_prepared_ = nullptr;
  Counter* pages_fetched_ = nullptr;

  /// Cursor registry. `open_cursors_` maps live client ids;
  /// `active_states_` weakly indexes in-flight shared states by canonical
  /// key so identical Prepares coalesce (expired entries are reaped
  /// opportunistically).
  mutable Mutex cursors_mutex_;  ///< mutable: stats() is const
  std::unordered_map<uint64_t, std::shared_ptr<ClientCursor>> open_cursors_
      CLAKS_GUARDED_BY(cursors_mutex_);
  std::map<std::string, std::weak_ptr<CursorState>> active_states_
      CLAKS_GUARDED_BY(cursors_mutex_);
  std::atomic<uint64_t> next_cursor_id_{1};

  /// Declared last: destroyed first, so workers finish (they reference
  /// snapshot_/cache_/counters) before the rest of the service tears down.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace claks

#endif  // CLAKS_SERVICE_SEARCH_SERVICE_H_
