// Copyright 2026 The claks Authors.

#include "service/search_service.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "core/shard.h"
#include "relational/delta.h"
#include "text/matcher.h"

namespace claks {

SearchService::SearchService(
    ServiceOptions options,
    std::optional<std::pair<ERSchema, ErRelationalMapping>>
        schema_and_mapping)
    : options_(options), schema_and_mapping_(std::move(schema_and_mapping)) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_threads,
                                       options_.queue_capacity);
}

SearchService::~SearchService() = default;

Result<std::unique_ptr<SearchService>> SearchService::Create(
    std::unique_ptr<Database> db, ServiceOptions options) {
  CLAKS_CHECK(db != nullptr);
  auto service = std::unique_ptr<SearchService>(
      new SearchService(options, std::nullopt));
  CLAKS_ASSIGN_OR_RETURN(service->snapshot_,
                         service->BuildSnapshot(std::move(db), 1));
  return service;
}

Result<std::unique_ptr<SearchService>> SearchService::Create(
    std::unique_ptr<Database> db, ERSchema er_schema,
    ErRelationalMapping mapping, ServiceOptions options) {
  CLAKS_CHECK(db != nullptr);
  // NOLINTNEXTLINE(modernize-make-unique): the constructor is private
  // (Create is the only entry point); make_unique cannot reach it.
  auto service = std::unique_ptr<SearchService>(new SearchService(
      options,
      std::make_pair(std::move(er_schema), std::move(mapping))));
  CLAKS_ASSIGN_OR_RETURN(service->snapshot_,
                         service->BuildSnapshot(std::move(db), 1));
  return service;
}

Result<std::shared_ptr<const EngineSnapshot>> SearchService::BuildSnapshot(
    std::unique_ptr<Database> db, uint64_t version) const {
  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->version = version;
  snapshot->db = std::move(db);
  // Fold table storage so future Clone() calls are O(delta), not
  // O(dataset) — the full-rebuild path pays O(dataset) anyway.
  snapshot->db->CompactStorage();
  if (schema_and_mapping_.has_value()) {
    CLAKS_ASSIGN_OR_RETURN(
        snapshot->engine,
        KeywordSearchEngine::Create(snapshot->db.get(),
                                    schema_and_mapping_->first,
                                    schema_and_mapping_->second));
  } else {
    CLAKS_ASSIGN_OR_RETURN(
        snapshot->engine,
        KeywordSearchEngine::Create(snapshot->db.get()));
  }
  // Create warms the engine already; keep the explicit call as the
  // published contract (a snapshot is never handed out cold).
  snapshot->engine->Warmup();
  CLAKS_CHECK(snapshot->engine->Warm());
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

std::shared_ptr<const EngineSnapshot> SearchService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

std::string SearchService::CacheKey(const KeywordSearchEngine& engine,
                                    uint64_t version,
                                    const std::string& query_text,
                                    const SearchOptions& options) {
  KeywordQuery query =
      ParseKeywordQuery(query_text, engine.index().tokenizer());
  std::string key = StrFormat("v%llu|",
                              static_cast<unsigned long long>(version));
  for (const std::string& keyword : query.keywords) {
    key += keyword;
    key += '\x1f';  // unit separator: cannot occur in a normalized token
  }
  // Shards never change hits (the differential suite proves
  // byte-identity), but the work counters they produce
  // (SearchResult::expansions / shard_expansions) are part of the cached
  // value — keying on the effective count keeps those exact.
  key += StrFormat(
      "|m%d|r%d|e%zu|t%zu|k%zu|i%d|w%zu|a%d|g%zu|s%zu|bk%zu|bw%d|bd%zu",
      static_cast<int>(options.method), static_cast<int>(options.ranker),
      options.max_rdb_edges, options.tmax, options.top_k,
      options.instance_check ? 1 : 0, options.witness_edges,
      options.require_all_keywords ? 1 : 0, options.per_endpoint_limit,
      EffectiveShards(options.shards), options.banks.top_k,
      static_cast<int>(options.banks.weight_model),
      options.banks.max_distance);
  return key;
}

Result<SearchResult> SearchService::Execute(const std::string& query_text,
                                            const SearchOptions& options) {
  // Pick the snapshot at execution (not submission) time: a query queued
  // behind a Mutate sees the new data, while one already executing keeps
  // its generation alive through this shared_ptr.
  std::shared_ptr<const EngineSnapshot> snap = snapshot();
  std::string key;
  if (cache_ != nullptr) {
    key = CacheKey(*snap->engine, snap->version, query_text, options);
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(key)) {
      return SearchResult(*cached);
    }
  }
  Result<SearchResult> result = snap->engine->Search(query_text, options);
  if (cache_ == nullptr || !result.ok()) return result;
  auto shared = std::make_shared<const SearchResult>(
      std::move(result).ValueOrDie());
  cache_->Put(key, shared);
  return SearchResult(*shared);
}

std::future<Result<SearchResult>> SearchService::Submit(
    std::string query_text, SearchOptions options) {
  auto promise = std::make_shared<std::promise<Result<SearchResult>>>();
  std::future<Result<SearchResult>> future = promise->get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit([this, promise, query_text = std::move(query_text),
                 options]() {
    Result<SearchResult> result = Execute(query_text, options);
    // Count before fulfilling: a waiter that sees the future ready also
    // sees the counter (set_value synchronizes with the get).
    completed_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(std::move(result));
  });
  return future;
}

Result<SearchResult> SearchService::SearchNow(
    const std::string& query_text, const SearchOptions& options) {
  return Submit(query_text, options).get();
}

Result<std::shared_ptr<SearchService::CursorState>>
SearchService::StateForRequest(const QueryRequest& request,
                               QuerySpec spec) {
  std::shared_ptr<const EngineSnapshot> snap = snapshot();
  std::string key = CacheKey(*snap->engine, snap->version,
                             request.query_text, request.options);
  {
    MutexLock lock(&cursors_mutex_);
    auto it = active_states_.find(key);
    if (it != active_states_.end()) {
      if (std::shared_ptr<CursorState> state = it->second.lock()) {
        return state;
      }
      active_states_.erase(it);
    }
  }

  auto state = std::make_shared<CursorState>();
  state->snapshot = snap;
  state->key = key;
  if (cache_ != nullptr) {
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(key)) {
      // The whole result is already materialized: a zero-work cursor
      // slicing the shared cached object directly. The state is not
      // published yet, but locking its (uncontended) mutex keeps the
      // guarded-field discipline provable.
      state->query = cached->query;
      for (const KeywordMatches& km : cached->matches) {
        state->match_counts.push_back(km.matches.size());
      }
      {
        MutexLock init_lock(&state->mutex);
        state->expansions = cached->expansions;
        state->drained = true;
      }
      state->whole = std::move(cached);
      MutexLock lock(&cursors_mutex_);
      active_states_[key] = state;
      return state;
    }
  }

  CLAKS_ASSIGN_OR_RETURN(
      PreparedQuery prepared,
      snap->engine->Prepare(request.query_text, std::move(spec)));
  state->prepared = std::make_unique<PreparedQuery>(std::move(prepared));
  {
    MutexLock init_lock(&state->mutex);
    CLAKS_ASSIGN_OR_RETURN(state->cursor, state->prepared->Open());
    state->drained = state->cursor->Drained();
    state->expansions = state->cursor->Stats().expansions;
  }
  state->query = state->prepared->query();
  for (const KeywordMatches& km : state->prepared->matches()) {
    state->match_counts.push_back(km.matches.size());
  }
  MutexLock lock(&cursors_mutex_);
  // A racing Prepare may have registered an equivalent state meanwhile;
  // share theirs so both clients pull from one engine cursor.
  auto it = active_states_.find(key);
  if (it != active_states_.end()) {
    if (std::shared_ptr<CursorState> existing = it->second.lock()) {
      return existing;
    }
  }
  active_states_[key] = state;
  return state;
}

Result<QueryResponse> SearchService::Prepare(const QueryRequest& request) {
  if (request.api_version != kQueryApiVersion) {
    return Status::Unimplemented(StrFormat(
        "query api version %u not supported (this service speaks v%u)",
        request.api_version, kQueryApiVersion));
  }
  CLAKS_ASSIGN_OR_RETURN(QuerySpec spec,
                         QuerySpec::Create(request.options));
  {
    MutexLock lock(&cursors_mutex_);
    if (open_cursors_.size() >= options_.max_open_cursors) {
      return Status::OutOfRange(
          StrFormat("too many open cursors (max %zu); Close finished ones",
                    options_.max_open_cursors));
    }
  }
  CLAKS_ASSIGN_OR_RETURN(std::shared_ptr<CursorState> state,
                         StateForRequest(request, std::move(spec)));

  auto client = std::make_shared<ClientCursor>();
  client->state = state;
  uint64_t id = next_cursor_id_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&cursors_mutex_);
    // Re-check under the registration lock: concurrent Prepares may have
    // filled the remaining slots since the early check.
    if (open_cursors_.size() >= options_.max_open_cursors) {
      return Status::OutOfRange(
          StrFormat("too many open cursors (max %zu); Close finished ones",
                    options_.max_open_cursors));
    }
    open_cursors_.emplace(id, std::move(client));
  }
  cursors_prepared_.fetch_add(1, std::memory_order_relaxed);

  QueryResponse response;
  response.cursor_id = id;
  response.snapshot_version = state->snapshot->version;
  {
    MutexLock state_lock(&state->mutex);
    const std::vector<SearchHit>& source =
        state->whole != nullptr ? state->whole->hits : state->prefix;
    response.query = state->query;
    response.match_counts = state->match_counts;
    response.drained = state->drained && source.empty();
    response.expansions = state->expansions;
  }
  return response;
}

Result<QueryResponse> SearchService::Fetch(uint64_t cursor_id,
                                           size_t page_size) {
  std::shared_ptr<ClientCursor> client;
  {
    MutexLock lock(&cursors_mutex_);
    auto it = open_cursors_.find(cursor_id);
    if (it == open_cursors_.end()) {
      return Status::NotFound(
          StrFormat("no open cursor %llu",
                    static_cast<unsigned long long>(cursor_id)));
    }
    client = it->second;
  }

  MutexLock client_lock(&client->mutex);
  CursorState& state = *client->state;
  QueryResponse response;
  response.cursor_id = cursor_id;
  response.snapshot_version = state.snapshot->version;
  response.offset = client->offset;

  // Saturate: a wrapped offset + page_size would rewind the client's
  // position and re-serve pages.
  size_t target = client->offset + page_size;
  if (target < client->offset) target = static_cast<size_t>(-1);

  MutexLock state_lock(&state.mutex);
  response.query = state.query;
  response.match_counts = state.match_counts;
  while (!state.drained && state.prefix.size() < target) {
    size_t need = target - state.prefix.size();
    CLAKS_ASSIGN_OR_RETURN(std::vector<SearchHit> pulled,
                           state.cursor->Next(need));
    size_t got = pulled.size();
    for (SearchHit& hit : pulled) state.prefix.push_back(std::move(hit));
    state.expansions = state.cursor->Stats().expansions;
    if (state.cursor->Drained()) state.drained = true;
    if (got < need) break;
  }
  if (state.drained && state.cursor != nullptr && cache_ != nullptr &&
      state.prepared != nullptr) {
    // Fully drained through the cursor path: publish the whole result so
    // future Submit calls (and Prepares) of the same query hit the cache.
    auto full = std::make_shared<SearchResult>();
    full->query = state.prepared->query();
    full->matches = state.prepared->matches();
    full->keyword_of = state.prepared->keyword_of();
    full->hits = state.prefix;
    full->expansions = state.expansions;
    cache_->Put(state.key, std::move(full));
    state.cursor.reset();  // the prefix is complete; free the engine cursor
  }

  const std::vector<SearchHit>& source =
      state.whole != nullptr ? state.whole->hits : state.prefix;
  size_t end = std::min(source.size(), target);
  for (size_t i = client->offset; i < end; ++i) {
    response.hits.push_back(source[i]);
  }
  client->offset = end;
  response.drained = state.drained && client->offset >= source.size();
  response.expansions = state.expansions;
  pages_fetched_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::future<Result<QueryResponse>> SearchService::SubmitFetch(
    uint64_t cursor_id, size_t page_size) {
  auto promise =
      std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  pool_->Submit([this, promise, cursor_id, page_size]() {
    promise->set_value(Fetch(cursor_id, page_size));
  });
  return future;
}

Status SearchService::Close(uint64_t cursor_id) {
  MutexLock lock(&cursors_mutex_);
  auto it = open_cursors_.find(cursor_id);
  if (it == open_cursors_.end()) {
    return Status::NotFound(
        StrFormat("no open cursor %llu",
                  static_cast<unsigned long long>(cursor_id)));
  }
  open_cursors_.erase(it);
  // Reap state-index entries whose every client is gone.
  for (auto state_it = active_states_.begin();
       state_it != active_states_.end();) {
    if (state_it->second.expired()) {
      state_it = active_states_.erase(state_it);
    } else {
      ++state_it;
    }
  }
  return Status::OK();
}

Status SearchService::Mutate(
    const std::function<Status(Database*)>& mutation) {
  CLAKS_CHECK(mutation != nullptr);
  MutexLock lock(&mutate_mutex_);
  std::shared_ptr<const EngineSnapshot> current = snapshot();
  // Copy-on-write: the clone (not the live database) absorbs the
  // mutation, so every concurrent query keeps reading an immutable
  // generation. Tables share frozen segments, so the clone itself is
  // O(rows changed since the last compaction).
  std::unique_ptr<Database> next_db = current->db->Clone();
  DatabaseWatermark watermark = TakeWatermark(*next_db);
  CLAKS_RETURN_NOT_OK(mutation(next_db.get()));
  DatabaseDelta delta = ComputeDelta(watermark, *next_db);

  if (delta.empty()) {
    // Nothing observable changed: publish nothing, build nothing — the
    // current generation stays current (same pointer, same version).
    noop_mutations_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  std::shared_ptr<const EngineSnapshot> next;
  if (!delta.schema_changed) {
    auto derived = std::make_shared<EngineSnapshot>();
    derived->version = current->version + 1;
    derived->db = std::move(next_db);
    bool compacted = false;
    Result<std::unique_ptr<KeywordSearchEngine>> engine =
        KeywordSearchEngine::Derive(*current->engine, derived->db.get(),
                                    delta, options_.delta_policy,
                                    &compacted);
    if (engine.ok()) {
      derived->engine = std::move(engine).ValueOrDie();
      CLAKS_CHECK(derived->engine->Warm());
      delta_mutations_.fetch_add(1, std::memory_order_relaxed);
      if (compacted) {
        // The engine folded its overlays; fold table storage too so the
        // next Clone() is O(1) again. Content- and slot-preserving, and
        // the previous generation's shared segments are untouched.
        derived->db->CompactStorage();
        compactions_.fetch_add(1, std::memory_order_relaxed);
      }
      next = std::move(derived);
    } else if (engine.status().IsIntegrityViolation()) {
      // The batch itself is invalid; nothing is published.
      return engine.status();
    } else {
      // Unexpected derive failure: fall back to the full rebuild below.
      next_db = std::move(derived->db);
    }
  }
  if (next == nullptr) {
    CLAKS_ASSIGN_OR_RETURN(
        next, BuildSnapshot(std::move(next_db), current->version + 1));
    rebuild_mutations_.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic_store(&snapshot_, std::move(next));
  return Status::OK();
}

void SearchService::Drain() { pool_->Drain(); }

ServiceStats SearchService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    ResultCacheStats cache = cache_->stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_evictions = cache.evictions;
    stats.cache_entries = cache.entries;
  }
  stats.snapshot_version = snapshot()->version;
  stats.cursors_prepared =
      cursors_prepared_.load(std::memory_order_relaxed);
  stats.pages_fetched = pages_fetched_.load(std::memory_order_relaxed);
  stats.delta_mutations = delta_mutations_.load(std::memory_order_relaxed);
  stats.rebuild_mutations =
      rebuild_mutations_.load(std::memory_order_relaxed);
  stats.noop_mutations = noop_mutations_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  {
    MutexLock lock(&cursors_mutex_);
    stats.open_cursors = open_cursors_.size();
  }
  return stats;
}

}  // namespace claks
