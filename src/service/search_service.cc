// Copyright 2026 The claks Authors.

#include "service/search_service.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "text/matcher.h"

namespace claks {

SearchService::SearchService(
    ServiceOptions options,
    std::optional<std::pair<ERSchema, ErRelationalMapping>>
        schema_and_mapping)
    : options_(options), schema_and_mapping_(std::move(schema_and_mapping)) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_threads,
                                       options_.queue_capacity);
}

SearchService::~SearchService() = default;

Result<std::unique_ptr<SearchService>> SearchService::Create(
    std::unique_ptr<Database> db, ServiceOptions options) {
  CLAKS_CHECK(db != nullptr);
  auto service = std::unique_ptr<SearchService>(
      new SearchService(options, std::nullopt));
  CLAKS_ASSIGN_OR_RETURN(service->snapshot_,
                         service->BuildSnapshot(std::move(db), 1));
  return service;
}

Result<std::unique_ptr<SearchService>> SearchService::Create(
    std::unique_ptr<Database> db, ERSchema er_schema,
    ErRelationalMapping mapping, ServiceOptions options) {
  CLAKS_CHECK(db != nullptr);
  auto service = std::unique_ptr<SearchService>(new SearchService(
      options,
      std::make_pair(std::move(er_schema), std::move(mapping))));
  CLAKS_ASSIGN_OR_RETURN(service->snapshot_,
                         service->BuildSnapshot(std::move(db), 1));
  return service;
}

Result<std::shared_ptr<const EngineSnapshot>> SearchService::BuildSnapshot(
    std::unique_ptr<Database> db, uint64_t version) const {
  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->version = version;
  snapshot->db = std::move(db);
  if (schema_and_mapping_.has_value()) {
    CLAKS_ASSIGN_OR_RETURN(
        snapshot->engine,
        KeywordSearchEngine::Create(snapshot->db.get(),
                                    schema_and_mapping_->first,
                                    schema_and_mapping_->second));
  } else {
    CLAKS_ASSIGN_OR_RETURN(
        snapshot->engine,
        KeywordSearchEngine::Create(snapshot->db.get()));
  }
  // Create warms the engine already; keep the explicit call as the
  // published contract (a snapshot is never handed out cold).
  snapshot->engine->Warmup();
  CLAKS_CHECK(snapshot->engine->Warm());
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

std::shared_ptr<const EngineSnapshot> SearchService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

std::string SearchService::CacheKey(const KeywordSearchEngine& engine,
                                    uint64_t version,
                                    const std::string& query_text,
                                    const SearchOptions& options) {
  KeywordQuery query =
      ParseKeywordQuery(query_text, engine.index().tokenizer());
  std::string key = StrFormat("v%llu|",
                              static_cast<unsigned long long>(version));
  for (const std::string& keyword : query.keywords) {
    key += keyword;
    key += '\x1f';  // unit separator: cannot occur in a normalized token
  }
  key += StrFormat(
      "|m%d|r%d|e%zu|t%zu|k%zu|i%d|w%zu|a%d|g%zu|bk%zu|bw%d|bd%zu",
      static_cast<int>(options.method), static_cast<int>(options.ranker),
      options.max_rdb_edges, options.tmax, options.top_k,
      options.instance_check ? 1 : 0, options.witness_edges,
      options.require_all_keywords ? 1 : 0, options.per_endpoint_limit,
      options.banks.top_k, static_cast<int>(options.banks.weight_model),
      options.banks.max_distance);
  return key;
}

Result<SearchResult> SearchService::Execute(const std::string& query_text,
                                            const SearchOptions& options) {
  // Pick the snapshot at execution (not submission) time: a query queued
  // behind a Mutate sees the new data, while one already executing keeps
  // its generation alive through this shared_ptr.
  std::shared_ptr<const EngineSnapshot> snap = snapshot();
  std::string key;
  if (cache_ != nullptr) {
    key = CacheKey(*snap->engine, snap->version, query_text, options);
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(key)) {
      return SearchResult(*cached);
    }
  }
  Result<SearchResult> result = snap->engine->Search(query_text, options);
  if (cache_ == nullptr || !result.ok()) return result;
  auto shared = std::make_shared<const SearchResult>(
      std::move(result).ValueOrDie());
  cache_->Put(key, shared);
  return SearchResult(*shared);
}

std::future<Result<SearchResult>> SearchService::Submit(
    std::string query_text, SearchOptions options) {
  auto promise = std::make_shared<std::promise<Result<SearchResult>>>();
  std::future<Result<SearchResult>> future = promise->get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit([this, promise, query_text = std::move(query_text),
                 options]() {
    Result<SearchResult> result = Execute(query_text, options);
    // Count before fulfilling: a waiter that sees the future ready also
    // sees the counter (set_value synchronizes with the get).
    completed_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(std::move(result));
  });
  return future;
}

Result<SearchResult> SearchService::SearchNow(
    const std::string& query_text, const SearchOptions& options) {
  return Submit(query_text, options).get();
}

Status SearchService::Mutate(
    const std::function<Status(Database*)>& mutation) {
  CLAKS_CHECK(mutation != nullptr);
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  std::shared_ptr<const EngineSnapshot> current = snapshot();
  // Copy-on-write: the clone (not the live database) absorbs the
  // mutation, so every concurrent query keeps reading an immutable
  // generation.
  std::unique_ptr<Database> next_db = current->db->Clone();
  CLAKS_RETURN_NOT_OK(mutation(next_db.get()));
  CLAKS_ASSIGN_OR_RETURN(
      std::shared_ptr<const EngineSnapshot> next,
      BuildSnapshot(std::move(next_db), current->version + 1));
  std::atomic_store(&snapshot_, std::move(next));
  return Status::OK();
}

void SearchService::Drain() { pool_->Drain(); }

ServiceStats SearchService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    ResultCacheStats cache = cache_->stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_evictions = cache.evictions;
    stats.cache_entries = cache.entries;
  }
  stats.snapshot_version = snapshot()->version;
  return stats;
}

}  // namespace claks
