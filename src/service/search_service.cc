// Copyright 2026 The claks Authors.

#include "service/search_service.h"

#include <chrono>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/shard.h"
#include "observability/trace.h"
#include "relational/delta.h"
#include "storage/snapshot.h"
#include "text/matcher.h"

namespace claks {

namespace {

// Canonical service counter names: registered per-service (the instance
// registry behind ServiceStats) and process-wide (the twins below), so
// one name means the same thing on both pages.
constexpr char kSubmitted[] = "claks_service_queries_submitted_total";
constexpr char kCompleted[] = "claks_service_queries_completed_total";
constexpr char kCursorsPrepared[] = "claks_service_cursors_prepared_total";
constexpr char kPagesFetched[] = "claks_service_pages_fetched_total";
constexpr char kDeltaMutations[] = "claks_service_mutations_delta_total";
constexpr char kRebuildMutations[] =
    "claks_service_mutations_rebuild_total";
constexpr char kNoopMutations[] = "claks_service_mutations_noop_total";
constexpr char kCompactions[] = "claks_service_compactions_total";

constexpr char kSubmittedHelp[] = "Queries accepted by Submit";
constexpr char kCompletedHelp[] = "Query futures fulfilled";
constexpr char kCursorsPreparedHelp[] = "Cursors opened by Prepare";
constexpr char kPagesFetchedHelp[] = "Pages served by Fetch";
constexpr char kDeltaMutationsHelp[] =
    "Mutation batches published through O(delta) derivation";
constexpr char kRebuildMutationsHelp[] =
    "Mutation batches published through a full rebuild";
constexpr char kNoopMutationsHelp[] =
    "Mutation batches that changed nothing (no snapshot published)";
constexpr char kCompactionsHelp[] =
    "Derived snapshots that folded their overlays";

// Process-wide twins aggregating every SearchService in the process.
CLAKS_METRIC_COUNTER(g_submitted, kSubmitted, kSubmittedHelp);
CLAKS_METRIC_COUNTER(g_completed, kCompleted, kCompletedHelp);
CLAKS_METRIC_COUNTER(g_cursors_prepared, kCursorsPrepared,
                     kCursorsPreparedHelp);
CLAKS_METRIC_COUNTER(g_pages_fetched, kPagesFetched, kPagesFetchedHelp);
CLAKS_METRIC_COUNTER(g_delta_mutations, kDeltaMutations,
                     kDeltaMutationsHelp);
CLAKS_METRIC_COUNTER(g_rebuild_mutations, kRebuildMutations,
                     kRebuildMutationsHelp);
CLAKS_METRIC_COUNTER(g_noop_mutations, kNoopMutations,
                     kNoopMutationsHelp);
CLAKS_METRIC_COUNTER(g_compactions, kCompactions, kCompactionsHelp);
CLAKS_METRIC_HISTOGRAM_FAMILY(
    g_mutation_us, "claks_service_mutation_duration_us",
    "Mutate wall time by outcome (noop, delta, rebuild)", "outcome");
CLAKS_METRIC_COUNTER(g_slow_queries, "claks_service_slow_queries_total",
                     "Queries over ServiceOptions::slow_query_ms");

// One logical service bump: the instance counter (exact ServiceStats)
// and its process-wide twin (the global metrics page).
void Bump(Counter* instance, Counter& global, uint64_t n = 1) {
  instance->Inc(n);
  global.Inc(n);
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

SearchService::SearchService(
    ServiceOptions options,
    std::optional<std::pair<ERSchema, ErRelationalMapping>>
        schema_and_mapping)
    : options_(options), schema_and_mapping_(std::move(schema_and_mapping)) {
  // Bind this service's counters once; the registry owns them for the
  // service's lifetime, so the raw pointers never dangle.
  submitted_ = &metrics_.GetCounter(kSubmitted, kSubmittedHelp);
  completed_ = &metrics_.GetCounter(kCompleted, kCompletedHelp);
  cursors_prepared_ =
      &metrics_.GetCounter(kCursorsPrepared, kCursorsPreparedHelp);
  pages_fetched_ = &metrics_.GetCounter(kPagesFetched, kPagesFetchedHelp);
  delta_mutations_ =
      &metrics_.GetCounter(kDeltaMutations, kDeltaMutationsHelp);
  rebuild_mutations_ =
      &metrics_.GetCounter(kRebuildMutations, kRebuildMutationsHelp);
  noop_mutations_ =
      &metrics_.GetCounter(kNoopMutations, kNoopMutationsHelp);
  compactions_ = &metrics_.GetCounter(kCompactions, kCompactionsHelp);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_threads,
                                       options_.queue_capacity);
}

SearchService::~SearchService() = default;

Result<std::unique_ptr<SearchService>> SearchService::Create(
    std::unique_ptr<Database> db, ServiceOptions options) {
  CLAKS_CHECK(db != nullptr);
  auto service = std::unique_ptr<SearchService>(
      new SearchService(options, std::nullopt));
  CLAKS_ASSIGN_OR_RETURN(service->snapshot_,
                         service->BuildSnapshot(std::move(db), 1));
  return service;
}

Result<std::unique_ptr<SearchService>> SearchService::Create(
    std::unique_ptr<Database> db, ERSchema er_schema,
    ErRelationalMapping mapping, ServiceOptions options) {
  CLAKS_CHECK(db != nullptr);
  // NOLINTNEXTLINE(modernize-make-unique): the constructor is private
  // (Create is the only entry point); make_unique cannot reach it.
  auto service = std::unique_ptr<SearchService>(new SearchService(
      options,
      std::make_pair(std::move(er_schema), std::move(mapping))));
  CLAKS_ASSIGN_OR_RETURN(service->snapshot_,
                         service->BuildSnapshot(std::move(db), 1));
  return service;
}

Result<std::unique_ptr<SearchService>> SearchService::CreateFromSnapshot(
    const std::string& path, ServiceOptions options) {
  CLAKS_ASSIGN_OR_RETURN(LoadedEngine loaded,
                         KeywordSearchEngine::LoadSnapshot(path));
  // Retain the loaded generation's conceptual schema for future rebuild
  // paths — a cold-started service must rebuild exactly like one that
  // built its first snapshot in memory.
  ERSchema er_schema = loaded.engine->er_schema();
  ErRelationalMapping mapping = loaded.engine->mapping();
  // NOLINTNEXTLINE(modernize-make-unique): the constructor is private.
  auto service = std::unique_ptr<SearchService>(new SearchService(
      options, std::make_pair(std::move(er_schema), std::move(mapping))));
  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->version = 1;
  snapshot->db = std::move(loaded.db);
  snapshot->engine = std::move(loaded.engine);
  CLAKS_CHECK(snapshot->engine->Warm());
  service->snapshot_ = std::shared_ptr<const EngineSnapshot>(snapshot);
  return service;
}

Status SearchService::SaveSnapshot(const std::string& path) {
  MutexLock lock(&mutate_mutex_);
  std::shared_ptr<const EngineSnapshot> current = snapshot();
  Status saved = current->engine->SaveSnapshot(path);
  if (saved.ok() || !saved.IsInvalidArgument()) return saved;
  // The generation carries derive overlays (or stale warm state): fold
  // it into a compacted rebuild, publish that as the next version —
  // result-identical to the derived generation, like every compaction —
  // and serialize the fold.
  Result<std::shared_ptr<const EngineSnapshot>> rebuilt =
      BuildSnapshot(current->db->Clone(), current->version + 1);
  if (!rebuilt.ok()) return rebuilt.status();
  std::shared_ptr<const EngineSnapshot> next = *rebuilt;
  std::atomic_store(&snapshot_, next);
  Bump(compactions_, g_compactions);
  return next->engine->SaveSnapshot(path);
}

Result<std::shared_ptr<const EngineSnapshot>> SearchService::BuildSnapshot(
    std::unique_ptr<Database> db, uint64_t version) const {
  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->version = version;
  snapshot->db = std::move(db);
  // Fold table storage so future Clone() calls are O(delta), not
  // O(dataset) — the full-rebuild path pays O(dataset) anyway.
  snapshot->db->CompactStorage();
  if (schema_and_mapping_.has_value()) {
    CLAKS_ASSIGN_OR_RETURN(
        snapshot->engine,
        KeywordSearchEngine::Create(snapshot->db.get(),
                                    schema_and_mapping_->first,
                                    schema_and_mapping_->second));
  } else {
    CLAKS_ASSIGN_OR_RETURN(
        snapshot->engine,
        KeywordSearchEngine::Create(snapshot->db.get()));
  }
  // Create warms the engine already; keep the explicit call as the
  // published contract (a snapshot is never handed out cold).
  snapshot->engine->Warmup();
  CLAKS_CHECK(snapshot->engine->Warm());
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

std::shared_ptr<const EngineSnapshot> SearchService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

std::string SearchService::CacheKey(const KeywordSearchEngine& engine,
                                    uint64_t version,
                                    const std::string& query_text,
                                    const SearchOptions& options) {
  KeywordQuery query =
      ParseKeywordQuery(query_text, engine.index().tokenizer());
  std::string key = StrFormat("v%llu|",
                              static_cast<unsigned long long>(version));
  for (const std::string& keyword : query.keywords) {
    key += keyword;
    key += '\x1f';  // unit separator: cannot occur in a normalized token
  }
  // Shards never change hits (the differential suite proves
  // byte-identity), but the work counters they produce
  // (SearchResult::expansions / shard_expansions) are part of the cached
  // value — keying on the effective count keeps those exact.
  key += StrFormat(
      "|m%d|r%d|e%zu|t%zu|k%zu|i%d|w%zu|a%d|g%zu|s%zu|bk%zu|bw%d|bd%zu|p%d",
      static_cast<int>(options.method), static_cast<int>(options.ranker),
      options.max_rdb_edges, options.tmax, options.top_k,
      options.instance_check ? 1 : 0, options.witness_edges,
      options.require_all_keywords ? 1 : 0, options.per_endpoint_limit,
      EffectiveShards(options.shards), options.banks.top_k,
      static_cast<int>(options.banks.weight_model),
      options.banks.max_distance, options.profile ? 1 : 0);
  return key;
}

Result<SearchResult> SearchService::Execute(const std::string& query_text,
                                            const SearchOptions& options) {
  TraceSpan query_span("query");
  // Pick the snapshot at execution (not submission) time: a query queued
  // behind a Mutate sees the new data, while one already executing keeps
  // its generation alive through this shared_ptr.
  std::shared_ptr<const EngineSnapshot> snap = snapshot();
  std::string key;
  if (cache_ != nullptr) {
    key = CacheKey(*snap->engine, snap->version, query_text, options);
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(key)) {
      return SearchResult(*cached);
    }
  }
  // Slow-query logging needs a QueryProfile even when the caller did not
  // ask for one, so the service forces profiling internally; the forced
  // profile is stripped again below, keeping the returned (and cached)
  // value byte-identical to an unprofiled run.
  const bool slow_log = options_.slow_query_ms > 0;
  SearchOptions effective = options;
  if (slow_log) effective.profile = true;
  auto start = std::chrono::steady_clock::now();
  Result<SearchResult> result = snap->engine->Search(query_text, effective);
  if (slow_log && result.ok()) {
    uint64_t elapsed_ms = ElapsedUs(start) / 1000;
    if (elapsed_ms >= options_.slow_query_ms) {
      g_slow_queries.Inc();
      const SearchResult& value = result.ValueOrDie();
      CLAKS_LOG(Warning)
          .WithField("query", query_text)
          .WithField("method", SearchMethodToString(effective.method))
          .WithField("ms", elapsed_ms)
          .WithField("profile", value.profile.has_value()
                                    ? value.profile->Summary()
                                    : std::string("none"))
          << "slow query";
    }
  }
  if (!result.ok()) return result;
  SearchResult value = std::move(result).ValueUnsafe();
  if (!options.profile) value.profile.reset();
  if (cache_ == nullptr) return value;
  auto shared = std::make_shared<const SearchResult>(std::move(value));
  cache_->Put(key, shared);
  return SearchResult(*shared);
}

std::future<Result<SearchResult>> SearchService::Submit(
    std::string query_text, SearchOptions options) {
  auto promise = std::make_shared<std::promise<Result<SearchResult>>>();
  std::future<Result<SearchResult>> future = promise->get_future();
  Bump(submitted_, g_submitted);
  pool_->Submit([this, promise, query_text = std::move(query_text),
                 options]() {
    Result<SearchResult> result = Execute(query_text, options);
    // Count before fulfilling: a waiter that sees the future ready also
    // sees the counter (set_value synchronizes with the get).
    Bump(completed_, g_completed);
    promise->set_value(std::move(result));
  });
  return future;
}

Result<SearchResult> SearchService::SearchNow(
    const std::string& query_text, const SearchOptions& options) {
  return Submit(query_text, options).get();
}

Result<std::shared_ptr<SearchService::CursorState>>
SearchService::StateForRequest(const QueryRequest& request,
                               QuerySpec spec) {
  std::shared_ptr<const EngineSnapshot> snap = snapshot();
  std::string key = CacheKey(*snap->engine, snap->version,
                             request.query_text, request.options);
  {
    MutexLock lock(&cursors_mutex_);
    auto it = active_states_.find(key);
    if (it != active_states_.end()) {
      if (std::shared_ptr<CursorState> state = it->second.lock()) {
        return state;
      }
      active_states_.erase(it);
    }
  }

  auto state = std::make_shared<CursorState>();
  state->snapshot = snap;
  state->key = key;
  if (cache_ != nullptr) {
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(key)) {
      // The whole result is already materialized: a zero-work cursor
      // slicing the shared cached object directly. The state is not
      // published yet, but locking its (uncontended) mutex keeps the
      // guarded-field discipline provable.
      state->query = cached->query;
      for (const KeywordMatches& km : cached->matches) {
        state->match_counts.push_back(km.matches.size());
      }
      {
        MutexLock init_lock(&state->mutex);
        state->expansions = cached->expansions;
        state->drained = true;
      }
      state->whole = std::move(cached);
      MutexLock lock(&cursors_mutex_);
      active_states_[key] = state;
      return state;
    }
  }

  CLAKS_ASSIGN_OR_RETURN(
      PreparedQuery prepared,
      snap->engine->Prepare(request.query_text, std::move(spec)));
  state->prepared = std::make_unique<PreparedQuery>(std::move(prepared));
  {
    MutexLock init_lock(&state->mutex);
    CLAKS_ASSIGN_OR_RETURN(state->cursor, state->prepared->Open());
    state->drained = state->cursor->Drained();
    state->expansions = state->cursor->Stats().expansions;
  }
  state->query = state->prepared->query();
  for (const KeywordMatches& km : state->prepared->matches()) {
    state->match_counts.push_back(km.matches.size());
  }
  MutexLock lock(&cursors_mutex_);
  // A racing Prepare may have registered an equivalent state meanwhile;
  // share theirs so both clients pull from one engine cursor.
  auto it = active_states_.find(key);
  if (it != active_states_.end()) {
    if (std::shared_ptr<CursorState> existing = it->second.lock()) {
      return existing;
    }
  }
  active_states_[key] = state;
  return state;
}

Result<QueryResponse> SearchService::Prepare(const QueryRequest& request) {
  if (request.api_version != kQueryApiVersion) {
    return Status::Unimplemented(StrFormat(
        "query api version %u not supported (this service speaks v%u)",
        request.api_version, kQueryApiVersion));
  }
  CLAKS_ASSIGN_OR_RETURN(QuerySpec spec,
                         QuerySpec::Create(request.options));
  {
    MutexLock lock(&cursors_mutex_);
    if (open_cursors_.size() >= options_.max_open_cursors) {
      return Status::OutOfRange(
          StrFormat("too many open cursors (max %zu); Close finished ones",
                    options_.max_open_cursors));
    }
  }
  CLAKS_ASSIGN_OR_RETURN(std::shared_ptr<CursorState> state,
                         StateForRequest(request, std::move(spec)));

  auto client = std::make_shared<ClientCursor>();
  client->state = state;
  uint64_t id = next_cursor_id_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&cursors_mutex_);
    // Re-check under the registration lock: concurrent Prepares may have
    // filled the remaining slots since the early check.
    if (open_cursors_.size() >= options_.max_open_cursors) {
      return Status::OutOfRange(
          StrFormat("too many open cursors (max %zu); Close finished ones",
                    options_.max_open_cursors));
    }
    open_cursors_.emplace(id, std::move(client));
  }
  Bump(cursors_prepared_, g_cursors_prepared);

  QueryResponse response;
  response.cursor_id = id;
  response.snapshot_version = state->snapshot->version;
  {
    MutexLock state_lock(&state->mutex);
    const std::vector<SearchHit>& source =
        state->whole != nullptr ? state->whole->hits : state->prefix;
    response.query = state->query;
    response.match_counts = state->match_counts;
    response.drained = state->drained && source.empty();
    response.expansions = state->expansions;
  }
  return response;
}

Result<QueryResponse> SearchService::Fetch(uint64_t cursor_id,
                                           size_t page_size) {
  std::shared_ptr<ClientCursor> client;
  {
    MutexLock lock(&cursors_mutex_);
    auto it = open_cursors_.find(cursor_id);
    if (it == open_cursors_.end()) {
      return Status::NotFound(
          StrFormat("no open cursor %llu",
                    static_cast<unsigned long long>(cursor_id)));
    }
    client = it->second;
  }

  MutexLock client_lock(&client->mutex);
  CursorState& state = *client->state;
  QueryResponse response;
  response.cursor_id = cursor_id;
  response.snapshot_version = state.snapshot->version;
  response.offset = client->offset;

  // Saturate: a wrapped offset + page_size would rewind the client's
  // position and re-serve pages.
  size_t target = client->offset + page_size;
  if (target < client->offset) target = static_cast<size_t>(-1);

  MutexLock state_lock(&state.mutex);
  response.query = state.query;
  response.match_counts = state.match_counts;
  while (!state.drained && state.prefix.size() < target) {
    size_t need = target - state.prefix.size();
    CLAKS_ASSIGN_OR_RETURN(std::vector<SearchHit> pulled,
                           state.cursor->Next(need));
    size_t got = pulled.size();
    for (SearchHit& hit : pulled) state.prefix.push_back(std::move(hit));
    state.expansions = state.cursor->Stats().expansions;
    if (state.cursor->Drained()) state.drained = true;
    if (got < need) break;
  }
  if (state.drained && state.cursor != nullptr && cache_ != nullptr &&
      state.prepared != nullptr) {
    // Fully drained through the cursor path: publish the whole result so
    // future Submit calls (and Prepares) of the same query hit the cache.
    auto full = std::make_shared<SearchResult>();
    full->query = state.prepared->query();
    full->matches = state.prepared->matches();
    full->keyword_of = state.prepared->keyword_of();
    full->hits = state.prefix;
    full->expansions = state.expansions;
    cache_->Put(state.key, std::move(full));
    state.cursor.reset();  // the prefix is complete; free the engine cursor
  }

  const std::vector<SearchHit>& source =
      state.whole != nullptr ? state.whole->hits : state.prefix;
  size_t end = std::min(source.size(), target);
  for (size_t i = client->offset; i < end; ++i) {
    response.hits.push_back(source[i]);
  }
  client->offset = end;
  response.drained = state.drained && client->offset >= source.size();
  response.expansions = state.expansions;
  Bump(pages_fetched_, g_pages_fetched);
  return response;
}

std::future<Result<QueryResponse>> SearchService::SubmitFetch(
    uint64_t cursor_id, size_t page_size) {
  auto promise =
      std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  pool_->Submit([this, promise, cursor_id, page_size]() {
    promise->set_value(Fetch(cursor_id, page_size));
  });
  return future;
}

Status SearchService::Close(uint64_t cursor_id) {
  MutexLock lock(&cursors_mutex_);
  auto it = open_cursors_.find(cursor_id);
  if (it == open_cursors_.end()) {
    return Status::NotFound(
        StrFormat("no open cursor %llu",
                  static_cast<unsigned long long>(cursor_id)));
  }
  open_cursors_.erase(it);
  // Reap state-index entries whose every client is gone.
  for (auto state_it = active_states_.begin();
       state_it != active_states_.end();) {
    if (state_it->second.expired()) {
      state_it = active_states_.erase(state_it);
    } else {
      ++state_it;
    }
  }
  return Status::OK();
}

Status SearchService::Mutate(
    const std::function<Status(Database*)>& mutation) {
  CLAKS_CHECK(mutation != nullptr);
  MutexLock lock(&mutate_mutex_);
  TraceSpan mutate_span("mutate");
  auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const EngineSnapshot> current = snapshot();
  // Copy-on-write: the clone (not the live database) absorbs the
  // mutation, so every concurrent query keeps reading an immutable
  // generation. Tables share frozen segments, so the clone itself is
  // O(rows changed since the last compaction).
  std::unique_ptr<Database> next_db = current->db->Clone();
  DatabaseWatermark watermark = TakeWatermark(*next_db);
  CLAKS_RETURN_NOT_OK(mutation(next_db.get()));
  DatabaseDelta delta = ComputeDelta(watermark, *next_db);

  if (delta.empty()) {
    // Nothing observable changed: publish nothing, build nothing — the
    // current generation stays current (same pointer, same version).
    Bump(noop_mutations_, g_noop_mutations);
    g_mutation_us.With({"noop"}).Observe(ElapsedUs(start));
    return Status::OK();
  }

  std::shared_ptr<const EngineSnapshot> next;
  if (!delta.schema_changed) {
    auto derived = std::make_shared<EngineSnapshot>();
    derived->version = current->version + 1;
    derived->db = std::move(next_db);
    bool compacted = false;
    Result<std::unique_ptr<KeywordSearchEngine>> engine =
        KeywordSearchEngine::Derive(*current->engine, derived->db.get(),
                                    delta, options_.delta_policy,
                                    &compacted);
    if (engine.ok()) {
      derived->engine = std::move(engine).ValueOrDie();
      CLAKS_CHECK(derived->engine->Warm());
      Bump(delta_mutations_, g_delta_mutations);
      g_mutation_us.With({"delta"}).Observe(ElapsedUs(start));
      if (compacted) {
        // The engine folded its overlays; fold table storage too so the
        // next Clone() is O(1) again. Content- and slot-preserving, and
        // the previous generation's shared segments are untouched.
        derived->db->CompactStorage();
        Bump(compactions_, g_compactions);
      }
      next = std::move(derived);
    } else if (engine.status().IsIntegrityViolation()) {
      // The batch itself is invalid; nothing is published.
      return engine.status();
    } else {
      // Unexpected derive failure: fall back to the full rebuild below.
      next_db = std::move(derived->db);
    }
  }
  if (next == nullptr) {
    CLAKS_ASSIGN_OR_RETURN(
        next, BuildSnapshot(std::move(next_db), current->version + 1));
    Bump(rebuild_mutations_, g_rebuild_mutations);
    g_mutation_us.With({"rebuild"}).Observe(ElapsedUs(start));
  }
  std::atomic_store(&snapshot_, std::move(next));
  return Status::OK();
}

void SearchService::Drain() { pool_->Drain(); }

ServiceStats SearchService::stats() const {
  ServiceStats stats;
  // One snapshot pass over the service's registry is the source of truth
  // for every counter field — the per-field atomic loads this replaced
  // could interleave with writers differently per field.
  MetricsSnapshot snap = metrics_.Snapshot();
  stats.submitted = snap.CounterValue(kSubmitted);
  stats.completed = snap.CounterValue(kCompleted);
  stats.cursors_prepared = snap.CounterValue(kCursorsPrepared);
  stats.pages_fetched = snap.CounterValue(kPagesFetched);
  stats.delta_mutations = snap.CounterValue(kDeltaMutations);
  stats.rebuild_mutations = snap.CounterValue(kRebuildMutations);
  stats.noop_mutations = snap.CounterValue(kNoopMutations);
  stats.compactions = snap.CounterValue(kCompactions);
  if (cache_ != nullptr) {
    ResultCacheStats cache = cache_->stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_evictions = cache.evictions;
    stats.cache_entries = cache.entries;
  }
  stats.snapshot_version = snapshot()->version;
  {
    MutexLock lock(&cursors_mutex_);
    stats.open_cursors = open_cursors_.size();
  }
  return stats;
}

std::string ServiceStats::RenderText() const {
  std::string out = "claks service stats\n";
  auto line = [&out](const char* name, uint64_t value) {
    out += StrFormat("  %-18s %llu\n", name,
                     static_cast<unsigned long long>(value));
  };
  line("submitted", submitted);
  line("completed", completed);
  line("cache_hits", cache_hits);
  line("cache_misses", cache_misses);
  line("cache_evictions", cache_evictions);
  line("cache_entries", cache_entries);
  line("snapshot_version", snapshot_version);
  line("cursors_prepared", cursors_prepared);
  line("pages_fetched", pages_fetched);
  line("open_cursors", open_cursors);
  line("delta_mutations", delta_mutations);
  line("rebuild_mutations", rebuild_mutations);
  line("noop_mutations", noop_mutations);
  line("compactions", compactions);
  return out;
}

}  // namespace claks
