// Copyright 2026 The claks Authors.
//
// Quickstart: build the paper's company database, create a search engine
// and run the paper's query "Smith XML" under the close-association-aware
// ranking.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart

#include <cstdio>

#include "core/engine.h"
#include "datasets/company_paper.h"

int main() {
  // 1. The database of the paper's Figure 2 (plus the conceptual schema of
  //    Figure 1 and the table/FK mapping between them).
  auto dataset = claks::BuildCompanyPaperDataset();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. A keyword search engine. The conceptual schema could also be
  //    reverse-engineered: KeywordSearchEngine::Create(db).
  auto engine = claks::KeywordSearchEngine::Create(
      dataset->db.get(), dataset->er_schema, dataset->mapping);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3. Search. The default method enumerates all connections up to 4 FK
  //    edges and ranks close associations first (paper §3).
  claks::SearchOptions options;
  options.max_rdb_edges = 3;
  options.ranker = claks::RankerKind::kCloseFirst;
  auto result = (*engine)->Search("Smith XML", options);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", result->ToString(*dataset->db).c_str());

  // 4. Inspect the top hit programmatically.
  if (!result->hits.empty()) {
    const claks::SearchHit& top = result->hits[0];
    std::printf("top hit: %s\n", top.rendered.c_str());
    std::printf("  rdb length %zu, er length %zu, %s, %s\n",
                top.rdb_length, top.er_length,
                claks::AssociationKindToString(top.kind),
                top.schema_close ? "close" : "loose");
  }
  return 0;
}
