// Copyright 2026 The claks Authors.
//
// Command-line driver: run keyword queries against a built-in dataset or a
// database directory (catalog.txt + CSVs, as written by SaveDatabase).
//
//   claks_cli --dataset=paper --query="Smith XML"
//   claks_cli --dataset=movies --query="grace noir" --ranker=ambiguity
//   claks_cli --db=/path/to/dir --query="..." --method=mtjnt --tmax=4
//
// Flags:
//   --dataset=paper|company|full|bibliography|movies   built-in data
//   --db=DIR            load a persisted database instead
//   --query=TEXT        keywords (required)
//   --method=enumerate|stream|mtjnt|discover|banks     (default enumerate)
//   --ranker=rdb-length|er-length|close-first|loose-penalty|
//            instance-close|combined|ambiguity|more-context
//   --depth=N           max FK edges for enumerate/stream (default 4)
//   --tmax=N            max tuples for mtjnt/discover (default 5)
//   --top=N             result cap (default 10)
//   --shards=N          intra-query sharding: fan one query out over N
//                       seed shards (default 1 = single-threaded;
//                       results are identical for every N)
//   --page-size=N       incremental paging: prepare the query, open a
//                       cursor and fetch N hits at a time (interactive:
//                       waits for Enter between pages when stdin is a
//                       TTY). With --method=stream the expansion work
//                       happens per page — the per-page expansion counter
//                       shows how little of the result space each page
//                       cost. Combined with --threads this drives the
//                       service's Prepare/Fetch endpoints instead.
//   --explain           print a natural-language reading per hit
//   --sql               print a SQL statement per hit
//   --stats             print instance statistics and exit
//   --save=DIR          persist the loaded dataset and exit
//
// Snapshot storage (src/storage/): a fully-warmed engine serialized to a
// single page-aligned file, mmap-loaded back with zero-copy views — the
// cold-start path skips tokenization, graph construction and join-index
// builds entirely:
//   --ingest-csv=DIR    bulk-ingest a database directory (catalog.txt +
//                       CSVs, as written by --save) — alias of --db that
//                       reads as an ingest step; combine with
//                       --save-snapshot to produce a warmed snapshot
//   --save-snapshot=F   build + warm the engine, serialize it to F and
//                       exit (prints section sizes via file length)
//   --load-snapshot=F   mmap F instead of building anything; serves
//                       queries from the loaded generation. With
//                       --threads the service cold-starts from F and
//                       subsequent mutations delta-derive on the frozen
//                       mmap'd base
//
// Observability (src/observability/):
//   --profile           attach a per-stage QueryProfile to every query
//                       and print it (wall time per stage, expansions,
//                       per-shard skew)
//   --trace-out=FILE    record TraceSpans for the whole run and write
//                       them as Chrome trace_event JSON to FILE — load it
//                       in chrome://tracing or Perfetto (requires a
//                       build with CLAKS_TRACING=ON, the default)
//   --metrics           print the process-wide metrics page
//                       (Prometheus-style RenderText) after the run
//
// Concurrent service mode (drives service/search_service.h instead of a
// bare engine):
//   --threads=N         serve through a SearchService with N workers
//   --queries=A;B;C     batch of queries (';'-separated; overrides --query)
//   --repeat=N          submit the batch N times (default 1) — repeats are
//                       result-cache hits; per-run QPS and cache counters
//                       are reported at the end

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/cursor.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/query_spec.h"
#include "core/sql.h"
#include "datasets/bibliography.h"
#include "datasets/company_full.h"
#include "datasets/company_gen.h"
#include "datasets/company_paper.h"
#include "datasets/movies.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "observability/trace.h"
#include "relational/catalog_io.h"
#include "service/search_service.h"
#include "storage/snapshot.h"

namespace {

struct Flags {
  std::string dataset = "paper";
  std::string db_dir;
  std::string query;
  std::string method = "enumerate";
  std::string ranker = "close-first";
  size_t depth = 4;
  size_t tmax = 5;
  size_t top = 10;
  size_t shards = 1;  // > 1: intra-query sharding (core/shard.h)
  size_t page_size = 0;  // > 0: prepared-query + cursor paging
  bool explain = false;
  bool sql = false;
  bool stats = false;
  bool profile = false;      // attach + print QueryProfiles
  bool metrics = false;      // print the metrics page after the run
  std::string trace_out;     // write Chrome trace JSON here
  std::string save_dir;
  std::string ingest_csv;     // bulk-ingest a CSV directory
  std::string save_snapshot;  // serialize the warmed engine to this file
  std::string load_snapshot;  // mmap an engine snapshot instead of building
  size_t threads = 0;  // > 0: drive a SearchService instead of the engine
  std::string queries;  // ';'-separated batch for service mode
  size_t repeat = 1;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "dataset", &flags->dataset)) continue;
    if (ParseFlag(argv[i], "db", &flags->db_dir)) continue;
    if (ParseFlag(argv[i], "query", &flags->query)) continue;
    if (ParseFlag(argv[i], "method", &flags->method)) continue;
    if (ParseFlag(argv[i], "ranker", &flags->ranker)) continue;
    if (ParseFlag(argv[i], "save", &flags->save_dir)) continue;
    if (ParseFlag(argv[i], "ingest-csv", &flags->ingest_csv)) continue;
    if (ParseFlag(argv[i], "save-snapshot", &flags->save_snapshot)) continue;
    if (ParseFlag(argv[i], "load-snapshot", &flags->load_snapshot)) continue;
    if (ParseFlag(argv[i], "depth", &value)) {
      flags->depth = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "tmax", &value)) {
      flags->tmax = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "top", &value)) {
      flags->top = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "page-size", &value)) {
      flags->page_size = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "shards", &value)) {
      flags->shards = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "queries", &flags->queries)) continue;
    if (ParseFlag(argv[i], "threads", &value)) {
      flags->threads = std::stoul(value);
      continue;
    }
    if (ParseFlag(argv[i], "repeat", &value)) {
      flags->repeat = std::stoul(value);
      continue;
    }
    if (std::strcmp(argv[i], "--explain") == 0) {
      flags->explain = true;
      continue;
    }
    if (std::strcmp(argv[i], "--sql") == 0) {
      flags->sql = true;
      continue;
    }
    if (std::strcmp(argv[i], "--stats") == 0) {
      flags->stats = true;
      continue;
    }
    if (std::strcmp(argv[i], "--profile") == 0) {
      flags->profile = true;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      flags->metrics = true;
      continue;
    }
    if (ParseFlag(argv[i], "trace-out", &flags->trace_out)) continue;
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return false;
  }
  return true;
}

void PrintHitLine(size_t rank, const claks::SearchHit& hit) {
  std::printf("  #%zu  %s | rdb %zu er %zu %s%s | text %.3f\n", rank,
              hit.rendered.c_str(), hit.rdb_length, hit.er_length,
              claks::AssociationKindToString(hit.kind),
              hit.schema_close ? " (close)" : " (loose)", hit.text_score);
}

void PrintHitExtras(const Flags& flags, size_t rank,
                    const claks::SearchHit& hit, const claks::Database& db,
                    const claks::ERSchema& er_schema,
                    const claks::ErRelationalMapping& mapping) {
  if (!hit.connection.has_value()) return;
  if (flags.explain) {
    auto text = claks::ExplainConnection(*hit.connection, db, er_schema,
                                         mapping);
    if (text.ok()) std::printf("  #%zu reads: %s\n", rank, text->c_str());
  }
  if (flags.sql) {
    auto sql = claks::ConnectionToSql(*hit.connection, db);
    if (sql.ok()) std::printf("  #%zu sql: %s\n", rank, sql->c_str());
  }
}

// The legacy whole-result extras loop: explain/SQL lines numbered over
// the path-shaped hits only (shared by the plain and service modes).
void PrintResultExtras(const Flags& flags,
                       const std::vector<claks::SearchHit>& hits,
                       const claks::Database& db,
                       const claks::ERSchema& er_schema,
                       const claks::ErRelationalMapping& mapping) {
  size_t rank = 1;
  for (const claks::SearchHit& hit : hits) {
    if (!hit.connection.has_value()) continue;
    PrintHitExtras(flags, rank, hit, db, er_schema, mapping);
    ++rank;
  }
}

// Flushes the observability outputs on every exit path from main: the
// Chrome trace JSON for --trace-out (uninstalling the recorder first so
// the file captures exactly the traced run) and the process metrics page
// for --metrics.
struct ObservabilityFlush {
  claks::TraceRecorder* recorder = nullptr;
  std::string trace_path;
  bool metrics = false;

  ~ObservabilityFlush() {
    if (recorder != nullptr) {
      claks::TraceRecorder::Uninstall();
      std::vector<claks::TraceEvent> events = recorder->Events();
      std::string json = recorder->ToChromeJson();
      FILE* file = std::fopen(trace_path.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "trace-out: cannot open %s\n",
                     trace_path.c_str());
      } else {
        std::fwrite(json.data(), 1, json.size(), file);
        std::fclose(file);
        std::fprintf(stderr, "trace: %zu span(s) written to %s\n",
                     events.size(), trace_path.c_str());
      }
    }
    if (metrics) {
      std::printf("%s",
                  claks::MetricsRegistry::Default().RenderText().c_str());
    }
  }
};

void MaybePrintProfile(const Flags& flags,
                       const std::optional<claks::QueryProfile>& profile) {
  if (!flags.profile) return;
  if (!profile.has_value()) {
    std::printf("profile: (not collected)\n");
    return;
  }
  std::printf("%s", profile->ToString().c_str());
}

// Interactive pause between pages; no-op when stdin is not a TTY (smoke
// tests, pipes). Returns false when the user ends the session (EOF/q).
bool WaitForNextPage() {
  if (isatty(fileno(stdin)) == 0) return true;
  std::printf("-- more (Enter; q quits) --\n");
  int c = std::getchar();
  if (c == 'q' || c == EOF) return false;
  while (c != '\n' && c != EOF) c = std::getchar();
  return true;
}

// Prepared-query + cursor paging against a bare engine: the query is
// validated and matched once, then hits are pulled page by page — with
// --method=stream the expansion counter shows the work each page cost.
int RunEnginePaging(const Flags& flags,
                    const claks::KeywordSearchEngine& engine,
                    const claks::Database& db,
                    const claks::SearchOptions& options) {
  auto prepared = engine.Prepare(flags.query, options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  auto cursor = prepared->Open();
  if (!cursor.ok()) {
    std::fprintf(stderr, "open: %s\n", cursor.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", prepared->query().ToString().c_str());
  for (const claks::KeywordMatches& km : prepared->matches()) {
    std::printf("  keyword '%s': %zu tuples\n", km.keyword.c_str(),
                km.matches.size());
  }
  size_t rank = 0;
  size_t page = 0;
  size_t last_expansions = 0;
  while (!(*cursor)->Drained()) {
    auto start = std::chrono::steady_clock::now();
    auto hits = (*cursor)->Next(flags.page_size);
    if (!hits.ok()) {
      std::fprintf(stderr, "fetch: %s\n",
                   hits.status().ToString().c_str());
      return 1;
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (hits->empty()) break;
    ++page;
    for (const claks::SearchHit& hit : *hits) {
      PrintHitLine(++rank, hit);
      PrintHitExtras(flags, rank, hit, db, engine.er_schema(),
                     engine.mapping());
    }
    claks::CursorStats stats = (*cursor)->Stats();
    std::printf("  -- page %zu: %zu hit(s) in %.2fms, +%zu expansions "
                "(%zu total)%s\n",
                page, hits->size(), ms, stats.expansions - last_expansions,
                stats.expansions, stats.drained ? ", drained" : "");
    last_expansions = stats.expansions;
    if ((*cursor)->Drained()) break;
    if (!WaitForNextPage()) break;
  }
  if (rank == 0) std::printf("  (no results)\n");
  MaybePrintProfile(flags, (*cursor)->Stats().profile);
  return 0;
}

// Paged service mode: each query goes through the versioned Prepare/Fetch
// endpoints (service/query_api.h). Repeats re-prepare the same query —
// in-flight repeats share one server-side cursor state, and finished
// drains are served from the whole-result cache.
int RunServicePaging(const Flags& flags, claks::SearchService& service,
                     const std::vector<std::string>& queries,
                     const claks::SearchOptions& options) {
  size_t repeat = flags.repeat == 0 ? 1 : flags.repeat;
  int failures = 0;
  for (size_t r = 0; r < repeat; ++r) {
    for (size_t q = 0; q < queries.size(); ++q) {
      claks::QueryRequest request;
      request.query_text = queries[q];
      request.options = options;
      auto prepared = service.Prepare(request);
      if (!prepared.ok()) {
        std::fprintf(stderr, "prepare '%s': %s\n", queries[q].c_str(),
                     prepared.status().ToString().c_str());
        ++failures;
        continue;
      }
      bool print = r == 0;
      if (print) {
        std::printf("query: %s (cursor %llu, snapshot v%llu)\n",
                    prepared->query.ToString().c_str(),
                    static_cast<unsigned long long>(prepared->cursor_id),
                    static_cast<unsigned long long>(
                        prepared->snapshot_version));
      }
      size_t rank = 0;
      bool drained = prepared->drained;
      while (!drained) {
        auto page = service.Fetch(prepared->cursor_id, flags.page_size);
        if (!page.ok()) {
          std::fprintf(stderr, "fetch: %s\n",
                       page.status().ToString().c_str());
          ++failures;
          break;
        }
        if (page->hits.empty() && page->drained) break;
        if (print) {
          for (const claks::SearchHit& hit : page->hits) {
            PrintHitLine(++rank, hit);
          }
          std::printf("  -- fetched %zu hit(s) at offset %zu, "
                      "%zu expansions so far%s\n",
                      page->hits.size(), page->offset, page->expansions,
                      page->drained ? ", drained" : "");
        }
        drained = page->drained;
      }
      service.Close(prepared->cursor_id);
    }
  }
  claks::ServiceStats stats = service.stats();
  std::printf(
      "service: %llu cursor(s) prepared, %llu page(s) fetched | cache "
      "hits %llu misses %llu | snapshot v%llu\n",
      static_cast<unsigned long long>(stats.cursors_prepared),
      static_cast<unsigned long long>(stats.pages_fetched),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.snapshot_version));
  return failures == 0 ? 0 : 1;
}

// Batch-of-queries mode over the concurrent service: submits every query
// (x repeat) through a SearchService worker pool, prints each distinct
// query's result once, then a throughput + cache-counter summary.
int RunServiceMode(const Flags& flags, std::unique_ptr<claks::Database> db,
                   claks::ERSchema er_schema,
                   claks::ErRelationalMapping mapping, bool have_mapping,
                   const claks::SearchOptions& options) {
  std::vector<std::string> queries;
  if (!flags.queries.empty()) {
    for (std::string& query : claks::Split(flags.queries, ';')) {
      if (!query.empty()) queries.push_back(std::move(query));
    }
  } else if (!flags.query.empty()) {
    queries.push_back(flags.query);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "--query or --queries is required\n");
    return 2;
  }
  size_t repeat = flags.repeat == 0 ? 1 : flags.repeat;

  claks::ServiceOptions service_options;
  service_options.num_threads = flags.threads;
  // --load-snapshot cold-starts the service from the mmap'd file: the
  // loaded generation becomes version 1 with zero build work.
  auto service =
      !flags.load_snapshot.empty()
          ? claks::SearchService::CreateFromSnapshot(flags.load_snapshot,
                                                     service_options)
          : have_mapping
                ? claks::SearchService::Create(std::move(db),
                                               std::move(er_schema),
                                               std::move(mapping),
                                               service_options)
                : claks::SearchService::Create(std::move(db),
                                               service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  if (flags.page_size > 0) {
    return RunServicePaging(flags, **service, queries, options);
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<claks::Result<claks::SearchResult>>> futures;
  futures.reserve(queries.size() * repeat);
  for (size_t r = 0; r < repeat; ++r) {
    for (const std::string& query : queries) {
      futures.push_back((*service)->Submit(query, options));
    }
  }

  const claks::Database& snapshot_db = *(*service)->snapshot()->db;
  int failures = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    if (!result.ok()) {
      std::fprintf(stderr, "search '%s': %s\n",
                   queries[i % queries.size()].c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (i < queries.size()) {  // print each distinct query once
      std::printf("%s", result->ToString(snapshot_db, flags.top).c_str());
      MaybePrintProfile(flags, result->profile);
      if (flags.explain || flags.sql) {
        const claks::KeywordSearchEngine& engine =
            *(*service)->snapshot()->engine;
        PrintResultExtras(flags, result->hits, snapshot_db,
                          engine.er_schema(), engine.mapping());
      }
    }
  }
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  claks::ServiceStats stats = (*service)->stats();
  std::printf(
      "service: %zu queries on %zu thread(s) in %.1fms (%.1f qps) | "
      "cache hits %llu misses %llu evictions %llu | snapshot v%llu\n",
      futures.size(), flags.threads, wall_ms,
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(futures.size()) / wall_ms
                    : 0.0,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.snapshot_version));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  // Recorder before flush: locals die in reverse order, so the flush
  // (which reads the recorder) runs first on every return path.
  std::optional<claks::TraceRecorder> recorder;
  ObservabilityFlush flush;
  flush.metrics = flags.metrics;
  if (!flags.trace_out.empty()) {
    recorder.emplace();
    recorder->Install();
    if (!claks::TraceSpan::Enabled()) {
      std::fprintf(stderr,
                   "trace-out: this build has CLAKS_TRACING=OFF; the "
                   "trace will be empty\n");
    }
    flush.recorder = &*recorder;
    flush.trace_path = flags.trace_out;
  }

  // Acquire the database (+ conceptual schema when built-in). With
  // --load-snapshot, database AND engine both come out of the mmap'd
  // file instead (service mode defers the load to CreateFromSnapshot).
  std::unique_ptr<claks::Database> owned_db;
  claks::ERSchema er_schema;
  claks::ErRelationalMapping mapping;
  bool have_mapping = false;
  std::optional<claks::LoadedEngine> loaded_snapshot;
  bool service_mode = flags.threads > 0 && !flags.stats &&
                      flags.save_snapshot.empty() && flags.save_dir.empty();

  if (!flags.load_snapshot.empty()) {
    if (!service_mode) {
      auto loaded = claks::KeywordSearchEngine::LoadSnapshot(
          flags.load_snapshot);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load-snapshot: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      loaded_snapshot = std::move(loaded).ValueOrDie();
      std::fprintf(stderr, "loaded snapshot %s: %zu tuples, warm=%d\n",
                   flags.load_snapshot.c_str(),
                   loaded_snapshot->db->TotalRows(),
                   loaded_snapshot->engine->Warm() ? 1 : 0);
    }
  } else if (!flags.db_dir.empty() || !flags.ingest_csv.empty()) {
    const std::string& dir =
        !flags.db_dir.empty() ? flags.db_dir : flags.ingest_csv;
    auto loaded = claks::LoadDatabase(dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    owned_db = std::move(loaded).ValueOrDie();
    if (!flags.ingest_csv.empty()) {
      std::fprintf(stderr, "ingested %zu tuples from %s\n",
                   owned_db->TotalRows(), flags.ingest_csv.c_str());
    }
  } else if (flags.dataset == "paper") {
    auto dataset = claks::BuildCompanyPaperDataset();
    if (!dataset.ok()) return 1;
    owned_db = std::move(dataset->db);
    er_schema = std::move(dataset->er_schema);
    mapping = std::move(dataset->mapping);
    have_mapping = true;
  } else {
    claks::Result<claks::GeneratedDataset> dataset =
        flags.dataset == "company"
            ? claks::GenerateCompanyDataset({})
            : flags.dataset == "full"
                  ? claks::GenerateCompanyFullDataset({})
                  : flags.dataset == "bibliography"
                        ? claks::GenerateBibliographyDataset({})
                        : flags.dataset == "movies"
                              ? claks::GenerateMoviesDataset({})
                              : claks::Status::InvalidArgument(
                                    "unknown --dataset '" + flags.dataset +
                                    "'");
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    owned_db = std::move(dataset->db);
    er_schema = std::move(dataset->er_schema);
    mapping = std::move(dataset->mapping);
    have_mapping = true;
  }

  if (!flags.save_dir.empty()) {
    // Exports the loaded snapshot's database when --load-snapshot was
    // given, closing the CSV <-> snapshot round trip in both directions.
    const claks::Database& export_db =
        loaded_snapshot.has_value() ? *loaded_snapshot->db : *owned_db;
    auto saved = claks::SaveDatabase(export_db, flags.save_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu tuples to %s\n", export_db.TotalRows(),
                flags.save_dir.c_str());
    return 0;
  }

  claks::SearchOptions options;
  options.max_rdb_edges = flags.depth;
  options.tmax = flags.tmax;
  options.top_k = flags.top;
  options.shards = flags.shards;
  options.profile = flags.profile;
  std::optional<claks::SearchMethod> method =
      claks::SearchMethodFromString(flags.method);
  std::optional<claks::RankerKind> ranker =
      claks::RankerKindFromString(flags.ranker);
  if (!method.has_value() || !ranker.has_value()) {
    std::fprintf(stderr, "unknown --method or --ranker\n");
    return 2;
  }
  options.method = *method;
  options.ranker = *ranker;

  if (service_mode && flags.threads > 0) {
    // Concurrent service mode: the service takes ownership of the data
    // (or cold-starts from the snapshot file when --load-snapshot).
    return RunServiceMode(flags, std::move(owned_db), std::move(er_schema),
                          std::move(mapping), have_mapping, options);
  }

  // A snapshot-loaded engine arrives fully assembled; otherwise build
  // one over the acquired database.
  std::unique_ptr<claks::KeywordSearchEngine> created;
  claks::KeywordSearchEngine* engine = nullptr;
  claks::Database* db = nullptr;
  if (loaded_snapshot.has_value()) {
    engine = loaded_snapshot->engine.get();
    db = loaded_snapshot->db.get();
  } else {
    auto built = have_mapping
                     ? claks::KeywordSearchEngine::Create(
                           owned_db.get(), std::move(er_schema),
                           std::move(mapping))
                     : claks::KeywordSearchEngine::Create(owned_db.get());
    if (!built.ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    created = std::move(built).ValueOrDie();
    engine = created.get();
    db = owned_db.get();
  }

  if (!flags.save_snapshot.empty()) {
    // Serialize the fully-warmed generation: every downstream load mmaps
    // these exact bytes and skips the build entirely.
    engine->Warmup();
    auto saved = engine->SaveSnapshot(flags.save_snapshot);
    if (!saved.ok()) {
      std::fprintf(stderr, "save-snapshot: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("snapshot: %zu tuples -> %s\n", db->TotalRows(),
                flags.save_snapshot.c_str());
    return 0;
  }

  if (flags.stats) {
    std::printf("%s", engine->er_schema().ToString().c_str());
    std::printf("%s", engine->statistics().ToString().c_str());
    return 0;
  }
  if (flags.query.empty()) {
    std::fprintf(stderr, "--query is required (or use --stats/--save)\n");
    return 2;
  }

  if (flags.page_size > 0) {
    return RunEnginePaging(flags, *engine, *db, options);
  }

  auto result = engine->Search(flags.query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToString(*db, flags.top).c_str());
  MaybePrintProfile(flags, result->profile);

  if (flags.explain || flags.sql) {
    PrintResultExtras(flags, result->hits, *db, engine->er_schema(),
                      engine->mapping());
  }
  return 0;
}
